#!/bin/sh
# Regenerates BENCH_lifetime.json (repo root) from the rule-pass, engine,
# parallel, tiled, and simd-level microbenchmarks. The committed file tracks
# the hot-kernel numbers across PRs; a "baseline" section, when present, is
# preserved verbatim so before/after comparisons survive regeneration.
# Assembly runs through bench_report (the repo's own JSON writer) — no
# python needed. Every regeneration stamps host_cpus and the simd dispatch
# level the measuring host resolved, so a number can always be traced to
# the hardware class that produced it; bench_report also warns about rows
# the previous file had that the fresh run no longer measures.
#
# Usage: tools/bench_json.sh [output.json]
# Env:   PACDS_BENCH_BIN_DIR  directory with micro_cds/micro_engine/
#                             micro_parallel/micro_tiles/micro_simd/
#                             bench_report (default: build/bench)
#        PACDS_BENCH_MIN_TIME --benchmark_min_time value (default: 0.2)
#        PACDS_BENCH_STRICT   1 = pass --strict to bench_report, failing on
#                             stale/missing rows (CI's bench smoke path)
set -eu

OUT=${1:-BENCH_lifetime.json}
BIN_DIR=${PACDS_BENCH_BIN_DIR:-build/bench}
MIN_TIME=${PACDS_BENCH_MIN_TIME:-0.2}

TMP_CDS=$(mktemp)
TMP_ENGINE=$(mktemp)
TMP_PARALLEL=$(mktemp)
TMP_TILES=$(mktemp)
TMP_SIMD=$(mktemp)
TMP_SERVE=$(mktemp)
trap 'rm -f "$TMP_CDS" "$TMP_ENGINE" "$TMP_PARALLEL" "$TMP_TILES" "$TMP_SIMD" "$TMP_SERVE"' EXIT

"$BIN_DIR/micro_cds" --benchmark_filter='^BM_Rule(1|2Refined)Pass/' \
  --benchmark_min_time="$MIN_TIME" --benchmark_format=json >"$TMP_CDS"
"$BIN_DIR/micro_engine" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP_ENGINE"
"$BIN_DIR/micro_parallel" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP_PARALLEL"
# The large rows pin their own iteration counts; min_time only drives the
# n = 10k rows.
"$BIN_DIR/micro_tiles" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP_TILES"
"$BIN_DIR/micro_simd" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP_SIMD"
"$BIN_DIR/bench_serve" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP_SERVE"

STRICT=
if [ "${PACDS_BENCH_STRICT:-0}" = "1" ]; then STRICT=--strict; fi
"$BIN_DIR/bench_report" $STRICT "$TMP_CDS" "$TMP_ENGINE" "$TMP_PARALLEL" \
  "$TMP_TILES" "$TMP_SIMD" "$TMP_SERVE" "$OUT"
