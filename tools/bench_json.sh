#!/bin/sh
# Regenerates BENCH_lifetime.json (repo root) from the rule-pass, engine, and
# parallel microbenchmarks. The committed file tracks the hot-kernel numbers
# across PRs; a "baseline" section, when present, is preserved verbatim so
# before/after comparisons survive regeneration.
#
# Usage: tools/bench_json.sh [output.json]
# Env:   PACDS_BENCH_BIN_DIR  directory with micro_cds/micro_engine/
#                             micro_parallel (default: build/bench)
#        PACDS_BENCH_MIN_TIME --benchmark_min_time value (default: 0.2)
set -eu

OUT=${1:-BENCH_lifetime.json}
BIN_DIR=${PACDS_BENCH_BIN_DIR:-build/bench}
MIN_TIME=${PACDS_BENCH_MIN_TIME:-0.2}

TMP_CDS=$(mktemp)
TMP_ENGINE=$(mktemp)
TMP_PARALLEL=$(mktemp)
trap 'rm -f "$TMP_CDS" "$TMP_ENGINE" "$TMP_PARALLEL"' EXIT

"$BIN_DIR/micro_cds" --benchmark_filter='^BM_Rule(1|2Refined)Pass/' \
  --benchmark_min_time="$MIN_TIME" --benchmark_format=json >"$TMP_CDS"
"$BIN_DIR/micro_engine" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP_ENGINE"
"$BIN_DIR/micro_parallel" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP_PARALLEL"

python3 - "$TMP_CDS" "$TMP_ENGINE" "$TMP_PARALLEL" "$OUT" <<'PY'
import json
import os
import sys

cds_path, engine_path, parallel_path, out_path = sys.argv[1:5]


def ns_per_op(path):
    with open(path) as f:
        data = json.load(f)
    scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}
    return {
        b["name"]: round(b["real_time"] * scale[b.get("time_unit", "ns")], 1)
        for b in data["benchmarks"]
    }


previous = {}
try:
    with open(out_path) as f:
        previous = json.load(f)
except (OSError, ValueError):
    pass

result = {
    "_comment": "ns per op; regenerate with: cmake --build build --target bench_json",
    "baseline": previous.get("baseline", {}),
    "rule_pass_ns": ns_per_op(cds_path),
    "engine_interval_ns": ns_per_op(engine_path),
    # Thread sweep of the sharded intra-interval pipeline (micro_parallel):
    # BM_ComputeCdsLanes/<n>/<lanes> and BM_IntervalThreads/<n>/<threads>
    # at n = 400 and 800. host_cpus records how many cores the measuring
    # host actually had — speedup is only physically possible beyond 1.
    "parallel_interval_ns": ns_per_op(parallel_path),
    "host_cpus": os.cpu_count(),
}
for stay in (98, 95):
    full = result["engine_interval_ns"].get(f"BM_IntervalFullRebuild/800/{stay}")
    inc = result["engine_interval_ns"].get(f"BM_IntervalIncremental/800/{stay}")
    if full and inc:
        result[f"speedup_incremental_n800_stay{stay}"] = round(full / inc, 2)
for n in (400, 800):
    serial = result["parallel_interval_ns"].get(f"BM_IntervalThreads/{n}/1")
    eight = result["parallel_interval_ns"].get(f"BM_IntervalThreads/{n}/8")
    if serial and eight:
        result[f"speedup_threads8_n{n}"] = round(serial / eight, 2)

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print("wrote", out_path)
PY
