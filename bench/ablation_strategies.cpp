// Ablation A: how the rule-application strategy affects CDS size and — for
// the paper's synchronous (simultaneous) semantics — how often the published
// rules break the connected-dominating-set property (the Dai-Wu 2004 gap).
// Reported per scheme over random connected unit-disk networks.

#include <iostream>
#include <vector>

#include "core/cds.hpp"
#include "core/verify.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

namespace {

using namespace pacds;

struct StrategyStats {
  Welford size;
  std::size_t violations = 0;
  std::size_t cases = 0;
};

}  // namespace

int main() {
  const std::size_t trials = env_size_t("PACDS_TRIALS", 60);
  constexpr Strategy kStrategies[] = {Strategy::kSimultaneous,
                                      Strategy::kSequential,
                                      Strategy::kVerified};

  std::cout << "== Ablation A: rule-application strategy ==\n"
            << "CDS size and validity-violation rate per strategy; "
            << trials << " random connected networks per point\n"
            << "(violations come from the published rules' unguarded "
               "simultaneous removals, see DESIGN.md)\n\n";

  for (const int n : {20, 50, 80}) {
    TextTable table({"scheme", "simultaneous", "viol%", "sequential",
                     "viol%", "verified", "viol%"});
    for (const RuleSet rs : kAllRuleSets) {
      StrategyStats stats[3];
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Xoshiro256 rng(derive_seed(0xab1a7e, trial * 131 +
                                               static_cast<std::uint64_t>(n)));
        const auto placed = random_connected_placement(
            n, Field::paper_field(), kPaperRadius, rng, 2000);
        if (!placed) continue;
        std::vector<double> energy;
        for (int i = 0; i < n; ++i) {
          energy.push_back(static_cast<double>(rng.uniform_int(1, 5)));
        }
        for (std::size_t s = 0; s < 3; ++s) {
          CdsOptions options;
          options.strategy = kStrategies[s];
          const CdsResult r = compute_cds(placed->graph, rs, energy, options);
          stats[s].size.add(static_cast<double>(r.gateway_count));
          ++stats[s].cases;
          if (!check_cds(placed->graph, r.gateways).ok()) {
            ++stats[s].violations;
          }
        }
      }
      std::vector<std::string> row{to_string(rs)};
      for (const StrategyStats& s : stats) {
        row.push_back(TextTable::fmt(s.size.mean()));
        row.push_back(TextTable::fmt(
            s.cases == 0 ? 0.0
                         : 100.0 * static_cast<double>(s.violations) /
                               static_cast<double>(s.cases),
            1));
      }
      table.add_row(std::move(row));
    }
    std::cout << "n = " << n << " hosts\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
