// Scaling microbenchmark of the tiled engine: cost of one steady-state
// update interval at n far beyond micro_engine's range (10k / 100k / 1M
// hosts at constant density), against the flat incremental engine at the
// sizes where running it is affordable. Same regime as micro_engine — EL2
// keys, Model 1 drain, coarse key buckets, stay probability 0.95 — so the
// n = 10k rows splice onto the n <= 800 curves in BENCH_lifetime.json.
//
// The 1M row doubles as the peak-memory demonstration for DESIGN.md §9:
// the run only exists because per-tile dense rows are O(L²/64) with L the
// local-universe size — a global dense substrate would need O(n²) = 125 GB
// of bits at this size before computing anything.
//
// Iteration counts are pinned for the big rows (one interval is hundreds of
// milliseconds; letting min_time drive would stretch a bench_json regen to
// many minutes on one core).

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/lifetime.hpp"

namespace {

using namespace pacds;

SimConfig make_config(int n, double stay) {
  SimConfig config;
  config.n_hosts = n;
  const double side = std::sqrt(static_cast<double>(n) / 50.0) * 100.0;
  config.field_width = side;
  config.field_height = side;
  config.rule_set = RuleSet::kEL2;
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.stay_probability = stay;
  config.drain_model = DrainModel::kConstantTotal;
  config.energy_key_quantum = 10.0;
  config.initial_energy = 1.0e9;  // no deaths during the benchmark
  return config;
}

void run_interval(LifetimeEngine& engine, const SimConfig& config,
                  std::vector<Vec2>& positions, BatteryBank& batteries,
                  MobilityModel& mobility, const Field& field,
                  Xoshiro256& rng) {
  engine.update(positions, batteries.levels());
  const double d = gateway_drain(config.drain_model, batteries.size(),
                                 engine.counts().gateways,
                                 config.drain_params);
  for (std::size_t host = 0; host < batteries.size(); ++host) {
    batteries.drain(host, engine.gateways().test(host)
                              ? d
                              : config.drain_params.nongateway_drain);
  }
  mobility.step(positions, field, rng);
}

void bench_engine(benchmark::State& state, SimEngine which) {
  const int n = static_cast<int>(state.range(0));
  const double stay = static_cast<double>(state.range(1)) / 1000.0;
  SimConfig config = make_config(n, stay);
  config.engine = which;

  Xoshiro256 rng(2001);
  const Field field(config.field_width, config.field_height, config.boundary);
  std::vector<Vec2> positions = random_placement(n, field, rng);
  BatteryBank batteries(static_cast<std::size_t>(n), config.initial_energy);
  MobilityParams params;
  params.stay_probability = config.stay_probability;
  params.jump_min = config.jump_min;
  params.jump_max = config.jump_max;
  const auto mobility = make_mobility(MobilityKind::kPaperJump, params);
  const auto engine = make_lifetime_engine(config);

  // Prime: the first update pays one-off initialization (grid + graph +
  // first full CDS over every tile); two more reach the steady state. More
  // priming buys nothing at these sizes and costs seconds per row.
  for (int i = 0; i < 3; ++i) {
    run_interval(*engine, config, positions, batteries, *mobility, field,
                 rng);
  }
  for (auto _ : state) {
    run_interval(*engine, config, positions, batteries, *mobility, field,
                 rng);
    benchmark::DoNotOptimize(engine->gateways());
  }
}

void BM_IntervalTiled(benchmark::State& state) {
  bench_engine(state, SimEngine::kTiled);
}

void BM_IntervalFlatIncremental(benchmark::State& state) {
  bench_engine(state, SimEngine::kIncremental);
}

void BM_IntervalFlatFull(benchmark::State& state) {
  bench_engine(state, SimEngine::kFullRebuild);
}

// Second argument: stay probability in per-mille. At 950 (micro_engine's
// steady state) ~5% of hosts move per interval, which at these sizes dirties
// essentially every tile — the tiled engine degrades to a sharded full
// recompute, and the per-mover-localized incremental engine wins on one
// core. At 999 the mover count drops enough that most tiles stay clean and
// tile locality pays. Both regimes are committed for honesty.
BENCHMARK(BM_IntervalTiled)->Args({10000, 950});
BENCHMARK(BM_IntervalTiled)->Args({100000, 950})->Iterations(3);
BENCHMARK(BM_IntervalTiled)->Args({100000, 999})->Iterations(3);
BENCHMARK(BM_IntervalTiled)->Args({1000000, 950})->Iterations(2);
BENCHMARK(BM_IntervalFlatIncremental)->Args({10000, 950});
BENCHMARK(BM_IntervalFlatIncremental)->Args({100000, 950})->Iterations(3);
BENCHMARK(BM_IntervalFlatIncremental)->Args({100000, 999})->Iterations(3);
BENCHMARK(BM_IntervalFlatFull)->Args({10000, 950});
BENCHMARK(BM_IntervalFlatFull)->Args({100000, 950})->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
