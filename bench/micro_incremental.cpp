// Microbenchmark of the locality claim: applying a small topology delta via
// IncrementalCds vs. recomputing the gateway set from scratch. The paper's
// Section 2.2 argues only hosts near a change re-decide their status; this
// quantifies the speedup on a large network.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/incremental.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

namespace {

using namespace pacds;

Graph make_graph(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const double side = std::sqrt(static_cast<double>(n) / 50.0) * 100.0;
  const Field field(side, side);
  return build_udg(random_placement(n, field, rng), kPaperRadius);
}

/// Finds an edge to toggle deterministically.
std::pair<NodeId, NodeId> some_edge(const Graph& g) { return g.edges().front(); }

void BM_IncrementalDelta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  IncrementalCds inc(make_graph(n, 7), RuleSet::kID);
  const auto [u, v] = some_edge(inc.graph());
  bool present = true;
  for (auto _ : state) {
    EdgeDelta delta;
    if (present) {
      delta.removed.emplace_back(u, v);
    } else {
      delta.added.emplace_back(u, v);
    }
    inc.apply_delta(delta);
    present = !present;
    benchmark::DoNotOptimize(inc.gateways());
  }
}
BENCHMARK(BM_IncrementalDelta)->Arg(200)->Arg(800)->Arg(2000);

void BM_FullRecompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = make_graph(n, 7);
  const auto [u, v] = some_edge(g);
  CdsOptions options;
  options.strategy = Strategy::kSimultaneous;  // same semantics as the
                                               // incremental updater
  bool present = true;
  for (auto _ : state) {
    if (present) {
      g.remove_edge(u, v);
    } else {
      g.add_edge(u, v);
    }
    present = !present;
    benchmark::DoNotOptimize(compute_cds(g, RuleSet::kID, {}, options));
  }
}
BENCHMARK(BM_FullRecompute)->Arg(200)->Arg(800)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
