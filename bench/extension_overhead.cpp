// Extension experiment: the paper's locality claim measured in protocol
// messages. Per update interval we count how many hosts must re-broadcast
// their neighbor list (adjacency changed) and how many must announce a
// gateway-status flip, and compare against a naive protocol that re-floods
// everything (2n messages/interval). Swept over mobility intensity and
// model.

#include <iostream>

#include "io/table.hpp"
#include "net/rng.hpp"
#include "sim/experiment.hpp"
#include "sim/overhead.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 20);
  std::cout << "== Extension: maintenance overhead (messages/interval) ==\n"
            << "localized protocol vs full re-flood baseline (2n msgs); "
            << trials << " runs of 50 intervals each, n = 50\n\n";

  std::cout << "(a) sweep over the paper model's stay probability c:\n";
  TextTable by_c({"c", "neighbor msgs", "status msgs", "localized/interval",
                  "vs global", "saving%"});
  for (const double c : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    Welford nbr, status, ratio;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      OverheadConfig config;
      config.mobility_params.stay_probability = c;
      const MaintenanceOverhead r = measure_maintenance_overhead(
          config, derive_seed(0x0fead, trial));
      nbr.add(static_cast<double>(r.neighbor_msgs) /
              static_cast<double>(r.intervals));
      status.add(static_cast<double>(r.status_msgs) /
                 static_cast<double>(r.intervals));
      ratio.add(r.ratio());
    }
    by_c.add_row({TextTable::fmt(c, 2), TextTable::fmt(nbr.mean(), 1),
                  TextTable::fmt(status.mean(), 1),
                  TextTable::fmt(nbr.mean() + status.mean(), 1), "100.0",
                  TextTable::fmt(100.0 * (1.0 - ratio.mean()), 1)});
  }
  by_c.print(std::cout);

  std::cout << "\n(b) sweep over mobility models (default parameters):\n";
  TextTable by_model({"mobility", "localized/interval", "saving%"});
  by_model.set_align(0, Align::kLeft);
  for (const MobilityKind kind :
       {MobilityKind::kStatic, MobilityKind::kPaperJump,
        MobilityKind::kRandomWalk, MobilityKind::kRandomWaypoint,
        MobilityKind::kGaussMarkov}) {
    Welford per_interval, ratio;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      OverheadConfig config;
      config.mobility_kind = kind;
      const MaintenanceOverhead r = measure_maintenance_overhead(
          config, derive_seed(0x0feae, trial));
      per_interval.add(static_cast<double>(r.localized_total()) /
                       static_cast<double>(r.intervals));
      ratio.add(r.ratio());
    }
    by_model.add_row({to_string(kind), TextTable::fmt(per_interval.mean(), 1),
                      TextTable::fmt(100.0 * (1.0 - ratio.mean()), 1)});
  }
  by_model.print(std::cout);
  return 0;
}
