// Reproduces paper Figure 13: network lifetime with total bypass traffic
// proportional to the number of host pairs (d = N(N-1)/2 / (10 |G'|)).

#include "fig_common.hpp"

int main() {
  const pacds::bench::FigureSpec spec{
      "Figure 13",
      "network lifetime (intervals to first death) vs. number of hosts",
      "EL1 clearly the winner; gap over ID grows with network size",
      pacds::DrainModel::kQuadraticTotal,
      pacds::SweepMetric::kLifetime,
      "fig13_lifetime_quadratic.csv",
  };
  return pacds::bench::run_figure(spec);
}
