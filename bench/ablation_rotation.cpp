// Ablation D: isolating the paper's actual contribution — do *energy* keys
// prolong network lifetime compared to static keys, when everything else
// (rule machinery, Rule 2 form, strategy) is held fixed?
//
// The headline figures compare schemes that differ in two ways at once:
// priority key AND Rule 2 form (ID uses the simple form, the others the
// refined form), so set-size effects are entangled with rotation effects.
// Here every column uses the refined rules; only the key changes:
//
//   id-refined  : key = id            (static selection, refined rules)
//   nd-refined  : key = (degree, id)  (static selection = the ND scheme)
//   EL1         : key = (energy, id)
//   EL2         : key = (energy, degree, id)
//
// Expectation: the energy-keyed columns clearly outlive the size-matched
// static columns — the rotation benefit the paper attributes to EL rules.

#include <iostream>
#include <optional>

#include "io/table.hpp"
#include "sim/montecarlo.hpp"
#include "sim/threadpool.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 40);

  struct Column {
    const char* label;
    KeyKind key;
  };
  constexpr Column kColumns[] = {
      {"id-refined", KeyKind::kId},
      {"nd-refined", KeyKind::kDegreeId},
      {"EL1", KeyKind::kEnergyId},
      {"EL2", KeyKind::kEnergyDegreeId},
  };

  std::cout << "== Ablation D: rotation effect of energy keys ==\n"
            << "lifetime under d = N/|G'|, refined rules everywhere, only "
               "the key differs; "
            << trials << " paired trials per point\n\n";

  ThreadPool pool;
  for (const DrainModel model :
       {DrainModel::kLinearTotal, DrainModel::kQuadraticTotal}) {
    TextTable table({"n", "id-refined", "|G'|", "nd-refined", "|G'|", "EL1",
                     "|G'|", "EL2", "|G'|"});
    for (const int n : {30, 50, 80}) {
      std::vector<std::string> row{TextTable::fmt(n)};
      for (const Column& column : kColumns) {
        SimConfig config;
        config.n_hosts = n;
        config.drain_model = model;
        config.custom_key = column.key;
        config.custom_rule2_form = Rule2Form::kRefined;
        const LifetimeSummary s = run_lifetime_trials(
            config, trials, 0xd07a7e ^ static_cast<std::uint64_t>(n), &pool);
        row.push_back(TextTable::fmt(s.intervals.mean));
        row.push_back(TextTable::fmt(s.avg_gateways.mean, 1));
      }
      table.add_row(std::move(row));
    }
    std::cout << "drain model: " << to_string(model) << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
