// Microbenchmarks of unit-disk graph construction: the naive O(n^2) builder
// vs. the grid spatial hash, at constant host density.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "net/rng.hpp"
#include "net/topology.hpp"
#include "net/udg.hpp"

namespace {

using namespace pacds;

std::vector<Vec2> make_points(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const double side = std::sqrt(static_cast<double>(n) / 50.0) * 100.0;
  const Field field(side, side);
  return random_placement(n, field, rng);
}

void BM_BuildNaive(benchmark::State& state) {
  const auto pts = make_points(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_udg(pts, kPaperRadius, UdgMethod::kNaive));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildNaive)->Arg(100)->Arg(400)->Arg(1000)->Arg(2000);

void BM_BuildGrid(benchmark::State& state) {
  const auto pts = make_points(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_udg(pts, kPaperRadius, UdgMethod::kGrid));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildGrid)->Arg(100)->Arg(400)->Arg(1000)->Arg(2000)->Arg(5000);

void BM_GridIndexConstruction(benchmark::State& state) {
  const auto pts = make_points(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    SpatialGrid grid(pts, kPaperRadius);
    benchmark::DoNotOptimize(grid);
  }
}
BENCHMARK(BM_GridIndexConstruction)->Arg(400)->Arg(2000);

void BM_GridQuery(benchmark::State& state) {
  const auto pts = make_points(2000, 3);
  const SpatialGrid grid(pts, kPaperRadius);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.query(pts[i % pts.size()], kPaperRadius,
                   static_cast<NodeId>(i % pts.size())));
    ++i;
  }
}
BENCHMARK(BM_GridQuery);

}  // namespace

BENCHMARK_MAIN();
