// Microbenchmarks of the CDS pipeline: marking process, rule passes, and
// the full compute_cds per scheme, across network sizes. Host density is
// held constant (the field scales with n) so per-node neighborhood sizes
// stay realistic as n grows.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/cds.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

namespace {

using namespace pacds;

struct Instance {
  Graph graph;
  std::vector<double> energy;
};

/// Constant-density random unit-disk network with ~12 expected neighbors.
Instance make_instance(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const double side = std::sqrt(static_cast<double>(n) / 50.0) * 100.0;
  const Field field(side, side);
  Instance inst;
  inst.graph = build_udg(random_placement(n, field, rng), kPaperRadius);
  for (int i = 0; i < n; ++i) {
    inst.energy.push_back(static_cast<double>(rng.uniform_int(1, 5)));
  }
  return inst;
}

void BM_MarkingProcess(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(marking_process(inst.graph));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MarkingProcess)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void BM_Rule1Pass(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 2);
  const DynBitset marked = marking_process(inst.graph);
  const PriorityKey key(KeyKind::kId, inst.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simultaneous_rule1_pass(inst.graph, key, marked));
  }
}
BENCHMARK(BM_Rule1Pass)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_Rule2RefinedPass(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 3);
  const DynBitset marked = marking_process(inst.graph);
  const PriorityKey key(KeyKind::kDegreeId, inst.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simultaneous_rule2_pass(
        inst.graph, key, Rule2Form::kRefined, marked));
  }
}
BENCHMARK(BM_Rule2RefinedPass)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

template <RuleSet kScheme>
void BM_ComputeCds(benchmark::State& state) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_cds(inst.graph, kScheme, inst.energy));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeCds<RuleSet::kNR>)->Arg(100)->Arg(400);
BENCHMARK(BM_ComputeCds<RuleSet::kID>)->Arg(100)->Arg(400);
BENCHMARK(BM_ComputeCds<RuleSet::kND>)->Arg(100)->Arg(400);
BENCHMARK(BM_ComputeCds<RuleSet::kEL1>)->Arg(100)->Arg(400);
BENCHMARK(BM_ComputeCds<RuleSet::kEL2>)->Arg(100)->Arg(400);

void BM_SequentialVsSimultaneous(benchmark::State& state) {
  const auto inst = make_instance(200, 5);
  CdsOptions options;
  options.strategy = static_cast<Strategy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_cds(inst.graph, RuleSet::kND, {}, options));
  }
}
BENCHMARK(BM_SequentialVsSimultaneous)
    ->Arg(static_cast<int>(static_cast<std::uint8_t>(Strategy::kSimultaneous)))
    ->Arg(static_cast<int>(static_cast<std::uint8_t>(Strategy::kSequential)))
    ->Arg(static_cast<int>(static_cast<std::uint8_t>(Strategy::kVerified)));

}  // namespace

BENCHMARK_MAIN();
