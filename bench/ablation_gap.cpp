// Ablation G: optimality gap past the bitmask cap. The branch-and-bound
// solver (baselines/bb_mcds) proves exact optima at n = 20..60 on the
// paper's density, where ablation_approx's exhaustive search (n <= 14)
// cannot reach — so this sweep measures the approximation ratios of the
// distributed schemes (ID/ND/EL1/EL2), the centralized heuristics and the
// (2,2)-connected backbone at realistic sizes. `pacds gap --metrics`
// produces the same measurement as a schema-v1 JSONL stream for
// bench_report --gap-report.

#include <cstdint>
#include <iostream>

#include "baselines/bb_mcds.hpp"
#include "baselines/cds22.hpp"
#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "baselines/tree_cds.hpp"
#include "core/cds.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 10);
  std::cout << "== Ablation G: optimality gap vs branch-and-bound optimum ==\n"
            << "size / proven optimum on random connected unit-disk "
            << "networks; " << trials << " networks per point\n\n";

  TextTable table({"n", "radius", "solved", "opt", "ID", "ND", "EL1", "EL2",
                   "greedy", "MIS", "tree", "cds22"});
  for (const auto& [n, radius] :
       {std::pair{20, 25.0}, {40, 25.0}, {60, 25.0}, {60, 40.0}}) {
    Welford opt, id, nd, el1, el2, greedy, mis, tree, cds22;
    std::size_t attempted = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      Xoshiro256 rng(derive_seed(0x6a9, trial * 733 +
                                            static_cast<std::uint64_t>(
                                                n * 100 + radius)));
      const auto placed = random_connected_placement(n, Field::paper_field(),
                                                     radius, rng, 5000);
      if (!placed) continue;
      const Graph& g = placed->graph;
      ++attempted;
      std::vector<double> energy;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        energy.push_back(static_cast<double>(rng.uniform_int(1, 100)));
      }
      const auto exact = bb_min_cds(g);
      if (!exact || exact->count() == 0) continue;
      const auto optimum = static_cast<double>(exact->count());
      opt.add(optimum);
      id.add(static_cast<double>(
                 compute_cds(g, RuleSet::kID, energy).gateway_count) /
             optimum);
      nd.add(static_cast<double>(
                 compute_cds(g, RuleSet::kND, energy).gateway_count) /
             optimum);
      el1.add(static_cast<double>(
                  compute_cds(g, RuleSet::kEL1, energy).gateway_count) /
              optimum);
      el2.add(static_cast<double>(
                  compute_cds(g, RuleSet::kEL2, energy).gateway_count) /
              optimum);
      greedy.add(static_cast<double>(greedy_mcds(g).count()) / optimum);
      mis.add(static_cast<double>(mis_cds(g).count()) / optimum);
      tree.add(static_cast<double>(bfs_tree_cds(g).count()) / optimum);
      cds22.add(static_cast<double>(greedy_cds22(g).backbone.count()) /
                optimum);
    }
    table.add_row({TextTable::fmt(n), TextTable::fmt(radius, 0),
                   std::to_string(opt.count()) + "/" +
                       std::to_string(attempted),
                   TextTable::fmt(opt.mean()), TextTable::fmt(id.mean()),
                   TextTable::fmt(nd.mean()), TextTable::fmt(el1.mean()),
                   TextTable::fmt(el2.mean()), TextTable::fmt(greedy.mean()),
                   TextTable::fmt(mis.mean()), TextTable::fmt(tree.mean()),
                   TextTable::fmt(cds22.mean())});
  }
  table.print(std::cout);
  std::cout << "\n(values are mean size/optimum over proven instances; "
               "1.00 = optimal; 'solved' counts instances the solver proved "
               "within its node budget)\n";
  return 0;
}
