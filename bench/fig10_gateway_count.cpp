// Reproduces paper Figure 10: average number of gateway hosts vs. network
// size for NR / ID / ND / EL1 / EL2.
//
// Interpretation note (see EXPERIMENTS.md): sizes are measured on fresh
// random connected placements with the paper's uniform initial energy
// level, where the EL keys are fully tied — EL1 degenerates to id-keyed
// refined rules and EL2 to the ND rules, which is exactly how the paper's
// Figure 10 can rank "ND and EL2 the best". A second table reports sizes
// averaged over the energy-evolving lifetime runs (d = N/|G'|), where the
// EL schemes actively rotate.
//
// Knobs: PACDS_TRIALS (default 60), PACDS_SEED, PACDS_QUICK.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/cds.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"
#include "sim/threadpool.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 60);
  const auto seed =
      static_cast<std::uint64_t>(env_size_t("PACDS_SEED", 0x5eed2001ULL));
  const char* quick = std::getenv("PACDS_QUICK");
  const bool use_quick =
      quick != nullptr && *quick != '\0' && std::string(quick) != "0";
  const std::vector<int> hosts =
      use_quick ? quick_host_counts() : paper_host_counts();

  std::cout << "== Figure 10: average number of gateway hosts vs. number of "
               "hosts ==\n"
            << "paper expectation: NR far above all rules; ND and EL2 the "
               "best (smallest)\n"
            << "trials/point: " << trials << "\n\n"
            << "(a) static snapshots, uniform initial energy (the paper's "
               "initial condition):\n";

  TextTable table({"n", "NR", "ID", "ND", "EL1", "EL2"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const int n : hosts) {
    Welford acc[5];
    for (std::size_t trial = 0; trial < trials; ++trial) {
      Xoshiro256 rng(derive_seed(seed, trial * 1009 +
                                           static_cast<std::uint64_t>(n)));
      const auto placed = random_connected_placement(
          n, Field::paper_field(), kPaperRadius, rng, 2000);
      if (!placed) continue;
      const std::vector<double> uniform(static_cast<std::size_t>(n), 100.0);
      std::size_t i = 0;
      for (const RuleSet rs : kAllRuleSets) {
        acc[i++].add(static_cast<double>(
            compute_cds(placed->graph, rs, uniform).gateway_count));
      }
    }
    std::vector<std::string> row{TextTable::fmt(n)};
    for (const Welford& a : acc) row.push_back(TextTable::fmt(a.mean()));
    csv_rows.push_back(row);
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  if (write_csv_file("fig10_gateway_count.csv",
                     {"n", "NR", "ID", "ND", "EL1", "EL2"}, csv_rows)) {
    std::cout << "wrote fig10_gateway_count.csv\n";
  }

  std::cout << "\n(b) per-interval averages inside the energy-evolving "
               "lifetime runs (d = N/|G'|):\n";
  SweepConfig sweep;
  sweep.host_counts = hosts;
  sweep.schemes = {RuleSet::kNR, RuleSet::kID, RuleSet::kND, RuleSet::kEL1,
                   RuleSet::kEL2};
  sweep.trials = trials / 3 + 1;
  sweep.base_seed = seed;
  sweep.base.drain_model = DrainModel::kLinearTotal;
  ThreadPool pool;
  sweep_table(run_sweep(sweep, &pool), SweepMetric::kGatewayCount)
      .print(std::cout);
  return 0;
}
