// Ablation B: contribution of each reduction rule to CDS size — Rule 1
// alone, Rule 2 alone, both — and the simple vs. refined Rule 2 forms.
// Sizes averaged over random connected unit-disk networks (sequential
// strategy, so every configuration yields a valid CDS).

#include <iostream>
#include <vector>

#include "core/cds.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

namespace {

using namespace pacds;

struct Variant {
  const char* label;
  bool rule1;
  bool rule2;
  Rule2Form form;
};

constexpr Variant kVariants[] = {
    {"marking only", false, false, Rule2Form::kSimple},
    {"rule1 only", true, false, Rule2Form::kSimple},
    {"rule2 simple", false, true, Rule2Form::kSimple},
    {"rule2 refined", false, true, Rule2Form::kRefined},
    {"both (simple R2)", true, true, Rule2Form::kSimple},
    {"both (refined R2)", true, true, Rule2Form::kRefined},
};

}  // namespace

int main() {
  const std::size_t trials = env_size_t("PACDS_TRIALS", 60);
  std::cout << "== Ablation B: which rule does the shrinking ==\n"
            << "mean CDS size per rule configuration (sequential strategy), "
            << trials << " networks per point\n\n";

  for (const KeyKind kind : {KeyKind::kId, KeyKind::kDegreeId}) {
    TextTable table({"variant", "n=20", "n=50", "n=80"});
    std::vector<std::vector<double>> means(std::size(kVariants));
    for (const int n : {20, 50, 80}) {
      std::vector<Welford> acc(std::size(kVariants));
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Xoshiro256 rng(derive_seed(0xb0b, trial * 977 +
                                              static_cast<std::uint64_t>(n)));
        const auto placed = random_connected_placement(
            n, Field::paper_field(), kPaperRadius, rng, 2000);
        if (!placed) continue;
        for (std::size_t v = 0; v < std::size(kVariants); ++v) {
          RuleConfig config;
          config.use_rule1 = kVariants[v].rule1;
          config.use_rule2 = kVariants[v].rule2;
          config.rule2_form = kVariants[v].form;
          config.strategy = Strategy::kSequential;
          const CdsResult r =
              compute_cds_custom(placed->graph, kind, config);
          acc[v].add(static_cast<double>(r.gateway_count));
        }
      }
      for (std::size_t v = 0; v < std::size(kVariants); ++v) {
        means[v].push_back(acc[v].mean());
      }
    }
    for (std::size_t v = 0; v < std::size(kVariants); ++v) {
      table.add_row({kVariants[v].label, TextTable::fmt(means[v][0]),
                     TextTable::fmt(means[v][1]), TextTable::fmt(means[v][2])});
    }
    table.set_align(0, Align::kLeft);
    std::cout << "priority key: " << to_string(kind) << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
