// Reproduces paper Figure 11: average number of update intervals until the
// first host dies, with constant total bypass traffic (d = 2/|G'|).

#include "fig_common.hpp"

int main() {
  const pacds::bench::FigureSpec spec{
      "Figure 11",
      "network lifetime (intervals to first death) vs. number of hosts",
      "ND, EL1 and EL2 stay very close; ID clearly the worst",
      pacds::DrainModel::kConstantTotal,
      pacds::SweepMetric::kLifetime,
      "fig11_lifetime_const.csv",
  };
  return pacds::bench::run_figure(spec);
}
