// Extension experiment: robustness of the distributed protocol to message
// loss. Every broadcast reaches each neighbor independently with
// probability 1 - loss; periodic beaconing (repeated HELLO / neighbor-list
// rounds) is the standard mitigation. Reports how often hosts decide a
// different gateway status than the reliable execution, and whether the
// resulting set is still a valid CDS.

#include <iostream>

#include "dist/protocol.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 25);
  std::cout << "== Extension: protocol robustness to message loss ==\n"
            << "n = 40, ND scheme; " << trials
            << " networks per point; disagreements vs reliable execution\n\n";

  TextTable table({"loss", "beacons", "wrong hosts", "still valid CDS %",
                   "msgs/host"});
  for (const double loss : {0.05, 0.15, 0.30}) {
    for (const int repeats : {1, 3, 8}) {
      Welford wrong, msgs;
      std::size_t valid = 0;
      std::size_t cases = 0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Xoshiro256 rng(derive_seed(0x105e, trial * 131 +
                                              static_cast<std::uint64_t>(
                                                  loss * 1000 + repeats)));
        const auto placed = random_connected_placement(
            40, Field::paper_field(), kPaperRadius, rng, 2000);
        if (!placed) continue;
        const dist::LossyProtocolResult r = dist::run_lossy_protocol(
            placed->graph, RuleSet::kND, loss, repeats,
            derive_seed(0x105f, trial));
        wrong.add(static_cast<double>(r.status_disagreements));
        msgs.add(static_cast<double>(r.protocol.total_msgs()) / 40.0);
        if (r.valid_cds) ++valid;
        ++cases;
      }
      table.add_row(
          {TextTable::fmt(loss, 2), TextTable::fmt(repeats),
           TextTable::fmt(wrong.mean()),
           TextTable::fmt(cases == 0 ? 0.0
                                     : 100.0 * static_cast<double>(valid) /
                                           static_cast<double>(cases),
                          1),
           TextTable::fmt(msgs.mean(), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(beaconing buys correctness with messages: the classic "
               "reliability/overhead trade.\nNote the \"valid CDS\" column is "
               "depressed even at low loss because the distributed\nprotocol "
               "realizes the paper's SYNCHRONOUS semantics, whose refined "
               "Rule 2 is itself\nunsafe on ~half of these instances — see "
               "ablation_strategies.)\n";
  return 0;
}
