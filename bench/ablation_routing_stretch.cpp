// Ablation C: the routing cost of smaller backbones. Property 3 guarantees
// the raw marking output preserves shortest paths; the reduction rules trade
// that for size. This harness measures mean/max path stretch of
// dominating-set routing under each scheme.

#include <iostream>
#include <vector>

#include "core/cds.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "routing/stretch.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 30);
  std::cout << "== Ablation C: routing path stretch per scheme ==\n"
            << "mean over " << trials
            << " random connected networks; sequential strategy\n"
            << "expectation: NR = 1.00 exactly (Property 3); "
               "smaller backbones stretch slightly\n\n";

  for (const int n : {20, 50, 80}) {
    TextTable table(
        {"scheme", "CDS size", "mean stretch", "max stretch", "undeliverable"});
    for (const RuleSet rs : kAllRuleSets) {
      Welford size;
      Welford mean_stretch;
      Welford max_stretch;
      std::size_t undeliverable = 0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Xoshiro256 rng(derive_seed(0x57e7c4, trial * 313 +
                                                 static_cast<std::uint64_t>(n)));
        const auto placed = random_connected_placement(
            n, Field::paper_field(), kPaperRadius, rng, 2000);
        if (!placed) continue;
        std::vector<double> energy;
        for (int i = 0; i < n; ++i) {
          energy.push_back(static_cast<double>(rng.uniform_int(1, 5)));
        }
        const CdsResult cds = compute_cds(placed->graph, rs, energy);
        const StretchStats stats =
            measure_stretch(placed->graph, cds.gateways);
        size.add(static_cast<double>(cds.gateway_count));
        mean_stretch.add(stats.mean_stretch);
        max_stretch.add(stats.max_stretch);
        undeliverable += stats.undeliverable;
      }
      table.add_row({to_string(rs), TextTable::fmt(size.mean()),
                     TextTable::fmt(mean_stretch.mean(), 3),
                     TextTable::fmt(max_stretch.mean(), 2),
                     TextTable::fmt(undeliverable)});
    }
    std::cout << "n = " << n << " hosts\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
