#pragma once
// Shared driver for the paper-figure reproductions (Figures 10-13). Each
// figure binary declares a FigureSpec and calls run_figure(); the driver
// sweeps host counts x schemes with the paper's simulation parameters,
// prints the table the figure plots, and writes a CSV next to the binary's
// working directory.
//
// Environment knobs:
//   PACDS_TRIALS       trials per (n, scheme) point   (default 20)
//   PACDS_SEED         base RNG seed                   (default 0x5eed2001)
//   PACDS_QUICK        if set (non-zero), use a 4-point host grid
//   PACDS_STRATEGY     rule strategy: "sequential" (default, safe),
//                      "simultaneous" (paper's synchronous semantics),
//                      or "verified"

#include <string>

#include "energy/traffic.hpp"
#include "sim/experiment.hpp"

namespace pacds::bench {

/// Declarative description of one figure reproduction.
struct FigureSpec {
  const char* id;           ///< e.g. "Figure 11"
  const char* title;        ///< what the paper plots
  const char* expectation;  ///< the qualitative claim to check against
  DrainModel model;         ///< gateway drain model for this figure
  SweepMetric metric;       ///< lifetime vs gateway count
  const char* csv_name;     ///< output CSV file name
};

/// Runs the sweep, prints the table (means with 95% CIs), writes the CSV.
/// Returns a process exit code.
int run_figure(const FigureSpec& spec);

}  // namespace pacds::bench
