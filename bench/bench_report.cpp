// Assembles BENCH_lifetime.json from google-benchmark JSON outputs using the
// repo's own JsonWriter/parse_json, so the committed numbers share one
// serialization path with every other machine-readable artifact (and inherit
// its round-trip double formatting). Replaces the inline python step that
// tools/bench_json.sh used to carry.
//
// usage: bench_report [--strict] <micro_cds.json> <micro_engine.json>
//                     <micro_parallel.json> <micro_tiles.json>
//                     <micro_simd.json> <bench_serve.json> <output.json>
//        bench_report [--strict] --validate-jsonl <metrics.jsonl | ->
//        bench_report [--strict] --gap-report <gap.jsonl | ->
//
// Regeneration is honest about coverage: a speedup row whose input rows are
// missing warns on stderr instead of silently disappearing, and any key the
// previous file carried that the fresh inputs no longer produce is reported
// as stale (nothing is carried forward except the "baseline" section).
// --strict turns those warnings into a nonzero exit, so CI's bench smoke
// path fails on a stale or incomplete report instead of shipping it.
//
// The output's "baseline" section, when present in an existing output file,
// is preserved verbatim so before/after comparisons survive regeneration.
//
// --validate-jsonl checks a metrics stream (pacds sim/sweep --metrics) line
// by line against the schema v1 envelope: every line parses as a JSON
// object carrying a "type" string and numeric "schema", no number anywhere
// in a record is non-finite, and the stream holds at least one run_manifest
// and one interval record. Prints per-type record counts; exits 1 on any
// violation. CI's faults smoke job runs it over
// `pacds sim --faults ... --metrics -`.
//
// --gap-report renders the approximation-ratio table from a `pacds gap`
// JSONL stream (gap_manifest + gap_point records): per (n, radius) point it
// averages size/optimum of every heuristic over the instances the
// branch-and-bound solver proved, and reports how many instances stayed
// unproven. CI's gap smoke job pipes a tiny grid through it.

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/simd.hpp"
#include "io/json.hpp"
#include "io/json_parse.hpp"
#include "io/table.hpp"
#include "obs/validate.hpp"

namespace {

using pacds::JsonValue;
using pacds::JsonWriter;
using pacds::parse_json;

/// Warnings issued during assembly; --strict turns a nonzero count into a
/// nonzero exit.
int warning_count = 0;

void warn(const std::string& message) {
  ++warning_count;
  std::cerr << "warning: " << message << "\n";
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

double time_unit_scale(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  throw std::runtime_error("unknown time_unit '" + unit + "'");
}

/// name -> ns/op (rounded to 0.1 ns), in benchmark order.
using NsPerOp = std::vector<std::pair<std::string, double>>;

NsPerOp ns_per_op(const std::string& path) {
  const JsonValue doc = parse_json(read_file(path));
  const JsonValue* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr) {
    throw std::runtime_error(path + ": no \"benchmarks\" array");
  }
  NsPerOp out;
  for (const JsonValue& bench : benchmarks->as_array()) {
    const JsonValue* name = bench.find("name");
    const JsonValue* real_time = bench.find("real_time");
    if (name == nullptr || real_time == nullptr) continue;
    const JsonValue* unit = bench.find("time_unit");
    const double scale =
        unit != nullptr ? time_unit_scale(unit->as_string()) : 1.0;
    out.emplace_back(name->as_string(),
                     std::round(real_time->as_number() * scale * 10.0) / 10.0);
  }
  return out;
}

double lookup(const NsPerOp& table, const std::string& name) {
  for (const auto& [key, value] : table) {
    if (key == name) return value;
  }
  return 0.0;
}

/// lookup that also accepts google-benchmark's pinned-iteration decoration
/// ("<name>/iterations:N"), which Benchmark::Iterations appends to the name.
double lookup_row(const NsPerOp& table, const std::string& name) {
  for (const auto& [key, value] : table) {
    if (key == name || key.rfind(name + "/iterations:", 0) == 0) return value;
  }
  return 0.0;
}

void write_table(JsonWriter& json, const NsPerOp& table) {
  json.begin_object();
  for (const auto& [name, value] : table) json.key(name).value(value);
  json.end_object();
}

void write_speedup(JsonWriter& json, const std::string& key, double numer,
                   double denom) {
  if (numer <= 0.0 || denom <= 0.0) {
    warn("speedup row '" + key + "' skipped (missing input rows)");
    return;
  }
  json.key(key).value(std::round(numer / denom * 100.0) / 100.0);
}

/// Reports keys the previous file carried in `section` that the fresh run
/// no longer produces — a stale row would otherwise vanish without notice.
void warn_stale(const JsonValue& previous, const std::string& section,
                const NsPerOp& fresh) {
  const JsonValue* old_table = previous.find(section);
  if (old_table == nullptr || !old_table->is_object()) return;
  for (const auto& [key, value] : old_table->as_object()) {
    (void)value;
    bool found = false;
    for (const auto& [name, ns] : fresh) {
      (void)ns;
      if (name == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      warn(section + " key '" + key +
           "' from the previous report has no fresh measurement "
           "(dropped, not carried forward)");
    }
  }
}

/// Schema-envelope check of one metrics JSONL stream ("-" = stdin).
/// Delegates to the shared validator so this tool, the fuzz harness's JSONL
/// oracle and the tests agree on what a well-formed stream is — including
/// the rejection of non-finite numbers (e.g. an overflowing 1e999 literal).
int validate_jsonl(const std::string& path) {
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
  }
  std::istream& in = path == "-" ? std::cin : file;
  const pacds::obs::StreamValidation result =
      pacds::obs::validate_metrics_stream(in);
  std::size_t total = 0;
  for (const auto& [name, count] : result.type_counts) {
    std::cout << name << ": " << count << "\n";
    total += count;
  }
  std::cout << "total: " << total << "\n";
  if (!result.ok) {
    std::cerr << (result.error.rfind("line ", 0) == 0 ? "" : "error: ")
              << result.error << "\n";
    return 1;
  }
  std::cout << "ok\n";
  return 0;
}

/// One (n, radius) cell of the --gap-report table.
struct GapCell {
  double n = 0.0;
  double radius = 0.0;
  std::size_t attempted = 0;  ///< gap_point records seen
  std::size_t proven = 0;     ///< instances with a proven nonzero optimum
  double opt_sum = 0.0;
  // Ratio sums in the heuristic column order below.
  double ratio_sum[8] = {};
};

constexpr const char* kGapColumns[] = {"size_id",     "size_nd",
                                       "size_el1",    "size_el2",
                                       "size_greedy", "size_mis",
                                       "size_tree",   "size_cds22"};

/// Renders the approximation-ratio table from a `pacds gap` JSONL stream.
/// With `strict`, any unproven instance fails the run: CI's smoke grid is
/// sized so the solver always finishes, and a budget exhaustion there means
/// the solver regressed.
int gap_report(const std::string& path, bool strict) {
  std::ifstream file;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
  }
  std::istream& in = path == "-" ? std::cin : file;
  std::vector<GapCell> cells;
  std::string line;
  std::size_t line_no = 0;
  std::size_t manifests = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue record;
    try {
      record = parse_json(line);
    } catch (const std::exception& e) {
      std::cerr << "error: line " << line_no << ": " << e.what() << "\n";
      return 1;
    }
    const JsonValue* type = record.find("type");
    if (type == nullptr || !type->is_string()) {
      std::cerr << "error: line " << line_no << ": missing \"type\"\n";
      return 1;
    }
    if (type->as_string() == "gap_manifest") {
      ++manifests;
      continue;
    }
    if (type->as_string() != "gap_point") continue;
    const JsonValue* n = record.find("n");
    const JsonValue* radius = record.find("radius");
    if (n == nullptr || !n->is_number() || radius == nullptr ||
        !radius->is_number()) {
      std::cerr << "error: line " << line_no << ": gap_point needs numeric "
                << "\"n\" and \"radius\"\n";
      return 1;
    }
    GapCell* cell = nullptr;
    for (GapCell& existing : cells) {
      if (existing.n == n->as_number() &&
          existing.radius == radius->as_number()) {
        cell = &existing;
        break;
      }
    }
    if (cell == nullptr) {
      cells.push_back({n->as_number(), radius->as_number(), 0, 0, 0.0, {}});
      cell = &cells.back();
    }
    ++cell->attempted;
    const JsonValue* optimum = record.find("optimum");
    const JsonValue* proven = record.find("proven");
    if (optimum == nullptr || !optimum->is_number() || proven == nullptr ||
        !proven->as_bool() || optimum->as_number() <= 0.0) {
      continue;  // unproven (or degenerate) instance: excluded from ratios
    }
    const double opt = optimum->as_number();
    double ratios[8];
    bool complete = true;
    for (std::size_t h = 0; h < 8; ++h) {
      const JsonValue* size = record.find(kGapColumns[h]);
      if (size == nullptr || !size->is_number()) {
        complete = false;
        break;
      }
      ratios[h] = size->as_number() / opt;
    }
    if (!complete) {
      std::cerr << "error: line " << line_no
                << ": gap_point missing a size_* column\n";
      return 1;
    }
    ++cell->proven;
    cell->opt_sum += opt;
    for (std::size_t h = 0; h < 8; ++h) cell->ratio_sum[h] += ratios[h];
  }
  if (manifests == 0 || cells.empty()) {
    std::cerr << "error: stream has no gap_manifest + gap_point records "
              << "(generate one with `pacds gap --metrics`)\n";
    return 1;
  }
  pacds::TextTable table({"n", "radius", "solved", "opt", "ID", "ND", "EL1",
                          "EL2", "greedy", "MIS", "tree", "cds22"});
  for (const GapCell& cell : cells) {
    std::vector<std::string> row{
        pacds::TextTable::fmt(cell.n, 0),
        pacds::TextTable::fmt(cell.radius, 0),
        std::to_string(cell.proven) + "/" + std::to_string(cell.attempted)};
    if (cell.proven == 0) {
      row.insert(row.end(), 9, "-");
    } else {
      const auto denom = static_cast<double>(cell.proven);
      row.push_back(pacds::TextTable::fmt(cell.opt_sum / denom));
      for (std::size_t h = 0; h < 8; ++h) {
        row.push_back(pacds::TextTable::fmt(cell.ratio_sum[h] / denom));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "(mean size/optimum over proven instances; 1.00 = optimal)\n";
  for (const GapCell& cell : cells) {
    if (cell.proven < cell.attempted) {
      warn("n=" + pacds::TextTable::fmt(cell.n, 0) + " radius=" +
           pacds::TextTable::fmt(cell.radius, 0) + ": " +
           std::to_string(cell.attempted - cell.proven) +
           " instance(s) unproven within the node budget");
    }
  }
  if (strict && warning_count > 0) {
    std::cerr << "error: --strict and " << warning_count
              << " warning(s) above\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--strict") {
      strict = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() == 2 && args[0] == "--validate-jsonl") {
    // --validate-jsonl already exits nonzero on every violation; --strict is
    // accepted so callers can pass one flag set in both modes.
    return validate_jsonl(args[1]);
  }
  if (args.size() == 2 && args[0] == "--gap-report") {
    return gap_report(args[1], strict);
  }
  if (args.size() != 7) {
    std::cerr << "usage: bench_report [--strict] <cds.json> <engine.json> "
                 "<parallel.json> <tiles.json> <simd.json> <serve.json> "
                 "<output.json>\n"
                 "       bench_report [--strict] --validate-jsonl "
                 "<metrics.jsonl | ->\n"
                 "       bench_report [--strict] --gap-report "
                 "<gap.jsonl | ->\n";
    return 2;
  }
  try {
    const NsPerOp rule_pass = ns_per_op(args[0]);
    const NsPerOp engine = ns_per_op(args[1]);
    const NsPerOp parallel = ns_per_op(args[2]);
    const NsPerOp tiles = ns_per_op(args[3]);
    const NsPerOp simd_pass = ns_per_op(args[4]);
    const NsPerOp serve = ns_per_op(args[5]);
    const std::string out_path = args[6];

    // Preserve the previous baseline section, if the file parses, and
    // diff the previous tables against the fresh measurements so rows that
    // stop being produced are reported rather than silently dropped.
    JsonValue baseline{pacds::JsonObject{}};
    try {
      const JsonValue previous = parse_json(read_file(out_path));
      if (const JsonValue* section = previous.find("baseline")) {
        baseline = *section;
      }
      warn_stale(previous, "rule_pass_ns", rule_pass);
      warn_stale(previous, "engine_interval_ns", engine);
      warn_stale(previous, "parallel_interval_ns", parallel);
      warn_stale(previous, "tiles_interval_ns", tiles);
      warn_stale(previous, "simd_rule_pass_ns", simd_pass);
      warn_stale(previous, "serve_intervals_ns", serve);
    } catch (const std::exception&) {
      // First generation or unreadable previous file: empty baseline.
    }

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    JsonWriter json(out, 2);
    json.begin_object();
    json.key("_comment")
        .value("ns per op; regenerate with: cmake --build build --target "
               "bench_json");
    json.key("baseline");
    write_json(json, baseline);
    json.key("rule_pass_ns");
    write_table(json, rule_pass);
    json.key("engine_interval_ns");
    write_table(json, engine);
    // Thread sweep of the sharded intra-interval pipeline (micro_parallel):
    // BM_ComputeCdsLanes/<n>/<lanes> and BM_IntervalThreads/<n>/<threads>.
    // host_cpus records how many cores the measuring host actually had —
    // speedup is only physically possible beyond 1.
    json.key("parallel_interval_ns");
    write_table(json, parallel);
    // Scaling rows of the tiled engine (micro_tiles): BM_IntervalTiled/<n>
    // at n = 10k/100k/1M, plus the flat incremental engine at the sizes
    // where running it is affordable (the speedup_tiles_* keys below).
    json.key("tiles_interval_ns");
    write_table(json, tiles);
    // Rule passes per simd dispatch level (micro_simd):
    // BM_Rule{1,2Refined}PassSimd/<level>/<n>. simd_dispatch records the
    // level this host resolved at measurement time; the speedup_simd_*
    // rows below divide the scalar row by the best-level row.
    json.key("simd_rule_pass_ns");
    write_table(json, simd_pass);
    // Serve-layer multiplexing (bench_serve): BM_ServeIntervals/<K> is one
    // request batch advancing K resident tenants one interval each, through
    // the full parse -> schedule -> compute -> serialize path. The derived
    // serve_intervals_per_sec_k<K> rows below are K * 1e9 / ns_per_op.
    json.key("serve_intervals_ns");
    write_table(json, serve);
    json.key("simd_dispatch")
        .value(pacds::simd::to_string(pacds::simd::active_level()));
    json.key("host_cpus")
        .value(static_cast<int>(std::thread::hardware_concurrency()));
    for (const int stay : {98, 95}) {
      const std::string suffix = "/800/" + std::to_string(stay);
      write_speedup(json,
                    "speedup_incremental_n800_stay" + std::to_string(stay),
                    lookup(engine, "BM_IntervalFullRebuild" + suffix),
                    lookup(engine, "BM_IntervalIncremental" + suffix));
    }
    for (const int n : {400, 800}) {
      const std::string stem = "BM_IntervalThreads/" + std::to_string(n);
      write_speedup(json, "speedup_threads8_n" + std::to_string(n),
                    lookup(parallel, stem + "/1"),
                    lookup(parallel, stem + "/8"));
    }
    // Scalar vs the host's best vector level on the same instance; only
    // meaningful (and only emitted) when a vector level exists.
    if (pacds::simd::detect_best() != pacds::simd::Level::kScalar) {
      const std::string best = pacds::simd::to_string(pacds::simd::detect_best());
      for (const int n : {100, 400}) {
        const std::string arg = "/" + std::to_string(n);
        write_speedup(json, "speedup_simd_rule1_n" + std::to_string(n),
                      lookup(simd_pass, "BM_Rule1PassSimd/scalar" + arg),
                      lookup(simd_pass, "BM_Rule1PassSimd/" + best + arg));
        write_speedup(json, "speedup_simd_rule2_n" + std::to_string(n),
                      lookup(simd_pass, "BM_Rule2RefinedPassSimd/scalar" + arg),
                      lookup(simd_pass, "BM_Rule2RefinedPassSimd/" + best + arg));
      }
    }
    // Tiled vs both flat engines at matched n and stay probability (950 and
    // 999 per-mille — see micro_tiles.cpp for why both regimes matter).
    for (const int n : {10000, 100000}) {
      for (const int stay : {950, 999}) {
        const std::string suffix =
            "/" + std::to_string(n) + "/" + std::to_string(stay);
        const std::string tag =
            "_n" + std::to_string(n) + "_stay" + std::to_string(stay);
        write_speedup(json, "speedup_tiles_vs_incremental" + tag,
                      lookup_row(tiles, "BM_IntervalFlatIncremental" + suffix),
                      lookup_row(tiles, "BM_IntervalTiled" + suffix));
        write_speedup(json, "speedup_tiles_vs_full" + tag,
                      lookup_row(tiles, "BM_IntervalFlatFull" + suffix),
                      lookup_row(tiles, "BM_IntervalTiled" + suffix));
      }
    }
    for (const int tenants : {1, 4, 16}) {
      std::string row = "BM_ServeIntervals/";
      row += std::to_string(tenants);
      const double ns = lookup_row(serve, row);
      if (ns <= 0.0) {
        warn("serve row '" + row + "' missing; intervals/sec not emitted");
        continue;
      }
      json.key("serve_intervals_per_sec_k" + std::to_string(tenants))
          .value(std::round(tenants * 1e9 / ns * 10.0) / 10.0);
    }
    json.end_object();
    out << "\n";
    std::cout << "wrote " << out_path << "\n";
    if (strict && warning_count > 0) {
      std::cerr << "error: --strict and " << warning_count
                << " warning(s) above\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_report: " << e.what() << "\n";
    return 1;
  }
}
