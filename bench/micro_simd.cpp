// Rule-pass microbenchmarks swept across the simd dispatch levels the host
// supports: the same constant-density instances as micro_cds, each pass run
// once per level via simd::set_level. bench_report divides the scalar row
// by the best-level row to produce the speedup_simd_* entries, so names
// embed the level: BM_Rule2RefinedPassSimd/<level>/<n>.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/cds.hpp"
#include "core/simd.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

namespace {

using namespace pacds;

struct Instance {
  Graph graph;
  DynBitset marked;
};

/// Constant-density random unit-disk network with ~12 expected neighbors
/// (same construction as micro_cds so rows are comparable across binaries).
Instance make_instance(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const double side = std::sqrt(static_cast<double>(n) / 50.0) * 100.0;
  const Field field(side, side);
  Instance inst;
  inst.graph = build_udg(random_placement(n, field, rng), kPaperRadius);
  inst.marked = marking_process(inst.graph);
  return inst;
}

void rule1_pass_at(benchmark::State& state, simd::Level level) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 2);
  const PriorityKey key(KeyKind::kId, inst.graph);
  simd::set_level(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simultaneous_rule1_pass(inst.graph, key,
                                                     inst.marked));
  }
  simd::set_level(simd::detect_best());
}

void rule2_pass_at(benchmark::State& state, simd::Level level) {
  const auto inst = make_instance(static_cast<int>(state.range(0)), 3);
  const PriorityKey key(KeyKind::kDegreeId, inst.graph);
  simd::set_level(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simultaneous_rule2_pass(
        inst.graph, key, Rule2Form::kRefined, inst.marked));
  }
  simd::set_level(simd::detect_best());
}

void register_levels() {
  for (const simd::Level level : simd::available_levels()) {
    const std::string name = simd::to_string(level);
    benchmark::RegisterBenchmark(
        ("BM_Rule1PassSimd/" + name).c_str(),
        [level](benchmark::State& state) { rule1_pass_at(state, level); })
        ->Arg(100)
        ->Arg(400);
    benchmark::RegisterBenchmark(
        ("BM_Rule2RefinedPassSimd/" + name).c_str(),
        [level](benchmark::State& state) { rule2_pass_at(state, level); })
        ->Arg(100)
        ->Arg(400);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_levels();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
