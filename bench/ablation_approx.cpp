// Ablation E: approximation ratios against the exact minimum CDS on small
// networks (exhaustive optimum, n <= 14). How much larger than optimal are
// the distributed rules and the centralized heuristics?

#include <iostream>

#include "baselines/exact_mcds.hpp"
#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "baselines/tree_cds.hpp"
#include "core/cds.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 40);
  std::cout << "== Ablation E: approximation ratio vs exact optimum ==\n"
            << "size / optimum on small connected unit-disk networks; "
            << trials << " networks per point\n\n";

  TextTable table({"n", "radius", "opt", "ID", "ND", "greedy", "tree", "MIS",
                   "cluster"});
  for (const auto& [n, radius] :
       {std::pair{10, 25.0}, {10, 40.0}, {13, 25.0}, {13, 40.0}}) {
    Welford opt, id, nd, greedy, tree, mis, cluster;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      Xoshiro256 rng(derive_seed(0xa99a, trial * 577 +
                                            static_cast<std::uint64_t>(
                                                n * 100 + radius)));
      const auto placed = random_connected_placement(n, Field::paper_field(),
                                                     radius, rng, 5000);
      if (!placed) continue;
      const Graph& g = placed->graph;
      const auto exact = exact_min_cds(g, 14);
      if (!exact || exact->count() == 0) continue;
      const auto optimum = static_cast<double>(exact->count());
      opt.add(optimum);
      id.add(static_cast<double>(compute_cds(g, RuleSet::kID).gateway_count) /
             optimum);
      nd.add(static_cast<double>(compute_cds(g, RuleSet::kND).gateway_count) /
             optimum);
      greedy.add(static_cast<double>(greedy_mcds(g).count()) / optimum);
      tree.add(static_cast<double>(bfs_tree_cds(g).count()) / optimum);
      mis.add(static_cast<double>(mis_cds(g).count()) / optimum);
      cluster.add(static_cast<double>(cluster_cds(g).count()) / optimum);
    }
    table.add_row({TextTable::fmt(n), TextTable::fmt(radius, 0),
                   TextTable::fmt(opt.mean()), TextTable::fmt(id.mean()),
                   TextTable::fmt(nd.mean()), TextTable::fmt(greedy.mean()),
                   TextTable::fmt(tree.mean()), TextTable::fmt(mis.mean()),
                   TextTable::fmt(cluster.mean())});
  }
  table.print(std::cout);
  std::cout << "\n(values are mean size/optimum; 1.00 = optimal)\n";
  return 0;
}
