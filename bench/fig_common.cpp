#include "fig_common.hpp"

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "io/chart.hpp"
#include "io/csv.hpp"
#include "sim/threadpool.hpp"

namespace pacds::bench {

int run_figure(const FigureSpec& spec) {
  const std::size_t trials = env_size_t("PACDS_TRIALS", 20);
  const auto seed =
      static_cast<std::uint64_t>(env_size_t("PACDS_SEED", 0x5eed2001ULL));
  const char* quick = std::getenv("PACDS_QUICK");
  const bool use_quick = quick != nullptr && *quick != '\0' &&
                         std::string(quick) != "0";
  const char* strategy_env = std::getenv("PACDS_STRATEGY");
  Strategy strategy = Strategy::kSequential;
  if (strategy_env != nullptr) {
    const std::string s(strategy_env);
    if (s == "simultaneous") strategy = Strategy::kSimultaneous;
    else if (s == "verified") strategy = Strategy::kVerified;
    else if (!s.empty() && s != "sequential") {
      std::cerr << "unknown PACDS_STRATEGY '" << s << "', using sequential\n";
    }
  }

  SweepConfig config;
  config.host_counts = use_quick ? quick_host_counts() : paper_host_counts();
  config.schemes = {RuleSet::kNR, RuleSet::kID, RuleSet::kND, RuleSet::kEL1,
                    RuleSet::kEL2};
  config.trials = trials;
  config.base_seed = seed;
  config.base.drain_model = spec.model;
  config.base.cds_options.strategy = strategy;
  // All other SimConfig fields default to the paper's settings: 100x100
  // field, radius 25, EL0 = 100, c = 0.5, jumps 1..6, d' = 1.

  std::cout << "== " << spec.id << ": " << spec.title << " ==\n"
            << "gateway drain model: " << to_string(spec.model)
            << "   rule strategy: " << to_string(strategy) << "\n"
            << "paper expectation:   " << spec.expectation << "\n"
            << "trials/point: " << trials << "  (PACDS_TRIALS to change)\n\n";

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool;
  const SweepResult result = run_sweep(config, &pool);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  sweep_table(result, spec.metric, /*with_ci=*/true).print(std::cout);

  // Draw the figure itself.
  AsciiChart chart;
  chart.set_labels("hosts",
                   spec.metric == SweepMetric::kLifetime
                       ? "lifetime (intervals)"
                       : "gateways");
  for (std::size_t si = 0; si < result.config.schemes.size(); ++si) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const SweepRow& row : result.rows) {
      xs.push_back(static_cast<double>(row.n_hosts));
      ys.push_back(spec.metric == SweepMetric::kLifetime
                       ? row.per_scheme[si].intervals.mean
                       : row.per_scheme[si].avg_gateways.mean);
    }
    chart.add_series(to_string(result.config.schemes[si]), std::move(xs),
                     std::move(ys));
  }
  std::cout << "\n" << chart.render();

  std::cout << "\n(" << elapsed << " s";
  std::size_t disconnected = 0;
  for (const SweepRow& row : result.rows) {
    for (const LifetimeSummary& s : row.per_scheme) {
      disconnected += s.disconnected_trials;
    }
  }
  if (disconnected > 0) {
    std::cout << "; " << disconnected
              << " trial(s) started disconnected after placement retries";
  }
  std::cout << ")\n";

  if (write_csv_file(spec.csv_name, sweep_csv_header(result),
                     sweep_csv_rows(result, spec.metric))) {
    std::cout << "wrote " << spec.csv_name << "\n";
  }
  return 0;
}

}  // namespace pacds::bench
