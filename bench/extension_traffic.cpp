// Extension experiment: lifetime under REAL forwarding load instead of the
// paper's abstract d-models. Random flows are routed through the backbone
// every interval; hosts pay per packet sent/forwarded/received, gateways
// additionally pay table upkeep. Reports time-to-first-death, delivery
// ratio and the battery spread at death (balance quality) per scheme, with
// and without host on/off churn.

#include <iostream>

#include "io/table.hpp"
#include "net/rng.hpp"
#include "sim/stats.hpp"
#include "sim/experiment.hpp"
#include "sim/traffic_sim.hpp"

namespace {

using namespace pacds;

void run_block(const char* label, const ChurnModel& churn,
               std::size_t trials) {
  std::cout << label << "\n";
  for (const int n : {30, 60}) {
    TextTable table(
        {"scheme", "lifetime", "delivery%", "spread@death", "avg |G'|"});
    table.set_align(0, Align::kLeft);
    for (const RuleSet rs : kAllRuleSets) {
      Welford life, delivery, spread, gateways;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        TrafficSimConfig config;
        config.n_hosts = n;
        config.rule_set = rs;
        config.churn = churn;
        const TrafficSimResult r = run_traffic_trial(
            config, derive_seed(0x7af1c, trial * 613 +
                                            static_cast<std::uint64_t>(n)));
        life.add(static_cast<double>(r.intervals));
        delivery.add(100.0 * r.delivery_ratio);
        spread.add(r.energy_stddev_at_death);
        gateways.add(r.avg_gateways);
      }
      table.add_row({to_string(rs), TextTable::fmt(life.mean()),
                     TextTable::fmt(delivery.mean(), 1),
                     TextTable::fmt(spread.mean(), 1),
                     TextTable::fmt(gateways.mean(), 1)});
    }
    std::cout << "n = " << n << " hosts\n";
    table.print(std::cout);
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  const std::size_t trials = env_size_t("PACDS_TRIALS", 25);
  std::cout << "== Extension: traffic-driven lifetime ==\n"
            << "20 flows/interval, tx=1 rx=0.5 idle=0.05 beacon=0.2, "
               "EL0=200; "
            << trials << " trials per point\n\n";
  run_block("--- no churn ---", ChurnModel{0.0, 0.25}, trials);
  run_block("--- with churn (hosts switch off w.p. 0.1, back on w.p. 0.25) ---",
            ChurnModel{0.1, 0.25}, trials);
  return 0;
}
