// Ablation F: does the SEL key (stability, energy, id) buy backbone
// stability — and does it cost lifetime?
//
// The paper's EL keys rotate gatewayhood toward high-energy hosts; under
// mobility that rotation compounds with topology churn, so the backbone
// set can change wholesale between intervals even when the graph barely
// moved. SEL front-loads an EWMA of each host's neighborhood churn so
// flapping hosts yield gatewayhood to stable ones of equal energy.
//
// Two tables, all columns size-matched (same rules/strategy, only the key
// differs):
//
//   1. churn under mobility — per-interval |G'_t XOR G'_{t-1}| averaged
//      over the run, plus lifetime and |G'|, under Gauss-Markov motion
//      (correlated headings: the regime where churn memory has signal).
//   2. fault repair — a crash/recover schedule in degraded mode; repairs,
//      mean repair latency and backbone-disconnected intervals per scheme.
//
// Expectation: SEL's churn column sits clearly below EL1/EL2's at a small
// lifetime cost (it spends key entropy on stability, not energy); the
// static keys (ID, ND) churn most because selection ignores both.

#include <iostream>
#include <string>
#include <vector>

#include "io/table.hpp"
#include "sim/experiment.hpp"
#include "sim/montecarlo.hpp"
#include "sim/threadpool.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 40);

  struct Column {
    const char* label;
    RuleSet scheme;
  };
  constexpr Column kColumns[] = {
      {"ID", RuleSet::kID},   {"ND", RuleSet::kND},
      {"EL1", RuleSet::kEL1}, {"EL2", RuleSet::kEL2},
      {"SEL", RuleSet::kSEL},
  };

  const auto configure = [](int n, RuleSet scheme) {
    SimConfig config;
    config.n_hosts = n;
    config.rule_set = scheme;
    config.mobility_kind = MobilityKind::kGaussMarkov;
    config.mobility_params.mean_speed = 3.0;
    config.mobility_params.alpha = 0.75;
    config.stability_beta = 0.75;     // read by SEL only
    config.stability_quantum = 0.5;
    return config;
  };

  std::cout << "== Ablation F: SEL stability key vs the paper's keys ==\n"
            << "Gauss-Markov mobility (mean speed 3, alpha 0.75), d = "
               "N/|G'|, SEL beta 0.75 / quantum 0.5; "
            << trials << " paired trials per point\n\n";

  ThreadPool pool;

  std::cout << "churn = avg per-interval gateway-set symmetric difference\n";
  TextTable churn_table({"n", "scheme", "lifetime", "avg |G'|", "churn"});
  churn_table.set_align(1, Align::kLeft);
  for (const int n : {30, 50, 80}) {
    for (const Column& column : kColumns) {
      const SimConfig config = configure(n, column.scheme);
      const LifetimeSummary s = run_lifetime_trials(
          config, trials, 0x5e1u ^ static_cast<std::uint64_t>(n), &pool);
      churn_table.add_row({TextTable::fmt(n), column.label,
                           TextTable::fmt(s.intervals.mean),
                           TextTable::fmt(s.avg_gateways.mean, 1),
                           TextTable::fmt(s.avg_churn.mean, 2)});
    }
  }
  churn_table.print(std::cout);

  // Part 2: the same columns in degraded mode under a fixed crash/recover
  // schedule. Repair latency is the localized-repair cost the engine pays
  // when a gateway goes down; a stabler backbone sees fewer forced repairs.
  std::cout << "\nfault repair under a crash/recover schedule (3 crashes, "
               "each down 5 intervals)\n";
  TextTable fault_table({"n", "scheme", "run len", "repairs", "repair us",
                         "disconn", "min cov"});
  fault_table.set_align(1, Align::kLeft);
  for (const int n : {30, 50, 80}) {
    FaultPlan plan;
    for (int k = 0; k < 3; ++k) {
      CrashSpec crash;
      crash.node = (n / 4) * (k + 1);
      crash.at = 5 + 5 * k;
      crash.recover_at = crash.at + 5;
      plan.crashes.push_back(crash);
    }
    for (const Column& column : kColumns) {
      const SimConfig config = configure(n, column.scheme);
      const LifetimeSummary s = run_lifetime_trials(
          config, trials, 0xfa17u ^ static_cast<std::uint64_t>(n), &pool,
          nullptr, &plan);
      const double repair_us =
          s.faults.repairs > 0
              ? static_cast<double>(s.faults.repair_ns_total) / 1000.0 /
                    static_cast<double>(s.faults.repairs)
              : 0.0;
      fault_table.add_row({TextTable::fmt(n), column.label,
                           TextTable::fmt(s.intervals.mean),
                           std::to_string(s.faults.repairs),
                           TextTable::fmt(repair_us, 1),
                           std::to_string(s.faults.disconnected_intervals),
                           TextTable::fmt(s.faults.min_coverage, 3)});
    }
  }
  fault_table.print(std::cout);
  return 0;
}
