// Extension experiment: what does backbone redundancy cost and buy? For
// each scheme, augment the gateway set to 2-domination and compare size
// overhead and single-gateway-failure deliverability.

#include <iostream>

#include "core/cds.hpp"
#include "core/redundancy.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 25);
  std::cout << "== Extension: 2-dominating backbone redundancy ==\n"
            << "size and single-failure deliverability, " << trials
            << " random connected networks per point\n\n";

  for (const int n : {25, 50}) {
    TextTable table({"scheme", "|G'|", "deliv@fail%", "|G'| m=2",
                     "deliv@fail% m=2"});
    table.set_align(0, Align::kLeft);
    for (const RuleSet rs : {RuleSet::kID, RuleSet::kND, RuleSet::kEL1}) {
      Welford base_size, base_rob, aug_size, aug_rob;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Xoshiro256 rng(derive_seed(0x2ed0, trial * 137 +
                                              static_cast<std::uint64_t>(n)));
        const auto placed = random_connected_placement(
            n, Field::paper_field(), kPaperRadius, rng, 2000);
        if (!placed) continue;
        const Graph& g = placed->graph;
        std::vector<double> energy;
        for (int i = 0; i < n; ++i) {
          energy.push_back(static_cast<double>(rng.uniform_int(1, 100)));
        }
        const CdsResult cds = compute_cds(g, rs, energy);
        const PriorityKey key(key_kind_of(rs), g,
                              uses_energy(rs) ? &energy : nullptr);
        const DynBitset augmented =
            augment_m_domination(g, cds.gateways, 2, key);

        base_size.add(static_cast<double>(cds.gateway_count));
        aug_size.add(static_cast<double>(augmented.count()));
        base_rob.add(100.0 * single_failure_delivery(g, cds.gateways));
        aug_rob.add(100.0 * single_failure_delivery(g, augmented));
      }
      table.add_row({to_string(rs), TextTable::fmt(base_size.mean()),
                     TextTable::fmt(base_rob.mean(), 1),
                     TextTable::fmt(aug_size.mean()),
                     TextTable::fmt(aug_rob.mean(), 1)});
    }
    std::cout << "n = " << n << " hosts\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
