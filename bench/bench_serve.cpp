// Serve-layer multiplexing throughput: K resident tenants, each advanced
// one update interval per request batch, through the same process_lines
// path `pacds serve` drives from stdin. The per-op time therefore covers
// request parsing, tenant scheduling, interval compute, and metrics
// serialization (written to a discarding stream) — the full cost of one
// multiplexed interval, not just the simulation kernel. bench_report turns
// the K = {1, 4, 16} rows into serve_intervals_per_sec_k* in
// BENCH_lifetime.json.

#include <benchmark/benchmark.h>

#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace {

using pacds::serve::ServeOptions;
using pacds::serve::Server;

/// Discards everything written to it; the serialization work still runs.
class NullBuf final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

void BM_ServeIntervals(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  NullBuf null_buf;
  std::ostream null_stream(&null_buf);
  ServeOptions options;
  options.threads = 0;          // all cores; tenants are independent groups
  options.max_tenants = 64;
  Server server(options, null_stream);

  std::vector<std::string> create_lines;
  std::vector<std::string> tick_lines;
  for (int t = 0; t < tenants; ++t) {
    const std::string name = "bench" + std::to_string(t);
    // trials is effectively unbounded so ticks never run out of work; each
    // tenant gets its own seed so the instances are not clones.
    create_lines.push_back("{\"op\":\"create\",\"tenant\":\"" + name +
                           "\",\"config\":{\"n\":60,\"radius\":25},"
                           "\"seed\":" + std::to_string(100 + t) +
                           ",\"trials\":1000000}");
    tick_lines.push_back("{\"op\":\"tick\",\"tenant\":\"" + name +
                         "\",\"intervals\":1}");
  }
  server.process_lines(create_lines);

  for (auto _ : state) {
    server.process_lines(tick_lines);
  }
  state.SetItemsProcessed(state.iterations() * tenants);
}
BENCHMARK(BM_ServeIntervals)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
