// Extension experiment: the queueing cost of small backbones. The paper's
// energy models reward concentrating traffic on few gateways; the
// packet-level DES shows the other side of that coin — fewer relays mean
// deeper queues and higher end-to-end latency. Sweeps scheme x load.

#include <iostream>

#include "des/packet_sim.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 15);
  std::cout << "== Extension: packet-level latency/congestion (DES) ==\n"
            << "n = 40, 400 time units, refresh every 20; " << trials
            << " runs per point\n\n";

  for (const double gap : {1.0, 0.4, 0.2}) {
    TextTable table({"scheme", "avg |G'|", "delivery%", "latency", "p-max q",
                     "breaks"});
    table.set_align(0, Align::kLeft);
    for (const RuleSet rs : kAllRuleSets) {
      Welford gateways, delivery, latency, maxq, breaks;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        des::PacketSimConfig config;
        config.n_hosts = 40;
        config.rule_set = rs;
        config.injection_gap = gap;
        const des::PacketSimResult r = des::run_packet_sim(
            config, derive_seed(0xde5, trial * 97 +
                                           static_cast<std::uint64_t>(
                                               gap * 1000)));
        gateways.add(r.avg_gateways);
        delivery.add(100.0 * r.delivery_ratio());
        latency.add(r.latency.mean);
        maxq.add(r.max_queue);
        breaks.add(static_cast<double>(r.drops.route_break));
      }
      table.add_row({to_string(rs), TextTable::fmt(gateways.mean(), 1),
                     TextTable::fmt(delivery.mean(), 1),
                     TextTable::fmt(latency.mean(), 2),
                     TextTable::fmt(maxq.mean(), 1),
                     TextTable::fmt(breaks.mean(), 1)});
    }
    std::cout << "offered load: 1 packet / " << gap << " time units\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
