// Reproduces paper Figure 12: network lifetime with total bypass traffic
// proportional to the number of hosts (d = N/|G'|).

#include "fig_common.hpp"

int main() {
  const pacds::bench::FigureSpec spec{
      "Figure 12",
      "network lifetime (intervals to first death) vs. number of hosts",
      "EL1 clearly the winner even though its dominating set is not the "
      "smallest",
      pacds::DrainModel::kLinearTotal,
      pacds::SweepMetric::kLifetime,
      "fig12_lifetime_linear.csv",
  };
  return pacds::bench::run_figure(spec);
}
