// Microbenchmark of the two lifetime engines: cost of one steady-state
// update interval (mobility step + gateway recomputation + drain) under the
// full-rebuild path vs. the incremental path, at matched state. Constant
// host density (the field grows with n, as in micro_cds), EL2 keys,
// simultaneous strategy.
//
// The incremental engine's win depends on how much actually changes per
// interval: the paper's mobility constant c (stay probability) sets the
// topology churn, and the energy-key quantum sets how often keys cross
// bucket boundaries. The second benchmark argument is the stay probability
// in percent, so the output includes both a steady-state regime (c = 0.95,
// few movers) and the paper's own c = 0.5 (heavy churn) for honesty —
// the speedup claim is a property of the steady-state regime.
//
// Both engines run serially here (SimConfig::threads = 1); the intra-interval
// thread sweep lives in micro_parallel.cpp so the two axes — incremental vs.
// full rebuild, and serial vs. sharded — stay independently readable.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/lifetime.hpp"

namespace {

using namespace pacds;

SimConfig make_config(int n, double stay) {
  SimConfig config;
  config.n_hosts = n;
  const double side = std::sqrt(static_cast<double>(n) / 50.0) * 100.0;
  config.field_width = side;
  config.field_height = side;
  config.rule_set = RuleSet::kEL2;
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.stay_probability = stay;
  // Model 1 drain (d = 2/|G'|) with coarse key buckets: gateways barely
  // move, non-gateways cross a bucket every `quantum` intervals — the
  // steady-state regime a long-lived network spends its lifetime in.
  config.drain_model = DrainModel::kConstantTotal;
  config.energy_key_quantum = 10.0;
  config.initial_energy = 1.0e9;  // no deaths during the benchmark
  return config;
}

/// One full update interval, identical for both engines: recompute the
/// gateway set, drain batteries (so keys keep moving), roam.
void run_interval(LifetimeEngine& engine, const SimConfig& config,
                  std::vector<Vec2>& positions, BatteryBank& batteries,
                  MobilityModel& mobility, const Field& field,
                  Xoshiro256& rng) {
  engine.update(positions, batteries.levels());
  const double d = gateway_drain(config.drain_model, batteries.size(),
                                 engine.counts().gateways,
                                 config.drain_params);
  for (std::size_t host = 0; host < batteries.size(); ++host) {
    batteries.drain(host, engine.gateways().test(host)
                              ? d
                              : config.drain_params.nongateway_drain);
  }
  mobility.step(positions, field, rng);
}

void bench_engine(benchmark::State& state, SimEngine which) {
  const int n = static_cast<int>(state.range(0));
  const double stay = static_cast<double>(state.range(1)) / 100.0;
  SimConfig config = make_config(n, stay);
  config.engine = which;

  Xoshiro256 rng(2001);
  const Field field(config.field_width, config.field_height, config.boundary);
  std::vector<Vec2> positions = random_placement(n, field, rng);
  BatteryBank batteries(static_cast<std::size_t>(n), config.initial_energy);
  MobilityParams params;
  params.stay_probability = config.stay_probability;
  params.jump_min = config.jump_min;
  params.jump_max = config.jump_max;
  const auto mobility = make_mobility(MobilityKind::kPaperJump, params);
  const auto engine = make_lifetime_engine(config);

  // Prime: first update pays one-off initialization (incremental builds its
  // grid + graph + first CDS); a few more intervals reach steady state.
  for (int i = 0; i < 8; ++i) {
    run_interval(*engine, config, positions, batteries, *mobility, field,
                 rng);
  }
  for (auto _ : state) {
    run_interval(*engine, config, positions, batteries, *mobility, field,
                 rng);
    benchmark::DoNotOptimize(engine->gateways());
  }
}

void BM_IntervalFullRebuild(benchmark::State& state) {
  bench_engine(state, SimEngine::kFullRebuild);
}

void BM_IntervalIncremental(benchmark::State& state) {
  bench_engine(state, SimEngine::kIncremental);
}

void steady_args(benchmark::internal::Benchmark* b) {
  // Headline: steady-state mobility across sizes...
  for (const int n : {100, 200, 400, 800}) b->Args({n, 95});
  // ...plus the churn sweep at n = 800, ending at the paper's c = 0.5.
  for (const int stay : {98, 90, 80, 50}) b->Args({800, stay});
}

BENCHMARK(BM_IntervalFullRebuild)->Apply(steady_args);
BENCHMARK(BM_IntervalIncremental)->Apply(steady_args);

}  // namespace

BENCHMARK_MAIN();
