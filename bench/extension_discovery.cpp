// Extension experiment: the paper's *motivating* claim quantified — route
// discovery over the dominating-set backbone vs plain flooding. For random
// (src, dst) pairs we count RREQ broadcasts and receptions per discovery.

#include <iostream>

#include "core/cds.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "routing/discovery.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 30);
  std::cout << "== Extension: route-discovery cost (RREQ flooding) ==\n"
            << "plain flooding vs gateway-only rebroadcast; " << trials
            << " networks per point, 20 random pairs each\n\n";

  TextTable table({"n", "scheme", "tx plain", "tx CDS", "saving%",
                   "rx plain", "rx CDS", "extra hops"});
  table.set_align(1, Align::kLeft);
  for (const int n : {20, 40, 60, 80, 100}) {
    for (const RuleSet rs : {RuleSet::kNR, RuleSet::kID, RuleSet::kND}) {
      Welford tx_plain, tx_cds, rx_plain, rx_cds, extra;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Xoshiro256 rng(derive_seed(0xd15c, trial * 389 +
                                              static_cast<std::uint64_t>(n)));
        const auto placed = random_connected_placement(
            n, Field::paper_field(), kPaperRadius, rng, 2000);
        if (!placed) continue;
        const Graph& g = placed->graph;
        const DynBitset gateways = compute_cds(g, rs).gateways;
        for (int pair = 0; pair < 20; ++pair) {
          const auto src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
          auto dst = src;
          while (dst == src) {
            dst = static_cast<NodeId>(rng.uniform_int(0, n - 1));
          }
          const DiscoveryComparison cmp =
              compare_discovery(g, src, dst, gateways);
          if (!cmp.plain.found || !cmp.cds.found) continue;
          tx_plain.add(static_cast<double>(cmp.plain.transmissions));
          tx_cds.add(static_cast<double>(cmp.cds.transmissions));
          rx_plain.add(static_cast<double>(cmp.plain.receptions));
          rx_cds.add(static_cast<double>(cmp.cds.receptions));
          extra.add(static_cast<double>(cmp.cds.hops - cmp.plain.hops));
        }
      }
      table.add_row(
          {TextTable::fmt(n), to_string(rs), TextTable::fmt(tx_plain.mean(), 1),
           TextTable::fmt(tx_cds.mean(), 1),
           TextTable::fmt(tx_plain.mean() > 0
                              ? 100.0 * (1.0 - tx_cds.mean() / tx_plain.mean())
                              : 0.0,
                          1),
           TextTable::fmt(rx_plain.mean(), 1), TextTable::fmt(rx_cds.mean(), 1),
           TextTable::fmt(extra.mean(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nNR saves transmissions with zero hop penalty (Property 3); "
               "the reduced backbones\nsave more at a small hop cost.\n";
  return 0;
}
