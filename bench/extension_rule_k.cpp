// Extension experiment: the generalized Rule k (Dai-Wu) with power-aware
// keys. Three questions:
//   1. Size: how does Rule k compare to the paper's pairwise rules?
//   2. Safety: is its SYNCHRONOUS application really violation-free where
//      the pairwise refined rules fail ~30% of the time?
//   3. Lifetime: does plugging energy keys into Rule k keep the rotation
//      benefit?

#include <iostream>
#include <vector>

#include "core/rule_k.hpp"
#include "core/verify.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 50);

  std::cout << "== Extension: generalized Rule k (Dai-Wu) ==\n"
            << trials << " random connected networks per point\n\n"
            << "(a) size and synchronous-safety vs the pairwise rules "
               "(degree keys):\n";
  TextTable size_table({"n", "pairwise seq", "pairwise sync", "viol%",
                        "rule-k seq", "rule-k sync", "viol%"});
  for (const int n : {20, 40, 60, 80}) {
    Welford pw_seq, pw_sync, rk_seq, rk_sync;
    std::size_t pw_viol = 0;
    std::size_t rk_viol = 0;
    std::size_t cases = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      Xoshiro256 rng(derive_seed(0x47a1e, trial * 211 +
                                             static_cast<std::uint64_t>(n)));
      const auto placed = random_connected_placement(
          n, Field::paper_field(), kPaperRadius, rng, 2000);
      if (!placed) continue;
      const Graph& g = placed->graph;
      ++cases;
      CdsOptions seq;
      seq.strategy = Strategy::kSequential;
      CdsOptions sync;
      sync.strategy = Strategy::kSimultaneous;
      const CdsResult a = compute_cds(g, RuleSet::kND, {}, seq);
      const CdsResult b = compute_cds(g, RuleSet::kND, {}, sync);
      const CdsResult c =
          compute_cds_rule_k(g, KeyKind::kDegreeId, {}, Strategy::kSequential);
      const CdsResult d = compute_cds_rule_k(g, KeyKind::kDegreeId, {},
                                             Strategy::kSimultaneous);
      pw_seq.add(static_cast<double>(a.gateway_count));
      pw_sync.add(static_cast<double>(b.gateway_count));
      rk_seq.add(static_cast<double>(c.gateway_count));
      rk_sync.add(static_cast<double>(d.gateway_count));
      if (!check_cds(g, b.gateways).ok()) ++pw_viol;
      if (!check_cds(g, d.gateways).ok()) ++rk_viol;
    }
    const auto pct = [cases](std::size_t v) {
      return TextTable::fmt(
          cases == 0 ? 0.0
                     : 100.0 * static_cast<double>(v) /
                           static_cast<double>(cases),
          1);
    };
    size_table.add_row({TextTable::fmt(n), TextTable::fmt(pw_seq.mean()),
                        TextTable::fmt(pw_sync.mean()), pct(pw_viol),
                        TextTable::fmt(rk_seq.mean()),
                        TextTable::fmt(rk_sync.mean()), pct(rk_viol)});
  }
  size_table.print(std::cout);

  std::cout << "\n(b) lifetime with energy-keyed Rule k (d = N/|G'|), vs "
               "the paper's EL1:\n";
  TextTable life_table({"n", "EL1 (pairwise)", "rule-k EL", "rule-k ND"});
  const std::size_t life_trials = trials / 2 + 1;
  for (const int n : {30, 50, 80}) {
    Welford el1, rk_el, rk_nd;
    for (std::size_t trial = 0; trial < life_trials; ++trial) {
      const std::uint64_t seed = derive_seed(
          0x11fe, trial * 733 + static_cast<std::uint64_t>(n));
      SimConfig config;
      config.n_hosts = n;
      config.drain_model = DrainModel::kLinearTotal;
      config.rule_set = RuleSet::kEL1;
      el1.add(static_cast<double>(run_lifetime_trial(config, seed).intervals));
      config.use_rule_k = true;
      config.custom_key = KeyKind::kEnergyId;
      rk_el.add(static_cast<double>(run_lifetime_trial(config, seed).intervals));
      config.custom_key = KeyKind::kDegreeId;
      rk_nd.add(static_cast<double>(run_lifetime_trial(config, seed).intervals));
    }
    life_table.add_row({TextTable::fmt(n), TextTable::fmt(el1.mean()),
                        TextTable::fmt(rk_el.mean()),
                        TextTable::fmt(rk_nd.mean())});
  }
  life_table.print(std::cout);
  return 0;
}
