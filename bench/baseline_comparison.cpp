// Extension experiment: the distributed rule families vs. centralized CDS
// baselines (greedy MCDS, BFS-tree internal nodes with pruning, MIS plus
// connectors). The distributed schemes only see 2-hop neighborhoods; the
// centralized ones see the whole graph — this quantifies the price of
// locality the paper's approach pays.

#include <iostream>
#include <vector>

#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "baselines/tree_cds.hpp"
#include "core/cds.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace pacds;
  const std::size_t trials = env_size_t("PACDS_TRIALS", 60);
  std::cout << "== Baseline comparison: mean CDS size ==\n"
            << "distributed (NR/ID/ND) vs centralized (greedy, tree, MIS), "
            << trials << " networks per point\n\n";

  TextTable table({"n", "NR", "ID", "ND", "greedy", "tree+prune", "MIS+conn"});
  for (const int n : {10, 20, 30, 50, 70, 90}) {
    Welford nr, id, nd, greedy, tree, mis;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      Xoshiro256 rng(derive_seed(0xba5e, trial * 499 +
                                            static_cast<std::uint64_t>(n)));
      const auto placed = random_connected_placement(
          n, Field::paper_field(), kPaperRadius, rng, 2000);
      if (!placed) continue;
      const Graph& g = placed->graph;
      nr.add(static_cast<double>(compute_cds(g, RuleSet::kNR).gateway_count));
      id.add(static_cast<double>(compute_cds(g, RuleSet::kID).gateway_count));
      nd.add(static_cast<double>(compute_cds(g, RuleSet::kND).gateway_count));
      greedy.add(static_cast<double>(greedy_mcds(g).count()));
      tree.add(static_cast<double>(bfs_tree_cds(g, true).count()));
      mis.add(static_cast<double>(mis_cds(g).count()));
    }
    table.add_row({TextTable::fmt(n), TextTable::fmt(nr.mean()),
                   TextTable::fmt(id.mean()), TextTable::fmt(nd.mean()),
                   TextTable::fmt(greedy.mean()), TextTable::fmt(tree.mean()),
                   TextTable::fmt(mis.mean())});
  }
  table.print(std::cout);
  return 0;
}
