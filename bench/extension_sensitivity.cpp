// Extension experiment: sensitivity of the headline result (EL1 vs ID
// lifetime under d = N/|G'|) to the simulation knobs the paper fixed —
// transmission radius, mobility intensity, mobility model, energy-key
// quantization, and boundary policy. The paper's own future work:
// "more in-depth simulation under different settings".

#include <iostream>

#include "io/table.hpp"
#include "sim/montecarlo.hpp"
#include "sim/threadpool.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace pacds;

struct Ratio {
  double id;
  double el1;
};

Ratio lifetimes(const SimConfig& base, std::size_t trials, ThreadPool& pool,
                std::uint64_t seed) {
  SimConfig config = base;
  config.rule_set = RuleSet::kID;
  const double id = run_lifetime_trials(config, trials, seed, &pool)
                        .intervals.mean;
  config.rule_set = RuleSet::kEL1;
  const double el1 = run_lifetime_trials(config, trials, seed, &pool)
                         .intervals.mean;
  return {id, el1};
}

void emit(TextTable& table, const std::string& label, const Ratio& r) {
  table.add_row({label, TextTable::fmt(r.id), TextTable::fmt(r.el1),
                 TextTable::fmt(r.id > 0 ? r.el1 / r.id : 0.0, 2)});
}

}  // namespace

int main() {
  const std::size_t trials = env_size_t("PACDS_TRIALS", 25);
  ThreadPool pool;
  std::cout << "== Extension: sensitivity of the EL1-vs-ID lifetime result ==\n"
            << "n = 50, d = N/|G'|; " << trials << " paired trials per row\n\n";

  SimConfig base;
  base.n_hosts = 50;
  base.drain_model = DrainModel::kLinearTotal;

  {
    TextTable table({"radius", "ID", "EL1", "EL1/ID"});
    for (const double radius : {15.0, 20.0, 25.0, 35.0, 50.0}) {
      SimConfig config = base;
      config.radius = radius;
      emit(table, TextTable::fmt(radius, 0),
           lifetimes(config, trials, pool, 0x5e51));
    }
    std::cout << "(a) transmission radius (paper: 25):\n";
    table.print(std::cout);
  }
  {
    TextTable table({"stay prob c", "ID", "EL1", "EL1/ID"});
    for (const double c : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      SimConfig config = base;
      config.stay_probability = c;
      emit(table, TextTable::fmt(c, 2),
           lifetimes(config, trials, pool, 0x5e52));
    }
    std::cout << "\n(b) mobility intensity (paper: c = 0.5):\n";
    table.print(std::cout);
  }
  {
    TextTable table({"mobility", "ID", "EL1", "EL1/ID"});
    table.set_align(0, Align::kLeft);
    for (const MobilityKind kind :
         {MobilityKind::kPaperJump, MobilityKind::kRandomWalk,
          MobilityKind::kRandomWaypoint, MobilityKind::kGaussMarkov,
          MobilityKind::kStatic}) {
      SimConfig config = base;
      config.mobility_kind = kind;
      emit(table, to_string(kind), lifetimes(config, trials, pool, 0x5e53));
    }
    std::cout << "\n(c) mobility model (paper: 8-direction jump):\n";
    table.print(std::cout);
  }
  {
    TextTable table({"EL quantum", "ID", "EL1", "EL1/ID"});
    for (const double quantum : {0.0, 0.5, 1.0, 5.0, 20.0}) {
      SimConfig config = base;
      config.energy_key_quantum = quantum;
      emit(table, TextTable::fmt(quantum, 1),
           lifetimes(config, trials, pool, 0x5e54));
    }
    std::cout << "\n(d) energy-key quantization (0 = raw levels):\n";
    table.print(std::cout);
  }
  {
    TextTable table({"link model", "ID", "EL1", "EL1/ID"});
    table.set_align(0, Align::kLeft);
    for (const LinkModel model :
         {LinkModel::kUnitDisk, LinkModel::kGabriel, LinkModel::kRng}) {
      SimConfig config = base;
      config.link_model = model;
      emit(table, to_string(model), lifetimes(config, trials, pool, 0x5e56));
    }
    std::cout << "\n(e) proximity-graph link model (paper: unit disk):\n";
    table.print(std::cout);
  }
  {
    TextTable table({"boundary", "ID", "EL1", "EL1/ID"});
    table.set_align(0, Align::kLeft);
    for (const BoundaryPolicy policy :
         {BoundaryPolicy::kClamp, BoundaryPolicy::kReflect,
          BoundaryPolicy::kWrap}) {
      SimConfig config = base;
      config.boundary = policy;
      emit(table, to_string(policy), lifetimes(config, trials, pool, 0x5e55));
    }
    std::cout << "\n(f) field boundary policy (paper: unspecified, we default "
                 "to clamp):\n";
    table.print(std::cout);
  }
  return 0;
}
