// Microbenchmark of the intra-interval parallel layer: how one steady-state
// update interval scales with SimConfig::threads, and how the raw sharded
// compute_cds pipeline scales in isolation. Sizes n = 400 and 800 at
// constant host density, EL2 keys, simultaneous strategy — the same regime
// as micro_engine, so `parallel_interval_ns` rows in BENCH_lifetime.json are
// directly comparable with `engine_interval_ns`.
//
// The thread sweep {1, 2, 4, 8} measures the full fork/join path including
// its synchronization cost; on a single-core host the >1 rows quantify pure
// overhead (the determinism guarantee — bit-identical gateway sets for every
// thread count — is asserted by tests/parallel_equivalence_test, not here).

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "core/cds.hpp"
#include "core/workspace.hpp"
#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "net/udg.hpp"
#include "sim/engine.hpp"
#include "sim/lifetime.hpp"
#include "sim/threadpool.hpp"

namespace {

using namespace pacds;

SimConfig make_config(int n, int threads) {
  SimConfig config;
  config.n_hosts = n;
  const double side = std::sqrt(static_cast<double>(n) / 50.0) * 100.0;
  config.field_width = side;
  config.field_height = side;
  config.rule_set = RuleSet::kEL2;
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.stay_probability = 0.95;
  config.drain_model = DrainModel::kConstantTotal;
  config.energy_key_quantum = 10.0;
  config.initial_energy = 1.0e9;  // no deaths during the benchmark
  config.threads = threads;
  return config;
}

/// Raw pipeline scaling: marking + simultaneous rule passes on a frozen
/// graph, sharded across `lanes` (1 = no pool, serial path).
void BM_ComputeCdsLanes(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  const SimConfig config = make_config(n, 1);

  Xoshiro256 rng(2001);
  const Field field(config.field_width, config.field_height, config.boundary);
  const auto positions = random_placement(n, field, rng);
  const Graph g = build_links(positions, config.radius, config.link_model);
  std::vector<double> energy(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < energy.size(); ++i) {
    energy[i] = static_cast<double>((i * 7919) % 17);
  }

  std::optional<ThreadPool> pool;
  if (lanes > 1) pool.emplace(lanes - 1);
  CdsWorkspace ws;
  const ExecContext ctx{pool ? &*pool : nullptr, &ws};
  for (auto _ : state) {
    const CdsResult r =
        compute_cds(g, config.rule_set, energy, config.cds_options, ctx);
    benchmark::DoNotOptimize(r.gateway_count);
  }
}

/// Whole-interval scaling through SimConfig::threads on the full-rebuild
/// engine (every interval runs the complete sharded pipeline).
void BM_IntervalThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  SimConfig config = make_config(n, threads);
  config.engine = SimEngine::kFullRebuild;

  Xoshiro256 rng(2001);
  const Field field(config.field_width, config.field_height, config.boundary);
  std::vector<Vec2> positions = random_placement(n, field, rng);
  BatteryBank batteries(static_cast<std::size_t>(n), config.initial_energy);
  MobilityParams params;
  params.stay_probability = config.stay_probability;
  params.jump_min = config.jump_min;
  params.jump_max = config.jump_max;
  const auto mobility = make_mobility(MobilityKind::kPaperJump, params);
  const auto engine = make_lifetime_engine(config);

  for (int i = 0; i < 8; ++i) {  // reach steady state before timing
    engine->update(positions, batteries.levels());
    mobility->step(positions, field, rng);
  }
  for (auto _ : state) {
    engine->update(positions, batteries.levels());
    const double d = gateway_drain(config.drain_model, batteries.size(),
                                   engine->counts().gateways,
                                   config.drain_params);
    for (std::size_t host = 0; host < batteries.size(); ++host) {
      batteries.drain(host, engine->gateways().test(host)
                                ? d
                                : config.drain_params.nongateway_drain);
    }
    mobility->step(positions, field, rng);
    benchmark::DoNotOptimize(engine->gateways());
  }
}

void thread_args(benchmark::internal::Benchmark* b) {
  for (const int n : {400, 800}) {
    for (const int t : {1, 2, 4, 8}) b->Args({n, t});
  }
}

BENCHMARK(BM_ComputeCdsLanes)->Apply(thread_args);
BENCHMARK(BM_IntervalThreads)->Apply(thread_args);

}  // namespace

BENCHMARK_MAIN();
