// Hardening walk-through: take a power-aware backbone and make it survive
// gateway failures — 2-domination (every host keeps a backup gateway) plus
// best-effort biconnectivity (no single backbone cut vertex) — and measure
// what each step costs and buys.
//
//   $ ./backbone_hardening [n_hosts] [seed]

#include <cstdlib>
#include <iostream>

#include "core/articulation.hpp"
#include "core/cds.hpp"
#include "core/redundancy.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

int main(int argc, char** argv) {
  using namespace pacds;
  const int n = argc > 1 ? std::atoi(argv[1]) : 40;
  const auto seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 17u;

  Xoshiro256 rng(seed);
  const auto placed = random_connected_placement(n, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  if (!placed) {
    std::cerr << "no connected placement found\n";
    return 1;
  }
  const Graph& g = placed->graph;

  std::vector<double> energy;
  for (int i = 0; i < n; ++i) {
    energy.push_back(static_cast<double>(rng.uniform_int(40, 100)));
  }
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);

  std::cout << "Backbone hardening on " << n << " hosts ("
            << articulation_points(g).count()
            << " articulation hosts in the radio graph itself)\n\n";

  const CdsResult cds = compute_cds(g, RuleSet::kEL1, energy);
  const DynBitset two_dom = augment_m_domination(g, cds.gateways, 2, key);
  const DynBitset hardened = augment_biconnectivity(g, two_dom, key);

  TextTable table({"stage", "gateways", "backbone cuts", "2-dominating",
                   "deliv@1-failure%"});
  table.set_align(0, Align::kLeft);
  const auto add_stage = [&](const char* label, const DynBitset& set) {
    table.add_row(
        {label, TextTable::fmt(set.count()),
         TextTable::fmt(backbone_cut_vertices(g, set).count()),
         is_m_dominating(g, set, 2) ? "yes" : "no",
         TextTable::fmt(100.0 * single_failure_delivery(g, set), 1)});
  };
  add_stage("EL1 backbone", cds.gateways);
  add_stage("+ 2-domination", two_dom);
  add_stage("+ biconnectivity", hardened);
  table.print(std::cout);

  std::cout << "\nPromotions pick the energy-richest hosts (the EL key), so "
               "hardening spends the\nbatteries that can afford it. "
               "Biconnectivity is best-effort: cuts that need\nmulti-host "
               "detours are left in place.\n";
  return 0;
}
