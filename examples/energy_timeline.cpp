// Visualize how each scheme spends the network's energy: runs one paired
// lifetime trial per scheme with tracing enabled and prints sparklines of
// the minimum battery level and the gateway count over time, plus the final
// trace as CSV for external plotting.
//
//   $ ./energy_timeline [n_hosts] [seed]

#include <cstdlib>
#include <iostream>

#include "io/csv.hpp"
#include "sim/lifetime.hpp"

int main(int argc, char** argv) {
  using namespace pacds;
  const int n = argc > 1 ? std::atoi(argv[1]) : 40;
  const auto seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 99u;

  std::cout << "Energy timeline: " << n
            << " hosts, d = N/|G'| (paper Figure 12 setting), one paired "
               "trial per scheme\n\n";

  for (const RuleSet rs : kAllRuleSets) {
    SimConfig config;
    config.n_hosts = n;
    config.drain_model = DrainModel::kLinearTotal;
    config.rule_set = rs;

    SimTrace trace;
    const TrialResult result = run_lifetime_trial(config, seed, &trace);

    std::cout << to_string(rs) << ": died after " << result.intervals
              << " intervals (avg " << trace.records.size() << " records)\n"
              << "  min energy "
              << sparkline(trace.min_energy_series(), 0.0,
                           config.initial_energy)
              << "\n"
              << "  gateways   "
              << sparkline(trace.gateway_series(), 0.0,
                           static_cast<double>(n))
              << "\n";

    const std::string csv = "timeline_" + to_string(rs) + ".csv";
    if (write_csv_file(csv, SimTrace::csv_header(), trace.csv_rows())) {
      std::cout << "  wrote " << csv << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "Read the sparklines left to right: the energy-aware schemes "
               "hold the minimum\nbattery level up longer by rotating "
               "gateway duty.\n";
  return 0;
}
