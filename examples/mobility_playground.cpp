// Watch the backbone adapt as hosts roam: renders a few update intervals of
// the paper's mobility model as ASCII frames, with gateways drawn as '#'
// and ordinary hosts as 'o'. Also reports how much of the network the
// localized updater actually had to re-evaluate each interval.
//
//   $ ./mobility_playground [frames]

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "net/mobility.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

namespace {

using namespace pacds;

constexpr int kCols = 50;
constexpr int kRows = 25;

void render(const std::vector<Vec2>& positions, const DynBitset& gateways,
            const Field& field) {
  std::vector<std::string> canvas(kRows, std::string(kCols, '.'));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const int col = std::min(
        kCols - 1,
        static_cast<int>(positions[i].x / field.width() * kCols));
    const int row = std::min(
        kRows - 1,
        static_cast<int>(positions[i].y / field.height() * kRows));
    canvas[static_cast<std::size_t>(kRows - 1 - row)]
          [static_cast<std::size_t>(col)] = gateways.test(i) ? '#' : 'o';
  }
  for (const std::string& line : canvas) std::cout << line << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 6;
  Xoshiro256 rng(4242);
  const Field field = Field::paper_field();

  auto placed =
      random_connected_placement(35, field, kPaperRadius, rng, 2000);
  if (!placed) {
    std::cerr << "no connected placement found\n";
    return 1;
  }
  std::vector<Vec2> positions = std::move(placed->positions);

  // The incremental updater demonstrates the paper's locality feature:
  // after each movement step we feed it only the changed links.
  IncrementalCds cds(placed->graph, RuleSet::kND);
  PaperJumpMobility mobility;  // c = 0.5, jumps 1..6, 8 directions

  for (int frame = 0; frame < frames; ++frame) {
    std::cout << "frame " << frame << ": " << cds.gateways().count()
              << " gateways (# = gateway, o = host)";
    if (frame > 0) {
      std::cout << ", localized update touched " << cds.last_touched() << "/"
                << positions.size() << " hosts";
    }
    std::cout << "\n";
    render(positions, cds.gateways(), field);
    std::cout << "\n";

    // Advance one update interval and diff the unit-disk graph.
    mobility.step(positions, field, rng);
    const Graph next = build_udg(positions, kPaperRadius);
    EdgeDelta delta;
    for (NodeId u = 0; u < next.num_nodes(); ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < next.num_nodes(); ++v) {
        const bool before = cds.graph().has_edge(u, v);
        const bool after = next.has_edge(u, v);
        if (after && !before) delta.added.emplace_back(u, v);
        if (!after && before) delta.removed.emplace_back(u, v);
      }
    }
    cds.apply_delta(delta);
  }
  return 0;
}
