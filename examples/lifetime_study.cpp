// Miniature version of the paper's headline experiment: how long does the
// network live under each gateway-selection scheme? Runs the Figure 12
// setting (d = N/|G'|) at a single network size with per-trial pairing, and
// prints lifetimes plus the energy balance at death.
//
//   $ ./lifetime_study [n_hosts] [trials]

#include <cstdlib>
#include <iostream>

#include "energy/battery.hpp"
#include "io/table.hpp"
#include "sim/montecarlo.hpp"
#include "sim/threadpool.hpp"

int main(int argc, char** argv) {
  using namespace pacds;
  const int n = argc > 1 ? std::atoi(argv[1]) : 50;
  const std::size_t trials =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 40;

  std::cout << "Lifetime study: " << n << " hosts, " << trials
            << " trials per scheme, d = N/|G'| (paper Figure 12 setting)\n\n";

  SimConfig config;
  config.n_hosts = n;
  config.drain_model = DrainModel::kLinearTotal;

  ThreadPool pool;
  TextTable table({"scheme", "lifetime (intervals)", "±95%", "avg |G'|"});
  table.set_align(0, Align::kLeft);
  double id_lifetime = 0.0;
  double el1_lifetime = 0.0;
  for (const RuleSet rs : kAllRuleSets) {
    config.rule_set = rs;
    const LifetimeSummary s = run_lifetime_trials(config, trials, 777, &pool);
    table.add_row({to_string(rs), TextTable::fmt(s.intervals.mean),
                   TextTable::fmt(s.intervals.ci95),
                   TextTable::fmt(s.avg_gateways.mean)});
    if (rs == RuleSet::kID) id_lifetime = s.intervals.mean;
    if (rs == RuleSet::kEL1) el1_lifetime = s.intervals.mean;
  }
  table.print(std::cout);

  if (id_lifetime > 0.0) {
    std::cout << "\nEL1 vs ID lifetime: "
              << TextTable::fmt(el1_lifetime / id_lifetime, 2)
              << "x  (the paper's claim: rotating gateway duty by energy "
                 "level extends network life)\n";
  }
  std::cout << "\nAll schemes saw identical placements and host trajectories "
               "(paired seeds);\ndifferences are due to the selection rules "
               "alone. Scale with PACDS_TRIALS-style\narguments: "
               "./lifetime_study 80 200\n";
  return 0;
}
