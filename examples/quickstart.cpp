// Quickstart: build a random ad hoc network, compute the gateway set under
// every scheme from the paper, verify it, and print what each scheme chose.
//
//   $ ./quickstart [n_hosts] [seed]

#include <cstdlib>
#include <iostream>

#include "core/cds.hpp"
#include "core/verify.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

int main(int argc, char** argv) {
  using namespace pacds;
  const int n = argc > 1 ? std::atoi(argv[1]) : 40;
  const auto seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 2001u;

  // 1. Place n hosts uniformly in the paper's 100x100 field and keep
  //    retrying until the unit-disk graph (transmission radius 25) is
  //    connected.
  Xoshiro256 rng(seed);
  const auto placed = random_connected_placement(n, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  if (!placed) {
    std::cerr << "could not find a connected placement for n = " << n << "\n";
    return 1;
  }
  const Graph& g = placed->graph;
  std::cout << "network: " << g.num_nodes() << " hosts, " << g.num_edges()
            << " links, diameter " << g.diameter().value_or(-1) << "\n\n";

  // 2. Give each host a battery level; the energy-aware schemes read these.
  std::vector<double> energy;
  for (int i = 0; i < n; ++i) {
    energy.push_back(static_cast<double>(rng.uniform_int(60, 100)));
  }

  // 3. Compute and verify the connected dominating set under each scheme.
  TextTable table({"scheme", "gateways", "valid CDS", "members"});
  table.set_align(0, Align::kLeft);
  table.set_align(3, Align::kLeft);
  for (const RuleSet rs : kAllRuleSets) {
    const CdsResult r = compute_cds(g, rs, energy);
    const CdsCheck check = check_cds(g, r.gateways);
    std::string members = r.gateways.to_string();
    if (members.size() > 48) members = members.substr(0, 45) + "...";
    table.add_row({to_string(rs), TextTable::fmt(r.gateway_count),
                   check.ok() ? "yes" : "NO", members});
  }
  table.print(std::cout);

  std::cout << "\nNR is the raw marking process; the rules shrink it using "
               "id (ID), degree (ND)\nor battery level (EL1/EL2) as the "
               "yielding priority.\n";
  return 0;
}
