// Dominating-set-based routing demo (paper Section 2.1 / Figure 2): builds
// a small network, computes the gateway backbone, prints every gateway's
// domain membership list and routing table, then routes a few packets with
// the 3-step process and shows the full hop sequences. Finishes with a DOT
// dump you can render with `neato -Tpng`.
//
//   $ ./routing_demo

#include <iostream>

#include "core/cds.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "routing/routing.hpp"
#include "routing/stretch.hpp"

namespace {

std::string join(const std::vector<pacds::NodeId>& xs, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += sep;
    out += std::to_string(xs[i]);
  }
  return out;
}

}  // namespace

int main() {
  using namespace pacds;
  Xoshiro256 rng(7);
  const auto placed = random_connected_placement(16, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  if (!placed) {
    std::cerr << "no connected placement found\n";
    return 1;
  }
  const Graph& g = placed->graph;

  const CdsResult cds = compute_cds(g, RuleSet::kID);
  std::cout << "network: " << g.num_nodes() << " hosts, " << g.num_edges()
            << " links\ngateways (" << cds.gateway_count
            << "): " << cds.gateways.to_string() << "\n\n";

  const DominatingSetRouter router(g, cds.gateways);

  // Gateway domain membership lists (paper Figure 2(b)).
  std::cout << "gateway domain membership lists:\n";
  cds.gateways.for_each_set([&](std::size_t gw) {
    std::cout << "  gateway " << gw << " -> {"
              << join(router.domain_members(static_cast<NodeId>(gw)), ", ")
              << "}\n";
  });

  // One full gateway routing table (paper Figure 2(c)).
  const NodeId first_gw = static_cast<NodeId>(cds.gateways.find_first());
  std::cout << "\nrouting table at gateway " << first_gw << ":\n";
  TextTable table({"gateway", "distance", "next hop", "members"});
  table.set_align(3, Align::kLeft);
  for (const GatewayTableEntry& e : router.routing_table(first_gw)) {
    table.add_row({TextTable::fmt(e.gateway), TextTable::fmt(e.distance),
                   TextTable::fmt(e.next_hop),
                   "{" + join(e.members, ", ") + "}"});
  }
  table.print(std::cout);

  // Route a few packets between non-gateway hosts (the 3-step process).
  std::cout << "\nsample routes:\n";
  int shown = 0;
  for (NodeId s = 0; s < g.num_nodes() && shown < 5; ++s) {
    if (router.is_gateway(s)) continue;
    for (NodeId t = static_cast<NodeId>(g.num_nodes() - 1); t > s && shown < 5;
         --t) {
      if (router.is_gateway(t) || g.has_edge(s, t)) continue;
      const RouteResult r = router.route(s, t);
      if (!r.delivered) continue;
      std::cout << "  " << s << " -> " << t << ":  " << join(r.path, " - ")
                << "  (" << r.path.size() - 1 << " hops)\n";
      ++shown;
      break;
    }
  }

  const StretchStats stretch = measure_stretch(g, cds.gateways);
  std::cout << "\nmean path stretch vs. global shortest paths: "
            << stretch.mean_stretch << " (max " << stretch.max_stretch
            << ")\n";

  std::cout << "\nDOT rendering (gateways highlighted):\n"
            << to_dot(g, &cds.gateways, &placed->positions);
  return 0;
}
