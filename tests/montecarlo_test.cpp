// Tests for the Monte-Carlo driver: determinism, pool/inline equivalence,
// aggregation bookkeeping.

#include "sim/montecarlo.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/json_parse.hpp"

namespace pacds {
namespace {

SimConfig tiny_config() {
  SimConfig config;
  config.n_hosts = 12;
  config.drain_model = DrainModel::kLinearTotal;
  config.rule_set = RuleSet::kID;
  return config;
}

TEST(MonteCarloTest, AggregatesRequestedTrials) {
  const LifetimeSummary s = run_lifetime_trials(tiny_config(), 8, 42);
  EXPECT_EQ(s.intervals.count, 8u);
  EXPECT_EQ(s.avg_gateways.count, 8u);
  EXPECT_GT(s.intervals.mean, 0.0);
}

TEST(MonteCarloTest, DeterministicAcrossRuns) {
  const LifetimeSummary a = run_lifetime_trials(tiny_config(), 6, 7);
  const LifetimeSummary b = run_lifetime_trials(tiny_config(), 6, 7);
  EXPECT_DOUBLE_EQ(a.intervals.mean, b.intervals.mean);
  EXPECT_DOUBLE_EQ(a.intervals.stddev, b.intervals.stddev);
  EXPECT_DOUBLE_EQ(a.avg_gateways.mean, b.avg_gateways.mean);
}

TEST(MonteCarloTest, TrialConfigForcesSerialIntervalsUnderPool) {
  // Pool-in-pool guard: with a Monte-Carlo pool, each concurrent trial
  // spinning up its own intra-interval pool would oversubscribe the host
  // trials-times-threads deep. Under a pool the per-trial config must be
  // serial; without one it must be left alone.
  SimConfig config = tiny_config();
  config.threads = 8;
  EXPECT_EQ(montecarlo_trial_config(config, /*under_pool=*/true).threads, 1);
  EXPECT_EQ(montecarlo_trial_config(config, /*under_pool=*/false).threads, 8);

  config.threads = 0;  // "auto" also counts as a pool request
  EXPECT_EQ(montecarlo_trial_config(config, /*under_pool=*/true).threads, 1);
  EXPECT_EQ(montecarlo_trial_config(config, /*under_pool=*/false).threads, 0);

  config.threads = 1;
  EXPECT_EQ(montecarlo_trial_config(config, /*under_pool=*/true).threads, 1);

  // Nothing but the thread count may change.
  config.threads = 8;
  const SimConfig derived = montecarlo_trial_config(config, true);
  EXPECT_EQ(derived.n_hosts, config.n_hosts);
  EXPECT_EQ(derived.rule_set, config.rule_set);
  EXPECT_EQ(derived.drain_model, config.drain_model);
}

TEST(MonteCarloTest, PooledRunWithThreadedConfigMatchesSerial) {
  // The oversubscription fix must not change results: a threads=4 config
  // run under a trial pool aggregates exactly like the plain serial run
  // (intervals are bit-identical across thread counts by design).
  SimConfig config = tiny_config();
  config.threads = 4;
  ThreadPool pool(3);
  const LifetimeSummary pooled = run_lifetime_trials(config, 6, 11, &pool);
  const LifetimeSummary serial = run_lifetime_trials(tiny_config(), 6, 11);
  EXPECT_DOUBLE_EQ(pooled.intervals.mean, serial.intervals.mean);
  EXPECT_DOUBLE_EQ(pooled.avg_gateways.mean, serial.avg_gateways.mean);
}

TEST(MonteCarloTest, MetricsOutputMatchesPooledAndInline) {
  // JSONL emission buffers pooled trials and splices in trial order, so the
  // record stream must not depend on pool scheduling — or on the pool
  // existing. Only the wall-clock "*_ns" timing values may differ.
  std::ostringstream inline_out;
  obs::JsonlSink inline_sink(inline_out);
  const LifetimeSummary inline_run =
      run_lifetime_trials(tiny_config(), 5, 13, nullptr, &inline_sink);

  std::ostringstream pooled_out;
  obs::JsonlSink pooled_sink(pooled_out);
  ThreadPool pool(3);
  const LifetimeSummary pooled =
      run_lifetime_trials(tiny_config(), 5, 13, &pool, &pooled_sink);

  EXPECT_EQ(inline_sink.records(), pooled_sink.records());
  EXPECT_GT(inline_sink.records(), 5u);  // manifest + >=1 interval per trial
  EXPECT_DOUBLE_EQ(inline_run.intervals.mean, pooled.intervals.mean);

  std::istringstream inline_lines(inline_out.str());
  std::istringstream pooled_lines(pooled_out.str());
  std::string inline_line;
  std::string pooled_line;
  const auto is_timing = [](const std::string& key) {
    return key.size() > 3 && key.compare(key.size() - 3, 3, "_ns") == 0;
  };
  std::size_t line_number = 0;
  while (std::getline(inline_lines, inline_line)) {
    ASSERT_TRUE(static_cast<bool>(std::getline(pooled_lines, pooled_line)));
    ++line_number;
    const JsonValue inline_doc = parse_json(inline_line);
    const JsonValue pooled_doc = parse_json(pooled_line);
    const JsonObject& a = inline_doc.as_object();
    const JsonObject& b = pooled_doc.as_object();
    ASSERT_EQ(a.size(), b.size()) << "line " << line_number;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].first, b[i].first) << "line " << line_number;
      if (is_timing(a[i].first)) continue;  // wall-clock: value may differ
      if (a[i].second.is_number()) {
        EXPECT_EQ(a[i].second.as_number(), b[i].second.as_number())
            << "line " << line_number << " key " << a[i].first;
      } else if (a[i].second.is_string()) {
        EXPECT_EQ(a[i].second.as_string(), b[i].second.as_string())
            << "line " << line_number << " key " << a[i].first;
      }
    }
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(pooled_lines, pooled_line)));
}

TEST(MonteCarloTest, PoolMatchesInline) {
  ThreadPool pool(3);
  const LifetimeSummary inline_run = run_lifetime_trials(tiny_config(), 10, 5);
  const LifetimeSummary pooled = run_lifetime_trials(tiny_config(), 10, 5,
                                                     &pool);
  EXPECT_DOUBLE_EQ(inline_run.intervals.mean, pooled.intervals.mean);
  EXPECT_DOUBLE_EQ(inline_run.intervals.stddev, pooled.intervals.stddev);
  EXPECT_DOUBLE_EQ(inline_run.avg_gateways.mean, pooled.avg_gateways.mean);
  EXPECT_DOUBLE_EQ(inline_run.avg_marked.mean, pooled.avg_marked.mean);
}

TEST(MonteCarloTest, DifferentBaseSeedsDiffer) {
  const LifetimeSummary a = run_lifetime_trials(tiny_config(), 6, 1);
  const LifetimeSummary b = run_lifetime_trials(tiny_config(), 6, 2);
  EXPECT_TRUE(a.intervals.mean != b.intervals.mean ||
              a.avg_gateways.mean != b.avg_gateways.mean);
}

TEST(MonteCarloTest, CappedTrialsCounted) {
  SimConfig config = tiny_config();
  config.drain_params.nongateway_drain = 0.0;
  config.drain_model = DrainModel::kConstantTotal;
  config.drain_params.constant_base = 0.0;
  config.max_intervals = 5;
  const LifetimeSummary s = run_lifetime_trials(config, 4, 3);
  EXPECT_EQ(s.capped_trials, 4u);
}

TEST(MonteCarloTest, ZeroTrials) {
  const LifetimeSummary s = run_lifetime_trials(tiny_config(), 0, 1);
  EXPECT_EQ(s.intervals.count, 0u);
}

}  // namespace
}  // namespace pacds
