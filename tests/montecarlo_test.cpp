// Tests for the Monte-Carlo driver: determinism, pool/inline equivalence,
// aggregation bookkeeping.

#include "sim/montecarlo.hpp"

#include <gtest/gtest.h>

namespace pacds {
namespace {

SimConfig tiny_config() {
  SimConfig config;
  config.n_hosts = 12;
  config.drain_model = DrainModel::kLinearTotal;
  config.rule_set = RuleSet::kID;
  return config;
}

TEST(MonteCarloTest, AggregatesRequestedTrials) {
  const LifetimeSummary s = run_lifetime_trials(tiny_config(), 8, 42);
  EXPECT_EQ(s.intervals.count, 8u);
  EXPECT_EQ(s.avg_gateways.count, 8u);
  EXPECT_GT(s.intervals.mean, 0.0);
}

TEST(MonteCarloTest, DeterministicAcrossRuns) {
  const LifetimeSummary a = run_lifetime_trials(tiny_config(), 6, 7);
  const LifetimeSummary b = run_lifetime_trials(tiny_config(), 6, 7);
  EXPECT_DOUBLE_EQ(a.intervals.mean, b.intervals.mean);
  EXPECT_DOUBLE_EQ(a.intervals.stddev, b.intervals.stddev);
  EXPECT_DOUBLE_EQ(a.avg_gateways.mean, b.avg_gateways.mean);
}

TEST(MonteCarloTest, PoolMatchesInline) {
  ThreadPool pool(3);
  const LifetimeSummary inline_run = run_lifetime_trials(tiny_config(), 10, 5);
  const LifetimeSummary pooled = run_lifetime_trials(tiny_config(), 10, 5,
                                                     &pool);
  EXPECT_DOUBLE_EQ(inline_run.intervals.mean, pooled.intervals.mean);
  EXPECT_DOUBLE_EQ(inline_run.intervals.stddev, pooled.intervals.stddev);
  EXPECT_DOUBLE_EQ(inline_run.avg_gateways.mean, pooled.avg_gateways.mean);
  EXPECT_DOUBLE_EQ(inline_run.avg_marked.mean, pooled.avg_marked.mean);
}

TEST(MonteCarloTest, DifferentBaseSeedsDiffer) {
  const LifetimeSummary a = run_lifetime_trials(tiny_config(), 6, 1);
  const LifetimeSummary b = run_lifetime_trials(tiny_config(), 6, 2);
  EXPECT_TRUE(a.intervals.mean != b.intervals.mean ||
              a.avg_gateways.mean != b.avg_gateways.mean);
}

TEST(MonteCarloTest, CappedTrialsCounted) {
  SimConfig config = tiny_config();
  config.drain_params.nongateway_drain = 0.0;
  config.drain_model = DrainModel::kConstantTotal;
  config.drain_params.constant_base = 0.0;
  config.max_intervals = 5;
  const LifetimeSummary s = run_lifetime_trials(config, 4, 3);
  EXPECT_EQ(s.capped_trials, 4u);
}

TEST(MonteCarloTest, ZeroTrials) {
  const LifetimeSummary s = run_lifetime_trials(tiny_config(), 0, 1);
  EXPECT_EQ(s.intervals.count, 0u);
}

}  // namespace
}  // namespace pacds
