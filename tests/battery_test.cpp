// Tests for BatteryBank: drain semantics, death detection, clamping.

#include "energy/battery.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pacds {
namespace {

TEST(BatteryTest, InitialState) {
  const BatteryBank bank(4, 100.0);
  EXPECT_EQ(bank.size(), 4u);
  EXPECT_DOUBLE_EQ(bank.initial_level(), 100.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(bank.level(i), 100.0);
    EXPECT_TRUE(bank.alive(i));
  }
  EXPECT_EQ(bank.alive_count(), 4u);
  EXPECT_FALSE(bank.any_dead());
  EXPECT_FALSE(bank.first_dead().has_value());
  EXPECT_DOUBLE_EQ(bank.min_level(), 100.0);
}

TEST(BatteryTest, NonPositiveInitialThrows) {
  EXPECT_THROW(BatteryBank(2, 0.0), std::invalid_argument);
  EXPECT_THROW(BatteryBank(2, -5.0), std::invalid_argument);
}

TEST(BatteryTest, DrainReduces) {
  BatteryBank bank(2, 10.0);
  EXPECT_FALSE(bank.drain(0, 3.0));
  EXPECT_DOUBLE_EQ(bank.level(0), 7.0);
  EXPECT_DOUBLE_EQ(bank.level(1), 10.0);
}

TEST(BatteryTest, DrainToExactlyZeroKills) {
  BatteryBank bank(2, 10.0);
  EXPECT_TRUE(bank.drain(0, 10.0));
  EXPECT_DOUBLE_EQ(bank.level(0), 0.0);
  EXPECT_FALSE(bank.alive(0));
  EXPECT_TRUE(bank.any_dead());
  EXPECT_EQ(bank.alive_count(), 1u);
  EXPECT_EQ(bank.first_dead().value(), 0u);
  EXPECT_DOUBLE_EQ(bank.min_level(), 0.0);
}

TEST(BatteryTest, OverdrainClampsAtZero) {
  BatteryBank bank(1, 5.0);
  EXPECT_TRUE(bank.drain(0, 100.0));
  EXPECT_DOUBLE_EQ(bank.level(0), 0.0);
}

TEST(BatteryTest, DrainDeadHostIsNoop) {
  BatteryBank bank(1, 5.0);
  bank.drain(0, 5.0);
  EXPECT_FALSE(bank.drain(0, 1.0));  // does not "kill" again
  EXPECT_EQ(bank.alive_count(), 0u);
}

TEST(BatteryTest, ZeroDrainKeepsAlive) {
  BatteryBank bank(1, 5.0);
  EXPECT_FALSE(bank.drain(0, 0.0));
  EXPECT_TRUE(bank.alive(0));
}

TEST(BatteryTest, NegativeDrainThrows) {
  BatteryBank bank(1, 5.0);
  EXPECT_THROW(bank.drain(0, -1.0), std::invalid_argument);
}

TEST(BatteryTest, OutOfRangeThrows) {
  BatteryBank bank(2, 5.0);
  EXPECT_THROW((void)bank.level(2), std::out_of_range);
  EXPECT_THROW(bank.drain(2, 1.0), std::out_of_range);
}

TEST(BatteryTest, FirstDeadFindsLowestIndex) {
  BatteryBank bank(3, 5.0);
  bank.drain(2, 5.0);
  bank.drain(1, 5.0);
  EXPECT_EQ(bank.first_dead().value(), 1u);
}

TEST(BatteryTest, LevelsVectorMirrorsState) {
  BatteryBank bank(3, 5.0);
  bank.drain(1, 2.0);
  EXPECT_EQ(bank.levels(), (std::vector<double>{5.0, 3.0, 5.0}));
}

TEST(BatteryTest, MinLevelTracksLowest) {
  BatteryBank bank(3, 10.0);
  bank.drain(0, 4.0);
  bank.drain(1, 7.0);
  EXPECT_DOUBLE_EQ(bank.min_level(), 3.0);
}

}  // namespace
}  // namespace pacds
