// Tests for edge-list serialization: round trips and parse errors.

#include "io/edgelist.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;

TEST(EdgelistTest, SerializeFormat) {
  const Graph g = path_graph(3);
  EXPECT_EQ(edgelist_to_string(g), "3 2\n0 1\n1 2\n");
}

TEST(EdgelistTest, RoundTrip) {
  for (const Graph& g :
       {path_graph(6), cycle_graph(7), complete_graph(5), Graph(4)}) {
    const Graph parsed = edgelist_from_string(edgelist_to_string(g));
    EXPECT_EQ(parsed, g);
  }
}

TEST(EdgelistTest, CommentsAndBlankLinesSkipped) {
  const Graph g = edgelist_from_string(
      "# a comment\n\n3 2\n# another\n0 1\n\n1 2\n");
  EXPECT_EQ(g, path_graph(3));
}

TEST(EdgelistTest, MissingHeaderThrows) {
  EXPECT_THROW((void)edgelist_from_string(""), std::runtime_error);
  EXPECT_THROW((void)edgelist_from_string("# only comments\n"),
               std::runtime_error);
}

TEST(EdgelistTest, BadHeaderThrows) {
  EXPECT_THROW((void)edgelist_from_string("3\n"), std::runtime_error);
  EXPECT_THROW((void)edgelist_from_string("-1 0\n"), std::runtime_error);
  EXPECT_THROW((void)edgelist_from_string("a b\n"), std::runtime_error);
  EXPECT_THROW((void)edgelist_from_string("3 1 9\n0 1\n"), std::runtime_error);
}

TEST(EdgelistTest, TruncatedEdgesThrow) {
  EXPECT_THROW((void)edgelist_from_string("3 2\n0 1\n"), std::runtime_error);
}

TEST(EdgelistTest, BadEdgeLinesThrow) {
  EXPECT_THROW((void)edgelist_from_string("3 1\n0\n"), std::runtime_error);
  EXPECT_THROW((void)edgelist_from_string("3 1\n0 1 2\n"), std::runtime_error);
  EXPECT_THROW((void)edgelist_from_string("3 1\n0 5\n"), std::runtime_error);
  EXPECT_THROW((void)edgelist_from_string("3 1\n1 1\n"), std::runtime_error);
  EXPECT_THROW((void)edgelist_from_string("3 2\n0 1\n1 0\n"),
               std::runtime_error);
}

TEST(EdgelistTest, ErrorMessagesCarryLineNumbers) {
  try {
    (void)edgelist_from_string("3 1\n0 5\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(EdgelistTest, StreamInterface) {
  std::istringstream is("2 1\n0 1\n");
  const Graph g = read_edgelist(is);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  std::ostringstream os;
  write_edgelist(os, g);
  EXPECT_EQ(os.str(), "2 1\n0 1\n");
}

TEST(EdgelistTest, EmptyGraphRoundTrip) {
  const Graph g = edgelist_from_string("0 0\n");
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(edgelist_to_string(g), "0 0\n");
}

}  // namespace
}  // namespace pacds
