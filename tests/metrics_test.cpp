// Tests for the structural metrics module.

#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

TEST(DegreeStatsTest, EmptyGraph) {
  const DegreeStats s = degree_stats(Graph(0));
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_TRUE(s.histogram.empty());
}

TEST(DegreeStatsTest, Path) {
  const DegreeStats s = degree_stats(path_graph(5));
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 2);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
  ASSERT_EQ(s.histogram.size(), 3u);
  EXPECT_EQ(s.histogram[0], 0u);
  EXPECT_EQ(s.histogram[1], 2u);  // two endpoints
  EXPECT_EQ(s.histogram[2], 3u);  // three interior
}

TEST(DegreeStatsTest, Star) {
  const DegreeStats s = degree_stats(star_graph(6));
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 6);
  EXPECT_EQ(s.histogram[6], 1u);
  EXPECT_EQ(s.histogram[1], 6u);
}

TEST(DensityTest, Extremes) {
  EXPECT_DOUBLE_EQ(edge_density(complete_graph(6)), 1.0);
  EXPECT_DOUBLE_EQ(edge_density(Graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(edge_density(Graph(1)), 0.0);
  // P4: 3 edges of C(4,2) = 6.
  EXPECT_DOUBLE_EQ(edge_density(path_graph(4)), 0.5);
}

TEST(ClusteringTest, CompleteGraphFullyClustered) {
  const Graph g = complete_graph(5);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering(g, v), 1.0);
  }
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
}

TEST(ClusteringTest, TreeHasNone) {
  EXPECT_DOUBLE_EQ(average_clustering(path_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(average_clustering(star_graph(5)), 0.0);
}

TEST(ClusteringTest, LowDegreeNodesAreZero) {
  const Graph g = path_graph(3);
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 0.0);  // degree 1
}

TEST(ClusteringTest, KnownMixedGraph) {
  // Triangle 0-1-2 plus pendant 3 on node 2.
  const Graph g =
      Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(local_clustering(g, 1), 1.0);
  EXPECT_DOUBLE_EQ(local_clustering(g, 2), 1.0 / 3.0);  // 1 of 3 pairs
  EXPECT_DOUBLE_EQ(local_clustering(g, 3), 0.0);
  EXPECT_DOUBLE_EQ(average_clustering(g), (1.0 + 1.0 + 1.0 / 3.0) / 4.0);
}

TEST(TriangleTest, Counts) {
  EXPECT_EQ(triangle_count(path_graph(6)), 0u);
  EXPECT_EQ(triangle_count(cycle_graph(3)), 1u);
  // K4 has C(4,3) = 4 triangles, K5 has 10.
  EXPECT_EQ(triangle_count(complete_graph(4)), 4u);
  EXPECT_EQ(triangle_count(complete_graph(5)), 10u);
}

TEST(TriangleTest, EmptyGraph) {
  EXPECT_EQ(triangle_count(Graph(0)), 0u);
  EXPECT_EQ(triangle_count(Graph(3)), 0u);
}

}  // namespace
}  // namespace pacds
