// ARQ execution of the distributed protocol under a faulty channel
// (dist::run_faulty_protocol). The contract under test: whenever the retry
// loop delivers every phase (`complete`), the gateway set is IDENTICAL to
// the reliable run — channel faults cost airtime, never correctness — and
// the whole execution is deterministic in (g, rs, channel, retry, seed).

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/cds.hpp"
#include "core/graph.hpp"
#include "core/verify.hpp"
#include "dist/channel.hpp"
#include "dist/protocol.hpp"
#include "net/radio.hpp"
#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"

namespace pacds {
namespace {

Graph random_graph(std::uint64_t seed, int n = 30) {
  Xoshiro256 rng(seed);
  const Field field(100.0, 100.0, BoundaryPolicy::kClamp);
  const auto placed =
      random_connected_placement(n, field, kPaperRadius, rng, 500);
  EXPECT_TRUE(placed.has_value());
  return placed->graph;
}

std::vector<double> ramp_energy(int n) {
  std::vector<double> energy(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    energy[static_cast<std::size_t>(i)] = 40.0 + static_cast<double>(i % 7);
  }
  return energy;
}

TEST(DistFaultsTest, ConvergesToLosslessCdsUnderSeededDrops) {
  // Satellite acceptance: drop rates 0.1 and 0.3 — once complete, the
  // gateway set equals the reliable protocol's (hence the centralized CDS).
  for (const double drop : {0.1, 0.3}) {
    dist::ChannelFaultConfig channel;
    channel.drop = drop;
    for (const RuleSet rs : {RuleSet::kNR, RuleSet::kID, RuleSet::kEL1}) {
      for (const std::uint64_t seed : {1u, 2u, 3u}) {
        const Graph g = random_graph(seed);
        const std::vector<double> energy = ramp_energy(g.num_nodes());
        const dist::FaultyProtocolResult faulty = dist::run_faulty_protocol(
            g, rs, channel, dist::RetryPolicy{}, seed, energy);
        ASSERT_TRUE(faulty.complete)
            << "drop " << drop << " seed " << seed << " not delivered";
        EXPECT_EQ(faulty.undelivered_links, 0u);
        EXPECT_EQ(faulty.status_disagreements, 0u);
        const dist::ProtocolResult reliable =
            dist::run_protocol_scheme(g, rs, energy);
        EXPECT_EQ(faulty.protocol.gateways, reliable.gateways)
            << "drop " << drop << " rs " << static_cast<int>(rs) << " seed "
            << seed;
        // Loss showed up as airtime, and the bookkeeping saw it.
        EXPECT_GT(faulty.dropped_frames, 0u);
        EXPECT_GT(faulty.retransmissions, 0u);
        EXPECT_GT(faulty.protocol.total_msgs(), reliable.total_msgs());
      }
    }
  }
}

TEST(DistFaultsTest, ZeroFaultChannelIsExactlyTheReliableRun) {
  // A zero-rate channel must not draw RNG: same gateways AND same message
  // tallies as run_protocol_scheme, no retransmissions, for any seed.
  const Graph g = random_graph(11);
  const std::vector<double> energy = ramp_energy(g.num_nodes());
  for (const RuleSet rs : {RuleSet::kID, RuleSet::kEL2}) {
    const dist::ProtocolResult reliable =
        dist::run_protocol_scheme(g, rs, energy);
    for (const std::uint64_t seed : {0u, 5u, 77u}) {
      const dist::FaultyProtocolResult faulty = dist::run_faulty_protocol(
          g, rs, dist::ChannelFaultConfig{}, dist::RetryPolicy{}, seed,
          energy);
      EXPECT_TRUE(faulty.complete);
      EXPECT_EQ(faulty.protocol.gateways, reliable.gateways);
      EXPECT_EQ(faulty.protocol.hello_msgs, reliable.hello_msgs);
      EXPECT_EQ(faulty.protocol.list_msgs, reliable.list_msgs);
      EXPECT_EQ(faulty.protocol.status_msgs, reliable.status_msgs);
      EXPECT_EQ(faulty.retransmissions, 0u);
      EXPECT_EQ(faulty.dropped_frames, 0u);
      EXPECT_EQ(faulty.duplicate_frames, 0u);
      EXPECT_EQ(faulty.delayed_frames, 0u);
      EXPECT_EQ(faulty.backoff_rounds, 0u);
      // valid_cds judges the (simultaneous-semantics) result itself, which
      // can legitimately fail check_cds — it must match the reliable run's
      // verdict, not be unconditionally true.
      EXPECT_EQ(faulty.valid_cds, check_cds(g, reliable.gateways).ok());
    }
  }
}

TEST(DistFaultsTest, DuplicationAndDelayAreHarmless) {
  // Duplicated frames hit idempotent receives; delayed frames arrive at the
  // next attempt boundary. Neither may change the converged gateway set.
  dist::ChannelFaultConfig channel;
  channel.drop = 0.15;
  channel.duplicate = 0.2;
  channel.delay = 0.25;
  for (const std::uint64_t seed : {4u, 9u}) {
    const Graph g = random_graph(seed);
    const std::vector<double> energy = ramp_energy(g.num_nodes());
    const dist::FaultyProtocolResult faulty = dist::run_faulty_protocol(
        g, RuleSet::kEL1, channel, dist::RetryPolicy{}, seed, energy);
    ASSERT_TRUE(faulty.complete) << "seed " << seed;
    EXPECT_GT(faulty.duplicate_frames, 0u);
    EXPECT_GT(faulty.delayed_frames, 0u);
    const dist::ProtocolResult reliable =
        dist::run_protocol_scheme(g, RuleSet::kEL1, energy);
    EXPECT_EQ(faulty.protocol.gateways, reliable.gateways);
    EXPECT_EQ(faulty.valid_cds, check_cds(g, reliable.gateways).ok());
  }
}

TEST(DistFaultsTest, RadioFadesDegradeTheChannelButNotTheResult) {
  // A faded radio compounds each link's drop rate:
  // 1 - (1 - channel.drop) * (1 - arq_drop(u, v)). Deeply faded pairs
  // retransmit more, but once complete the gateway set still equals the
  // reliable run's.
  const Graph g = random_graph(8);
  const std::vector<double> energy = ramp_energy(g.num_nodes());
  dist::ChannelFaultConfig channel;
  channel.drop = 0.1;
  RadioParams params;
  params.fading_seed = 21;
  const RadioModel radio(RadioKind::kShadowing, params, kPaperRadius);
  const dist::FaultyProtocolResult faded = dist::run_faulty_protocol(
      g, RuleSet::kEL1, channel, dist::RetryPolicy{}, 7, energy, &radio);
  ASSERT_TRUE(faded.complete);
  EXPECT_EQ(faded.status_disagreements, 0u);
  const dist::ProtocolResult reliable =
      dist::run_protocol_scheme(g, RuleSet::kEL1, energy);
  EXPECT_EQ(faded.protocol.gateways, reliable.gateways);
  // The compound rate strictly exceeds the plain channel's on every faded
  // link, so the faded run loses at least as many frames (same RNG stream,
  // each draw compared against a larger threshold).
  const dist::FaultyProtocolResult plain = dist::run_faulty_protocol(
      g, RuleSet::kEL1, channel, dist::RetryPolicy{}, 7, energy);
  EXPECT_GE(faded.dropped_frames, plain.dropped_frames);
  EXPECT_GT(faded.dropped_frames, 0u);
}

TEST(DistFaultsTest, UnitDiskRadioIsExactlyThePlainChannel) {
  // RadioKind::kUnitDisk contributes arq_drop == 0 everywhere, so passing
  // it must reproduce the null-radio run draw for draw.
  const Graph g = random_graph(12);
  const std::vector<double> energy = ramp_energy(g.num_nodes());
  dist::ChannelFaultConfig channel;
  channel.drop = 0.2;
  const RadioModel radio(RadioKind::kUnitDisk, {}, kPaperRadius);
  const dist::FaultyProtocolResult with_radio = dist::run_faulty_protocol(
      g, RuleSet::kEL2, channel, dist::RetryPolicy{}, 19, energy, &radio);
  const dist::FaultyProtocolResult without = dist::run_faulty_protocol(
      g, RuleSet::kEL2, channel, dist::RetryPolicy{}, 19, energy);
  EXPECT_EQ(with_radio.protocol.gateways, without.protocol.gateways);
  EXPECT_EQ(with_radio.protocol.total_msgs(), without.protocol.total_msgs());
  EXPECT_EQ(with_radio.retransmissions, without.retransmissions);
  EXPECT_EQ(with_radio.dropped_frames, without.dropped_frames);
}

TEST(DistFaultsTest, SelSchemeRunsAsEnergyIdOnSnapshots) {
  // Snapshots carry no churn history, so the SEL scheme's distributed form
  // is (energy, id) — it must agree with the centralized SEL computation
  // under empty stability.
  const Graph g = random_graph(15);
  const std::vector<double> energy = ramp_energy(g.num_nodes());
  const dist::ProtocolResult sel =
      dist::run_protocol_scheme(g, RuleSet::kSEL, energy);
  const CdsResult central = compute_cds(g, RuleSet::kSEL, energy,
                                        {.strategy = Strategy::kSimultaneous});
  EXPECT_EQ(sel.gateways, central.gateways);
}

TEST(DistFaultsTest, DeterministicInTheSeed) {
  const Graph g = random_graph(6);
  const std::vector<double> energy = ramp_energy(g.num_nodes());
  dist::ChannelFaultConfig channel;
  channel.drop = 0.3;
  channel.duplicate = 0.1;
  channel.delay = 0.1;
  const dist::FaultyProtocolResult a = dist::run_faulty_protocol(
      g, RuleSet::kEL1, channel, dist::RetryPolicy{}, 42, energy);
  const dist::FaultyProtocolResult b = dist::run_faulty_protocol(
      g, RuleSet::kEL1, channel, dist::RetryPolicy{}, 42, energy);
  EXPECT_EQ(a.protocol.gateways, b.protocol.gateways);
  EXPECT_EQ(a.protocol.total_msgs(), b.protocol.total_msgs());
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.dropped_frames, b.dropped_frames);
  EXPECT_EQ(a.duplicate_frames, b.duplicate_frames);
  EXPECT_EQ(a.delayed_frames, b.delayed_frames);
  EXPECT_EQ(a.backoff_rounds, b.backoff_rounds);

  const dist::FaultyProtocolResult c = dist::run_faulty_protocol(
      g, RuleSet::kEL1, channel, dist::RetryPolicy{}, 43, energy);
  EXPECT_NE(a.dropped_frames, c.dropped_frames);  // seed actually matters
}

TEST(DistFaultsTest, CompletionMatchesUndeliveredCount) {
  // A starved retry policy (one attempt, heavy loss) must report the truth:
  // complete == (undelivered_links == 0), and an incomplete run may
  // disagree with the reliable gateway set but still says so.
  const Graph g = random_graph(8);
  dist::ChannelFaultConfig channel;
  channel.drop = 0.6;
  dist::RetryPolicy starved;
  starved.max_attempts = 1;
  const dist::FaultyProtocolResult faulty = dist::run_faulty_protocol(
      g, RuleSet::kID, channel, starved, 3);
  EXPECT_EQ(faulty.complete, faulty.undelivered_links == 0);
  EXPECT_FALSE(faulty.complete);  // 60% loss, no retries: cannot deliver all
  EXPECT_EQ(faulty.retransmissions, 0u);
}

TEST(DistFaultsTest, RejectsInvalidConfigs) {
  const Graph g = random_graph(2, 10);
  dist::ChannelFaultConfig bad_rate;
  bad_rate.drop = 1.0;
  EXPECT_THROW((void)dist::run_faulty_protocol(g, RuleSet::kID, bad_rate,
                                               dist::RetryPolicy{}, 1),
               std::invalid_argument);
  dist::RetryPolicy bad_attempts;
  bad_attempts.max_attempts = 0;
  EXPECT_THROW(
      (void)dist::run_faulty_protocol(g, RuleSet::kID,
                                      dist::ChannelFaultConfig{},
                                      bad_attempts, 1),
      std::invalid_argument);
  dist::RetryPolicy bad_backoff;
  bad_backoff.backoff_base = 4;
  bad_backoff.backoff_cap = 2;
  EXPECT_THROW(
      (void)dist::run_faulty_protocol(g, RuleSet::kID,
                                      dist::ChannelFaultConfig{},
                                      bad_backoff, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace pacds
