// Tests for the SEL stability tracker (core/stability): EWMA arithmetic,
// quantization, the beta extremes, and the SEL key's collapse to EL1 when
// every churn estimate is equal (the "no history yet" regime both the dist
// protocol and fresh engines start in).

#include "core/stability.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cds.hpp"
#include "core/graph.hpp"

namespace pacds {
namespace {

TEST(StabilityTrackerTest, AllZeroBeforeFirstCommit) {
  const StabilityTracker tracker(3, 0.75, 0.5);
  EXPECT_EQ(tracker.stability(), std::vector<double>({0.0, 0.0, 0.0}));
}

TEST(StabilityTrackerTest, CommitFoldsCountsIntoEwma) {
  StabilityTracker tracker(2, 0.75, 0.0);  // quantum 0: raw EWMA visible
  tracker.count(0);
  tracker.count(0);
  tracker.count(1);
  tracker.commit();
  // ewma = 0.75 * 0 + 0.25 * count
  EXPECT_DOUBLE_EQ(tracker.stability()[0], 0.5);
  EXPECT_DOUBLE_EQ(tracker.stability()[1], 0.25);
  tracker.commit();  // quiet interval: decay only
  EXPECT_DOUBLE_EQ(tracker.stability()[0], 0.375);
  EXPECT_DOUBLE_EQ(tracker.stability()[1], 0.1875);
}

TEST(StabilityTrackerTest, QuantizationBuckets) {
  StabilityTracker tracker(1, 0.0, 0.5);  // beta 0: latest interval only
  for (int i = 0; i < 3; ++i) tracker.count(0);
  tracker.commit();  // ewma = 3.0 -> floor(3.0 / 0.5) = 6 buckets
  EXPECT_DOUBLE_EQ(tracker.stability()[0], 6.0);
  tracker.commit();  // ewma = 0 -> bucket 0
  EXPECT_DOUBLE_EQ(tracker.stability()[0], 0.0);
}

TEST(StabilityTrackerTest, BetaOneFreezesTheEstimate) {
  StabilityTracker tracker(1, 1.0, 0.0);
  tracker.count(0);
  tracker.commit();
  EXPECT_DOUBLE_EQ(tracker.stability()[0], 0.0);  // (1-beta) weight is 0
  tracker.commit();
  EXPECT_DOUBLE_EQ(tracker.stability()[0], 0.0);
}

// With no stability history (empty vector), every host's churn estimate is
// equal, so the SEL key must order exactly like EL1's (energy, id) — the
// dist snapshot protocol relies on this collapse.
TEST(StabilityTrackerTest, SelWithoutHistoryEqualsEl1) {
  // A 6-cycle with a chord: enough structure for the rules to prune.
  const Graph g = Graph::from_edges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}});
  const std::vector<double> energy{3.0, 1.0, 4.0, 1.0, 5.0, 2.0};
  const CdsResult sel = compute_cds(g, RuleSet::kSEL, energy);
  const CdsResult el1 = compute_cds(g, RuleSet::kEL1, energy);
  EXPECT_EQ(sel.gateways, el1.gateways);
  EXPECT_EQ(sel.marked_only, el1.marked_only);
}

// And with all-equal (but non-empty) stability the same collapse holds.
TEST(StabilityTrackerTest, SelWithUniformStabilityEqualsEl1) {
  const Graph g = Graph::from_edges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}});
  const std::vector<double> energy{3.0, 1.0, 4.0, 1.0, 5.0, 2.0};
  const std::vector<double> uniform(6, 2.0);
  const CdsResult sel = compute_cds(g, RuleSet::kSEL, energy, {}, {}, uniform);
  const CdsResult el1 = compute_cds(g, RuleSet::kEL1, energy);
  EXPECT_EQ(sel.gateways, el1.gateways);
}

// A high-churn host must yield gatewayhood to an equally-energized stable
// one: stability dominates the key.
TEST(StabilityTrackerTest, ChurnierHostYieldsFirst) {
  // Path 0-1-2-3: both 1 and 2 are marked; Rule 1/2 pruning is driven by
  // the key order between them.
  const Graph g =
      Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}, {1, 3}});
  const std::vector<double> energy(4, 5.0);  // all-equal energy
  std::vector<double> churn{0.0, 3.0, 0.0, 0.0};  // host 1 is flapping
  const CdsResult sel =
      compute_cds(g, RuleSet::kSEL, energy, {}, {}, churn);
  churn = {0.0, 0.0, 3.0, 0.0};  // now host 2 is the flapper
  const CdsResult flipped =
      compute_cds(g, RuleSet::kSEL, energy, {}, {}, churn);
  // The two runs must disagree exactly by preferring the stable host.
  EXPECT_NE(sel.gateways, flipped.gateways);
}

}  // namespace
}  // namespace pacds
