// Tests for random placement and the retry-until-connected generator.

#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pacds {
namespace {

TEST(TopologyTest, PlacementInsideField) {
  Xoshiro256 rng(1);
  const Field field = Field::paper_field();
  const auto pts = random_placement(200, field, rng);
  EXPECT_EQ(pts.size(), 200u);
  for (const Vec2 p : pts) EXPECT_TRUE(field.contains(p));
}

TEST(TopologyTest, PlacementZeroHosts) {
  Xoshiro256 rng(1);
  EXPECT_TRUE(random_placement(0, Field::paper_field(), rng).empty());
}

TEST(TopologyTest, PlacementNegativeThrows) {
  Xoshiro256 rng(1);
  EXPECT_THROW((void)random_placement(-1, Field::paper_field(), rng),
               std::invalid_argument);
}

TEST(TopologyTest, PlacementDeterministic) {
  const Field field = Field::paper_field();
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  EXPECT_EQ(random_placement(10, field, a), random_placement(10, field, b));
}

TEST(TopologyTest, ConnectedPlacementIsConnected) {
  Xoshiro256 rng(7);
  const auto placed = random_connected_placement(40, Field::paper_field(),
                                                 kPaperRadius, rng, 1000);
  ASSERT_TRUE(placed.has_value());
  EXPECT_TRUE(placed->graph.is_connected());
  EXPECT_EQ(placed->positions.size(), 40u);
  EXPECT_GE(placed->attempts, 1);
  // Graph matches a rebuild from the returned positions.
  EXPECT_EQ(placed->graph, build_udg(placed->positions, kPaperRadius));
}

TEST(TopologyTest, DenseNetworkConnectsFirstTry) {
  Xoshiro256 rng(8);
  // Radius >= field diagonal: always one clique.
  const auto placed = random_connected_placement(10, Field::paper_field(),
                                                 200.0, rng, 3);
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(placed->attempts, 1);
  EXPECT_TRUE(placed->graph.is_complete());
}

TEST(TopologyTest, ImpossibleConnectivityReturnsNullopt) {
  Xoshiro256 rng(9);
  // Radius 0 with several hosts: essentially never connected.
  const auto placed = random_connected_placement(5, Field::paper_field(),
                                                 0.0, rng, 10);
  EXPECT_FALSE(placed.has_value());
}

TEST(TopologyTest, SingleHostAlwaysConnected) {
  Xoshiro256 rng(10);
  const auto placed = random_connected_placement(1, Field::paper_field(),
                                                 0.0, rng, 1);
  ASSERT_TRUE(placed.has_value());
  EXPECT_TRUE(placed->graph.is_connected());
}

TEST(TopologyTest, BadRetriesThrows) {
  Xoshiro256 rng(11);
  EXPECT_THROW((void)random_connected_placement(5, Field::paper_field(), 25.0,
                                                rng, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pacds
