// Model-based fuzz test for Graph: random mutation sequences are mirrored
// into a trivially-correct adjacency-matrix model; every queried property
// must agree after every step. Catches representation drift between the
// sorted-adjacency and bitset-row views.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/graph.hpp"
#include "net/rng.hpp"

namespace pacds {
namespace {

/// The reference model: O(n^2) adjacency matrix with obvious semantics.
class ModelGraph {
 public:
  explicit ModelGraph(NodeId n)
      : n_(n), adj_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                    0) {}

  bool add_edge(NodeId u, NodeId v) {
    if (at(u, v)) return false;
    at(u, v) = at(v, u) = 1;
    ++m_;
    return true;
  }
  bool remove_edge(NodeId u, NodeId v) {
    if (!at(u, v)) return false;
    at(u, v) = at(v, u) = 0;
    --m_;
    return true;
  }
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return u != v && at(u, v);
  }
  [[nodiscard]] std::size_t num_edges() const { return m_; }
  [[nodiscard]] NodeId degree(NodeId v) const {
    NodeId d = 0;
    for (NodeId u = 0; u < n_; ++u) {
      if (u != v && at(v, u)) ++d;
    }
    return d;
  }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId v) const {
    std::vector<NodeId> out;
    for (NodeId u = 0; u < n_; ++u) {
      if (u != v && at(v, u)) out.push_back(u);
    }
    return out;
  }
  /// N[v] ⊆ N[u], straight from the matrix.
  [[nodiscard]] bool closed_covered_by(NodeId v, NodeId u) const {
    for (NodeId x = 0; x < n_; ++x) {
      const bool in_nv = x == v || has_edge(v, x);
      const bool in_nu = x == u || has_edge(u, x);
      if (in_nv && !in_nu) return false;
    }
    return true;
  }
  /// N(v) ⊆ N[u].
  [[nodiscard]] bool open_covered_by_closed(NodeId v, NodeId u) const {
    for (NodeId x = 0; x < n_; ++x) {
      if (has_edge(v, x) && x != u && !has_edge(u, x)) return false;
    }
    return true;
  }
  /// N(v) ⊆ N(u) ∪ N(w).
  [[nodiscard]] bool open_covered_by_pair(NodeId v, NodeId u, NodeId w) const {
    for (NodeId x = 0; x < n_; ++x) {
      if (has_edge(v, x) && !has_edge(u, x) && !has_edge(w, x)) return false;
    }
    return true;
  }

 private:
  char& at(NodeId u, NodeId v) {
    return adj_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(v)];
  }
  [[nodiscard]] char at(NodeId u, NodeId v) const {
    return adj_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(v)];
  }

  NodeId n_;
  std::size_t m_ = 0;
  std::vector<char> adj_;
};

void expect_equivalent(const Graph& g, const ModelGraph& model, NodeId n) {
  ASSERT_EQ(g.num_edges(), model.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(g.degree(v), model.degree(v)) << "node " << v;
    const auto nbrs = g.neighbors(v);
    ASSERT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
              model.neighbors(v))
        << "node " << v;
    for (NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(g.has_edge(v, u), model.has_edge(v, u))
          << v << "-" << u;
      ASSERT_EQ(g.closed_covered_by(v, u), model.closed_covered_by(v, u))
          << "closed coverage " << v << "-" << u;
      ASSERT_EQ(g.open_covered_by_closed(v, u),
                model.open_covered_by_closed(v, u))
          << "open-closed coverage " << v << "-" << u;
      for (NodeId w = 0; w < n; ++w) {
        ASSERT_EQ(g.open_covered_by_pair(v, u, w),
                  model.open_covered_by_pair(v, u, w))
            << "pair coverage " << v << " by " << u << "," << w;
      }
    }
  }
}

class GraphModelTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(GraphModelTest, RandomMutationSequence) {
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  Graph g(static_cast<NodeId>(n));
  ModelGraph model(static_cast<NodeId>(n));
  for (int step = 0; step < 400; ++step) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    auto v = u;
    while (v == u) v = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (rng.bernoulli(0.6)) {
      ASSERT_EQ(g.add_edge(u, v), model.add_edge(u, v))
          << "add " << u << "-" << v << " step " << step;
    } else {
      ASSERT_EQ(g.remove_edge(u, v), model.remove_edge(u, v))
          << "remove " << u << "-" << v << " step " << step;
    }
    if (step % 40 == 0) {
      expect_equivalent(g, model, static_cast<NodeId>(n));
    }
  }
  expect_equivalent(g, model, static_cast<NodeId>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, GraphModelTest,
    ::testing::Combine(::testing::Values(4, 9, 17, 33),
                       ::testing::Values(81u, 82u, 83u)),
    [](const ::testing::TestParamInfo<GraphModelTest::ParamType>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace pacds
