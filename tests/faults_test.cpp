// Fault-injection subsystem: plan parsing/validation, the injector's down
// tracking, degraded-mode trial semantics, and the acceptance invariants of
// the fault layer —
//   1. an empty plan is the identity: bit-identical trials for both engines;
//   2. a seeded plan is deterministic: serial and pooled runs emit identical
//      fault_event/interval streams modulo *_ns timings, and the two engines
//      agree on everything but repair cost;
//   3. self-healing: killing a non-articulation gateway leaves the surviving
//      backbone connected and dominating within one repair round.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/cds22.hpp"
#include "core/articulation.hpp"
#include "core/bitset.hpp"
#include "core/cds.hpp"
#include "core/graph.hpp"
#include "energy/battery.hpp"
#include "io/json.hpp"
#include "io/json_parse.hpp"
#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"
#include "net/vec2.hpp"
#include "obs/jsonl.hpp"
#include "sim/faults.hpp"
#include "sim/lifetime.hpp"
#include "sim/montecarlo.hpp"
#include "sim/threadpool.hpp"
#include "sim/trace.hpp"

namespace pacds {
namespace {

// ---- plan parsing ----------------------------------------------------------

TEST(FaultPlanTest, EmptyObjectIsIdentityPlan) {
  const FaultPlan plan = parse_fault_plan("{}");
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_lifetime_events());
  EXPECT_EQ(plan.seed, 0u);
  EXPECT_EQ(plan.retry.max_attempts, 12);
  EXPECT_EQ(plan.retry.backoff_base, 1);
  EXPECT_EQ(plan.retry.backoff_cap, 8);
  EXPECT_FALSE(plan.channel.any());
}

TEST(FaultPlanTest, FullPlanRoundTripsThroughWriter) {
  FaultPlan plan;
  plan.seed = 42;
  plan.crashes = {{3, 2, 7}, {5, 4, 0}};
  plan.thefts = {{1, 3, 25.5}};
  plan.blackouts = {{10.0, 10.0, 40.0, 40.0, 6, 9}};
  plan.channel.drop = 0.25;
  plan.channel.duplicate = 0.05;
  plan.channel.delay = 0.1;
  plan.retry.max_attempts = 6;
  plan.retry.backoff_base = 2;
  plan.retry.backoff_cap = 16;

  std::ostringstream text;
  JsonWriter json(text);
  write_fault_plan(json, plan);
  const FaultPlan back = parse_fault_plan(text.str());

  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.crashes.size(), 2u);
  EXPECT_EQ(back.crashes[0].node, 3);
  EXPECT_EQ(back.crashes[0].at, 2);
  EXPECT_EQ(back.crashes[0].recover_at, 7);
  EXPECT_EQ(back.crashes[1].recover_at, 0);
  ASSERT_EQ(back.thefts.size(), 1u);
  EXPECT_DOUBLE_EQ(back.thefts[0].amount, 25.5);
  ASSERT_EQ(back.blackouts.size(), 1u);
  EXPECT_DOUBLE_EQ(back.blackouts[0].x1, 40.0);
  EXPECT_EQ(back.blackouts[0].until, 9);
  EXPECT_DOUBLE_EQ(back.channel.drop, 0.25);
  EXPECT_EQ(back.retry.max_attempts, 6);
  EXPECT_EQ(back.retry.backoff_cap, 16);
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  // Unknown keys fail loudly so typos cannot silently disable faults.
  EXPECT_THROW((void)parse_fault_plan(R"({"crashs": []})"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_plan(R"({"crashes": [{"node": 1}]})"),
               std::runtime_error);  // missing "at"
  EXPECT_THROW(
      (void)parse_fault_plan(R"({"crashes": [{"node": 1, "at": 0}]})"),
      std::runtime_error);  // intervals are 1-based
  EXPECT_THROW(
      (void)parse_fault_plan(
          R"({"crashes": [{"node": 1, "at": 5, "recover_at": 5}]})"),
      std::runtime_error);  // recovery must be after the crash
  EXPECT_THROW(
      (void)parse_fault_plan(
          R"({"thefts": [{"node": 1, "at": 2, "amount": 0}]})"),
      std::runtime_error);  // thefts steal a positive amount
  EXPECT_THROW((void)parse_fault_plan(R"({"channel": {"drop": 1.0}})"),
               std::runtime_error);  // rates live in [0, 1)
  EXPECT_THROW(
      (void)parse_fault_plan(
          R"({"channel": {"backoff_base": 4, "backoff_cap": 2}})"),
      std::runtime_error);
  EXPECT_THROW(
      (void)parse_fault_plan(
          R"({"blackouts": [{"x0": 5, "y0": 0, "x1": 1, "y1": 9, "at": 1}]})"),
      std::runtime_error);  // inverted region
  EXPECT_THROW((void)parse_fault_plan("[]"), std::runtime_error);
}

TEST(FaultPlanTest, ValidateChecksNodeRange) {
  FaultPlan plan;
  plan.crashes = {{9, 1, 0}};
  EXPECT_NO_THROW(validate_fault_plan(plan, 10));
  EXPECT_THROW(validate_fault_plan(plan, 9), std::invalid_argument);
  plan.crashes.clear();
  plan.thefts = {{-1, 1, 5.0}};
  EXPECT_THROW(validate_fault_plan(plan, 10), std::invalid_argument);
}

TEST(FaultPlanTest, ScheduleSortsByIntervalStably) {
  FaultPlan plan;
  plan.crashes = {{0, 5, 8}, {1, 2, 0}};
  plan.thefts = {{2, 5, 10.0}};
  plan.blackouts = {{0, 0, 10, 10, 2, 5}};
  const std::vector<ScheduledFault> schedule = resolve_schedule(plan);
  ASSERT_EQ(schedule.size(), 6u);
  // Interval 2: crash(node 1) before blackout entry; interval 5: crash
  // before theft before blackout exit; interval 8: the recovery.
  EXPECT_EQ(schedule[0].interval, 2);
  EXPECT_EQ(schedule[0].node, 1);
  EXPECT_EQ(schedule[1].interval, 2);
  EXPECT_EQ(schedule[1].blackout, 0);
  EXPECT_EQ(schedule[2].interval, 5);
  EXPECT_EQ(schedule[2].kind, FaultKind::kCrash);
  EXPECT_EQ(schedule[3].kind, FaultKind::kTheft);
  EXPECT_EQ(schedule[4].kind, FaultKind::kRecover);
  EXPECT_EQ(schedule[4].cause, FaultCause::kBlackout);
  EXPECT_EQ(schedule[5].interval, 8);
  EXPECT_EQ(schedule[5].kind, FaultKind::kRecover);
}

// ---- injector --------------------------------------------------------------

TEST(FaultInjectorTest, CrashRecoverTheftAndDeath) {
  FaultPlan plan;
  plan.crashes = {{0, 2, 4}};
  plan.thefts = {{1, 3, 150.0}};  // overkill: must kill host 1
  FaultInjector injector(plan, 4, 100.0, 25.0);
  BatteryBank batteries(4, 100.0);
  const std::vector<Vec2> positions(4, Vec2{50.0, 50.0});
  std::vector<FaultRecord> events;

  injector.apply(1, positions, batteries, events);
  EXPECT_TRUE(events.empty());
  EXPECT_FALSE(injector.take_down_changed());

  injector.apply(2, positions, batteries, events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(events[0].node, 0);
  EXPECT_EQ(events[0].down, 1u);
  EXPECT_TRUE(injector.take_down_changed());
  EXPECT_FALSE(injector.take_down_changed());  // flag is one-shot
  EXPECT_TRUE(injector.down().test(0));

  events.clear();
  injector.apply(3, positions, batteries, events);
  // Theft drains host 1 to zero: one theft record plus one death record.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kTheft);
  EXPECT_DOUBLE_EQ(events[0].amount, 150.0);
  EXPECT_EQ(events[1].kind, FaultKind::kDeath);
  EXPECT_EQ(events[1].cause, FaultCause::kBattery);
  EXPECT_DOUBLE_EQ(batteries.levels()[1], 0.0);
  EXPECT_EQ(injector.down_count(), 2u);

  events.clear();
  injector.apply(4, positions, batteries, events);
  // Host 0 recovers; the dead host 1 stays down forever.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kRecover);
  EXPECT_FALSE(injector.down().test(0));
  EXPECT_TRUE(injector.down().test(1));
  EXPECT_EQ(injector.down_count(), 1u);
}

TEST(FaultInjectorTest, DeadHostsDoNotRecover) {
  FaultPlan plan;
  plan.crashes = {{0, 2, 5}};
  FaultInjector injector(plan, 2, 100.0, 25.0);
  BatteryBank batteries(2, 100.0);
  const std::vector<Vec2> positions(2, Vec2{1.0, 1.0});
  std::vector<FaultRecord> events;
  injector.apply(2, positions, batteries, events);
  // The crashed host's battery dies while it is down.
  injector.record_death(0, 3, events);
  events.clear();
  injector.record_death(0, 3, events);  // idempotent
  injector.apply(5, positions, batteries, events);
  EXPECT_TRUE(events.empty());  // no recover record: death is permanent
  EXPECT_TRUE(injector.down().test(0));
  EXPECT_EQ(injector.down_count(), 1u);
}

TEST(FaultInjectorTest, BlackoutCapturesAtEntryAndReleasesSameHosts) {
  FaultPlan plan;
  plan.blackouts = {{0.0, 0.0, 10.0, 10.0, 2, 4}};
  FaultInjector injector(plan, 3, 100.0, 25.0);
  BatteryBank batteries(3, 100.0);
  std::vector<Vec2> positions = {{5.0, 5.0}, {8.0, 2.0}, {50.0, 50.0}};
  std::vector<FaultRecord> events;

  injector.apply(2, positions, batteries, events);
  ASSERT_EQ(events.size(), 2u);  // hosts 0 and 1 are inside the region
  EXPECT_EQ(events[0].cause, FaultCause::kBlackout);
  EXPECT_EQ(injector.down_count(), 2u);

  // Membership was resolved at entry: moving host 0 out of the region does
  // not change who is released at exit.
  positions[0] = {90.0, 90.0};
  events.clear();
  injector.apply(4, positions, batteries, events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kRecover);
  EXPECT_EQ(events[1].kind, FaultKind::kRecover);
  EXPECT_EQ(injector.down_count(), 0u);
}

TEST(FaultInjectorTest, ParkedPositionsAreIsolated) {
  FaultPlan plan;
  plan.crashes = {{0, 1, 0}, {1, 1, 0}};
  const double radius = 25.0;
  FaultInjector injector(plan, 3, 100.0, radius);
  BatteryBank batteries(3, 100.0);
  const std::vector<Vec2> positions(3, Vec2{50.0, 50.0});
  std::vector<FaultRecord> events;
  injector.apply(1, positions, batteries, events);

  const std::vector<Vec2>& effective = injector.effective_positions(positions);
  ASSERT_EQ(effective.size(), 3u);
  EXPECT_EQ(effective[2], positions[2]);  // functioning host untouched
  // Parked hosts sit beyond the field and > radius from everything.
  for (const std::size_t host : {std::size_t{0}, std::size_t{1}}) {
    EXPECT_GT(effective[host].x, 100.0 + radius);
    EXPECT_GT(distance2(effective[host], effective[2]), radius * radius);
  }
  EXPECT_GT(distance2(effective[0], effective[1]), radius * radius);
}

TEST(FaultInjectorTest, EffectivePositionsIsPassThroughWhenNobodyIsDown) {
  const FaultPlan plan;
  FaultInjector injector(plan, 2, 100.0, 25.0);
  const std::vector<Vec2> positions(2, Vec2{1.0, 2.0});
  EXPECT_EQ(&injector.effective_positions(positions), &positions);
}

// ---- backbone health -------------------------------------------------------

TEST(AssessBackboneTest, ReportsCoverageAndConnectivity) {
  // Path 0-1-2-3-4 with gateways {1, 2, 3}: a valid CDS.
  Graph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  DynBitset gateways(5);
  gateways.set(1);
  gateways.set(2);
  gateways.set(3);
  DynBitset down(5);
  DynBitset scratch(5);

  BackboneHealth health = assess_backbone(g, gateways, down, scratch);
  EXPECT_TRUE(health.backbone_ok);
  EXPECT_DOUBLE_EQ(health.coverage, 1.0);
  EXPECT_EQ(health.active, 5u);
  EXPECT_EQ(health.active_gateways, 3u);
  EXPECT_TRUE(scratch.test(1));

  // Losing gateway 2 splits the backbone ({1} and {3} are not connected in
  // g) but leaves every active host dominated.
  down.set(2);
  health = assess_backbone(g, gateways, down, scratch);
  EXPECT_FALSE(scratch.test(2));  // scratch holds the active gateway set
  EXPECT_FALSE(health.backbone_ok);
  EXPECT_EQ(health.active, 4u);
  EXPECT_EQ(health.active_gateways, 2u);
  EXPECT_DOUBLE_EQ(health.coverage, 1.0);  // 0,1 via 1; 3,4 via 3

  // Losing gateways 1 and 3 instead leaves hosts 0 and 4 uncovered.
  down = DynBitset(5);
  down.set(1);
  down.set(3);
  health = assess_backbone(g, gateways, down, scratch);
  EXPECT_EQ(health.active_gateways, 1u);
  EXPECT_DOUBLE_EQ(health.coverage, 1.0 / 3.0);  // only 2 of {0, 2, 4}
}

// ---- degraded-mode trials --------------------------------------------------

SimConfig faulted_config(SimEngine engine) {
  SimConfig config;
  config.n_hosts = 24;
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.engine = engine;
  config.max_intervals = 400;
  return config;
}

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.crashes = {{3, 2, 6}, {7, 4, 0}};
  plan.thefts = {{1, 3, 30.0}};
  plan.blackouts = {{0.0, 0.0, 30.0, 30.0, 8, 12}};
  return plan;
}

void expect_same_trial(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_DOUBLE_EQ(a.avg_gateways, b.avg_gateways);
  EXPECT_DOUBLE_EQ(a.avg_marked, b.avg_marked);
  EXPECT_EQ(a.hit_cap, b.hit_cap);
  EXPECT_EQ(a.initial_connected, b.initial_connected);
  EXPECT_EQ(a.placement_attempts, b.placement_attempts);
}

TEST(DegradedModeTest, EmptyPlanIsBitIdenticalToFaultFreeRun) {
  // Pinned acceptance invariant: a null-equivalent plan must take the exact
  // fault-free code path — same TrialResult, same trace, both engines.
  const FaultPlan empty;
  ASSERT_TRUE(empty.empty());
  for (const SimEngine engine :
       {SimEngine::kFullRebuild, SimEngine::kIncremental}) {
    const SimConfig config = faulted_config(engine);
    for (const std::uint64_t seed : {7u, 21u, 99u}) {
      SimTrace base_trace;
      SimTrace plan_trace;
      const TrialResult base = run_lifetime_trial(config, seed, &base_trace);
      const TrialResult with_plan =
          run_lifetime_trial(config, seed, &plan_trace, &empty);
      expect_same_trial(base, with_plan);
      EXPECT_EQ(with_plan.faults, FaultStats{});
      EXPECT_TRUE(plan_trace.fault_records.empty());
      ASSERT_EQ(base_trace.records.size(), plan_trace.records.size());
      for (std::size_t i = 0; i < base_trace.records.size(); ++i) {
        EXPECT_EQ(base_trace.records[i].gateways,
                  plan_trace.records[i].gateways);
        EXPECT_EQ(base_trace.records[i].marked, plan_trace.records[i].marked);
        EXPECT_EQ(base_trace.records[i].alive, plan_trace.records[i].alive);
        EXPECT_DOUBLE_EQ(base_trace.records[i].min_energy,
                         plan_trace.records[i].min_energy);
      }
    }
  }
}

TEST(DegradedModeTest, FaultedRunSharesPlacementWithFaultFreeTwin) {
  // The plan consumes no randomness: interval 1 (before any event applies)
  // must look identical to the fault-free twin of the same seed.
  const SimConfig config = faulted_config(SimEngine::kAuto);
  const FaultPlan plan = sample_plan();
  SimTrace faulted;
  SimTrace clean;
  (void)run_lifetime_trial(config, 33, &faulted, &plan);
  (void)run_lifetime_trial(config, 33, &clean);
  ASSERT_FALSE(faulted.records.empty());
  ASSERT_FALSE(clean.records.empty());
  EXPECT_EQ(faulted.records[0].gateways, clean.records[0].gateways);
  EXPECT_EQ(faulted.records[0].marked, clean.records[0].marked);
}

TEST(DegradedModeTest, EnginesAgreeOnFaultedRuns) {
  // Both engines must tell the same degraded-mode story; only the repair
  // cost fields (touched, ns) may differ — localized repair is the point.
  const FaultPlan plan = sample_plan();
  for (const std::uint64_t seed : {5u, 17u, 40u}) {
    SimTrace full_trace;
    SimTrace incr_trace;
    const TrialResult full = run_lifetime_trial(
        faulted_config(SimEngine::kFullRebuild), seed, &full_trace, &plan);
    const TrialResult incr = run_lifetime_trial(
        faulted_config(SimEngine::kIncremental), seed, &incr_trace, &plan);
    expect_same_trial(full, incr);

    FaultStats a = full.faults;
    FaultStats b = incr.faults;
    a.repair_ns_total = b.repair_ns_total = 0;
    a.repair_touched_total = b.repair_touched_total = 0;
    EXPECT_EQ(a, b);

    ASSERT_EQ(full_trace.fault_records.size(), incr_trace.fault_records.size());
    for (std::size_t i = 0; i < full_trace.fault_records.size(); ++i) {
      const FaultRecord& fr = full_trace.fault_records[i];
      const FaultRecord& ir = incr_trace.fault_records[i];
      EXPECT_EQ(fr.interval, ir.interval);
      EXPECT_EQ(fr.kind, ir.kind);
      EXPECT_EQ(fr.cause, ir.cause);
      EXPECT_EQ(fr.node, ir.node);
      EXPECT_EQ(fr.down, ir.down);
      EXPECT_EQ(fr.backbone_ok, ir.backbone_ok);
      EXPECT_DOUBLE_EQ(fr.coverage, ir.coverage);
      EXPECT_EQ(fr.gateways, ir.gateways);
    }
  }
}

TEST(DegradedModeTest, SerialAndPooledStreamsMatchModuloTimings) {
  // Acceptance invariant: with a seeded plan, serial vs. threaded runs emit
  // identical fault_event/interval streams modulo the *_ns fields.
  const SimConfig config = faulted_config(SimEngine::kAuto);
  const FaultPlan plan = sample_plan();

  std::ostringstream serial_out;
  obs::JsonlSink serial_sink(serial_out);
  (void)run_lifetime_trials(config, 3, 19, nullptr, &serial_sink, &plan);

  std::ostringstream pooled_out;
  obs::JsonlSink pooled_sink(pooled_out);
  ThreadPool pool(3);
  (void)run_lifetime_trials(config, 3, 19, &pool, &pooled_sink, &plan);

  EXPECT_EQ(serial_sink.records(), pooled_sink.records());
  std::istringstream serial_lines(serial_out.str());
  std::istringstream pooled_lines(pooled_out.str());
  std::string serial_line;
  std::string pooled_line;
  const auto is_timing = [](const std::string& key) {
    return key.size() > 3 && key.compare(key.size() - 3, 3, "_ns") == 0;
  };
  bool saw_fault_event = false;
  std::size_t line_number = 0;
  while (std::getline(serial_lines, serial_line)) {
    ASSERT_TRUE(static_cast<bool>(std::getline(pooled_lines, pooled_line)));
    ++line_number;
    const JsonValue serial_doc = parse_json(serial_line);
    const JsonValue pooled_doc = parse_json(pooled_line);
    const JsonObject& a = serial_doc.as_object();
    const JsonObject& b = pooled_doc.as_object();
    ASSERT_EQ(a.size(), b.size()) << "line " << line_number;
    const JsonValue* type = serial_doc.find("type");
    ASSERT_NE(type, nullptr) << "line " << line_number;
    if (type->as_string() == "fault_event") saw_fault_event = true;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].first, b[i].first) << "line " << line_number;
      if (is_timing(a[i].first)) continue;  // wall-clock: value may differ
      if (a[i].second.is_number()) {
        EXPECT_EQ(a[i].second.as_number(), b[i].second.as_number())
            << "line " << line_number << " key " << a[i].first;
      } else if (a[i].second.is_string()) {
        EXPECT_EQ(a[i].second.as_string(), b[i].second.as_string())
            << "line " << line_number << " key " << a[i].first;
      } else if (a[i].second.is_bool()) {
        EXPECT_EQ(a[i].second.as_bool(), b[i].second.as_bool())
            << "line " << line_number << " key " << a[i].first;
      } else {
        EXPECT_EQ(a[i].second.is_null(), b[i].second.is_null())
            << "line " << line_number << " key " << a[i].first;
      }
    }
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(pooled_lines, pooled_line)));
  EXPECT_TRUE(saw_fault_event);
}

TEST(DegradedModeTest, ManifestEmbedsThePlan) {
  const SimConfig config = faulted_config(SimEngine::kAuto);
  const FaultPlan plan = sample_plan();
  std::ostringstream out;
  obs::JsonlSink sink(out);
  (void)run_lifetime_trials(config, 1, 3, nullptr, &sink, &plan);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(lines, line)));
  const JsonValue manifest = parse_json(line);
  ASSERT_NE(manifest.find("type"), nullptr);
  EXPECT_EQ(manifest.find("type")->as_string(), "run_manifest");
  const JsonValue* faults = manifest.find("faults");
  ASSERT_NE(faults, nullptr);
  ASSERT_TRUE(faults->is_object());
  EXPECT_EQ(faults->find("crashes")->as_array().size(), 2u);

  // Fault-free runs pin the key to null (additive-schema guarantee).
  std::ostringstream clean_out;
  obs::JsonlSink clean_sink(clean_out);
  (void)run_lifetime_trials(config, 1, 3, nullptr, &clean_sink);
  std::istringstream clean_lines(clean_out.str());
  ASSERT_TRUE(static_cast<bool>(std::getline(clean_lines, line)));
  const JsonValue clean_manifest = parse_json(line);
  ASSERT_NE(clean_manifest.find("faults"), nullptr);
  EXPECT_TRUE(clean_manifest.find("faults")->is_null());
}

TEST(DegradedModeTest, RunContinuesPastFirstDeathAndCountsIt) {
  const SimConfig config = faulted_config(SimEngine::kAuto);
  const FaultPlan plan = sample_plan();
  SimTrace trace;
  const TrialResult faulted = run_lifetime_trial(config, 11, &trace, &plan);
  const TrialResult clean = run_lifetime_trial(config, 11);
  EXPECT_GT(faulted.intervals, clean.intervals);  // the degraded run goes on
  EXPECT_GT(faulted.faults.deaths, 0u);
  EXPECT_GT(faulted.faults.first_death_interval, 0);
  EXPECT_GT(faulted.faults.repairs, 0u);
  EXPECT_GT(faulted.faults.events, 0u);
  const auto crashes = static_cast<std::size_t>(std::count_if(
      trace.fault_records.begin(), trace.fault_records.end(),
      [](const FaultRecord& r) { return r.kind == FaultKind::kCrash; }));
  EXPECT_EQ(faulted.faults.crashes, crashes);
}

TEST(DegradedModeTest, DeathInFirstIntervalIsNotTheNoDeathSentinel) {
  // Regression: with the old 0-means-no-death sentinel, a death recorded at
  // interval 1 was only representable because intervals are 1-based — but
  // any code treating 0/"falsy" as "no death yet" could overwrite it with a
  // later death. The sentinel is -1 now; interval 1 is a real value.
  const SimConfig config = faulted_config(SimEngine::kAuto);
  FaultPlan plan;
  // A theft at interval 1 larger than the initial budget kills immediately.
  plan.thefts = {{0, 1, config.initial_energy + 1.0}};
  SimTrace trace;
  const TrialResult faulted = run_lifetime_trial(config, 11, &trace, &plan);
  EXPECT_EQ(faulted.faults.first_death_interval, 1);
  EXPECT_GE(faulted.faults.deaths, 1u);
  ASSERT_FALSE(trace.fault_records.empty());
  const auto first_death = std::find_if(
      trace.fault_records.begin(), trace.fault_records.end(),
      [](const FaultRecord& r) { return r.kind == FaultKind::kDeath; });
  ASSERT_NE(first_death, trace.fault_records.end());
  EXPECT_EQ(first_death->interval, 1);

  // And the no-death case reports -1, not 0: crash-only plan, short run.
  FaultPlan crash_only;
  crash_only.crashes = {{0, 1, 0}};
  SimConfig short_config = config;
  short_config.max_intervals = 3;
  const TrialResult no_death =
      run_lifetime_trial(short_config, 11, nullptr, &crash_only);
  EXPECT_EQ(no_death.faults.deaths, 0u);
  EXPECT_EQ(no_death.faults.first_death_interval, -1);
}

// ---- self-healing ----------------------------------------------------------

TEST(SelfHealingTest, NonArticulationGatewayCrashHealsInOneRepairRound) {
  // Killing a gateway that is not an articulation point of the link graph
  // must leave the surviving backbone connected and dominating within one
  // repair round. The verified strategy guarantees a valid CDS on every
  // graph, so the interval-2 repair record carries the whole assertion.
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 24 && tested < 3; ++seed) {
    SimConfig config;
    config.n_hosts = 30;
    config.mobility_kind = MobilityKind::kStatic;
    config.cds_options.strategy = Strategy::kVerified;
    config.max_intervals = 10;

    // Reproduce the trial's placement (the seed's first RNG consumer) to
    // pick the victim: a gateway of the initial backbone that is not an
    // articulation point of the initial graph.
    Xoshiro256 rng(seed);
    const Field field(config.field_width, config.field_height,
                      config.boundary);
    const auto placed = random_connected_placement(
        config.n_hosts, field, config.radius, rng, config.connect_retries);
    if (!placed) continue;
    const Graph& g = placed->graph;
    if (g.is_complete()) continue;
    const std::vector<double> uniform(
        static_cast<std::size_t>(config.n_hosts), 100.0);
    const CdsResult cds =
        compute_cds(g, config.rule_set, uniform, config.cds_options);
    const DynBitset cuts = articulation_points(g);
    int victim = -1;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (cds.gateways.test(vi) && !cuts.test(vi)) {
        victim = static_cast<int>(v);
        break;
      }
    }
    if (victim < 0) continue;

    FaultPlan plan;
    plan.crashes = {{victim, 2, 0}};
    SimTrace trace;
    (void)run_lifetime_trial(config, seed, &trace, &plan);

    const FaultRecord* repair = nullptr;
    for (const FaultRecord& record : trace.fault_records) {
      if (record.kind == FaultKind::kRepair && record.interval == 2) {
        repair = &record;
      }
    }
    ASSERT_NE(repair, nullptr) << "seed " << seed;
    EXPECT_TRUE(repair->backbone_ok) << "seed " << seed;
    EXPECT_DOUBLE_EQ(repair->coverage, 1.0) << "seed " << seed;
    EXPECT_GT(repair->gateways, 0u) << "seed " << seed;
    EXPECT_LE(repair->touched, static_cast<std::size_t>(config.n_hosts))
        << "seed " << seed;
    EXPECT_EQ(repair->down, 1u) << "seed " << seed;
    ++tested;
  }
  ASSERT_GE(tested, 3) << "not enough usable seeds";
}

TEST(SelfHealingTest, Cds22BackboneSurvivesAnySingleCrashWithoutRepair) {
  // The (2,2)-connected backbone is crash-proof by construction: when
  // greedy_cds22 achieves the full (2,2) property, removing any single
  // member leaves a set that still dominates and connects the survivors.
  // The engine keeps its cached backbone through the crash, so the trial
  // charges zero repair rounds and the backbone stays healthy the whole
  // run — unlike the per-interval scheme, which recomputes.
  int tested = 0;
  for (std::uint64_t seed = 1; seed <= 24 && tested < 1; ++seed) {
    SimConfig config;
    config.n_hosts = 30;
    config.mobility_kind = MobilityKind::kStatic;
    config.backbone = BackboneMode::kCds22;
    config.max_intervals = 6;

    // Reproduce the trial's placement (the seed's first RNG consumer) and
    // its backbone; the survival claim only holds when full_22 is true.
    Xoshiro256 rng(seed);
    const Field field(config.field_width, config.field_height,
                      config.boundary);
    const auto placed = random_connected_placement(
        config.n_hosts, field, config.radius, rng, config.connect_retries);
    if (!placed) continue;
    const Graph& g = placed->graph;
    if (g.is_complete()) continue;
    const Cds22Result backbone = greedy_cds22(g);
    if (!backbone.full_22) continue;
    const Cds22Check check = check_cds22(g, backbone.backbone);
    ASSERT_TRUE(check.ok()) << check.message << " (seed " << seed << ")";

    // Crash every backbone member in turn: no single loss may cost a
    // repair round or degrade coverage or connectivity.
    backbone.backbone.for_each_set([&](std::size_t member) {
      FaultPlan plan;
      plan.crashes = {{static_cast<int>(member), 2, 0}};
      SimTrace trace;
      const TrialResult result =
          run_lifetime_trial(config, seed, &trace, &plan);
      EXPECT_EQ(result.faults.repairs, 0u)
          << "seed " << seed << " victim " << member;
      EXPECT_EQ(result.faults.disconnected_intervals, 0)
          << "seed " << seed << " victim " << member;
      EXPECT_EQ(result.faults.uncovered_intervals, 0)
          << "seed " << seed << " victim " << member;
      EXPECT_DOUBLE_EQ(result.faults.min_coverage, 1.0)
          << "seed " << seed << " victim " << member;
      for (const FaultRecord& record : trace.fault_records) {
        EXPECT_NE(record.kind, FaultKind::kRepair)
            << "seed " << seed << " victim " << member;
      }
    });

    // Contrast: the scheme backbone pays a repair round for the same
    // crash, because every down-set change re-derives the gateway set.
    SimConfig scheme = config;
    scheme.backbone = BackboneMode::kScheme;
    int victim = -1;
    backbone.backbone.for_each_set([&](std::size_t member) {
      if (victim < 0) victim = static_cast<int>(member);
    });
    ASSERT_GE(victim, 0) << "seed " << seed;
    FaultPlan plan;
    plan.crashes = {{victim, 2, 0}};
    const TrialResult repaired = run_lifetime_trial(scheme, seed, nullptr,
                                                    &plan);
    EXPECT_GE(repaired.faults.repairs, 1u) << "seed " << seed;
    ++tested;
  }
  ASSERT_GE(tested, 1) << "not enough usable seeds";
}

}  // namespace
}  // namespace pacds
