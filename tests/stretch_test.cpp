// Tests for routing path-stretch measurement.

#include "routing/stretch.hpp"

#include <gtest/gtest.h>

#include "core/cds.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::cycle_graph;
using testing::figure1_graph;
using testing::path_graph;

DynBitset set_of(std::size_t n, std::initializer_list<std::size_t> bits) {
  DynBitset s(n);
  for (const auto b : bits) s.set(b);
  return s;
}

TEST(StretchMeasureTest, MarkingBackboneHasUnitStretch) {
  // Property 3: the full marking output preserves distances, and the router
  // finds those shortest backbone routes.
  const Graph g = figure1_graph();
  const CdsResult cds = compute_cds(g, RuleSet::kNR);
  const StretchStats stats = measure_stretch(g, cds.gateways);
  EXPECT_DOUBLE_EQ(stats.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_stretch, 1.0);
  EXPECT_EQ(stats.undeliverable, 0u);
  EXPECT_EQ(stats.pairs, 10u);  // C(5,2)
}

TEST(StretchMeasureTest, ReducedBackboneStretches) {
  // C6 with gateway set {0,1,2,3} (valid CDS): pair (3,5) is forced the
  // long way round the backbone.
  const Graph g = cycle_graph(6);
  const StretchStats stats = measure_stretch(g, set_of(6, {0, 1, 2, 3}));
  EXPECT_GT(stats.mean_stretch, 1.0);
  EXPECT_GE(stats.max_stretch, 2.0);
  EXPECT_EQ(stats.undeliverable, 0u);
}

TEST(StretchMeasureTest, UndeliverableCounted) {
  // Path 0-1-2-3-4 with only gateway 1: hosts 3,4 are undominated.
  const Graph g = path_graph(5);
  const StretchStats stats = measure_stretch(g, set_of(5, {1}));
  EXPECT_GT(stats.undeliverable, 0u);
}

TEST(StretchMeasureTest, AdjacentPairsAlwaysUnitEvenWithoutGateways) {
  const Graph g = path_graph(3);
  const StretchStats stats = measure_stretch(g, DynBitset(3));
  // (0,1) and (1,2) deliver directly; (0,2) is undeliverable.
  EXPECT_EQ(stats.pairs, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_stretch, 1.0);
  EXPECT_EQ(stats.undeliverable, 1u);
}

TEST(StretchMeasureTest, RandomNetworkAllSchemesBoundedStretch) {
  Xoshiro256 rng(77);
  const auto placed = random_connected_placement(25, Field::paper_field(),
                                                 kPaperRadius, rng, 500);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  std::vector<double> energy;
  for (int i = 0; i < 25; ++i) {
    energy.push_back(static_cast<double>(rng.uniform_int(1, 5)));
  }
  CdsOptions options;
  options.strategy = Strategy::kVerified;
  for (const RuleSet rs : kAllRuleSets) {
    const CdsResult cds = compute_cds(g, rs, energy, options);
    const StretchStats stats = measure_stretch(g, cds.gateways);
    EXPECT_EQ(stats.undeliverable, 0u) << to_string(rs);
    EXPECT_GE(stats.mean_stretch, 1.0) << to_string(rs);
    EXPECT_LT(stats.mean_stretch, 3.0) << to_string(rs);
  }
}

TEST(StretchMeasureTest, NrNeverWorseThanReducedSchemes) {
  Xoshiro256 rng(78);
  const auto placed = random_connected_placement(25, Field::paper_field(),
                                                 kPaperRadius, rng, 500);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const StretchStats nr =
      measure_stretch(g, compute_cds(g, RuleSet::kNR).gateways);
  const StretchStats id =
      measure_stretch(g, compute_cds(g, RuleSet::kID).gateways);
  EXPECT_LE(nr.mean_stretch, id.mean_stretch + 1e-12);
}

}  // namespace
}  // namespace pacds
