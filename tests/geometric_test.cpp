// Tests for the Gabriel and relative-neighborhood geometric link models.

#include "net/geometric.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "core/cds.hpp"
#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

namespace pacds {
namespace {

TEST(GeometricTest, EmptyAndSingle) {
  EXPECT_EQ(build_gabriel({}, 10.0).num_nodes(), 0);
  EXPECT_EQ(build_rng_graph({{1.0, 1.0}}, 10.0).num_edges(), 0u);
}

TEST(GeometricTest, NegativeRadiusThrows) {
  EXPECT_THROW((void)build_gabriel({{0.0, 0.0}}, -1.0), std::invalid_argument);
  EXPECT_THROW((void)build_rng_graph({{0.0, 0.0}}, -1.0),
               std::invalid_argument);
}

TEST(GeometricTest, TwoPointsAlwaysLinkedWithinRadius) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}};
  EXPECT_TRUE(build_gabriel(pts, 10.0).has_edge(0, 1));
  EXPECT_TRUE(build_rng_graph(pts, 10.0).has_edge(0, 1));
  EXPECT_FALSE(build_gabriel(pts, 4.0).has_edge(0, 1));  // radius cap
}

TEST(GeometricTest, MidpointBlockerCutsGabrielEdge) {
  // Point 2 sits inside the diameter circle of 0-1 -> 0-1 not Gabriel.
  const std::vector<Vec2> pts{{0.0, 0.0}, {10.0, 0.0}, {5.0, 1.0}};
  const Graph gabriel = build_gabriel(pts, 25.0);
  EXPECT_FALSE(gabriel.has_edge(0, 1));
  EXPECT_TRUE(gabriel.has_edge(0, 2));
  EXPECT_TRUE(gabriel.has_edge(1, 2));
}

TEST(GeometricTest, LuneBlockerCutsRngEdgeButNotGabriel) {
  // Point 2 is in the lune of 0-1 (closer than |01| to both) but OUTSIDE
  // the diameter circle: RNG drops 0-1, Gabriel keeps it.
  const std::vector<Vec2> pts{{0.0, 0.0}, {10.0, 0.0}, {5.0, 6.0}};
  EXPECT_TRUE(build_gabriel(pts, 25.0).has_edge(0, 1));
  EXPECT_FALSE(build_rng_graph(pts, 25.0).has_edge(0, 1));
}

class GeometricPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(GeometricPropertyTest, SubgraphChainHolds) {
  // RNG ⊆ Gabriel ⊆ UDG on every point set.
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  const auto pts = random_placement(n, Field::paper_field(), rng);
  const Graph udg = build_udg(pts, kPaperRadius);
  const Graph gabriel = build_gabriel(pts, kPaperRadius);
  const Graph rng_graph = build_rng_graph(pts, kPaperRadius);
  for (const auto& [u, v] : rng_graph.edges()) {
    EXPECT_TRUE(gabriel.has_edge(u, v)) << u << "-" << v;
  }
  for (const auto& [u, v] : gabriel.edges()) {
    EXPECT_TRUE(udg.has_edge(u, v)) << u << "-" << v;
  }
  EXPECT_LE(rng_graph.num_edges(), gabriel.num_edges());
  EXPECT_LE(gabriel.num_edges(), udg.num_edges());
}

TEST_P(GeometricPropertyTest, ConnectivityPreserved) {
  // Gabriel and RNG keep the UDG's connected components intact (classic
  // result: both contain the Euclidean MST restricted to the radius graph).
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  const auto pts = random_placement(n, Field::paper_field(), rng);
  const Graph udg = build_udg(pts, kPaperRadius);
  const Graph gabriel = build_gabriel(pts, kPaperRadius);
  const Graph rng_graph = build_rng_graph(pts, kPaperRadius);
  EXPECT_EQ(gabriel.num_components(), udg.num_components());
  EXPECT_EQ(rng_graph.num_components(), udg.num_components());
}

TEST_P(GeometricPropertyTest, RulesWorkOnSparseModels) {
  // The marking process + rules are graph-generic; verify on the sparser
  // link models too.
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  const auto pts = random_placement(n, Field::paper_field(), rng);
  for (const Graph& g : {build_gabriel(pts, kPaperRadius),
                         build_rng_graph(pts, kPaperRadius)}) {
    const CdsResult r = compute_cds(g, RuleSet::kND);
    const CdsCheck check = check_cds(g, r.gateways);
    EXPECT_TRUE(check.ok()) << check.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPointSets, GeometricPropertyTest,
    ::testing::Combine(::testing::Values(10, 30, 60),
                       ::testing::Values(111u, 222u, 333u)),
    [](const ::testing::TestParamInfo<GeometricPropertyTest::ParamType>&
           param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace pacds
