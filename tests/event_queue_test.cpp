// Tests for the discrete-event core.

#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace pacds::des {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&order] { order.push_back(3); });
  q.schedule(1.0, [&order] { order.push_back(1); });
  q.schedule(2.0, [&order] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.fired(), 3u);
}

TEST(EventQueueTest, FifoWithinTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&]() {
    ++count;
    if (count < 4) q.schedule(q.now() + 1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run_all();
  EXPECT_EQ(count, 4);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&fired] { ++fired; });
  q.schedule(5.0, [&fired] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, PastSchedulingThrows) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule(2.0, [] {}));  // now() is allowed
}

TEST(EventQueueTest, RunOneOnEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.run_one());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SameTimeEventScheduledDuringRunFires) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { q.schedule(1.0, [&fired] { ++fired; }); });
  q.run_all();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace pacds::des
