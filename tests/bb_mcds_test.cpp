// Tests for the branch-and-bound exact minimum-CDS solver: known optima,
// bit-identical optimum sizes vs the bitmask solver on every n <= 20, and
// proven optimality at n = 60 — the scale the bitmask search cannot reach.

#include "baselines/bb_mcds.hpp"

#include <gtest/gtest.h>

#include "baselines/exact_mcds.hpp"
#include "baselines/greedy_mcds.hpp"
#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::figure1_graph;
using testing::path_graph;
using testing::star_graph;

TEST(BbMcdsTest, KnownOptima) {
  EXPECT_EQ(bb_min_cds(path_graph(5))->count(), 3u);
  EXPECT_EQ(bb_min_cds(star_graph(6))->count(), 1u);
  EXPECT_EQ(bb_min_cds(cycle_graph(5))->count(), 3u);
  EXPECT_EQ(bb_min_cds(complete_graph(4))->count(), 0u);
  EXPECT_EQ(bb_min_cds(figure1_graph())->count(), 2u);
}

TEST(BbMcdsTest, EmptyAndTinyGraphs) {
  EXPECT_EQ(bb_min_cds(Graph(0))->count(), 0u);
  EXPECT_EQ(bb_min_cds(Graph(1))->count(), 0u);  // singleton exempt
  EXPECT_EQ(bb_min_cds(Graph(3))->count(), 0u);  // isolated singletons
  EXPECT_EQ(bb_min_cds(complete_graph(2))->count(), 0u);
}

TEST(BbMcdsTest, DisconnectedComponents) {
  // Two P3s: each needs its middle -> optimum 2.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  EXPECT_EQ(bb_min_cds(g)->count(), 2u);
}

// The acceptance bar: on seeded random geometric graphs at every n <= 20,
// the branch-and-bound optimum size must be bit-identical to the exhaustive
// bitmask optimum.
TEST(BbMcdsTest, MatchesBitmaskSolverAtEverySmallN) {
  int instances = 0;
  for (int n = 1; n <= 20; ++n) {
    for (std::uint64_t seed = 401; seed <= 403; ++seed) {
      Xoshiro256 rng(seed * 131 + static_cast<std::uint64_t>(n));
      const auto placed = random_connected_placement(
          n, Field::paper_field(), kPaperRadius * 2.0, rng, 5000);
      if (!placed.has_value()) continue;
      const Graph& g = placed->graph;
      const auto exact = exact_min_cds(g, 20);
      ASSERT_TRUE(exact.has_value());
      BbStats stats;
      const auto bb = bb_min_cds(g, BbOptions{}, &stats);
      ASSERT_TRUE(bb.has_value()) << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(stats.proven);
      EXPECT_TRUE(check_cds(g, *bb).ok()) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(bb->count(), exact->count())
          << "n=" << n << " seed=" << seed;
      ++instances;
    }
  }
  EXPECT_GE(instances, 40);  // the sweep must actually exercise the grid
}

// Past the bitmask cap: proven optimality on n = 60 random geometric
// instances at the paper's radius, within the default node budget.
TEST(BbMcdsTest, ProvenOptimalAtSixtyNodes) {
  int solved = 0;
  for (std::uint64_t seed = 501; seed <= 503; ++seed) {
    Xoshiro256 rng(seed);
    const auto placed = random_connected_placement(
        60, Field::paper_field(), kPaperRadius, rng, 5000);
    if (!placed.has_value()) continue;
    const Graph& g = placed->graph;
    BbStats stats;
    const auto bb = bb_min_cds(g, BbOptions{}, &stats);
    ASSERT_TRUE(bb.has_value()) << "seed=" << seed;
    EXPECT_TRUE(stats.proven);
    EXPECT_TRUE(check_cds(g, *bb).ok());
    EXPECT_LE(bb->count(), greedy_mcds(g).count());
    ++solved;
  }
  EXPECT_GE(solved, 2);
}

TEST(BbMcdsTest, NodeBudgetExhaustionReturnsNullopt) {
  Xoshiro256 rng(601);
  const auto placed = random_connected_placement(
      40, Field::paper_field(), kPaperRadius, rng, 5000);
  ASSERT_TRUE(placed.has_value());
  BbStats stats;
  const auto bb = bb_min_cds(placed->graph, BbOptions{.node_budget = 3},
                             &stats);
  EXPECT_FALSE(bb.has_value());
  EXPECT_FALSE(stats.proven);
}

}  // namespace
}  // namespace pacds
