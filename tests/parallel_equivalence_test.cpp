// Determinism of the intra-interval parallel layer: every sharded pipeline
// (marking + simultaneous rule passes) must produce gateway sets that are
// bit-identical to the serial computation, for every thread count, scheme,
// and mobility regime. Two layers of coverage:
//
//   - direct compute_cds / compute_cds_custom / compute_cds_rule_k calls on
//     random geometric graphs, serial vs. ThreadPool executors;
//   - whole lifetime trials through SimConfig::threads, sweeping
//     threads {1,2,3,8} x keys {ID,ND,EL1,EL2} x stay {0.5,0.95}, for both
//     engines, comparing TrialResults and full per-interval traces.
//
// The TSAN build (PACDS_SANITIZE=thread) runs this binary to certify the
// fork/join layer free of data races.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/cds.hpp"
#include "core/incremental.hpp"
#include "core/rule_k.hpp"
#include "core/workspace.hpp"
#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"
#include "net/udg.hpp"
#include "sim/engine.hpp"
#include "sim/lifetime.hpp"
#include "sim/threadpool.hpp"

namespace pacds {
namespace {

// ---- Direct kernel equivalence ---------------------------------------------

/// A connected-ish random unit-disk graph plus staggered energy levels.
struct Instance {
  Graph graph{0};
  std::vector<double> energy;
};

Instance make_instance(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const Field field(100.0, 100.0, BoundaryPolicy::kClamp);
  const auto positions = random_placement(n, field, rng);
  Instance inst;
  inst.graph = build_links(positions, kPaperRadius, LinkModel::kUnitDisk);
  inst.energy.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < inst.energy.size(); ++i) {
    // Deterministic, collision-rich levels so key tie-breaks matter.
    inst.energy[i] = static_cast<double>((i * 7919) % 17);
  }
  return inst;
}

void expect_identical(const CdsResult& serial, const CdsResult& parallel,
                      const std::string& what) {
  EXPECT_EQ(serial.marked_only, parallel.marked_only) << what;
  EXPECT_EQ(serial.gateways, parallel.gateways) << what;
  EXPECT_EQ(serial.marked_count, parallel.marked_count) << what;
  EXPECT_EQ(serial.gateway_count, parallel.gateway_count) << what;
}

class KernelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<RuleSet, std::size_t>> {};

TEST_P(KernelEquivalenceTest, ComputeCdsMatchesSerial) {
  const auto [rs, lanes] = GetParam();
  ThreadPool pool(lanes - 1);  // lanes includes the calling thread
  CdsWorkspace ws;
  const ExecContext ctx{&pool, &ws};
  for (const std::uint64_t seed : {3u, 77u, 2001u}) {
    const Instance inst = make_instance(80, seed);
    const CdsResult serial = compute_cds(inst.graph, rs, inst.energy);
    const CdsResult par = compute_cds(inst.graph, rs, inst.energy, {}, ctx);
    expect_identical(serial, par,
                     to_string(rs) + " lanes=" + std::to_string(lanes) +
                         " seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByLanes, KernelEquivalenceTest,
    ::testing::Combine(::testing::Values(RuleSet::kNR, RuleSet::kID,
                                         RuleSet::kND, RuleSet::kEL1,
                                         RuleSet::kEL2),
                       ::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{8})),
    [](const ::testing::TestParamInfo<KernelEquivalenceTest::ParamType>& info) {
      return to_string(std::get<0>(info.param)) + "_lanes" +
             std::to_string(std::get<1>(info.param));
    });

TEST(KernelEquivalenceTest, CustomKeyAndRuleKMatchSerial) {
  ThreadPool pool(7);
  CdsWorkspace ws;
  const ExecContext ctx{&pool, &ws};
  const Instance inst = make_instance(80, 13);
  for (const KeyKind kind :
       {KeyKind::kId, KeyKind::kDegreeId, KeyKind::kEnergyId,
        KeyKind::kEnergyDegreeId}) {
    RuleConfig rc;
    rc.rule2_form = Rule2Form::kRefined;
    rc.strategy = Strategy::kSimultaneous;
    expect_identical(
        compute_cds_custom(inst.graph, kind, rc, inst.energy),
        compute_cds_custom(inst.graph, kind, rc, inst.energy,
                           CliquePolicy::kNone, ctx),
        "custom key " + std::to_string(static_cast<int>(kind)));
    expect_identical(
        compute_cds_rule_k(inst.graph, kind, inst.energy),
        compute_cds_rule_k(inst.graph, kind, inst.energy,
                           Strategy::kSimultaneous, CliquePolicy::kNone, ctx),
        "rule k key " + std::to_string(static_cast<int>(kind)));
  }
}

TEST(KernelEquivalenceTest, SequentialStrategyUnaffectedByExecutor) {
  // Sequential and verified strategies stay serial by design; passing an
  // executor must be a no-op for the result.
  ThreadPool pool(3);
  CdsWorkspace ws;
  const ExecContext ctx{&pool, &ws};
  const Instance inst = make_instance(60, 21);
  for (const Strategy strategy : {Strategy::kSequential, Strategy::kVerified}) {
    CdsOptions options;
    options.strategy = strategy;
    expect_identical(compute_cds(inst.graph, RuleSet::kEL1, inst.energy,
                                 options),
                     compute_cds(inst.graph, RuleSet::kEL1, inst.energy,
                                 options, ctx),
                     "strategy " + std::to_string(static_cast<int>(strategy)));
  }
}

TEST(KernelEquivalenceTest, IncrementalFullRefreshMatchesSerial) {
  ThreadPool pool(7);
  CdsWorkspace ws;
  const Instance inst = make_instance(80, 99);
  for (const RuleSet rs : kAllRuleSets) {
    const std::vector<double> energy =
        uses_energy(rs) ? inst.energy : std::vector<double>{};
    IncrementalCds serial(inst.graph, rs, energy);
    IncrementalCds parallel(inst.graph, rs, energy, {},
                            ExecContext{&pool, &ws});
    EXPECT_EQ(serial.gateways(), parallel.gateways()) << to_string(rs);
    EXPECT_EQ(serial.marked_only(), parallel.marked_only()) << to_string(rs);
    parallel.full_refresh();  // explicit refresh reuses the warm workspace
    EXPECT_EQ(serial.gateways(), parallel.gateways()) << to_string(rs);
  }
}

// ---- Whole-trial equivalence through SimConfig::threads --------------------

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.avg_gateways, b.avg_gateways);  // exact, not approximate
  EXPECT_EQ(a.avg_marked, b.avg_marked);
  EXPECT_EQ(a.hit_cap, b.hit_cap);
}

void expect_identical(const SimTrace& a, const SimTrace& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].gateways, b.records[i].gateways) << "record " << i;
    EXPECT_EQ(a.records[i].marked, b.records[i].marked) << "record " << i;
  }
}

class TrialEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, RuleSet, double>> {};

TEST_P(TrialEquivalenceTest, ThreadedTrialBitIdenticalToSerial) {
  const auto [threads, rs, stay] = GetParam();
  SimConfig config;
  config.n_hosts = 40;
  config.rule_set = rs;
  config.stay_probability = stay;
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.initial_energy = 50.0;  // keeps trials short
  for (const SimEngine engine :
       {SimEngine::kFullRebuild, SimEngine::kIncremental}) {
    config.engine = engine;
    config.threads = 1;
    SimTrace serial_trace;
    const TrialResult serial = run_lifetime_trial(config, 17, &serial_trace);
    config.threads = threads;
    SimTrace threaded_trace;
    const TrialResult threaded =
        run_lifetime_trial(config, 17, &threaded_trace);
    expect_identical(serial, threaded);
    expect_identical(serial_trace, threaded_trace);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsKeysStay, TrialEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 8),
                       ::testing::Values(RuleSet::kID, RuleSet::kND,
                                         RuleSet::kEL1, RuleSet::kEL2),
                       ::testing::Values(0.5, 0.95)),
    [](const ::testing::TestParamInfo<TrialEquivalenceTest::ParamType>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_" +
             to_string(std::get<1>(info.param)) + "_stay" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

TEST(TrialEquivalenceTest, HardwareConcurrencyKnob) {
  // threads = 0 (one lane per hardware thread) must agree with serial too.
  SimConfig config;
  config.n_hosts = 30;
  config.rule_set = RuleSet::kEL1;
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.initial_energy = 40.0;
  config.threads = 1;
  const TrialResult serial = run_lifetime_trial(config, 5);
  config.threads = 0;
  const TrialResult autod = run_lifetime_trial(config, 5);
  expect_identical(serial, autod);
}

}  // namespace
}  // namespace pacds
