// Tests for the sweep harness that backs the figure benchmarks.

#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pacds {
namespace {

SweepConfig tiny_sweep() {
  SweepConfig config;
  config.host_counts = {8, 16};
  config.schemes = {RuleSet::kID, RuleSet::kEL1};
  config.trials = 4;
  config.base.drain_model = DrainModel::kLinearTotal;
  return config;
}

TEST(ExperimentTest, SweepShape) {
  const SweepResult result = run_sweep(tiny_sweep());
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].n_hosts, 8);
  EXPECT_EQ(result.rows[1].n_hosts, 16);
  for (const SweepRow& row : result.rows) {
    ASSERT_EQ(row.per_scheme.size(), 2u);
    for (const LifetimeSummary& s : row.per_scheme) {
      EXPECT_EQ(s.intervals.count, 4u);
      EXPECT_GT(s.intervals.mean, 0.0);
    }
  }
}

TEST(ExperimentTest, SweepDeterministic) {
  const SweepResult a = run_sweep(tiny_sweep());
  const SweepResult b = run_sweep(tiny_sweep());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    for (std::size_t j = 0; j < a.rows[i].per_scheme.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.rows[i].per_scheme[j].intervals.mean,
                       b.rows[i].per_scheme[j].intervals.mean);
    }
  }
}

TEST(ExperimentTest, EmptySweepThrows) {
  SweepConfig config = tiny_sweep();
  config.host_counts.clear();
  EXPECT_THROW((void)run_sweep(config), std::invalid_argument);
  config = tiny_sweep();
  config.schemes.clear();
  EXPECT_THROW((void)run_sweep(config), std::invalid_argument);
}

TEST(ExperimentTest, TableLayout) {
  const SweepResult result = run_sweep(tiny_sweep());
  const TextTable table = sweep_table(result, SweepMetric::kLifetime);
  EXPECT_EQ(table.num_columns(), 3u);  // n + 2 schemes
  EXPECT_EQ(table.num_rows(), 2u);
  const TextTable with_ci =
      sweep_table(result, SweepMetric::kLifetime, /*with_ci=*/true);
  EXPECT_EQ(with_ci.num_columns(), 5u);
}

TEST(ExperimentTest, GatewayMetricDiffersFromLifetime) {
  const SweepResult result = run_sweep(tiny_sweep());
  const TextTable life = sweep_table(result, SweepMetric::kLifetime);
  const TextTable gates = sweep_table(result, SweepMetric::kGatewayCount);
  EXPECT_NE(life.rows()[0][1], gates.rows()[0][1]);
}

TEST(ExperimentTest, CsvRowsMatchHeader) {
  const SweepResult result = run_sweep(tiny_sweep());
  const auto header = sweep_csv_header(result);
  const auto rows = sweep_csv_rows(result, SweepMetric::kLifetime);
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), header.size());
  }
  EXPECT_EQ(header.front(), "n");
  EXPECT_EQ(header[1], "ID_lifetime");
}

TEST(ExperimentTest, PaperHostCountsSpanPaperRange) {
  const auto counts = paper_host_counts();
  EXPECT_EQ(counts.front(), 3);
  EXPECT_EQ(counts.back(), 100);
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GT(counts[i], counts[i - 1]);
  }
}

TEST(ExperimentTest, EnvSizeT) {
  ASSERT_EQ(unsetenv("PACDS_TEST_ENV"), 0);
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 7u), 7u);
  ASSERT_EQ(setenv("PACDS_TEST_ENV", "42", 1), 0);
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 7u), 42u);
  ASSERT_EQ(setenv("PACDS_TEST_ENV", "bogus", 1), 0);
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 7u), 7u);
  ASSERT_EQ(setenv("PACDS_TEST_ENV", "0", 1), 0);
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 7u), 7u);
  ASSERT_EQ(unsetenv("PACDS_TEST_ENV"), 0);
}

TEST(ExperimentTest, EnvSizeTWarnsWhenIgnoringValues) {
  // A typo'd PACDS_TRIALS=abc used to behave exactly like unset; the
  // fallback must now be audible on stderr and name the offending value.
  ASSERT_EQ(setenv("PACDS_TEST_ENV", "abc", 1), 0);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 7u), 7u);
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("PACDS_TEST_ENV"), std::string::npos) << err;
  EXPECT_NE(err.find("abc"), std::string::npos) << err;
  EXPECT_NE(err.find('7'), std::string::npos) << err;

  // Zero is not a usable trial/host count: same diagnostic.
  ASSERT_EQ(setenv("PACDS_TEST_ENV", "0", 1), 0);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 9u), 9u);
  err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("\"0\""), std::string::npos) << err;

  // Trailing garbage ("12x") is malformed, not 12.
  ASSERT_EQ(setenv("PACDS_TEST_ENV", "12x", 1), 0);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 7u), 7u);
  EXPECT_FALSE(::testing::internal::GetCapturedStderr().empty());
  ASSERT_EQ(unsetenv("PACDS_TEST_ENV"), 0);
}

TEST(ExperimentTest, EnvSizeTSilentOnValidAndUnset) {
  ASSERT_EQ(unsetenv("PACDS_TEST_ENV"), 0);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 7u), 7u);
  ASSERT_EQ(setenv("PACDS_TEST_ENV", "42", 1), 0);
  EXPECT_EQ(env_size_t("PACDS_TEST_ENV", 7u), 42u);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  ASSERT_EQ(unsetenv("PACDS_TEST_ENV"), 0);
}

TEST(ExperimentTest, PairedSeedsAcrossSchemes) {
  // ID vs ND sizes must come from the same placements: the NR marking size
  // (which ignores the scheme entirely) has to agree between the two
  // scheme's runs.
  SweepConfig config = tiny_sweep();
  config.schemes = {RuleSet::kID, RuleSet::kND};
  const SweepResult result = run_sweep(config);
  for (const SweepRow& row : result.rows) {
    // avg_marked depends only on placement + movement until the (scheme
    // dependent) death time, so exact equality is not guaranteed — but the
    // first interval's marking is identical; check means are close.
    EXPECT_NEAR(row.per_scheme[0].avg_marked.mean,
                row.per_scheme[1].avg_marked.mean,
                0.35 * row.per_scheme[0].avg_marked.mean + 1.0);
  }
}

}  // namespace
}  // namespace pacds
