// Tests for the greedy (2,2)-connected dominating set and its validity
// predicate: check_cds22 accepts greedy output on 2-connected graphs,
// rejects single-node-removal counterexamples, and a full (2,2) backbone
// survives the loss of any single member as a plain CDS.

#include "baselines/cds22.hpp"

#include <gtest/gtest.h>

#include "core/articulation.hpp"
#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

TEST(IsBiconnectedTest, Basics) {
  EXPECT_TRUE(is_biconnected(Graph(0)));
  EXPECT_TRUE(is_biconnected(Graph(1)));
  EXPECT_TRUE(is_biconnected(complete_graph(2)));
  EXPECT_TRUE(is_biconnected(cycle_graph(5)));
  EXPECT_TRUE(is_biconnected(complete_graph(6)));
  EXPECT_FALSE(is_biconnected(path_graph(3)));   // middle is a cut vertex
  EXPECT_FALSE(is_biconnected(star_graph(4)));   // center is a cut vertex
  EXPECT_FALSE(is_biconnected(Graph(2)));        // disconnected
}

TEST(CheckCds22Test, AcceptsFullCycleBackbone) {
  const Graph g = cycle_graph(6);
  DynBitset all(6);
  all.set_all();
  EXPECT_TRUE(check_cds22(g, all).ok());
}

TEST(CheckCds22Test, RejectsSingleNodeRemovalFromCycle) {
  // C6 minus any one member leaves a member path: still dominating, still
  // 2-dominating (the removed vertex has both path endpoints as neighbors),
  // but the path has articulation points — biconnectivity must flag it.
  const Graph g = cycle_graph(6);
  for (std::size_t v = 0; v < 6; ++v) {
    DynBitset set(6);
    set.set_all();
    set.reset(v);
    const Cds22Check check = check_cds22(g, set);
    EXPECT_FALSE(check.ok()) << "removed " << v;
    EXPECT_FALSE(check.biconnected);
    EXPECT_TRUE(check.two_dominating);
  }
}

TEST(CheckCds22Test, RejectsSingleDomination) {
  // C5 with members {0,1,2}: node 3 sees only member 2 -> 2-domination
  // fails before biconnectivity is even considered.
  const Graph g = cycle_graph(5);
  DynBitset set(5);
  set.set(0);
  set.set(1);
  set.set(2);
  const Cds22Check check = check_cds22(g, set);
  EXPECT_FALSE(check.ok());
  EXPECT_FALSE(check.two_dominating);
}

TEST(CheckCds22Test, ExemptsCompleteComponents) {
  const Graph g = complete_graph(4);
  EXPECT_TRUE(check_cds22(g, DynBitset(4)).ok());
  // A non-complete memberless component is not exempt.
  EXPECT_FALSE(check_cds22(path_graph(3), DynBitset(3)).ok());
}

TEST(GreedyCds22Test, FullBackboneOnTwoConnectedGeometricGraphs) {
  int exercised = 0;
  for (std::uint64_t seed = 701; seed <= 712; ++seed) {
    Xoshiro256 rng(seed);
    const auto placed = random_connected_placement(
        30, Field::paper_field(), kPaperRadius * 1.5, rng, 5000);
    if (!placed.has_value()) continue;
    const Graph& g = placed->graph;
    if (!is_biconnected(g)) continue;  // no (2,2)-CDS can exist
    const Cds22Result result = greedy_cds22(g);
    EXPECT_TRUE(result.full_22) << "seed=" << seed;
    EXPECT_TRUE(check_cds22(g, result.backbone).ok()) << "seed=" << seed;
    EXPECT_TRUE(check_cds(g, result.backbone).ok()) << "seed=" << seed;
    ++exercised;
  }
  EXPECT_GE(exercised, 3);
}

TEST(GreedyCds22Test, BackboneSurvivesAnySingleMemberLoss) {
  Xoshiro256 rng(707);
  const auto placed = random_connected_placement(
      30, Field::paper_field(), kPaperRadius * 1.5, rng, 5000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  if (!is_biconnected(g)) GTEST_SKIP() << "placement not 2-connected";
  const Cds22Result result = greedy_cds22(g);
  ASSERT_TRUE(result.full_22);
  // Crash each member in turn: the survivors must still be a valid plain
  // CDS of the graph without the crashed host (modelled by stripping its
  // edges; the isolated host becomes an exempt singleton).
  result.backbone.for_each_set([&](std::size_t v) {
    Graph crashed = g;
    const auto vid = static_cast<NodeId>(v);
    while (!crashed.neighbors(vid).empty()) {
      crashed.remove_edge(vid, crashed.neighbors(vid).front());
    }
    DynBitset survivors = result.backbone;
    survivors.reset(v);
    EXPECT_TRUE(check_cds(crashed, survivors).ok()) << "crashed member " << v;
  });
}

TEST(GreedyCds22Test, DegradesGracefullyWithoutTwoConnectivity) {
  // A path has cut vertices everywhere: no (2,2)-CDS exists, but the greedy
  // must still hand back a valid plain CDS and say so via full_22 = false.
  const Graph g = path_graph(7);
  const Cds22Result result = greedy_cds22(g);
  EXPECT_FALSE(result.full_22);
  EXPECT_TRUE(check_cds(g, result.backbone).ok());
}

TEST(GreedyCds22Test, CompleteComponentsContributeNothing) {
  const Cds22Result result = greedy_cds22(complete_graph(5));
  EXPECT_TRUE(result.full_22);
  EXPECT_EQ(result.backbone.count(), 0u);
}

}  // namespace
}  // namespace pacds
