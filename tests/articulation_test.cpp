// Tests for articulation points and bridges (Tarjan low-link).

#include "core/articulation.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

TEST(ArticulationTest, PathInteriorAreCuts) {
  const DynBitset cuts = articulation_points(path_graph(5));
  EXPECT_FALSE(cuts.test(0));
  EXPECT_TRUE(cuts.test(1));
  EXPECT_TRUE(cuts.test(2));
  EXPECT_TRUE(cuts.test(3));
  EXPECT_FALSE(cuts.test(4));
}

TEST(ArticulationTest, CycleHasNone) {
  EXPECT_TRUE(articulation_points(cycle_graph(6)).none());
}

TEST(ArticulationTest, CompleteHasNone) {
  EXPECT_TRUE(articulation_points(complete_graph(5)).none());
}

TEST(ArticulationTest, StarCenterIsCut) {
  const DynBitset cuts = articulation_points(star_graph(4));
  EXPECT_TRUE(cuts.test(0));
  EXPECT_EQ(cuts.count(), 1u);
}

TEST(ArticulationTest, TwoTrianglesSharingAVertex) {
  // Triangles {0,1,2} and {2,3,4}: vertex 2 is the cut.
  const Graph g = Graph::from_edges(
      5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  const DynBitset cuts = articulation_points(g);
  EXPECT_TRUE(cuts.test(2));
  EXPECT_EQ(cuts.count(), 1u);
}

TEST(ArticulationTest, DisconnectedComponentsIndependent) {
  // P3 (cut at 1) plus C3 (no cuts).
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  const DynBitset cuts = articulation_points(g);
  EXPECT_TRUE(cuts.test(1));
  EXPECT_EQ(cuts.count(), 1u);
}

TEST(ArticulationTest, EmptyAndTinyGraphs) {
  EXPECT_EQ(articulation_points(Graph(0)).count(), 0u);
  EXPECT_EQ(articulation_points(Graph(1)).count(), 0u);
  EXPECT_EQ(articulation_points(complete_graph(2)).count(), 0u);
}

TEST(BridgesTest, PathEdgesAllBridges) {
  const auto b = bridges(path_graph(4));
  EXPECT_EQ(b, (std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2},
                                                       {2, 3}}));
}

TEST(BridgesTest, CycleHasNone) {
  EXPECT_TRUE(bridges(cycle_graph(5)).empty());
}

TEST(BridgesTest, BarbellBridge) {
  // Two triangles joined by edge 2-3: only {2,3} is a bridge.
  const Graph g = Graph::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  EXPECT_EQ(bridges(g), (std::vector<std::pair<NodeId, NodeId>>{{2, 3}}));
}

TEST(ForcedFractionTest, Basics) {
  const Graph g = path_graph(5);
  DynBitset set(5);
  EXPECT_DOUBLE_EQ(forced_gateway_fraction(g, set), 0.0);
  set.set(1);
  set.set(2);
  set.set(3);
  EXPECT_DOUBLE_EQ(forced_gateway_fraction(g, set), 1.0);
  set.set(0);  // 0 is not a cut
  EXPECT_DOUBLE_EQ(forced_gateway_fraction(g, set), 0.75);
}

// Brute-force cross-check: v is an articulation point iff removing v
// increases the component count of its component.
class ArticulationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ArticulationPropertyTest, MatchesBruteForce) {
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  const Graph g =
      build_udg(random_placement(n, Field::paper_field(), rng), kPaperRadius);
  const DynBitset cuts = articulation_points(g);
  const NodeId base_components = g.num_components();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Remove v by masking it out and recounting components among the rest.
    DynBitset keep(static_cast<std::size_t>(n));
    keep.set_all();
    keep.reset(static_cast<std::size_t>(v));
    const Graph without = g.induced(keep);
    // v's removal splits iff components(without) > components(g) - [v was
    // isolated].
    const NodeId isolated = g.degree(v) == 0 ? 1 : 0;
    const bool splits =
        without.num_components() > static_cast<NodeId>(base_components -
                                                       isolated);
    EXPECT_EQ(cuts.test(static_cast<std::size_t>(v)), splits)
        << "node " << v << " n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, ArticulationPropertyTest,
    ::testing::Combine(::testing::Values(8, 20, 40, 70),
                       ::testing::Values(5u, 6u, 7u, 8u, 9u)),
    [](const ::testing::TestParamInfo<ArticulationPropertyTest::ParamType>&
           param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace pacds
