// Unit tests for the obs metrics registry: counter/phase-bucket arithmetic,
// slice reset semantics, the PhaseTimer null-registry contract, and the
// stability of the names that become JSONL field stems.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>

namespace pacds::obs {
namespace {

TEST(MetricsRegistryTest, StartsZeroed) {
  const MetricsRegistry registry;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_EQ(registry.counter(static_cast<Counter>(i)), 0u);
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    EXPECT_EQ(registry.phase_ns(static_cast<Phase>(i)), 0u);
    EXPECT_EQ(registry.phase_calls(static_cast<Phase>(i)), 0u);
  }
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.add(Counter::kNodesTouched, 5);
  registry.add(Counter::kNodesTouched, 7);
  registry.add(Counter::kEdgesAdded);  // default delta 1
  EXPECT_EQ(registry.counter(Counter::kNodesTouched), 12u);
  EXPECT_EQ(registry.counter(Counter::kEdgesAdded), 1u);
  EXPECT_EQ(registry.counter(Counter::kEdgesRemoved), 0u);
  EXPECT_EQ(registry.counters()[static_cast<std::size_t>(
                Counter::kNodesTouched)],
            12u);
}

TEST(MetricsRegistryTest, PhasesAccumulateTimeAndCalls) {
  MetricsRegistry registry;
  registry.record_phase(Phase::kMarking, 100);
  registry.record_phase(Phase::kMarking, 50);
  registry.record_phase(Phase::kRules, 7);
  EXPECT_EQ(registry.phase_ns(Phase::kMarking), 150u);
  EXPECT_EQ(registry.phase_calls(Phase::kMarking), 2u);
  EXPECT_EQ(registry.phase_ns(Phase::kRules), 7u);
  EXPECT_EQ(registry.phase_calls(Phase::kRules), 1u);
  EXPECT_EQ(registry.phase_ns(Phase::kDeltaExtract), 0u);
}

TEST(MetricsRegistryTest, ResetClearsEverySlice) {
  MetricsRegistry registry;
  registry.add(Counter::kFullRefreshes, 3);
  registry.record_phase(Phase::kLinkBuild, 42);
  registry.reset();
  EXPECT_EQ(registry.counter(Counter::kFullRefreshes), 0u);
  EXPECT_EQ(registry.phase_ns(Phase::kLinkBuild), 0u);
  EXPECT_EQ(registry.phase_calls(Phase::kLinkBuild), 0u);
}

TEST(PhaseTimerTest, RecordsElapsedIntoBucket) {
  MetricsRegistry registry;
  {
    const PhaseTimer timer(&registry, Phase::kDeltaApply);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(registry.phase_ns(Phase::kDeltaApply), 1000000u);  // >= 1ms
  EXPECT_EQ(registry.phase_calls(Phase::kDeltaApply), 1u);
}

TEST(PhaseTimerTest, NullRegistryIsANoOp) {
  // Must not crash, not record, not allocate; destructor path included.
  const PhaseTimer timer(nullptr, Phase::kMarking);
}

TEST(MetricsNamesTest, NamesAreStableSnakeCaseAndUnique) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::string name = phase_name(static_cast<Phase>(i));
    EXPECT_NE(name, "unknown");
    for (const char ch : name) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_') << name;
    }
    EXPECT_TRUE(names.insert(name).second) << "duplicate phase " << name;
  }
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string name = counter_name(static_cast<Counter>(i));
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate counter " << name;
  }
  // The ISSUE's headline fields must exist under exactly these names.
  EXPECT_EQ(phase_name(Phase::kMarking), std::string("marking"));
  EXPECT_EQ(phase_name(Phase::kRules), std::string("rules"));
  EXPECT_EQ(phase_name(Phase::kDeltaExtract), std::string("delta_extract"));
  EXPECT_EQ(counter_name(Counter::kNodesTouched),
            std::string("nodes_touched"));
  EXPECT_EQ(counter_name(Counter::kPoolTasksSubmitted),
            std::string("pool_tasks_submitted"));
}

}  // namespace
}  // namespace pacds::obs
