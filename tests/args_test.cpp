// Tests for the CLI argument parser and the checked number parsing it
// (and the serve request parser) rides on.

#include "cli/args.hpp"

#include <gtest/gtest.h>

#include "io/parse_num.hpp"

namespace pacds {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog", "test program");
  parser.add_flag("verbose", "say more");
  parser.add_option("seed", "rng seed", "42");
  parser.add_option("name", "a name", "");
  return parser;
}

TEST(ArgsTest, DefaultsApply) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({}));
  EXPECT_FALSE(parser.flag("verbose"));
  EXPECT_EQ(parser.option("seed"), "42");
  EXPECT_EQ(parser.option_int("seed").value(), 42);
  EXPECT_TRUE(parser.option("name").empty());
}

TEST(ArgsTest, FlagSet) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--verbose"}));
  EXPECT_TRUE(parser.flag("verbose"));
}

TEST(ArgsTest, OptionWithSeparateValue) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed", "7"}));
  EXPECT_EQ(parser.option_int("seed").value(), 7);
}

TEST(ArgsTest, OptionWithEqualsValue) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed=99", "--name=bob"}));
  EXPECT_EQ(parser.option_int("seed").value(), 99);
  EXPECT_EQ(parser.option("name"), "bob");
}

TEST(ArgsTest, Positionals) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"alpha", "--verbose", "beta"}));
  EXPECT_EQ(parser.positionals(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(ArgsTest, UnknownOptionFails) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parser.parse({"--bogus"}));
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(ArgsTest, MissingValueFails) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parser.parse({"--seed"}));
  EXPECT_NE(parser.error().find("needs a value"), std::string::npos);
}

TEST(ArgsTest, FlagWithValueFails) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parser.parse({"--verbose=yes"}));
}

TEST(ArgsTest, BadIntegerIsNullopt) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed", "abc"}));
  EXPECT_FALSE(parser.option_int("seed").has_value());
}

TEST(ArgsTest, DoubleParsing) {
  ArgParser parser("p", "d");
  parser.add_option("x", "a double", "1.5");
  ASSERT_TRUE(parser.parse({}));
  EXPECT_DOUBLE_EQ(parser.option_double("x").value(), 1.5);
  ArgParser parser2("p", "d");
  parser2.add_option("x", "a double", "");
  ASSERT_TRUE(parser2.parse({"--x", "2.5e-1"}));
  EXPECT_DOUBLE_EQ(parser2.option_double("x").value(), 0.25);
}

TEST(ArgsTest, NegativeNumbersAsValues) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed", "-5"}));
  EXPECT_EQ(parser.option_int("seed").value(), -5);
}

TEST(ArgsTest, PartialTokensAreRejected) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed", "4x"}));
  EXPECT_FALSE(parser.option_int("seed").has_value());
  ASSERT_TRUE(parser.parse({"--seed", " 5"}));
  EXPECT_FALSE(parser.option_int("seed").has_value());
}

TEST(ArgsTest, OverflowIsRejectedNotClamped) {
  // strtoll clamps an overflowing literal to INT64_MAX and only reports it
  // via errno; the checked parser must treat it as malformed.
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed", "99999999999999999999"}));
  EXPECT_FALSE(parser.option_int("seed").has_value());
  ASSERT_TRUE(parser.parse({"--seed", "-99999999999999999999"}));
  EXPECT_FALSE(parser.option_int("seed").has_value());
}

TEST(ArgsTest, DoubleRejectsNonFiniteAndHexSpellings) {
  ArgParser parser("p", "d");
  parser.add_option("x", "a double", "");
  for (const char* bad : {"inf", "-inf", "nan", "NaN", "0x10", "1e999",
                          "1.5junk", ""}) {
    ASSERT_TRUE(parser.parse({"--x", bad}));
    EXPECT_FALSE(parser.option_double("x").has_value()) << bad;
  }
}

TEST(ParseNumTest, Int64DemandsFullToken) {
  EXPECT_EQ(parse_int64("42").value(), 42);
  EXPECT_EQ(parse_int64("-7").value(), -7);
  EXPECT_FALSE(parse_int64("").has_value());
  EXPECT_FALSE(parse_int64("4x").has_value());
  EXPECT_FALSE(parse_int64("0x10").has_value());
  EXPECT_FALSE(parse_int64("4.0").has_value());
  EXPECT_FALSE(parse_int64(" 4").has_value());
  EXPECT_FALSE(parse_int64("4 ").has_value());
  EXPECT_FALSE(parse_int64("+4").has_value());
  EXPECT_FALSE(parse_int64("99999999999999999999").has_value());
}

TEST(ParseNumTest, Int64RangeWindowIsInclusive) {
  EXPECT_EQ(parse_int64_in("3", 1, 6).value(), 3);
  EXPECT_EQ(parse_int64_in("1", 1, 6).value(), 1);
  EXPECT_EQ(parse_int64_in("6", 1, 6).value(), 6);
  EXPECT_FALSE(parse_int64_in("0", 1, 6).has_value());
  EXPECT_FALSE(parse_int64_in("7", 1, 6).has_value());
}

TEST(ParseNumTest, IntListNamesTheOffender) {
  std::string bad;
  const auto ok = parse_int_list("3,5,80", 1, 100, &bad);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, (std::vector<std::int64_t>{3, 5, 80}));

  EXPECT_FALSE(parse_int_list("3,banana,5", 1, 100, &bad).has_value());
  EXPECT_EQ(bad, "banana");
  EXPECT_FALSE(parse_int_list("3,,5", 1, 100, &bad).has_value());
  EXPECT_EQ(bad, "");
  EXPECT_FALSE(parse_int_list("", 1, 100, &bad).has_value());
  EXPECT_EQ(bad, "");
  EXPECT_FALSE(parse_int_list("3,500", 1, 100, &bad).has_value());
  EXPECT_EQ(bad, "500");
  EXPECT_FALSE(
      parse_int_list("3,99999999999999999999", 1, 100, &bad).has_value());
  EXPECT_EQ(bad, "99999999999999999999");
}

TEST(ArgsTest, UsageMentionsOptionsAndDefaults) {
  const ArgParser parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--seed"), std::string::npos);
  EXPECT_NE(usage.find("default: 42"), std::string::npos);
}

}  // namespace
}  // namespace pacds
