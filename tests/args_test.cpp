// Tests for the CLI argument parser.

#include "cli/args.hpp"

#include <gtest/gtest.h>

namespace pacds {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog", "test program");
  parser.add_flag("verbose", "say more");
  parser.add_option("seed", "rng seed", "42");
  parser.add_option("name", "a name", "");
  return parser;
}

TEST(ArgsTest, DefaultsApply) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({}));
  EXPECT_FALSE(parser.flag("verbose"));
  EXPECT_EQ(parser.option("seed"), "42");
  EXPECT_EQ(parser.option_int("seed").value(), 42);
  EXPECT_TRUE(parser.option("name").empty());
}

TEST(ArgsTest, FlagSet) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--verbose"}));
  EXPECT_TRUE(parser.flag("verbose"));
}

TEST(ArgsTest, OptionWithSeparateValue) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed", "7"}));
  EXPECT_EQ(parser.option_int("seed").value(), 7);
}

TEST(ArgsTest, OptionWithEqualsValue) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed=99", "--name=bob"}));
  EXPECT_EQ(parser.option_int("seed").value(), 99);
  EXPECT_EQ(parser.option("name"), "bob");
}

TEST(ArgsTest, Positionals) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"alpha", "--verbose", "beta"}));
  EXPECT_EQ(parser.positionals(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(ArgsTest, UnknownOptionFails) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parser.parse({"--bogus"}));
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(ArgsTest, MissingValueFails) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parser.parse({"--seed"}));
  EXPECT_NE(parser.error().find("needs a value"), std::string::npos);
}

TEST(ArgsTest, FlagWithValueFails) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parser.parse({"--verbose=yes"}));
}

TEST(ArgsTest, BadIntegerIsNullopt) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed", "abc"}));
  EXPECT_FALSE(parser.option_int("seed").has_value());
}

TEST(ArgsTest, DoubleParsing) {
  ArgParser parser("p", "d");
  parser.add_option("x", "a double", "1.5");
  ASSERT_TRUE(parser.parse({}));
  EXPECT_DOUBLE_EQ(parser.option_double("x").value(), 1.5);
  ArgParser parser2("p", "d");
  parser2.add_option("x", "a double", "");
  ASSERT_TRUE(parser2.parse({"--x", "2.5e-1"}));
  EXPECT_DOUBLE_EQ(parser2.option_double("x").value(), 0.25);
}

TEST(ArgsTest, NegativeNumbersAsValues) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parser.parse({"--seed", "-5"}));
  EXPECT_EQ(parser.option_int("seed").value(), -5);
}

TEST(ArgsTest, UsageMentionsOptionsAndDefaults) {
  const ArgParser parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--seed"), std::string::npos);
  EXPECT_NE(usage.find("default: 42"), std::string::npos);
}

}  // namespace
}  // namespace pacds
