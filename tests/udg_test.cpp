// Tests for unit-disk graph construction: correctness of both builders and
// their exact agreement on random instances.

#include "net/udg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"

namespace pacds {
namespace {

TEST(UdgTest, EmptyAndSingle) {
  EXPECT_EQ(build_udg({}, 5.0).num_nodes(), 0);
  const Graph one = build_udg({{1.0, 1.0}}, 5.0);
  EXPECT_EQ(one.num_nodes(), 1);
  EXPECT_EQ(one.num_edges(), 0u);
}

TEST(UdgTest, EdgeIffWithinRadius) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {3.0, 4.0}, {10.0, 0.0}};
  const Graph g = build_udg(pts, 5.0);
  EXPECT_TRUE(g.has_edge(0, 1));   // distance 5 == radius (closed ball)
  EXPECT_FALSE(g.has_edge(0, 2));  // distance 10
  EXPECT_FALSE(g.has_edge(1, 2));  // distance sqrt(49+16) > 5
}

TEST(UdgTest, BoundaryInclusive) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {25.0, 0.0}};
  EXPECT_EQ(build_udg(pts, 25.0).num_edges(), 1u);
  EXPECT_EQ(build_udg(pts, 24.999).num_edges(), 0u);
}

TEST(UdgTest, CoincidentPoints) {
  const std::vector<Vec2> pts{{5.0, 5.0}, {5.0, 5.0}, {5.0, 5.0}};
  const Graph g = build_udg(pts, 1.0);
  EXPECT_EQ(g.num_edges(), 3u);  // triangle, no self-loops
}

TEST(UdgTest, ZeroRadius) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.0, 0.0}};
  const Graph g = build_udg(pts, 0.0);
  EXPECT_EQ(g.num_edges(), 1u);  // only the coincident pair
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(UdgTest, NegativeRadiusThrows) {
  EXPECT_THROW((void)build_udg({{0.0, 0.0}}, -1.0), std::invalid_argument);
}

TEST(UdgTest, BothMethodsOnHandcrafted) {
  const std::vector<Vec2> pts{
      {0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {0.0, 10.0}, {50.0, 50.0}};
  const Graph naive = build_udg(pts, 12.0, UdgMethod::kNaive);
  const Graph grid = build_udg(pts, 12.0, UdgMethod::kGrid);
  EXPECT_EQ(naive, grid);
}

TEST(SpatialGridTest, QueryFindsNeighbors) {
  const std::vector<Vec2> pts{
      {0.0, 0.0}, {1.0, 1.0}, {5.0, 5.0}, {2.5, 0.0}, {-1.0, -1.0}};
  const SpatialGrid grid(pts, 3.0);
  const auto near0 = grid.query({0.0, 0.0}, 3.0, 0);
  EXPECT_EQ(near0, (std::vector<NodeId>{1, 3, 4}));
}

TEST(SpatialGridTest, ExcludeKeptWhenMinusOne) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}};
  const SpatialGrid grid(pts, 2.0);
  const auto all = grid.query({0.0, 0.0}, 2.0, -1);
  EXPECT_EQ(all, (std::vector<NodeId>{0, 1}));
}

TEST(SpatialGridTest, RadiusLargerThanCellThrows) {
  const std::vector<Vec2> pts{{0.0, 0.0}};
  const SpatialGrid grid(pts, 1.0);
  EXPECT_THROW((void)grid.query({0.0, 0.0}, 2.0), std::invalid_argument);
}

TEST(SpatialGridTest, BadCellSizeThrows) {
  const std::vector<Vec2> pts{{0.0, 0.0}};
  EXPECT_THROW(SpatialGrid(pts, 0.0), std::invalid_argument);
}

TEST(SpatialGridTest, NegativeCoordinates) {
  const std::vector<Vec2> pts{{-10.0, -10.0}, {-11.0, -10.0}, {10.0, 10.0}};
  const SpatialGrid grid(pts, 5.0);
  const auto near = grid.query({-10.0, -10.0}, 5.0, 0);
  EXPECT_EQ(near, (std::vector<NodeId>{1}));
}

// Agreement of naive and grid builders over random dense/sparse instances.
class UdgAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(UdgAgreementTest, NaiveEqualsGrid) {
  const auto [n, radius, seed] = GetParam();
  Xoshiro256 rng(seed);
  const Field field = Field::paper_field();
  const auto pts = random_placement(n, field, rng);
  const Graph naive = build_udg(pts, radius, UdgMethod::kNaive);
  const Graph grid = build_udg(pts, radius, UdgMethod::kGrid);
  EXPECT_EQ(naive, grid) << "n=" << n << " r=" << radius;
}

INSTANTIATE_TEST_SUITE_P(
    RandomPlacements, UdgAgreementTest,
    ::testing::Combine(::testing::Values(2, 10, 50, 150),
                       ::testing::Values(5.0, 25.0, 60.0),
                       ::testing::Values(101u, 202u, 303u)),
    [](const ::testing::TestParamInfo<UdgAgreementTest::ParamType>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_r" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param))) +
             "_s" + std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace pacds
