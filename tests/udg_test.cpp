// Tests for unit-disk graph construction: correctness of both builders and
// their exact agreement on random instances.

#include "net/udg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"

namespace pacds {
namespace {

TEST(UdgTest, EmptyAndSingle) {
  EXPECT_EQ(build_udg({}, 5.0).num_nodes(), 0);
  const Graph one = build_udg({{1.0, 1.0}}, 5.0);
  EXPECT_EQ(one.num_nodes(), 1);
  EXPECT_EQ(one.num_edges(), 0u);
}

TEST(UdgTest, EdgeIffWithinRadius) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {3.0, 4.0}, {10.0, 0.0}};
  const Graph g = build_udg(pts, 5.0);
  EXPECT_TRUE(g.has_edge(0, 1));   // distance 5 == radius (closed ball)
  EXPECT_FALSE(g.has_edge(0, 2));  // distance 10
  EXPECT_FALSE(g.has_edge(1, 2));  // distance sqrt(49+16) > 5
}

TEST(UdgTest, BoundaryInclusive) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {25.0, 0.0}};
  EXPECT_EQ(build_udg(pts, 25.0).num_edges(), 1u);
  EXPECT_EQ(build_udg(pts, 24.999).num_edges(), 0u);
}

TEST(UdgTest, CoincidentPoints) {
  const std::vector<Vec2> pts{{5.0, 5.0}, {5.0, 5.0}, {5.0, 5.0}};
  const Graph g = build_udg(pts, 1.0);
  EXPECT_EQ(g.num_edges(), 3u);  // triangle, no self-loops
}

TEST(UdgTest, ZeroRadius) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.0, 0.0}};
  const Graph g = build_udg(pts, 0.0);
  EXPECT_EQ(g.num_edges(), 1u);  // only the coincident pair
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(UdgTest, NegativeRadiusThrows) {
  EXPECT_THROW((void)build_udg({{0.0, 0.0}}, -1.0), std::invalid_argument);
}

TEST(UdgTest, BothMethodsOnHandcrafted) {
  const std::vector<Vec2> pts{
      {0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {0.0, 10.0}, {50.0, 50.0}};
  const Graph naive = build_udg(pts, 12.0, UdgMethod::kNaive);
  const Graph grid = build_udg(pts, 12.0, UdgMethod::kGrid);
  EXPECT_EQ(naive, grid);
}

TEST(SpatialGridTest, QueryFindsNeighbors) {
  const std::vector<Vec2> pts{
      {0.0, 0.0}, {1.0, 1.0}, {5.0, 5.0}, {2.5, 0.0}, {-1.0, -1.0}};
  const SpatialGrid grid(pts, 3.0);
  const auto near0 = grid.query({0.0, 0.0}, 3.0, 0);
  EXPECT_EQ(near0, (std::vector<NodeId>{1, 3, 4}));
}

TEST(SpatialGridTest, ExcludeKeptWhenMinusOne) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}};
  const SpatialGrid grid(pts, 2.0);
  const auto all = grid.query({0.0, 0.0}, 2.0, -1);
  EXPECT_EQ(all, (std::vector<NodeId>{0, 1}));
}

TEST(SpatialGridTest, RadiusLargerThanCellThrows) {
  const std::vector<Vec2> pts{{0.0, 0.0}};
  const SpatialGrid grid(pts, 1.0);
  EXPECT_THROW((void)grid.query({0.0, 0.0}, 2.0), std::invalid_argument);
}

TEST(SpatialGridTest, BadCellSizeThrows) {
  const std::vector<Vec2> pts{{0.0, 0.0}};
  EXPECT_THROW(SpatialGrid(pts, 0.0), std::invalid_argument);
}

TEST(SpatialGridTest, NegativeCoordinates) {
  const std::vector<Vec2> pts{{-10.0, -10.0}, {-11.0, -10.0}, {10.0, 10.0}};
  const SpatialGrid grid(pts, 5.0);
  const auto near = grid.query({-10.0, -10.0}, 5.0, 0);
  EXPECT_EQ(near, (std::vector<NodeId>{1}));
}

TEST(SpatialGridTest, QueryIntoMatchesQueryAndClearsBuffer) {
  const std::vector<Vec2> pts{
      {0.0, 0.0}, {1.0, 1.0}, {5.0, 5.0}, {2.5, 0.0}, {-1.0, -1.0}};
  const SpatialGrid grid(pts, 3.0);
  std::vector<NodeId> out{99, 98, 97};  // stale contents must be discarded
  grid.query_into({0.0, 0.0}, 3.0, 0, out);
  EXPECT_EQ(out, grid.query({0.0, 0.0}, 3.0, 0));
  grid.query_into({5.0, 5.0}, 3.0, -1, out);
  EXPECT_EQ(out, grid.query({5.0, 5.0}, 3.0, -1));
}

TEST(SpatialGridTest, MoveRefilesAcrossCells) {
  std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {20.0, 20.0}};
  SpatialGrid grid(pts, 5.0);
  // Node 0 jumps next to node 2; the grid reads positions through `pts`.
  const Vec2 old_pos = pts[0];
  pts[0] = {21.0, 20.0};
  grid.move(0, old_pos, pts[0]);
  EXPECT_EQ(grid.query(pts[0], 5.0, 0), (std::vector<NodeId>{2}));
  EXPECT_EQ(grid.query({0.0, 0.0}, 5.0, -1), (std::vector<NodeId>{1}));
}

TEST(SpatialGridTest, MoveWithinCellIsNoOp) {
  std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}};
  SpatialGrid grid(pts, 5.0);
  const Vec2 old_pos = pts[0];
  pts[0] = {2.0, 2.0};  // same 5x5 cell
  grid.move(0, old_pos, pts[0]);
  EXPECT_EQ(grid.query(pts[0], 5.0, -1), (std::vector<NodeId>{0, 1}));
}

TEST(SpatialGridTest, MoveWithStaleOldPositionThrows) {
  std::vector<Vec2> pts{{0.0, 0.0}};
  SpatialGrid grid(pts, 1.0);
  // The node was never filed under cell (50, 50): caller passed a stale
  // old position.
  EXPECT_THROW(grid.move(0, {50.0, 50.0}, {60.0, 60.0}), std::logic_error);
}

TEST(SpatialGridTest, MovedGridAgreesWithFreshGrid) {
  Xoshiro256 rng(77);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts = random_placement(120, field, rng);
  SpatialGrid grid(pts, 25.0);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (rng.uniform01() < 0.5) continue;
      const Vec2 old_pos = pts[i];
      pts[i] = {rng.uniform01() * field.width(),
                rng.uniform01() * field.height()};
      grid.move(static_cast<NodeId>(i), old_pos, pts[i]);
    }
    const SpatialGrid fresh(pts, 25.0);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ASSERT_EQ(grid.query(pts[i], 25.0, static_cast<NodeId>(i)),
                fresh.query(pts[i], 25.0, static_cast<NodeId>(i)))
          << "round " << round << " node " << i;
    }
  }
}

// ---- 3-D fields ------------------------------------------------------------

std::vector<Vec2> random_3d_points(int n, double extent, double depth,
                                   Xoshiro256& rng) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Vec2 p{rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
    p.z = rng.uniform(0.0, depth);
    pts.push_back(p);
  }
  return pts;
}

TEST(SpatialGridTest, ThreeDQueryMatchesBruteForce) {
  Xoshiro256 rng(2718);
  const double radius = 25.0;
  const auto pts = random_3d_points(120, 100.0, 60.0, rng);
  const SpatialGrid grid(pts, radius);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::vector<NodeId> brute;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j != i && distance2(pts[i], pts[j]) <= radius * radius) {
        brute.push_back(static_cast<NodeId>(j));
      }
    }
    ASSERT_EQ(grid.query(pts[i], radius, static_cast<NodeId>(i)), brute)
        << "node " << i;
  }
}

TEST(UdgTest, ThreeDNaiveEqualsGrid) {
  Xoshiro256 rng(3141);
  for (const double radius : {10.0, 30.0}) {
    const auto pts = random_3d_points(90, 100.0, 80.0, rng);
    EXPECT_EQ(build_udg(pts, radius, UdgMethod::kNaive),
              build_udg(pts, radius, UdgMethod::kGrid))
        << "r=" << radius;
  }
}

TEST(SpatialGridTest, MoveLiftingAPlanarGridIntoThreeD) {
  // A grid that has only ever seen z == 0 skips the z cell ring; the first
  // move that introduces depth must permanently widen the query ring, and
  // queries must stay exact through the transition.
  std::vector<Vec2> pts{{10.0, 10.0}, {12.0, 10.0}, {50.0, 50.0}};
  SpatialGrid grid(pts, 7.0);
  EXPECT_EQ(grid.query(pts[0], 5.0, 0), (std::vector<NodeId>{1}));
  const Vec2 old_pos = pts[1];
  pts[1].z = 4.0;  // lift host 1 off the plane, same cell footprint in xy
  grid.move(1, old_pos, pts[1]);
  EXPECT_EQ(grid.query(pts[0], 5.0, 0), (std::vector<NodeId>{1}));
  pts[1].z = 6.0;  // now out of the closed ball around host 0
  grid.move(1, {12.0, 10.0, 4.0}, pts[1]);
  EXPECT_EQ(grid.query(pts[0], 5.0, 0), std::vector<NodeId>{});
  EXPECT_EQ(grid.query(pts[1], 7.0, 1), (std::vector<NodeId>{0}));
}

// Agreement of naive and grid builders over random dense/sparse instances.
class UdgAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(UdgAgreementTest, NaiveEqualsGrid) {
  const auto [n, radius, seed] = GetParam();
  Xoshiro256 rng(seed);
  const Field field = Field::paper_field();
  const auto pts = random_placement(n, field, rng);
  const Graph naive = build_udg(pts, radius, UdgMethod::kNaive);
  const Graph grid = build_udg(pts, radius, UdgMethod::kGrid);
  EXPECT_EQ(naive, grid) << "n=" << n << " r=" << radius;
}

INSTANTIATE_TEST_SUITE_P(
    RandomPlacements, UdgAgreementTest,
    ::testing::Combine(::testing::Values(2, 10, 50, 150),
                       ::testing::Values(5.0, 25.0, 60.0),
                       ::testing::Values(101u, 202u, 303u)),
    [](const ::testing::TestParamInfo<UdgAgreementTest::ParamType>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_r" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param))) +
             "_s" + std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace pacds
