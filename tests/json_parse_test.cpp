// Tests for the read-side JSON parser (io/json_parse): value coverage,
// escape handling including \uXXXX and surrogate pairs, the JSON number
// grammar, error reporting with byte offsets, the recursion-depth guard,
// and writer round-trips in both directions.

#include "io/json_parse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/json.hpp"

namespace pacds {
namespace {

TEST(JsonParseTest, ScalarValues) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("2.5E-1").as_number(), 0.25);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json("  \"padded\"  ").as_string(), "padded");
}

TEST(JsonParseTest, ContainersPreserveOrderAndNesting) {
  const JsonValue doc =
      parse_json(R"({"b": 1, "a": [true, null, {"deep": "yes"}], "c": 2})");
  const JsonObject& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "b");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "c");
  EXPECT_EQ(doc.find("b")->as_number(), 1.0);
  const JsonArray& items = doc.find("a")->as_array();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_TRUE(items[0].as_bool());
  EXPECT_TRUE(items[1].is_null());
  EXPECT_EQ(items[2].find("deep")->as_string(), "yes");
  EXPECT_EQ(doc.find("missing"), nullptr);

  EXPECT_TRUE(parse_json("{}").as_object().empty());
  EXPECT_TRUE(parse_json("[]").as_array().empty());
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse_json(R"("\n\r\t\b\f")").as_string(), "\n\r\t\b\f");
  EXPECT_EQ(parse_json("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(),
            "\xc3\xa9");  // U+00E9 é, 2-byte UTF-8
  EXPECT_EQ(parse_json("\"\\u20AC\"").as_string(),
            "\xe2\x82\xac");  // U+20AC €, 3-byte UTF-8
  // Surrogate pair decoding: U+1F600 GRINNING FACE, 4-byte UTF-8.
  EXPECT_EQ(parse_json("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // Raw multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(parse_json("\"\xe2\x82\xac\"").as_string(), "\xe2\x82\xac");
}

TEST(JsonParseTest, WriterEscapesRoundTripThroughParser) {
  const std::string nasty = "line1\nline2\t\"quoted\" back\\slash \x01";
  std::ostringstream out;
  JsonWriter json(out);
  json.value(nasty);
  EXPECT_EQ(parse_json(out.str()).as_string(), nasty);
}

TEST(JsonParseTest, NumberGrammarIsStrict) {
  // JSON forbids leading zeros, bare dots, leading '+', and hex.
  EXPECT_THROW((void)parse_json("01"), std::runtime_error);
  EXPECT_THROW((void)parse_json("-01"), std::runtime_error);
  EXPECT_THROW((void)parse_json(".5"), std::runtime_error);
  EXPECT_THROW((void)parse_json("1."), std::runtime_error);
  EXPECT_THROW((void)parse_json("+1"), std::runtime_error);
  EXPECT_THROW((void)parse_json("0x10"), std::runtime_error);
  EXPECT_THROW((void)parse_json("1e"), std::runtime_error);
  // But these are valid.
  EXPECT_EQ(parse_json("0").as_number(), 0.0);
  EXPECT_EQ(parse_json("-0").as_number(), 0.0);
  EXPECT_EQ(parse_json("0.25").as_number(), 0.25);
  EXPECT_EQ(parse_json("1e+2").as_number(), 100.0);
}

TEST(JsonParseTest, NonFiniteDoublesRoundTripAsNull) {
  // ±inf and NaN have no JSON representation; the writer maps them to null
  // on both of its double paths (value() and format_double), and the parser
  // must accept the result as a well-formed document with null members —
  // never see an "inf"/"nan" token it would reject.
  const double inf = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("pos").value(inf);
  json.key("neg").value(-inf);
  json.key("nan").value(std::numeric_limits<double>::quiet_NaN());
  json.key("finite").value(2.5);
  json.end_object();
  const JsonValue doc = parse_json(out.str());
  EXPECT_TRUE(doc.find("pos")->is_null());
  EXPECT_TRUE(doc.find("neg")->is_null());
  EXPECT_TRUE(doc.find("nan")->is_null());
  EXPECT_EQ(doc.find("finite")->as_number(), 2.5);

  // The parser itself refuses the raw tokens...
  EXPECT_THROW((void)parse_json("inf"), std::runtime_error);
  EXPECT_THROW((void)parse_json("-inf"), std::runtime_error);
  EXPECT_THROW((void)parse_json("nan"), std::runtime_error);
  EXPECT_THROW((void)parse_json("Infinity"), std::runtime_error);
  // ...but an overflowing literal is grammatically fine and lands as +inf —
  // the stream validator's non-finite walk exists to catch exactly this.
  EXPECT_TRUE(std::isinf(parse_json("1e999").as_number()));
}

TEST(JsonParseTest, MalformedDocumentsThrowWithByteOffset) {
  EXPECT_THROW((void)parse_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_json("{"), std::runtime_error);
  EXPECT_THROW((void)parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW((void)parse_json(R"({"a" 1})"), std::runtime_error);
  EXPECT_THROW((void)parse_json(R"({"a": 1,})"), std::runtime_error);
  EXPECT_THROW((void)parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)parse_json("nul"), std::runtime_error);
  EXPECT_THROW((void)parse_json("1 2"), std::runtime_error);  // trailing junk
  EXPECT_THROW((void)parse_json(R"("\q")"), std::runtime_error);
  EXPECT_THROW((void)parse_json(R"("\ud83d")"), std::runtime_error);  // lone hi

  try {
    (void)parse_json("[1, xyz]");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset 4"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParseTest, DuplicateObjectKeysAreRejected) {
  EXPECT_THROW((void)parse_json(R"({"a": 1, "a": 2})"), std::runtime_error);
  // Compared after escape decoding: "\u0061" is another spelling of "a",
  // so it cannot smuggle a second value past a validator that saw the
  // first.
  EXPECT_THROW((void)parse_json(R"({"a": 1, "\u0061": 2})"),
               std::runtime_error);
  // Each object has its own key space — repeats across nesting are fine.
  const JsonValue doc = parse_json(R"({"x": {"k": 1}, "y": {"k": 2}})");
  EXPECT_EQ(doc.find("y")->find("k")->as_number(), 2.0);

  try {
    (void)parse_json(R"({"k": 1, "k": 2})");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate object key"), std::string::npos) << what;
    EXPECT_NE(what.find("offset 9"), std::string::npos) << what;
  }
}

TEST(JsonParseTest, DepthGuardRejectsPathologicalNesting) {
  const std::string deep_ok(200, '[');
  EXPECT_THROW((void)parse_json(deep_ok), std::runtime_error);  // unbalanced
  std::string balanced;
  for (int i = 0; i < 200; ++i) balanced += '[';
  for (int i = 0; i < 200; ++i) balanced += ']';
  EXPECT_NO_THROW((void)parse_json(balanced));

  std::string too_deep;
  for (int i = 0; i < 300; ++i) too_deep += '[';
  for (int i = 0; i < 300; ++i) too_deep += ']';
  EXPECT_THROW((void)parse_json(too_deep), std::runtime_error);
}

TEST(JsonParseTest, TypeMismatchAccessorsThrow) {
  const JsonValue number = parse_json("7");
  EXPECT_THROW((void)number.as_string(), std::runtime_error);
  EXPECT_THROW((void)number.as_array(), std::runtime_error);
  EXPECT_THROW((void)number.as_object(), std::runtime_error);
  EXPECT_THROW((void)number.as_bool(), std::runtime_error);
  EXPECT_EQ(number.find("anything"), nullptr);  // non-object: absent, no throw
}

TEST(JsonParseTest, WriteJsonRoundTripsDocuments) {
  const std::string original =
      R"({"name":"pacds","pi":3.141592653589793,"flags":[true,false,null],)"
      R"("nested":{"empty_obj":{},"empty_arr":[]}})";
  const JsonValue doc = parse_json(original);
  std::ostringstream out;
  JsonWriter json(out);
  write_json(json, doc);
  EXPECT_EQ(out.str(), original);

  // Pretty mode must still parse to the same document.
  std::ostringstream pretty_out;
  JsonWriter pretty(pretty_out, 2);
  write_json(pretty, doc);
  const JsonValue reparsed = parse_json(pretty_out.str());
  EXPECT_EQ(reparsed.find("pi")->as_number(), 3.141592653589793);
  EXPECT_EQ(reparsed.find("nested")->find("empty_obj")->as_object().size(),
            0u);
}

}  // namespace
}  // namespace pacds
