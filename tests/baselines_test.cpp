// Tests for the centralized baseline CDS algorithms: all must produce valid
// connected dominating sets; the greedy baseline should be competitive.

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "baselines/tree_cds.hpp"
#include "core/cds.hpp"
#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::figure1_graph;
using testing::path_graph;
using testing::star_graph;

TEST(GreedyMcdsTest, StarUsesCenterOnly) {
  const DynBitset cds = greedy_mcds(star_graph(6));
  EXPECT_EQ(cds.count(), 1u);
  EXPECT_TRUE(cds.test(0));
}

TEST(GreedyMcdsTest, PathUsesInterior) {
  const Graph g = path_graph(5);
  const DynBitset cds = greedy_mcds(g);
  EXPECT_TRUE(check_cds(g, cds).ok());
  EXPECT_LE(cds.count(), 3u);
}

TEST(GreedyMcdsTest, CompleteGraphSingleDominator) {
  const Graph g = complete_graph(5);
  const DynBitset cds = greedy_mcds(g);
  EXPECT_EQ(cds.count(), 1u);
  EXPECT_TRUE(check_cds(g, cds).ok());
}

TEST(GreedyMcdsTest, SingletonContributesNothing) {
  Graph g(3);
  g.add_edge(0, 1);
  const DynBitset cds = greedy_mcds(g);
  EXPECT_FALSE(cds.test(2));
  EXPECT_TRUE(check_cds(g, cds).ok());
}

TEST(GreedyMcdsTest, EmptyGraph) {
  EXPECT_EQ(greedy_mcds(Graph(0)).count(), 0u);
}

TEST(TreeCdsTest, PathInternalNodes) {
  const Graph g = path_graph(6);
  const DynBitset cds = bfs_tree_cds(g, /*prune=*/false);
  EXPECT_TRUE(check_cds(g, cds).ok());
  // Internal nodes of any spanning tree of P6 are exactly {1,2,3,4}.
  EXPECT_EQ(cds.count(), 4u);
}

TEST(TreeCdsTest, PruningOnlyShrinks) {
  Xoshiro256 rng(5);
  const auto placed = random_connected_placement(30, Field::paper_field(),
                                                 kPaperRadius, rng, 5000);
  ASSERT_TRUE(placed.has_value());
  const DynBitset raw = bfs_tree_cds(placed->graph, false);
  const DynBitset pruned = bfs_tree_cds(placed->graph, true);
  EXPECT_LE(pruned.count(), raw.count());
  EXPECT_TRUE(pruned.is_subset_of(raw));
  EXPECT_TRUE(check_cds(placed->graph, pruned).ok());
}

TEST(TreeCdsTest, K2KeepsOneEnd) {
  const Graph g = complete_graph(2);
  const DynBitset cds = bfs_tree_cds(g);
  EXPECT_EQ(cds.count(), 1u);
  EXPECT_TRUE(check_cds(g, cds).ok());
}

TEST(MisTest, GreedyMisIsIndependentAndMaximal) {
  Xoshiro256 rng(6);
  const auto placed = random_connected_placement(40, Field::paper_field(),
                                                 kPaperRadius, rng, 5000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const DynBitset mis = greedy_mis(g);
  // Independent: no edge inside the set.
  for (const auto& [u, v] : g.edges()) {
    EXPECT_FALSE(mis.test(static_cast<std::size_t>(u)) &&
                 mis.test(static_cast<std::size_t>(v)))
        << u << "-" << v;
  }
  // Maximal: every node outside has a neighbor inside.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mis.test(static_cast<std::size_t>(v))) continue;
    bool blocked = false;
    for (const NodeId u : g.neighbors(v)) {
      if (mis.test(static_cast<std::size_t>(u))) blocked = true;
    }
    EXPECT_TRUE(blocked) << "node " << v;
  }
}

TEST(MisTest, MisCdsIsValid) {
  for (const Graph& g : {figure1_graph(), path_graph(8), cycle_graph(9),
                         star_graph(5)}) {
    const DynBitset cds = mis_cds(g);
    const CdsCheck check = check_cds(g, cds);
    EXPECT_TRUE(check.ok()) << check.message;
  }
}

TEST(MisTest, MisCdsDropsIsolatedNodes) {
  Graph g(3);
  g.add_edge(0, 1);
  const DynBitset cds = mis_cds(g);
  EXPECT_FALSE(cds.test(2));
}

// All baselines on random connected unit-disk graphs.
class BaselinePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BaselinePropertyTest, AllBaselinesValid) {
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  const auto placed = random_connected_placement(n, Field::paper_field(),
                                                 kPaperRadius, rng, 5000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  for (const auto& [name, cds] :
       {std::pair{"greedy", greedy_mcds(g)},
        std::pair{"tree", bfs_tree_cds(g)},
        std::pair{"mis", mis_cds(g)}}) {
    const CdsCheck check = check_cds(g, cds);
    EXPECT_TRUE(check.ok()) << name << ": " << check.message;
  }
}

TEST_P(BaselinePropertyTest, GreedyCompetitiveWithDistributedRules) {
  // The centralized greedy should rarely be larger than the distributed ND
  // scheme; allow generous slack (it is a heuristic, not an optimum).
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed ^ 0xabcdef);
  const auto placed = random_connected_placement(n, Field::paper_field(),
                                                 kPaperRadius, rng, 5000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const std::size_t greedy = greedy_mcds(g).count();
  const std::size_t nd = compute_cds(g, RuleSet::kND).gateway_count;
  EXPECT_LE(greedy, nd + 3);
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, BaselinePropertyTest,
    ::testing::Combine(::testing::Values(10, 25, 50),
                       ::testing::Values(41u, 42u, 43u, 44u)),
    [](const ::testing::TestParamInfo<BaselinePropertyTest::ParamType>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace pacds
