// Tests for the differential fuzzing subsystem: scenario generation and the
// strict corpus format, the invariant-oracle suite, shrinking, and the
// end-to-end catch -> shrink -> write-reproducer -> replay pipeline. The
// oracle suite itself is mutation-tested: OracleOptions::mutation makes
// run_oracles perturb one oracle's observed data, proving a real defect of
// that class would be caught and minimized, not silently missed.

#include "fuzz/fuzzer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simd.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "sim/engine.hpp"

namespace pacds::fuzz {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the test temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("pacds_fuzz_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

bool same_scenario(const FuzzScenario& a, const FuzzScenario& b) {
  return a.id == b.id && a.trial_seed == b.trial_seed &&
         describe(a) == describe(b) &&
         scenario_to_json(a) == scenario_to_json(b);
}

/// First generated scenario index satisfying `pred`; -1 when none found in
/// the scan window (keeps mutation tests fast and deterministic).
template <typename Pred>
std::int64_t find_scenario(std::uint64_t seed, Pred pred, int window = 64) {
  for (int i = 0; i < window; ++i) {
    if (pred(random_scenario(seed, static_cast<std::uint64_t>(i)))) return i;
  }
  return -1;
}

bool fails_oracle(const FuzzScenario& s, int mutation,
                  const std::string& oracle) {
  for (const OracleFailure& f : run_oracles(s, OracleOptions{mutation})) {
    if (f.oracle == oracle) return true;
  }
  return false;
}

// ---- scenario generation and corpus format --------------------------------

TEST(FuzzScenarioTest, GenerationIsDeterministicAndSeedsFitJsonDoubles) {
  for (std::uint64_t i = 0; i < 32; ++i) {
    const FuzzScenario a = random_scenario(9, i);
    const FuzzScenario b = random_scenario(9, i);
    EXPECT_TRUE(same_scenario(a, b)) << describe(a);
    EXPECT_EQ(a.id, i);
    // Seeds must round-trip through the corpus' double-typed numbers.
    EXPECT_LT(a.trial_seed, std::uint64_t{1} << 53);
    EXPECT_LT(a.faults.seed, std::uint64_t{1} << 53);
    EXPECT_GE(a.config.n_hosts, 4);
  }
  // Different indices produce different instances.
  EXPECT_FALSE(same_scenario(random_scenario(9, 0), random_scenario(9, 1)));
}

TEST(FuzzScenarioTest, GeneratorPopulatesEveryOracleDomain) {
  int threaded = 0;
  int eligible = 0;
  int faulted = 0;
  int channel = 0;
  int event_free = 0;
  int chunked_ticks = 0;
  int one_shot_ticks = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const FuzzScenario s = random_scenario(3, i);
    if (s.config.threads > 1) ++threaded;
    if (incremental_engine_eligible(s.config)) ++eligible;
    if (s.faults.has_lifetime_events()) ++faulted;
    if (s.faults.channel.any()) ++channel;
    if (!s.faults.has_lifetime_events()) ++event_free;
    if (s.serve_ticks > 0) ++chunked_ticks;
    if (s.serve_ticks == 0) ++one_shot_ticks;
  }
  EXPECT_GT(threaded, 0);
  EXPECT_GT(eligible, 0);
  EXPECT_GT(faulted, 0);
  EXPECT_GT(channel, 0);
  EXPECT_GT(event_free, 0);
  EXPECT_GT(chunked_ticks, 0);
  EXPECT_GT(one_shot_ticks, 0);
}

TEST(FuzzScenarioTest, CorpusRoundTripsExactly) {
  for (const std::uint64_t i : {0u, 5u, 11u, 23u}) {
    const FuzzScenario original = random_scenario(4, i);
    const std::string text = scenario_to_json(original);
    const FuzzScenario parsed = parse_scenario(text);
    EXPECT_TRUE(same_scenario(original, parsed)) << text;
  }
}

TEST(FuzzScenarioTest, ParserIsStrict) {
  const std::string good = scenario_to_json(random_scenario(4, 0));
  EXPECT_NO_THROW((void)parse_scenario(good));
  // Unknown keys fail loudly (hand-edited reproducer typo protection).
  EXPECT_THROW((void)parse_scenario("{\"format\":\"pacds-fuzz-repro\","
                                    "\"schema\":1,\"oops\":1}"),
               std::runtime_error);
  // Wrong magic / missing schema / wrong version.
  EXPECT_THROW((void)parse_scenario("{\"format\":\"other\",\"schema\":1}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("{\"format\":\"pacds-fuzz-repro\"}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("{\"format\":\"pacds-fuzz-repro\","
                                    "\"schema\":999}"),
               std::runtime_error);
  // Bad enum value inside config.
  EXPECT_THROW(
      (void)parse_scenario("{\"format\":\"pacds-fuzz-repro\",\"schema\":1,"
                           "\"config\":{\"scheme\":\"EL9\"}}"),
      std::runtime_error);
  // Fault plan validated against the host count (validate_fault_plan's
  // exception type, not the parser's).
  EXPECT_THROW(
      (void)parse_scenario("{\"format\":\"pacds-fuzz-repro\",\"schema\":1,"
                           "\"config\":{\"n\":4},"
                           "\"faults\":{\"thefts\":[{\"node\":9,\"at\":1,"
                           "\"amount\":5}]}}"),
      std::invalid_argument);
}

TEST(FuzzScenarioTest, ServeTicksIsOptionalAndRangeChecked) {
  // Pre-serve corpus reproducers carry no "serve_ticks"; they must keep
  // parsing with the one-shot default.
  const FuzzScenario bare =
      parse_scenario("{\"format\":\"pacds-fuzz-repro\",\"schema\":1}");
  EXPECT_EQ(bare.serve_ticks, 0);
  const FuzzScenario chunked = parse_scenario(
      "{\"format\":\"pacds-fuzz-repro\",\"schema\":1,\"serve_ticks\":5}");
  EXPECT_EQ(chunked.serve_ticks, 5);
  EXPECT_THROW((void)parse_scenario("{\"format\":\"pacds-fuzz-repro\","
                                    "\"schema\":1,\"serve_ticks\":-1}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("{\"format\":\"pacds-fuzz-repro\","
                                    "\"schema\":1,\"serve_ticks\":2.5}"),
               std::runtime_error);
}

// ---- oracle suite ---------------------------------------------------------

TEST(FuzzOracleTest, CleanOnGeneratedScenarios) {
  for (std::uint64_t i = 0; i < 24; ++i) {
    const FuzzScenario s = random_scenario(1, i);
    const std::vector<OracleFailure> failures = run_oracles(s);
    EXPECT_TRUE(failures.empty())
        << failures.front().oracle << ": " << failures.front().detail;
  }
}

TEST(FuzzOracleTest, EveryMutationIsCaughtByItsOracle) {
  // For each mutation hook, scan for a scenario inside that oracle's domain
  // and require (a) the mutated run reports exactly that oracle and (b) the
  // unmutated run is clean — the catch is the mutation's doing.
  struct Case {
    int mutation;
    const char* oracle;
    bool (*in_domain)(const FuzzScenario&);
  };
  const Case cases[] = {
      {kMutateCdsValidity, "cds-validity",
       [](const FuzzScenario&) { return true; }},
      {kMutateEngineIdentity, "engine-identity",
       [](const FuzzScenario& s) {
         return incremental_engine_eligible(s.config);
       }},
      {kMutateThreadsIdentity, "threads-identity",
       [](const FuzzScenario& s) { return s.config.threads > 1; }},
      {kMutateDistAgreement, "dist-agreement",
       [](const FuzzScenario&) { return true; }},
      {kMutateEnergyAccounting, "energy-conservation",
       [](const FuzzScenario&) { return true; }},
      {kMutateFaultStats, "fault-stats",
       [](const FuzzScenario& s) { return s.faults.has_lifetime_events(); }},
      {kMutateJsonl, "jsonl-schema", [](const FuzzScenario&) { return true; }},
      {kMutateEmptyPlanIdentity, "empty-plan-identity",
       [](const FuzzScenario& s) { return !s.faults.has_lifetime_events(); }},
      {kMutateServeIdentity, "serve-identity",
       [](const FuzzScenario&) { return true; }},
      // gap-bound's mutation is caught unconditionally by the bitmask
      // differential, which needs the exhaustive solver's n <= 20 domain
      // and a scenario dense enough that the connected snapshot the oracle
      // runs on actually exists (the 100x100 field is the generator's
      // default).
      {kMutateGapBound, "gap-bound",
       [](const FuzzScenario& s) {
         return s.config.n_hosts >= 8 && s.config.n_hosts <= 20 &&
                s.config.radius >= 35.0;
       }},
  };
  for (const Case& c : cases) {
    const std::int64_t index = find_scenario(1, c.in_domain);
    ASSERT_GE(index, 0) << c.oracle << ": no in-domain scenario in window";
    const FuzzScenario s =
        random_scenario(1, static_cast<std::uint64_t>(index));
    EXPECT_TRUE(fails_oracle(s, c.mutation, c.oracle))
        << c.oracle << " mutation not caught on " << describe(s);
    EXPECT_TRUE(run_oracles(s).empty())
        << c.oracle << ": scenario fails even unmutated";
  }
}

TEST(FuzzOracleTest, SimdIdentityMutationIsCaught) {
  // simd-identity's domain is a host property (a second dispatch level),
  // not a scenario property, so it gets its own skip-guarded case instead
  // of a row in the table above.
  if (simd::available_levels().size() < 2) {
    GTEST_SKIP() << "host has only the scalar kernel path";
  }
  const FuzzScenario s = random_scenario(1, 0);
  EXPECT_TRUE(fails_oracle(s, kMutateSimdIdentity, "simd-identity"))
      << "simd-identity mutation not caught on " << describe(s);
  EXPECT_TRUE(run_oracles(s).empty())
      << "simd-identity: scenario fails even unmutated";
}

// ---- shrinking ------------------------------------------------------------

TEST(FuzzShrinkTest, ShrinksWhilePreservingTheFailingOracle) {
  // The energy-accounting mutation fails on every scenario, so shrinking
  // must drive the instance down to the n=4 floor and strip the fault plan
  // while the oracle keeps failing at every accepted step.
  const std::int64_t index = find_scenario(1, [](const FuzzScenario& s) {
    return s.config.n_hosts > 8 && s.faults.has_lifetime_events();
  });
  ASSERT_GE(index, 0);
  const FuzzScenario original =
      random_scenario(1, static_cast<std::uint64_t>(index));
  const ShrinkResult shrunk = shrink_scenario(
      original, "energy-conservation", OracleOptions{kMutateEnergyAccounting});
  EXPECT_EQ(shrunk.oracle, "energy-conservation");
  EXPECT_FALSE(shrunk.detail.empty());
  EXPECT_EQ(shrunk.scenario.config.n_hosts, 4);
  EXPECT_FALSE(shrunk.scenario.faults.has_lifetime_events());
  EXPECT_GT(shrunk.steps_kept, 0u);
  EXPECT_TRUE(fails_oracle(shrunk.scenario, kMutateEnergyAccounting,
                           "energy-conservation"));
}

TEST(FuzzShrinkTest, RejectsTransformsThatLoseTheFailure) {
  // The threads-identity mutation only fires for threads > 1, so the
  // serial-threads transform must be rejected and the shrunk scenario keeps
  // a multi-threaded config.
  const std::int64_t index = find_scenario(
      1, [](const FuzzScenario& s) { return s.config.threads > 1; });
  ASSERT_GE(index, 0);
  const FuzzScenario original =
      random_scenario(1, static_cast<std::uint64_t>(index));
  const ShrinkResult shrunk = shrink_scenario(
      original, "threads-identity", OracleOptions{kMutateThreadsIdentity});
  EXPECT_GT(shrunk.scenario.config.threads, 1);
  EXPECT_TRUE(fails_oracle(shrunk.scenario, kMutateThreadsIdentity,
                           "threads-identity"));
}

TEST(FuzzShrinkTest, ThrowsWhenScenarioDoesNotFail) {
  EXPECT_THROW((void)shrink_scenario(random_scenario(1, 0), "cds-validity"),
               std::invalid_argument);
}

// ---- end-to-end campaign --------------------------------------------------

TEST(FuzzCampaignTest, CleanRunReportsOk) {
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 10;
  std::ostringstream log;
  const FuzzReport report = run_fuzz(options, log);
  EXPECT_TRUE(report.ok()) << log.str();
  EXPECT_EQ(report.iterations, 10u);
  EXPECT_EQ(report.corpus_replayed, 0u);
}

TEST(FuzzCampaignTest, InjectedFaultIsCaughtShrunkWrittenAndReplays) {
  // The acceptance pipeline: a deliberately injected defect (mutation hook)
  // must be caught, shrunk, written as a strict-JSON reproducer, and that
  // file must replay to the same oracle failure.
  const fs::path corpus = scratch_dir("pipeline");
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 2;
  options.corpus_dir = corpus.string();
  options.mutation = kMutateEnergyAccounting;
  std::ostringstream log;
  const FuzzReport report = run_fuzz(options, log);
  ASSERT_FALSE(report.findings.empty()) << log.str();
  const FuzzFinding& finding = report.findings.front();
  EXPECT_EQ(finding.oracle, "energy-conservation");
  ASSERT_FALSE(finding.reproducer.empty());
  ASSERT_TRUE(fs::exists(finding.reproducer));

  // The written reproducer is strict JSON and replays to the same failure.
  const FuzzScenario loaded = load_scenario(finding.reproducer);
  EXPECT_TRUE(same_scenario(loaded, finding.scenario));
  EXPECT_TRUE(
      fails_oracle(loaded, kMutateEnergyAccounting, "energy-conservation"));

  // A replay-only campaign over the written corpus re-reports it...
  FuzzOptions replay = options;
  replay.iterations = 0;
  std::ostringstream replay_log;
  const FuzzReport replayed = run_fuzz(replay, replay_log);
  EXPECT_EQ(replayed.corpus_replayed, report.findings.size());
  ASSERT_FALSE(replayed.findings.empty());
  EXPECT_EQ(replayed.findings.front().oracle, "energy-conservation");

  // ...and with the defect "fixed" (mutation off) the corpus runs clean —
  // exactly how a committed regression reproducer behaves after the fix.
  FuzzOptions fixed = replay;
  fixed.mutation = kMutateNone;
  std::ostringstream fixed_log;
  const FuzzReport after_fix = run_fuzz(fixed, fixed_log);
  EXPECT_TRUE(after_fix.ok()) << fixed_log.str();
}

TEST(FuzzCampaignTest, CorruptCorpusFileIsAFinding) {
  const fs::path corpus = scratch_dir("corrupt");
  std::ofstream(corpus / "broken.json") << "{\"format\":\"wrong\"}";
  FuzzOptions options;
  options.iterations = 0;
  options.corpus_dir = corpus.string();
  std::ostringstream log;
  const FuzzReport report = run_fuzz(options, log);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.corpus_errors.size(), 1u);
  EXPECT_NE(report.corpus_errors.front().find("broken.json"),
            std::string::npos);
}

TEST(FuzzCampaignTest, DuplicateKeyCorpusFileIsRejectedNotReplayed) {
  // Companion to json_parse_test's duplicate-key rejection: a reproducer
  // whose document smuggles a second "trial_seed" is refused by the strict
  // parser before any scenario logic sees it, and the replay reports it as
  // a corrupt-corpus finding instead of silently testing one of the values.
  const fs::path corpus = scratch_dir("dupkey");
  std::ofstream(corpus / "dup.json")
      << "{\"format\":\"pacds-fuzz-repro\",\"schema\":1,"
         "\"trial_seed\":1,\"trial_seed\":2}";
  FuzzOptions options;
  options.iterations = 0;
  options.corpus_dir = corpus.string();
  std::ostringstream log;
  const FuzzReport report = run_fuzz(options, log);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.corpus_replayed, 0u);
  ASSERT_EQ(report.corpus_errors.size(), 1u);
  EXPECT_NE(report.corpus_errors.front().find("duplicate object key"),
            std::string::npos)
      << report.corpus_errors.front();
}

TEST(FuzzCampaignTest, CommittedCorpusReplaysClean) {
  // The repo's regression reproducers (tests/corpus/) must stay green; CI's
  // fuzz smoke job replays the same directory through the CLI.
  const fs::path corpus = fs::path(PACDS_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(corpus)) << corpus;
  FuzzOptions options;
  options.iterations = 0;
  options.corpus_dir = corpus.string();
  std::ostringstream log;
  const FuzzReport report = run_fuzz(options, log);
  EXPECT_GT(report.corpus_replayed, 0u) << "committed corpus is empty";
  EXPECT_TRUE(report.ok()) << log.str();
}

}  // namespace
}  // namespace pacds::fuzz
