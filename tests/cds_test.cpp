// Tests for the top-level compute_cds API: scheme dispatch, energy
// requirements, option plumbing, and result bookkeeping.

#include "core/cds.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/verify.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::figure1_graph;
using testing::path_graph;

TEST(CdsTest, ToStringAllSchemes) {
  EXPECT_EQ(to_string(RuleSet::kNR), "NR");
  EXPECT_EQ(to_string(RuleSet::kID), "ID");
  EXPECT_EQ(to_string(RuleSet::kND), "ND");
  EXPECT_EQ(to_string(RuleSet::kEL1), "EL1");
  EXPECT_EQ(to_string(RuleSet::kEL2), "EL2");
}

TEST(CdsTest, SchemeMetadata) {
  EXPECT_FALSE(uses_energy(RuleSet::kNR));
  EXPECT_FALSE(uses_energy(RuleSet::kID));
  EXPECT_FALSE(uses_energy(RuleSet::kND));
  EXPECT_TRUE(uses_energy(RuleSet::kEL1));
  EXPECT_TRUE(uses_energy(RuleSet::kEL2));

  EXPECT_EQ(key_kind_of(RuleSet::kID), KeyKind::kId);
  EXPECT_EQ(key_kind_of(RuleSet::kND), KeyKind::kDegreeId);
  EXPECT_EQ(key_kind_of(RuleSet::kEL1), KeyKind::kEnergyId);
  EXPECT_EQ(key_kind_of(RuleSet::kEL2), KeyKind::kEnergyDegreeId);

  EXPECT_EQ(rule2_form_of(RuleSet::kID), Rule2Form::kSimple);
  EXPECT_EQ(rule2_form_of(RuleSet::kND), Rule2Form::kRefined);
  EXPECT_EQ(rule2_form_of(RuleSet::kEL1), Rule2Form::kRefined);
  EXPECT_EQ(rule2_form_of(RuleSet::kEL2), Rule2Form::kRefined);
}

TEST(CdsTest, NrIsMarkingOnly) {
  const Graph g = figure1_graph();
  const CdsResult result = compute_cds(g, RuleSet::kNR);
  EXPECT_EQ(result.gateways, result.marked_only);
  EXPECT_EQ(result.gateway_count, result.marked_count);
  EXPECT_EQ(result.gateway_count, 2u);  // v and w
}

TEST(CdsTest, RulesNeverGrowTheSet) {
  const Graph g = figure1_graph();
  const CdsResult nr = compute_cds(g, RuleSet::kNR);
  for (const RuleSet rs : {RuleSet::kID, RuleSet::kND}) {
    const CdsResult r = compute_cds(g, rs);
    EXPECT_LE(r.gateway_count, nr.gateway_count) << to_string(rs);
    EXPECT_TRUE(r.gateways.is_subset_of(nr.gateways)) << to_string(rs);
  }
}

TEST(CdsTest, EnergySchemeWithoutEnergyThrows) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)compute_cds(g, RuleSet::kEL1), std::invalid_argument);
  EXPECT_THROW((void)compute_cds(g, RuleSet::kEL2, {1.0}),
               std::invalid_argument);
}

TEST(CdsTest, NonEnergySchemeIgnoresEnergy) {
  const Graph g = path_graph(4);
  EXPECT_NO_THROW((void)compute_cds(g, RuleSet::kID));
  EXPECT_NO_THROW((void)compute_cds(g, RuleSet::kND, {1.0}));  // wrong size ok
}

TEST(CdsTest, EnergySchemeProducesValidCds) {
  const Graph g = figure1_graph();
  const std::vector<double> energy{5.0, 2.0, 8.0, 1.0, 3.0};
  for (const RuleSet rs : {RuleSet::kEL1, RuleSet::kEL2}) {
    const CdsResult r = compute_cds(g, rs, energy);
    const CdsCheck check = check_cds(g, r.gateways);
    EXPECT_TRUE(check.ok()) << to_string(rs) << ": " << check.message;
  }
}

TEST(CdsTest, MarkedCountsConsistent) {
  const Graph g = path_graph(6);
  const CdsResult r = compute_cds(g, RuleSet::kID);
  EXPECT_EQ(r.marked_count, r.marked_only.count());
  EXPECT_EQ(r.gateway_count, r.gateways.count());
}

TEST(CdsTest, CliquePolicyOption) {
  const Graph g = complete_graph(4);
  CdsOptions options;
  options.clique_policy = CliquePolicy::kNone;
  EXPECT_EQ(compute_cds(g, RuleSet::kID, {}, options).gateway_count, 0u);
  options.clique_policy = CliquePolicy::kElectMaxKey;
  const CdsResult elected = compute_cds(g, RuleSet::kID, {}, options);
  EXPECT_EQ(elected.gateway_count, 1u);
  EXPECT_TRUE(elected.gateways.test(3));
}

TEST(CdsTest, StrategyOptionPlumbs) {
  const Graph g = figure1_graph();
  for (const Strategy s :
       {Strategy::kSimultaneous, Strategy::kSequential, Strategy::kVerified}) {
    CdsOptions options;
    options.strategy = s;
    const CdsResult r = compute_cds(g, RuleSet::kID, {}, options);
    const CdsCheck check = check_cds(g, r.gateways);
    EXPECT_TRUE(check.ok()) << to_string(s) << ": " << check.message;
  }
}

TEST(CdsTest, CustomConfigRuleToggles) {
  const Graph g = figure1_graph();
  RuleConfig config;
  config.use_rule1 = false;
  config.use_rule2 = false;
  const CdsResult r = compute_cds_custom(g, KeyKind::kId, config);
  EXPECT_EQ(r.gateways, r.marked_only);
}

TEST(CdsTest, AllRuleSetsArrayCoversFive) {
  std::size_t count = 0;
  for (const RuleSet rs : kAllRuleSets) {
    (void)rs;
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(CdsTest, EmptyGraph) {
  const Graph g(0);
  const CdsResult r = compute_cds(g, RuleSet::kID);
  EXPECT_EQ(r.gateway_count, 0u);
}

TEST(CdsTest, SingleNode) {
  const Graph g(1);
  const CdsResult r = compute_cds(g, RuleSet::kID);
  EXPECT_EQ(r.gateway_count, 0u);
}

}  // namespace
}  // namespace pacds
