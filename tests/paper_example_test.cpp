// Encodes the fully-specified fragments of the paper's Section 3.3 worked
// example (Figures 6-9). The figures themselves are not in the text, but the
// text states exact neighbor sets for the node clusters {20..27} and
// {1..11}; we build graphs consistent with those sets and assert the exact
// unmark decisions the paper derives for Rules 1/1a/1b/1b' and 2/2a/2b/2b'.

#include <gtest/gtest.h>

#include <vector>

#include "core/marking.hpp"
#include "core/rules.hpp"
#include "core/verify.hpp"

namespace pacds {
namespace {

// ---- The 20..27 cluster (Rule 1 family) -----------------------------------
// Paper facts: N[21] = {21,22,23,24}, N[22] = {20,...,27},
// N[27] = {22,25,26,27}; nodes 21, 22, 27 are marked gateways.
// We map 20..27 -> 0..7 (node i represents paper node 20+i).
//
// Edges chosen consistent with the stated closed sets, with 23-24 and 25-26
// non-adjacent so that 21 and 27 are indeed marked.
Graph cluster20_graph() {
  return Graph::from_edges(8, {
                                  {1, 2},  // 21-22
                                  {1, 3},  // 21-23
                                  {1, 4},  // 21-24
                                  {2, 0},  // 22-20
                                  {2, 3},  // 22-23
                                  {2, 4},  // 22-24
                                  {2, 5},  // 22-25
                                  {2, 6},  // 22-26
                                  {2, 7},  // 22-27
                                  {7, 5},  // 27-25
                                  {7, 6},  // 27-26
                              });
}

// Paper Figure 8(g)/9(i) energies: el(21) < el(22) and el(22) == el(27).
std::vector<double> cluster20_energy() {
  std::vector<double> energy(8, 4.0);
  energy[1] = 2.0;  // node 21
  energy[2] = 4.0;  // node 22
  energy[7] = 4.0;  // node 27
  return energy;
}

TEST(PaperCluster20, StatedNeighborhoodsHold) {
  const Graph g = cluster20_graph();
  EXPECT_EQ(g.closed_row(1).to_string(), "{1, 2, 3, 4}");          // N[21]
  EXPECT_EQ(g.closed_row(2).to_string(), "{0, 1, 2, 3, 4, 5, 6, 7}");
  EXPECT_EQ(g.closed_row(7).to_string(), "{2, 5, 6, 7}");          // N[27]
  EXPECT_TRUE(g.closed_covered_by(1, 2));  // N[21] ⊆ N[22]
  EXPECT_TRUE(g.closed_covered_by(7, 2));  // N[27] ⊆ N[22]
}

TEST(PaperCluster20, MarkingMatchesFigure) {
  const DynBitset marked = marking_process(cluster20_graph());
  EXPECT_TRUE(marked.test(1));  // 21
  EXPECT_TRUE(marked.test(2));  // 22
  EXPECT_TRUE(marked.test(7));  // 27
  EXPECT_EQ(marked.count(), 3u);
}

TEST(PaperCluster20, Rule1UnmarksOnly21) {
  // "After applying Rule 1, node 21 will be unmarked" — 27 keeps its mark
  // because id(27) > id(22).
  const Graph g = cluster20_graph();
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset after = simultaneous_rule1_pass(g, key, marking_process(g));
  EXPECT_FALSE(after.test(1));  // 21 unmarked
  EXPECT_TRUE(after.test(2));   // 22 stays
  EXPECT_TRUE(after.test(7));   // 27 stays
  EXPECT_TRUE(check_cds(g, after).ok());
}

TEST(PaperCluster20, Rule1aUnmarksBoth21And27) {
  // "After applying Rule 1a, both nodes 21 and 27 will be unmarked":
  // nd(21) = nd(27) = 3 < nd(22) = 7.
  const Graph g = cluster20_graph();
  ASSERT_EQ(g.degree(1), 3);
  ASSERT_EQ(g.degree(7), 3);
  ASSERT_EQ(g.degree(2), 7);
  const PriorityKey key(KeyKind::kDegreeId, g);
  const DynBitset after = simultaneous_rule1_pass(g, key, marking_process(g));
  EXPECT_FALSE(after.test(1));
  EXPECT_TRUE(after.test(2));
  EXPECT_FALSE(after.test(7));
  EXPECT_TRUE(check_cds(g, after).ok());
}

TEST(PaperCluster20, Rule1bUnmarksOnly21) {
  // "After applying Rule 1b, node 21 will be unmarked": el(21) < el(22);
  // 27 ties with 22 on energy and loses the id tie-break (27 > 22), so it
  // stays.
  const Graph g = cluster20_graph();
  const auto energy = cluster20_energy();
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  const DynBitset after = simultaneous_rule1_pass(g, key, marking_process(g));
  EXPECT_FALSE(after.test(1));
  EXPECT_TRUE(after.test(2));
  EXPECT_TRUE(after.test(7));
}

TEST(PaperCluster20, Rule1bPrimeUnmarksBoth) {
  // "After applying Rule 1b', both nodes 21 and 27 will be unmarked":
  // el(21) < el(22); el(27) == el(22) and nd(27) < nd(22).
  const Graph g = cluster20_graph();
  const auto energy = cluster20_energy();
  const PriorityKey key(KeyKind::kEnergyDegreeId, g, &energy);
  const DynBitset after = simultaneous_rule1_pass(g, key, marking_process(g));
  EXPECT_FALSE(after.test(1));
  EXPECT_TRUE(after.test(2));
  EXPECT_FALSE(after.test(7));
}

// ---- The 1..11 cluster (Rule 2 family) ------------------------------------
// Paper facts (open sets, with the sloppy self-inclusion removed):
//   N(2) = {1,3,4,5,6,7,8,9},  N(4) = {1,2,3,9,10,11},
//   N(9) = {2,4,5,6,7,8,10}.
// Nodes 2, 4, 9 are marked; N(2) ⊆ N(4) ∪ N(9), N(9) ⊆ N(2) ∪ N(4),
// N(4) ⊄ N(2) ∪ N(9) (node 11 is private to 4).
// We map paper node i -> index i-1 on 11 vertices.
Graph cluster1_graph() {
  const auto e = [](int a, int b) {
    return std::pair<NodeId, NodeId>{a - 1, b - 1};
  };
  return Graph::from_edges(
      11, {e(2, 1), e(2, 3), e(2, 4), e(2, 5), e(2, 6), e(2, 7), e(2, 8),
           e(2, 9), e(4, 1), e(4, 3), e(4, 9), e(4, 10), e(4, 11), e(9, 5),
           e(9, 6), e(9, 7), e(9, 8), e(9, 10)});
}

constexpr NodeId kNode2 = 1;   // paper node 2
constexpr NodeId kNode4 = 3;   // paper node 4
constexpr NodeId kNode9 = 8;   // paper node 9

TEST(PaperCluster1, StatedCoverageHolds) {
  const Graph g = cluster1_graph();
  EXPECT_TRUE(g.open_covered_by_pair(kNode2, kNode4, kNode9));
  EXPECT_TRUE(g.open_covered_by_pair(kNode9, kNode2, kNode4));
  EXPECT_FALSE(g.open_covered_by_pair(kNode4, kNode2, kNode9));
}

TEST(PaperCluster1, Nodes249Marked) {
  const DynBitset marked = marking_process(cluster1_graph());
  EXPECT_TRUE(marked.test(static_cast<std::size_t>(kNode2)));
  EXPECT_TRUE(marked.test(static_cast<std::size_t>(kNode4)));
  EXPECT_TRUE(marked.test(static_cast<std::size_t>(kNode9)));
}

TEST(PaperCluster1, Rule2UnmarksNode2) {
  // Original Rule 2 (ID): node 2 has the min id among {2, 4, 9}.
  const Graph g = cluster1_graph();
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset marked = marking_process(g);
  EXPECT_TRUE(rule2_simple_would_unmark(g, marked, key, kNode2));
  EXPECT_FALSE(rule2_simple_would_unmark(g, marked, key, kNode4));
  EXPECT_FALSE(rule2_simple_would_unmark(g, marked, key, kNode9));
}

TEST(PaperCluster1, Rule2aUnmarksNode9) {
  // "nd(9) = 7 < nd(2) = 8": under Rule 2a the covered pair is {2, 9} and
  // the degree comparison removes 9, keeping 2 (paper Figure 7(f)).
  const Graph g = cluster1_graph();
  ASSERT_EQ(g.degree(kNode2), 8);
  ASSERT_EQ(g.degree(kNode9), 7);
  const PriorityKey key(KeyKind::kDegreeId, g);
  const DynBitset marked = marking_process(g);
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, key, kNode9));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, kNode2));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, kNode4));
}

TEST(PaperCluster1, Rule2bUnmarksNode2OnEqualEnergy) {
  // "The EL of node 2 is the same as the EL of node 9 and the ID of node 2
  // is smaller" -> Rule 2b removes node 2 (paper Figure 8(h)).
  const Graph g = cluster1_graph();
  const std::vector<double> energy(11, 3.0);
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  const DynBitset marked = marking_process(g);
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, key, kNode2));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, kNode9));
}

TEST(PaperCluster1, Rule2bPrimeUnmarksNode9OnEqualEnergy) {
  // Under Rule 2b' an energy tie falls to node degree first:
  // nd(9) < nd(2), so node 9 yields instead (paper Figure 9(j) lists 9).
  const Graph g = cluster1_graph();
  const std::vector<double> energy(11, 3.0);
  const PriorityKey key(KeyKind::kEnergyDegreeId, g, &energy);
  const DynBitset marked = marking_process(g);
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, key, kNode9));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, kNode2));
}

TEST(PaperCluster1, ResultsAreValidCds) {
  const Graph g = cluster1_graph();
  for (const KeyKind kind : {KeyKind::kId, KeyKind::kDegreeId}) {
    const PriorityKey key(kind, g);
    RuleConfig config;
    config.rule2_form =
        kind == KeyKind::kId ? Rule2Form::kSimple : Rule2Form::kRefined;
    DynBitset marked = marking_process(g);
    apply_rules(g, key, config, marked);
    const CdsCheck check = check_cds(g, marked);
    EXPECT_TRUE(check.ok()) << to_string(kind) << ": " << check.message;
  }
}

}  // namespace
}  // namespace pacds
