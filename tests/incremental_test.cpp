// Tests for the localized updater: deltas must reproduce the full
// recomputation exactly (the 4-hop locality guarantee), while touching only
// a bounded region.

#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "net/mobility.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::figure1_graph;
using testing::path_graph;

/// The incremental updater pins the synchronous (simultaneous) semantics.
CdsOptions simultaneous_options() {
  CdsOptions options;
  options.strategy = Strategy::kSimultaneous;
  return options;
}

/// Recomputes from scratch with the same scheme and compares gateway sets.
void expect_matches_full(const IncrementalCds& inc,
                         const std::vector<double>& energy) {
  const CdsResult full =
      compute_cds(inc.graph(), inc.rule_set(), energy, simultaneous_options());
  EXPECT_EQ(inc.gateways(), full.gateways)
      << "incremental " << inc.gateways().to_string() << " vs full "
      << full.gateways.to_string();
}

TEST(IncrementalTest, InitialStateMatchesFull) {
  const IncrementalCds inc(figure1_graph(), RuleSet::kID);
  expect_matches_full(inc, {});
}

TEST(IncrementalTest, StrategyOptionIsPinnedToSimultaneous) {
  // Passing a sequential strategy is silently overridden — the updater's
  // locality guarantee only exists for the synchronous semantics.
  CdsOptions options;
  options.strategy = Strategy::kSequential;
  const IncrementalCds inc(path_graph(6), RuleSet::kID, {}, options);
  const CdsResult full =
      compute_cds(path_graph(6), RuleSet::kID, {}, simultaneous_options());
  EXPECT_EQ(inc.gateways(), full.gateways);
}

TEST(IncrementalTest, EnergySchemeNeedsEnergy) {
  EXPECT_THROW(IncrementalCds(path_graph(4), RuleSet::kEL1),
               std::invalid_argument);
}

TEST(IncrementalTest, AddEdgeUpdates) {
  IncrementalCds inc(path_graph(6), RuleSet::kID);
  EdgeDelta delta;
  delta.added.emplace_back(0, 5);  // close the cycle
  inc.apply_delta(delta);
  expect_matches_full(inc, {});
  EXPECT_TRUE(inc.graph().has_edge(0, 5));
}

TEST(IncrementalTest, RemoveEdgeUpdates) {
  Graph g = path_graph(6);
  g.add_edge(0, 5);
  IncrementalCds inc(std::move(g), RuleSet::kND);
  EdgeDelta delta;
  delta.removed.emplace_back(0, 5);
  inc.apply_delta(delta);
  expect_matches_full(inc, {});
}

TEST(IncrementalTest, EmptyDeltaTouchesNothing) {
  IncrementalCds inc(path_graph(6), RuleSet::kID);
  inc.apply_delta(EdgeDelta{});
  EXPECT_EQ(inc.last_touched(), 0u);
  expect_matches_full(inc, {});
}

TEST(IncrementalTest, BadDeltaThrows) {
  IncrementalCds inc(path_graph(4), RuleSet::kID);
  EdgeDelta dup;
  dup.added.emplace_back(0, 1);  // already present
  EXPECT_THROW(inc.apply_delta(dup), std::invalid_argument);
  EdgeDelta missing;
  missing.removed.emplace_back(0, 3);  // absent
  EXPECT_THROW(inc.apply_delta(missing), std::invalid_argument);
}

TEST(IncrementalTest, MoveNodeComputesDelta) {
  IncrementalCds inc(path_graph(5), RuleSet::kID);
  // Host 0 "moves" next to hosts 3 and 4.
  inc.move_node(0, {3, 4});
  EXPECT_FALSE(inc.graph().has_edge(0, 1));
  EXPECT_TRUE(inc.graph().has_edge(0, 3));
  EXPECT_TRUE(inc.graph().has_edge(0, 4));
  expect_matches_full(inc, {});
}

TEST(IncrementalTest, LocalityOnLongPath) {
  // On a 60-node path, toggling an edge at one end must not touch nodes at
  // the other end (ball radius 4 around the change).
  IncrementalCds inc(path_graph(60), RuleSet::kID);
  EdgeDelta delta;
  delta.added.emplace_back(0, 2);
  inc.apply_delta(delta);
  EXPECT_LE(inc.last_touched(), 12u);  // well under 60
  expect_matches_full(inc, {});
}

TEST(IncrementalTest, SetEnergyUpdatesAroundChangedLevels) {
  std::vector<double> energy{5.0, 5.0, 5.0, 5.0, 5.0};
  IncrementalCds inc(path_graph(5), RuleSet::kEL1, energy);
  energy[2] = 1.0;
  inc.set_energy(energy);
  EXPECT_EQ(inc.energy(), energy);
  expect_matches_full(inc, energy);
}

TEST(IncrementalTest, SetEnergyWithNoLevelChangeTouchesNothing) {
  const std::vector<double> energy{5.0, 4.0, 5.0, 4.0, 5.0};
  IncrementalCds inc(path_graph(5), RuleSet::kEL1, energy);
  inc.set_energy(energy);
  EXPECT_EQ(inc.last_touched(), 0u);
  expect_matches_full(inc, energy);
}

TEST(IncrementalTest, SetEnergyLocalityOnLongPath) {
  // On a 60-node path only one level changes; the re-evaluated region must
  // stay near that node (neighborhood of the dirty key, one hop per stage).
  std::vector<double> energy(60, 5.0);
  IncrementalCds inc(path_graph(60), RuleSet::kEL1, energy);
  energy[30] = 1.0;
  inc.set_energy(energy);
  EXPECT_LE(inc.last_touched(), 10u);  // well under 60
  expect_matches_full(inc, energy);
}

TEST(IncrementalTest, AdvanceCombinesDeltaAndEnergy) {
  std::vector<double> energy(8, 5.0);
  IncrementalCds inc(path_graph(8), RuleSet::kEL2, energy);
  EdgeDelta delta;
  delta.added.emplace_back(0, 2);
  energy[6] = 2.0;
  inc.advance(delta, energy);
  EXPECT_TRUE(inc.graph().has_edge(0, 2));
  EXPECT_EQ(inc.energy(), energy);
  expect_matches_full(inc, energy);
}

TEST(IncrementalTest, AdvanceIgnoresEnergyForTopologyOnlySchemes) {
  // For kID the key never reads energy, so advance accepts any vector (even
  // an empty one) and the update is purely topological.
  IncrementalCds inc(path_graph(6), RuleSet::kID);
  EdgeDelta delta;
  delta.added.emplace_back(0, 5);
  inc.advance(delta, {});
  expect_matches_full(inc, {});
}

TEST(IncrementalTest, SetEnergySizeMismatchThrows) {
  IncrementalCds inc(path_graph(5), RuleSet::kEL1,
                     std::vector<double>(5, 1.0));
  EXPECT_THROW(inc.set_energy({1.0}), std::invalid_argument);
}

TEST(IncrementalTest, CliquePolicyMaintained) {
  CdsOptions options;
  options.clique_policy = CliquePolicy::kElectMaxKey;
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  options.strategy = Strategy::kSimultaneous;
  IncrementalCds inc(std::move(g), RuleSet::kID, {}, options);
  // Make the component a triangle: marking empties, the policy elects.
  EdgeDelta delta;
  delta.added.emplace_back(0, 2);
  inc.apply_delta(delta);
  const CdsResult full = compute_cds(inc.graph(), RuleSet::kID, {}, options);
  EXPECT_EQ(inc.gateways(), full.gateways);
  EXPECT_EQ(inc.gateways().count(), 1u);
}

// ---- Randomized equivalence: dynamic topologies ----------------------------

class IncrementalRandomTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, RuleSet>> {
};

TEST_P(IncrementalRandomTest, DeltasMatchFullRecompute) {
  const auto [n, seed, rs] = GetParam();
  Xoshiro256 rng(seed);
  const Field field = Field::paper_field();
  auto positions = random_placement(n, field, rng);
  Graph g = build_udg(positions, kPaperRadius);

  std::vector<double> energy;
  for (int i = 0; i < n; ++i) {
    energy.push_back(static_cast<double>(rng.uniform_int(1, 4)));
  }
  IncrementalCds inc(g, rs, energy);

  PaperJumpMobility mobility(0.5, 1, 6);
  for (int step = 0; step < 12; ++step) {
    mobility.step(positions, field, rng);
    const Graph next = build_udg(positions, kPaperRadius);
    // Diff the two unit-disk graphs into a delta.
    EdgeDelta delta;
    for (NodeId u = 0; u < inc.graph().num_nodes(); ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < inc.graph().num_nodes();
           ++v) {
        const bool before = inc.graph().has_edge(u, v);
        const bool after = next.has_edge(u, v);
        if (!before && after) delta.added.emplace_back(u, v);
        if (before && !after) delta.removed.emplace_back(u, v);
      }
    }
    // Also perturb a few energy levels so the combined advance() path (the
    // lifetime engine's steady-state entry point) is exercised everywhere.
    for (int hits = 0; hits < 2; ++hits) {
      const auto victim =
          static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      energy[victim] = static_cast<double>(rng.uniform_int(1, 4));
    }
    inc.advance(delta, energy);
    ASSERT_EQ(inc.graph(), next);
    const CdsResult full = compute_cds(next, rs, energy,
                                       simultaneous_options());
    ASSERT_EQ(inc.gateways(), full.gateways)
        << "step " << step << " n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DynamicTopologies, IncrementalRandomTest,
    ::testing::Combine(::testing::Values(15, 30, 45),
                       ::testing::Values(11u, 22u, 33u),
                       ::testing::Values(RuleSet::kNR, RuleSet::kID,
                                         RuleSet::kND, RuleSet::kEL1,
                                         RuleSet::kEL2)),
    [](const ::testing::TestParamInfo<IncrementalRandomTest::ParamType>&
           param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param)) + "_" +
             to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace pacds
