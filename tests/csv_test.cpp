// Tests for CSV escaping and file emission.

#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pacds {
namespace {

TEST(CsvTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("12.5"), "12.5");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(CsvTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvTest, QuotesDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, NewlineQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvTest, WriteRow) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"n", "EL1,mean", "note"});
  writer.write_row({"3", "8.25", "plain"});
  EXPECT_EQ(os.str(), "n,\"EL1,mean\",note\n3,8.25,plain\n");
}

TEST(CsvTest, EmptyRow) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({});
  EXPECT_EQ(os.str(), "\n");
}

TEST(CsvTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pacds_csv_test.csv";
  ASSERT_TRUE(write_csv_file(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}}));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteFileBadPathFails) {
  EXPECT_FALSE(write_csv_file("/nonexistent_dir_zz/x.csv", {"a"}, {}));
}

}  // namespace
}  // namespace pacds
