// Tests for CSV escaping and file emission.

#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pacds {
namespace {

TEST(CsvTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("12.5"), "12.5");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(CsvTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvTest, QuotesDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, NewlineQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvTest, CarriageReturnQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
  EXPECT_EQ(CsvWriter::escape("crlf\r\n"), "\"crlf\r\n\"");
}

/// RFC-4180 single-field reader (the inverse of CsvWriter::escape), used to
/// prove the escape path round-trips rather than merely looking plausible.
std::string unescape(const std::string& field) {
  if (field.empty() || field.front() != '"') return field;
  EXPECT_EQ(field.back(), '"') << field;
  std::string out;
  for (std::size_t i = 1; i + 1 < field.size(); ++i) {
    if (field[i] == '"') {
      EXPECT_EQ(field[i + 1], '"') << "bare quote inside " << field;
      ++i;
    }
    out += field[i];
  }
  return out;
}

TEST(CsvTest, EscapeRoundTripsHostileFields) {
  for (const std::string& field :
       {std::string("plain"), std::string(""), std::string("a,b,c"),
        std::string("say \"hi\""), std::string("\"\""),
        std::string("quote\",comma"), std::string("cr\rlf\n mix"),
        std::string("\r"), std::string("trailing,comma,"),
        std::string("EL2,\"quoted\"\r\nnext")}) {
    EXPECT_EQ(unescape(CsvWriter::escape(field)), field) << field;
  }
}

TEST(CsvTest, WriteRow) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"n", "EL1,mean", "note"});
  writer.write_row({"3", "8.25", "plain"});
  EXPECT_EQ(os.str(), "n,\"EL1,mean\",note\n3,8.25,plain\n");
}

TEST(CsvTest, EmptyRow) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({});
  EXPECT_EQ(os.str(), "\n");
}

TEST(CsvTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pacds_csv_test.csv";
  ASSERT_TRUE(write_csv_file(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}}));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteFileBadPathFails) {
  EXPECT_FALSE(write_csv_file("/nonexistent_dir_zz/x.csv", {"a"}, {}));
}

}  // namespace
}  // namespace pacds
