// Unit tests for the Graph substrate: mutation, neighborhoods, coverage
// predicates, traversal, induced subgraphs.

#include "core/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace pacds {
namespace {

Graph path_graph(NodeId n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, static_cast<NodeId>(i + 1));
  return g;
}

Graph cycle_graph(NodeId n) {
  Graph g = path_graph(n);
  if (n >= 3) g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph complete_graph(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

/// K_{1,n}: center 0 connected to 1..n.
Graph star_graph(NodeId leaves) {
  Graph g(static_cast<NodeId>(leaves + 1));
  for (NodeId i = 1; i <= leaves; ++i) g.add_edge(0, i);
  return g;
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_complete());
}

TEST(GraphTest, NegativeNodeCountThrows) {
  EXPECT_THROW(Graph(-1), std::invalid_argument);
}

TEST(GraphTest, AddEdgeBasics) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate reversed
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphTest, SelfLoopThrows) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeThrows) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 0), std::invalid_argument);
  EXPECT_THROW((void)g.degree(5), std::invalid_argument);
}

TEST(GraphTest, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto nbrs = g.neighbors(2);
  EXPECT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
            (std::vector<NodeId>{0, 3, 4}));
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(GraphTest, RowsMirrorAdjacency) {
  Graph g(5);
  g.add_edge(1, 3);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_FALSE(g.has_edge(1, 1));
  const DynBitset closed = g.closed_row(1);
  EXPECT_TRUE(closed.test(1));
  EXPECT_TRUE(closed.test(3));
  EXPECT_EQ(closed.count(), 2u);
}

TEST(GraphTest, FromEdges) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 3u);  // duplicate collapsed
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(GraphTest, ClosedCoveredBy) {
  // Star: leaf's closed neighborhood within center's.
  const Graph g = star_graph(4);
  EXPECT_TRUE(g.closed_covered_by(1, 0));
  EXPECT_FALSE(g.closed_covered_by(0, 1));
  // Non-adjacent vertices can never cover (v must be in N[u]).
  EXPECT_FALSE(g.closed_covered_by(1, 2));
  // Reflexive by convention.
  EXPECT_TRUE(g.closed_covered_by(2, 2));
}

TEST(GraphTest, ClosedCoveredByEqualNeighborhoods) {
  // Two adjacent vertices with identical closed neighborhoods (triangle).
  const Graph g = complete_graph(3);
  EXPECT_TRUE(g.closed_covered_by(0, 1));
  EXPECT_TRUE(g.closed_covered_by(1, 0));
}

TEST(GraphTest, OpenCoveredByPair) {
  // Path 0-1-2-3-4: N(2)={1,3} ⊆ N(1) ∪ N(3) = {0,2} ∪ {2,4}? No: 1 ∉, 3 ∉.
  const Graph path = path_graph(5);
  EXPECT_FALSE(path.open_covered_by_pair(2, 1, 3));
  // Cycle of 4: N(0)={1,3}; N(1)={0,2}, N(3)={0,2} -> union {0,2}; no.
  const Graph c4 = cycle_graph(4);
  EXPECT_FALSE(c4.open_covered_by_pair(0, 1, 3));
  // Complete graph: always covered (u,w adjacent, everything adjacent).
  const Graph k4 = complete_graph(4);
  EXPECT_TRUE(k4.open_covered_by_pair(0, 1, 2));
}

TEST(GraphTest, OpenCoveredRequiresUvConnection) {
  // v=1 center of path 0-1-2; N(1)={0,2}; u=0,w=2: N(0)={1}, N(2)={1};
  // union={1} does not contain 0 or 2.
  const Graph g = path_graph(3);
  EXPECT_FALSE(g.open_covered_by_pair(1, 0, 2));
}

TEST(GraphTest, BfsDistances) {
  const Graph g = path_graph(5);
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(GraphTest, BfsUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(GraphTest, BfsRestrictedInterior) {
  // 0-1-2 and 0-3-2: forbid node 1 as interior; distance 0->2 via 3 stays 2.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  DynBitset allowed(4);
  allowed.set(3);
  const auto dist = g.bfs_distances(0, &allowed);
  EXPECT_EQ(dist[2], 2);
  // Node 1 is still *reachable* (it is a final hop), just cannot relay.
  EXPECT_EQ(dist[1], 1);
}

TEST(GraphTest, BfsRestrictedBlocksWhenNoAllowedPath) {
  const Graph g = path_graph(3);
  DynBitset allowed(3);  // nobody may relay
  const auto dist = g.bfs_distances(0, &allowed);
  EXPECT_EQ(dist[1], 1);   // direct edge still works
  EXPECT_EQ(dist[2], -1);  // needs node 1 as interior
}

TEST(GraphTest, Components) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[2]);
  EXPECT_EQ(g.num_components(), 3);
  EXPECT_FALSE(g.is_connected());
}

TEST(GraphTest, SingleNodeConnected) {
  Graph g(1);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.num_components(), 1);
}

TEST(GraphTest, IsComplete) {
  EXPECT_TRUE(complete_graph(4).is_complete());
  EXPECT_FALSE(path_graph(4).is_complete());
  EXPECT_TRUE(complete_graph(1).is_complete());
  EXPECT_TRUE(complete_graph(2).is_complete());
}

TEST(GraphTest, ComponentOf) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  const DynBitset comp = g.component_of(0);
  EXPECT_TRUE(comp.test(0));
  EXPECT_TRUE(comp.test(1));
  EXPECT_FALSE(comp.test(3));
  EXPECT_EQ(comp.count(), 2u);
}

TEST(GraphTest, InducedSubgraph) {
  const Graph g = cycle_graph(5);
  DynBitset keep(5);
  keep.set(0);
  keep.set(1);
  keep.set(3);
  std::vector<NodeId> mapping;
  const Graph sub = g.induced(keep, &mapping);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(mapping, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_TRUE(sub.has_edge(0, 1));   // original 0-1
  EXPECT_FALSE(sub.has_edge(1, 2));  // 1 and 3 not adjacent in C5
  EXPECT_EQ(sub.num_edges(), 1u);
}

TEST(GraphTest, InducedMaskSizeMismatchThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)g.induced(DynBitset(2)), std::invalid_argument);
}

TEST(GraphTest, ShortestPath) {
  const Graph g = cycle_graph(6);
  const auto path = g.shortest_path(0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(GraphTest, ShortestPathTrivialAndMissing) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(g.shortest_path(2, 2), (std::vector<NodeId>{2}));
  EXPECT_TRUE(g.shortest_path(0, 2).empty());
}

TEST(GraphTest, Diameter) {
  EXPECT_EQ(path_graph(5).diameter().value(), 4);
  EXPECT_EQ(complete_graph(5).diameter().value(), 1);
  EXPECT_EQ(cycle_graph(6).diameter().value(), 3);
  Graph disconnected(3);
  disconnected.add_edge(0, 1);
  EXPECT_FALSE(disconnected.diameter().has_value());
}

TEST(GraphTest, EdgesSorted) {
  Graph g(4);
  g.add_edge(2, 3);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  EXPECT_EQ(g.edges(), (std::vector<std::pair<NodeId, NodeId>>{
                           {0, 1}, {1, 3}, {2, 3}}));
}

TEST(GraphTest, Equality) {
  Graph a = path_graph(3);
  Graph b = path_graph(3);
  EXPECT_EQ(a, b);
  b.add_edge(0, 2);
  EXPECT_NE(a, b);
}

TEST(GraphTest, RemoveKeepsRowsCoherent) {
  Graph g = complete_graph(4);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(static_cast<std::size_t>(g.neighbors(0).size()), 2u);
}

}  // namespace
}  // namespace pacds
