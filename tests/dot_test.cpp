// Tests for Graphviz export.

#include "io/dot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::path_graph;

TEST(DotTest, BasicStructure) {
  const Graph g = path_graph(3);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph pacds {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
  EXPECT_EQ(dot.find("2 -- 1;"), std::string::npos);  // each edge once
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(DotTest, GatewayColoring) {
  const Graph g = path_graph(3);
  DynBitset gateways(3);
  gateways.set(1);
  const std::string dot = to_dot(g, &gateways);
  EXPECT_NE(dot.find("1 [fillcolor=lightcoral]"), std::string::npos);
  EXPECT_NE(dot.find("0 [fillcolor=lightgray]"), std::string::npos);
}

TEST(DotTest, PositionsEmitted) {
  const Graph g = path_graph(2);
  const std::vector<Vec2> pos{{10.0, 20.0}, {30.0, 40.0}};
  const std::string dot = to_dot(g, nullptr, &pos);
  EXPECT_NE(dot.find("pos=\"1,2!\""), std::string::npos);
  EXPECT_NE(dot.find("pos=\"3,4!\""), std::string::npos);
}

TEST(DotTest, CustomOptions) {
  const Graph g = path_graph(2);
  DotOptions options;
  options.graph_name = "mynet";
  options.gateway_color = "red";
  DynBitset gateways(2);
  gateways.set(0);
  const std::string dot = to_dot(g, &gateways, nullptr, options);
  EXPECT_NE(dot.find("graph mynet {"), std::string::npos);
  EXPECT_NE(dot.find("0 [fillcolor=red]"), std::string::npos);
}

TEST(DotTest, SizeMismatchThrows) {
  const Graph g = path_graph(3);
  DynBitset wrong(2);
  EXPECT_THROW((void)to_dot(g, &wrong), std::invalid_argument);
  const std::vector<Vec2> pos{{0.0, 0.0}};
  EXPECT_THROW((void)to_dot(g, nullptr, &pos), std::invalid_argument);
}

TEST(DotTest, EmptyGraph) {
  const std::string dot = to_dot(Graph(0));
  EXPECT_NE(dot.find("graph pacds {"), std::string::npos);
  EXPECT_EQ(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace pacds
