// JSONL sink + lifetime metrics schema tests. The schema half is the
// ISSUE's acceptance test: every line a `pacds ... --metrics`-style run
// emits must parse as standalone JSON, lead with a run manifest, and carry
// the documented interval fields (DESIGN.md "Observability").

#include "obs/jsonl.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/json_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/validate.hpp"
#include "sim/lifetime.hpp"
#include "sim/metrics_io.hpp"
#include "sim/montecarlo.hpp"

namespace pacds {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(JsonlSinkTest, RecordEmitsOneTerminatedObjectPerCall) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  EXPECT_EQ(sink.records(), 0u);
  sink.record([](JsonWriter& json) { json.key("a").value(1); });
  sink.record([](JsonWriter& json) {
    json.key("b").value("two");
    json.key("c").value(true);
  });
  EXPECT_EQ(sink.records(), 2u);
  EXPECT_EQ(out.str(), "{\"a\":1}\n{\"b\":\"two\",\"c\":true}\n");
}

TEST(JsonlSinkTest, UnbalancedFillThrowsBeforeNewline) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  EXPECT_THROW(sink.record([](JsonWriter& json) {
                 json.key("nested");
                 json.begin_object();  // left open
               }),
               std::logic_error);
  EXPECT_EQ(sink.records(), 0u);
}

TEST(JsonlSinkTest, SpliceAppendsCompleteLinesAndCountsThem) {
  std::ostringstream buffer_stream;
  obs::JsonlSink buffer(buffer_stream);
  buffer.record([](JsonWriter& json) { json.key("trial").value(0); });
  buffer.record([](JsonWriter& json) { json.key("trial").value(1); });

  std::ostringstream out;
  obs::JsonlSink sink(out);
  sink.splice(buffer_stream.str());
  EXPECT_EQ(sink.records(), 2u);
  EXPECT_EQ(out.str(), buffer_stream.str());

  sink.splice("");  // zero lines is fine
  EXPECT_EQ(sink.records(), 2u);
  EXPECT_THROW(sink.splice("{\"unterminated\": true}"), std::logic_error);
}

// ---------------------------------------------------------------------------
// Schema: every emitted line must be standalone-parseable JSON with the
// documented fields. This drives the real pipeline (run_lifetime_trials with
// a metrics sink), not hand-built records.

class MetricsSchemaTest : public ::testing::Test {
 protected:
  static SimConfig small_config() {
    SimConfig config;
    config.n_hosts = 20;
    config.rule_set = RuleSet::kEL2;
    config.cds_options.strategy = Strategy::kSimultaneous;
    config.engine = SimEngine::kIncremental;
    return config;
  }
};

TEST_F(MetricsSchemaTest, EveryLineParsesManifestFirstThenIntervals) {
  const SimConfig config = small_config();
  std::ostringstream out;
  obs::JsonlSink sink(out);
  const LifetimeSummary summary =
      run_lifetime_trials(config, 2, 2001, nullptr, &sink);
  ASSERT_GT(summary.intervals.mean, 0.0);

  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), sink.records());
  ASSERT_GE(lines.size(), 3u);  // manifest + at least one interval per trial

  // Line 0: the run manifest with the full config.
  const JsonValue manifest = parse_json(lines.front());
  EXPECT_EQ(manifest.find("type")->as_string(), "run_manifest");
  EXPECT_EQ(manifest.find("schema")->as_number(), kMetricsSchemaVersion);
  EXPECT_EQ(manifest.find("base_seed")->as_number(), 2001.0);
  EXPECT_EQ(manifest.find("trials")->as_number(), 2.0);
  EXPECT_EQ(manifest.find("n_hosts")->as_number(), 20.0);
  EXPECT_EQ(manifest.find("scheme")->as_string(), "EL2");
  EXPECT_EQ(manifest.find("engine")->as_string(), "incremental");
  EXPECT_EQ(manifest.find("backbone")->as_string(), "scheme");
  for (const char* key :
       {"threads", "field_width", "field_height", "boundary", "radius",
        "link_model", "initial_energy", "drain_model", "mobility",
        "strategy", "clique_policy", "max_intervals"}) {
    EXPECT_NE(manifest.find(key), nullptr) << "manifest missing " << key;
  }

  // Every other line: an interval record with the documented fields.
  std::size_t intervals_seen = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue record = parse_json(lines[i]);
    ASSERT_NE(record.find("type"), nullptr) << lines[i];
    EXPECT_EQ(record.find("type")->as_string(), "interval");
    EXPECT_EQ(record.find("schema")->as_number(), kMetricsSchemaVersion);
    EXPECT_EQ(record.find("scheme")->as_string(), "EL2");
    EXPECT_EQ(record.find("engine")->as_string(), "incremental");
    const double trial = record.find("trial")->as_number();
    EXPECT_TRUE(trial == 0.0 || trial == 1.0);
    for (const char* key : {"interval", "marked", "gateways", "alive",
                            "touched", "energy_min", "energy_mean",
                            "energy_max"}) {
      EXPECT_NE(record.find(key), nullptr) << "interval missing " << key;
    }
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      const std::string key =
          std::string(obs::phase_name(static_cast<obs::Phase>(p))) + "_ns";
      EXPECT_NE(record.find(key), nullptr) << "interval missing " << key;
    }
    for (std::size_t c = 0; c < obs::kCounterCount; ++c) {
      const char* key = obs::counter_name(static_cast<obs::Counter>(c));
      EXPECT_NE(record.find(key), nullptr) << "interval missing " << key;
    }
    ++intervals_seen;
  }
  EXPECT_GT(intervals_seen, 0u);
}

TEST_F(MetricsSchemaTest, IntervalRecordsCarryLiveCountersAndTimers) {
  const SimConfig config = small_config();
  std::ostringstream out;
  obs::JsonlSink sink(out);
  (void)run_lifetime_trials(config, 1, 2001, nullptr, &sink);

  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_GE(lines.size(), 3u);

  // The first interval of a trial is always a full refresh with marking
  // time; later intervals on the incremental engine do localized updates.
  const JsonValue first = parse_json(lines[1]);
  EXPECT_EQ(first.find("interval")->as_number(), 1.0);
  EXPECT_EQ(first.find("full_refreshes")->as_number(), 1.0);
  EXPECT_GT(first.find("marking_ns")->as_number(), 0.0);
  EXPECT_GT(first.find("nodes_touched")->as_number(), 0.0);

  double localized = 0.0;
  for (std::size_t i = 2; i < lines.size(); ++i) {
    localized += parse_json(lines[i]).find("localized_updates")->as_number();
  }
  EXPECT_GT(localized, 0.0);
}

// ---------------------------------------------------------------------------
// Shared stream validator (obs/validate.hpp): the one schema check behind
// `bench_report --validate-jsonl`, the fuzz harness's JSONL oracle, and CI.

TEST(StreamValidatorTest, AcceptsARealMetricsStreamAndCountsTypes) {
  SimConfig config;
  config.n_hosts = 16;
  config.max_intervals = 8;
  std::ostringstream out;
  obs::JsonlSink sink(out);
  (void)run_lifetime_trials(config, 2, 5, nullptr, &sink);
  std::istringstream in(out.str());
  const obs::StreamValidation v = obs::validate_metrics_stream(in);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.count_of("run_manifest"), 1u);
  EXPECT_GE(v.count_of("interval"), 2u);
  EXPECT_EQ(v.lines, v.count_of("run_manifest") + v.count_of("interval"));
}

TEST(StreamValidatorTest, RejectsEnvelopeViolations) {
  const auto validate = [](const std::string& text) {
    std::istringstream in(text);
    return obs::validate_metrics_stream(in);
  };
  const std::string manifest = "{\"type\":\"run_manifest\",\"schema\":1}\n";
  const std::string interval = "{\"type\":\"interval\",\"schema\":1}\n";

  EXPECT_FALSE(validate("").ok);  // needs manifest + interval
  EXPECT_FALSE(validate(manifest).ok);
  EXPECT_TRUE(validate(manifest + interval).ok);

  const obs::StreamValidation bad_json = validate(manifest + "{oops\n");
  EXPECT_FALSE(bad_json.ok);
  EXPECT_NE(bad_json.error.find("line 2"), std::string::npos);

  EXPECT_FALSE(validate(manifest + "[1,2]\n").ok);        // not an object
  EXPECT_FALSE(validate(manifest + "{\"schema\":1}\n").ok);  // no type
  EXPECT_FALSE(
      validate(manifest + "{\"type\":\"interval\"}\n").ok);  // no schema
}

TEST(StreamValidatorTest, AcceptsAGapStreamWithoutIntervalRecords) {
  // `pacds gap` emits gap_manifest + gap_point records — a second valid
  // stream shape alongside run_manifest + interval. A manifest of either
  // kind without its points is still incomplete.
  const auto validate = [](const std::string& text) {
    std::istringstream in(text);
    return obs::validate_metrics_stream(in);
  };
  const std::string manifest = "{\"type\":\"gap_manifest\",\"schema\":1}\n";
  const std::string point =
      "{\"type\":\"gap_point\",\"schema\":1,\"n\":20,\"optimum\":7}\n";

  const obs::StreamValidation v = validate(manifest + point);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.count_of("gap_manifest"), 1u);
  EXPECT_EQ(v.count_of("gap_point"), 1u);

  EXPECT_FALSE(validate(manifest).ok);  // manifest without points
  EXPECT_FALSE(validate(point).ok);     // points without a manifest
}

TEST(StreamValidatorTest, RejectsNonFiniteNumbersAnywhereInARecord) {
  // JsonWriter maps non-finite doubles to null, so the only way an inf
  // reaches a stream is an overflowing literal — grammatically valid JSON
  // that strtod turns into +inf. The validator must name where it hides.
  std::istringstream in(
      "{\"type\":\"run_manifest\",\"schema\":1}\n"
      "{\"type\":\"interval\",\"schema\":1,"
      "\"energy\":{\"mean\":3.5,\"levels\":[1.0,1e999]}}\n");
  const obs::StreamValidation v = obs::validate_metrics_stream(in);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("line 2"), std::string::npos);
  EXPECT_NE(v.error.find("energy.levels[1]"), std::string::npos);
}

}  // namespace
}  // namespace pacds
