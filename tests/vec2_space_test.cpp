// Tests for Vec2 geometry and the bounded field with its boundary policies.

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/space.hpp"
#include "net/udg.hpp"
#include "net/vec2.hpp"

namespace pacds {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
}

TEST(Vec2Test, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Vec2Test, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1.0, 1.0}, {2.0, 2.0}), 2.0);
}

TEST(FieldTest, PaperField) {
  const Field f = Field::paper_field();
  EXPECT_DOUBLE_EQ(f.width(), 100.0);
  EXPECT_DOUBLE_EQ(f.height(), 100.0);
  EXPECT_EQ(f.policy(), BoundaryPolicy::kClamp);
}

TEST(FieldTest, BadDimensionsThrow) {
  EXPECT_THROW(Field(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(Field(10.0, -1.0), std::invalid_argument);
}

TEST(FieldTest, Contains) {
  const Field f(10.0, 10.0);
  EXPECT_TRUE(f.contains({0.0, 0.0}));
  EXPECT_TRUE(f.contains({10.0, 10.0}));
  EXPECT_FALSE(f.contains({10.1, 5.0}));
  EXPECT_FALSE(f.contains({5.0, -0.1}));
}

TEST(FieldTest, InteriorMoveUnchanged) {
  for (const BoundaryPolicy p :
       {BoundaryPolicy::kClamp, BoundaryPolicy::kReflect,
        BoundaryPolicy::kWrap}) {
    const Field f(10.0, 10.0, p);
    const Vec2 moved = f.move({5.0, 5.0}, {1.0, -2.0});
    EXPECT_DOUBLE_EQ(moved.x, 6.0) << to_string(p);
    EXPECT_DOUBLE_EQ(moved.y, 3.0) << to_string(p);
  }
}

TEST(FieldTest, ClampStopsAtWall) {
  const Field f(10.0, 10.0, BoundaryPolicy::kClamp);
  const Vec2 moved = f.move({9.0, 1.0}, {5.0, -5.0});
  EXPECT_DOUBLE_EQ(moved.x, 10.0);
  EXPECT_DOUBLE_EQ(moved.y, 0.0);
}

TEST(FieldTest, ReflectBounces) {
  const Field f(10.0, 10.0, BoundaryPolicy::kReflect);
  const Vec2 moved = f.move({9.0, 5.0}, {3.0, 0.0});  // 12 -> reflect to 8
  EXPECT_DOUBLE_EQ(moved.x, 8.0);
  EXPECT_DOUBLE_EQ(moved.y, 5.0);
  const Vec2 neg = f.move({1.0, 1.0}, {-3.0, 0.0});  // -2 -> 2
  EXPECT_DOUBLE_EQ(neg.x, 2.0);
}

TEST(FieldTest, ReflectMultipleBounces) {
  const Field f(10.0, 10.0, BoundaryPolicy::kReflect);
  // 25 units past the wall: 5 + 25 = 30; 30 mod 20 = 10 -> at the far wall.
  const Vec2 moved = f.move({5.0, 5.0}, {25.0, 0.0});
  EXPECT_DOUBLE_EQ(moved.x, 10.0);
}

TEST(FieldTest, WrapTorus) {
  const Field f(10.0, 10.0, BoundaryPolicy::kWrap);
  const Vec2 moved = f.move({9.0, 9.0}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(moved.x, 2.0);
  EXPECT_DOUBLE_EQ(moved.y, 2.0);
  const Vec2 neg = f.move({1.0, 1.0}, {-3.0, 0.0});
  EXPECT_DOUBLE_EQ(neg.x, 8.0);
}

TEST(FieldTest, MovedPointsStayInField) {
  for (const BoundaryPolicy p :
       {BoundaryPolicy::kClamp, BoundaryPolicy::kReflect,
        BoundaryPolicy::kWrap}) {
    const Field f(100.0, 100.0, p);
    Vec2 pos{50.0, 50.0};
    for (int i = 0; i < 100; ++i) {
      pos = f.move(pos, {37.0, -23.0});
      EXPECT_TRUE(f.contains(pos)) << to_string(p) << " step " << i;
    }
  }
}

TEST(FieldTest, WrapFoldsPositionsButRadioStaysEuclidean) {
  // kWrap only folds *positions* modulo the field size — it does not make
  // the field a torus for the radio. Two hosts hugging opposite edges are a
  // full field width apart and must not link, even though their wrapped
  // images would touch on a torus.
  const Field f(100.0, 100.0, BoundaryPolicy::kWrap);
  const Vec2 west = f.move({2.0, 50.0}, {-3.0, 0.0});   // wraps to x = 99
  EXPECT_DOUBLE_EQ(west.x, 99.0);
  const std::vector<Vec2> positions{{1.0, 50.0}, west};
  EXPECT_DOUBLE_EQ(distance(positions[0], positions[1]), 98.0);
  const Graph g = build_udg(positions, 10.0);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(FieldTest, PolicyToString) {
  EXPECT_EQ(to_string(BoundaryPolicy::kClamp), "clamp");
  EXPECT_EQ(to_string(BoundaryPolicy::kReflect), "reflect");
  EXPECT_EQ(to_string(BoundaryPolicy::kWrap), "wrap");
}

}  // namespace
}  // namespace pacds
