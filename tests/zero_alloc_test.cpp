// Steady-state allocation audit: once warm, the incremental engine's
// per-interval updates must perform ZERO heap allocations — the gateway set
// is maintained entirely in preallocated member/workspace buffers. The test
// hook replaces global operator new for this binary and counts allocations
// inside an explicit window.
//
// The guarantee covers the serial steady state and, because localized delta
// updates never touch the executor, also holds when an intra-interval thread
// pool is configured (the pool only serves full refreshes).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "energy/battery.hpp"
#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/lifetime.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};

}  // namespace

// Replacing these in one TU replaces them binary-wide; gtest's own
// allocations are excluded by only counting inside the test window.
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pacds {
namespace {

/// Counts heap allocations performed by `fn` on this thread's window.
template <typename Fn>
std::size_t count_allocations(Fn&& fn) {
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}

SimConfig steady_config(int threads) {
  SimConfig config;
  config.n_hosts = 60;
  config.rule_set = RuleSet::kEL2;  // energy keys: dirtiest steady state
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.engine = SimEngine::kIncremental;
  config.threads = threads;
  return config;
}

/// Drives `engine` for `intervals` updates over fixed positions with
/// per-interval drains (keys keep moving, so the localized propagation path
/// runs every interval — this is the paper's steady state minus mobility).
void run_intervals(LifetimeEngine& engine, const std::vector<Vec2>& positions,
                   std::vector<double>& levels, int intervals) {
  for (int i = 0; i < intervals; ++i) {
    engine.update(positions, levels);
    for (std::size_t host = 0; host < levels.size(); ++host) {
      levels[host] -= engine.gateways().test(host) ? 2.0 : 1.0;
    }
  }
}

class ZeroAllocTest : public ::testing::TestWithParam<int> {};

TEST_P(ZeroAllocTest, IncrementalSteadyStateAllocatesNothing) {
  const SimConfig config = steady_config(GetParam());
  const auto engine = make_lifetime_engine(config);
  ASSERT_EQ(engine->name(), "incremental");

  Xoshiro256 rng(2001);
  const Field field(config.field_width, config.field_height, config.boundary);
  const auto positions = random_placement(config.n_hosts, field, rng);
  std::vector<double> levels(static_cast<std::size_t>(config.n_hosts),
                             config.initial_energy);

  // Warm-up: initialization plus enough intervals for every scratch buffer
  // to reach its high-water capacity.
  run_intervals(*engine, positions, levels, 10);

  const std::size_t allocs = count_allocations(
      [&] { run_intervals(*engine, positions, levels, 50); });
  EXPECT_EQ(allocs, 0u)
      << allocs << " allocation(s) leaked into the steady state";
}

INSTANTIATE_TEST_SUITE_P(SerialAndThreaded, ZeroAllocTest,
                         ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ZeroAllocTest, TiledSteadyStateAllocatesNothing) {
  // Same audit for the tiled engine: dirty-tile rebuilds run entirely in
  // persistent TileLocal / lane-scratch buffers once warm. Serial only —
  // the threaded path hands chunk tasks to the pool queue every interval
  // (unlike the incremental engine, whose localized updates bypass it), and
  // queued std::function tasks may allocate.
  SimConfig config = steady_config(1);
  config.engine = SimEngine::kTiled;
  const auto engine = make_lifetime_engine(config);
  ASSERT_EQ(engine->name(), "tiled");

  Xoshiro256 rng(2001);
  const Field field(config.field_width, config.field_height, config.boundary);
  const auto positions = random_placement(config.n_hosts, field, rng);
  std::vector<double> levels(static_cast<std::size_t>(config.n_hosts),
                             config.initial_energy);
  run_intervals(*engine, positions, levels, 10);

  const std::size_t allocs = count_allocations(
      [&] { run_intervals(*engine, positions, levels, 50); });
  EXPECT_EQ(allocs, 0u)
      << allocs << " allocation(s) leaked into the tiled steady state";
}

TEST_P(ZeroAllocTest, MetricsRecordingStaysAllocationFree) {
  // The observability layer must not regress the steady state: recording
  // into an attached registry is plain array arithmetic (and with no
  // registry the timers never even read the clock).
  const SimConfig config = steady_config(GetParam());
  const auto engine = make_lifetime_engine(config);
  ASSERT_EQ(engine->name(), "incremental");
  obs::MetricsRegistry registry;
  engine->set_metrics(&registry);

  Xoshiro256 rng(2001);
  const Field field(config.field_width, config.field_height, config.boundary);
  const auto positions = random_placement(config.n_hosts, field, rng);
  std::vector<double> levels(static_cast<std::size_t>(config.n_hosts),
                             config.initial_energy);
  run_intervals(*engine, positions, levels, 10);

  const std::size_t allocs = count_allocations([&] {
    for (int i = 0; i < 50; ++i) {
      registry.reset();  // the per-interval slice pattern from the simulator
      run_intervals(*engine, positions, levels, 1);
    }
  });
  EXPECT_EQ(allocs, 0u)
      << allocs << " allocation(s) leaked into the observed steady state";
  EXPECT_GT(registry.counter(obs::Counter::kLocalizedUpdates), 0u);
}

TEST(ZeroAllocTest, HookCountsAllocations) {
  // Sanity-check the hook itself: a fresh vector allocation must register.
  const std::size_t allocs = count_allocations([] {
    std::vector<int> v(1000);
    ASSERT_FALSE(v.empty());
  });
  EXPECT_GE(allocs, 1u);
}

}  // namespace
}  // namespace pacds
