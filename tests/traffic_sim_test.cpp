// Tests for the traffic-driven lifetime simulation.

#include "sim/traffic_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pacds {
namespace {

TrafficSimConfig small_config() {
  TrafficSimConfig config;
  config.n_hosts = 20;
  config.flows_per_interval = 10;
  config.initial_energy = 100.0;
  return config;
}

TEST(TrafficSimTest, Deterministic) {
  const TrafficSimConfig config = small_config();
  const TrafficSimResult a = run_traffic_trial(config, 42);
  const TrafficSimResult b = run_traffic_trial(config, 42);
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.flows_delivered, b.flows_delivered);
  EXPECT_DOUBLE_EQ(a.energy_stddev_at_death, b.energy_stddev_at_death);
}

TEST(TrafficSimTest, TerminatesWithReasonableMetrics) {
  const TrafficSimResult r = run_traffic_trial(small_config(), 7);
  EXPECT_GT(r.intervals, 0);
  EXPECT_FALSE(r.hit_cap);
  EXPECT_GT(r.flows_attempted, 0u);
  EXPECT_GE(r.flows_attempted, r.flows_delivered);
  // The placement starts connected but roaming fragments it over the run
  // (~100 intervals, no connectivity maintenance), so only a loose floor
  // holds.
  EXPECT_GT(r.delivery_ratio, 0.2);
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_GT(r.avg_gateways, 0.0);
}

TEST(TrafficSimTest, TooFewHostsThrows) {
  TrafficSimConfig config = small_config();
  config.n_hosts = 1;
  EXPECT_THROW((void)run_traffic_trial(config, 1), std::invalid_argument);
  config.n_hosts = 20;
  config.flows_per_interval = -1;
  EXPECT_THROW((void)run_traffic_trial(config, 1), std::invalid_argument);
}

TEST(TrafficSimTest, MoreTrafficDiesFaster) {
  TrafficSimConfig config = small_config();
  config.flows_per_interval = 2;
  const TrafficSimResult light = run_traffic_trial(config, 11);
  config.flows_per_interval = 40;
  const TrafficSimResult heavy = run_traffic_trial(config, 11);
  EXPECT_LT(heavy.intervals, light.intervals);
}

TEST(TrafficSimTest, ZeroFlowsOnlyUpkeep) {
  TrafficSimConfig config = small_config();
  config.flows_per_interval = 0;
  config.costs.idle = 1.0;
  config.costs.beacon = 0.0;
  config.initial_energy = 30.0;
  const TrafficSimResult r = run_traffic_trial(config, 13);
  EXPECT_EQ(r.intervals, 30);  // pure idle drain: everyone dies together
  EXPECT_EQ(r.flows_attempted, 0u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0);  // vacuous
}

TEST(TrafficSimTest, AllSchemesRun) {
  for (const RuleSet rs : kAllRuleSets) {
    TrafficSimConfig config = small_config();
    config.rule_set = rs;
    const TrafficSimResult r = run_traffic_trial(config, 17);
    EXPECT_GT(r.intervals, 0) << to_string(rs);
  }
}

TEST(TrafficSimTest, ChurnReducesDelivery) {
  TrafficSimConfig config = small_config();
  config.initial_energy = 500.0;
  const TrafficSimResult stable = run_traffic_trial(config, 19);
  config.churn.off_probability = 0.3;
  config.churn.on_probability = 0.3;
  const TrafficSimResult churny = run_traffic_trial(config, 19);
  // Heavy churn fragments the topology: delivery suffers.
  EXPECT_LT(churny.delivery_ratio, stable.delivery_ratio);
}

TEST(TrafficSimTest, CapStopsEternalRuns) {
  TrafficSimConfig config = small_config();
  config.costs = EnergyCosts{0.0, 0.0, 0.0, 0.0};
  config.max_intervals = 25;
  const TrafficSimResult r = run_traffic_trial(config, 23);
  EXPECT_TRUE(r.hit_cap);
  EXPECT_EQ(r.intervals, 25);
}

TEST(TrafficSimTest, EnergyAwareBalancesBetter) {
  // The energy-keyed scheme should leave a tighter battery spread at death
  // than the static ID keys (averaged over a few seeds to damp noise).
  double id_spread = 0.0;
  double el_spread = 0.0;
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    TrafficSimConfig config = small_config();
    config.rule_set = RuleSet::kID;
    id_spread += run_traffic_trial(config, seed).energy_stddev_at_death;
    config.rule_set = RuleSet::kEL1;
    el_spread += run_traffic_trial(config, seed).energy_stddev_at_death;
  }
  EXPECT_LT(el_spread, id_spread * 1.15);  // never dramatically worse
}

}  // namespace
}  // namespace pacds
