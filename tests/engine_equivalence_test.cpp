// The two lifetime engines must be interchangeable wherever the incremental
// one is eligible: bit-identical TrialResults, bit-identical traces, and
// identical per-interval gateway bitsets — across every rule set, multiple
// mobility models and seeds, including quantized-level boundary crossings.

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "energy/battery.hpp"
#include "net/topology.hpp"
#include "net/udg.hpp"
#include "sim/lifetime.hpp"

namespace pacds {
namespace {

SimConfig base_config() {
  SimConfig config;
  config.n_hosts = 40;
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.initial_energy = 60.0;  // keeps trials short
  return config;
}

void expect_identical(const TrialResult& full, const TrialResult& inc) {
  EXPECT_EQ(full.intervals, inc.intervals);
  EXPECT_EQ(full.avg_gateways, inc.avg_gateways);  // exact, not approximate
  EXPECT_EQ(full.avg_marked, inc.avg_marked);
  EXPECT_EQ(full.hit_cap, inc.hit_cap);
  EXPECT_EQ(full.initial_connected, inc.initial_connected);
  EXPECT_EQ(full.placement_attempts, inc.placement_attempts);
}

void expect_identical(const SimTrace& full, const SimTrace& inc) {
  ASSERT_EQ(full.records.size(), inc.records.size());
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    const IntervalRecord& a = full.records[i];
    const IntervalRecord& b = inc.records[i];
    EXPECT_EQ(a.interval, b.interval) << "record " << i;
    EXPECT_EQ(a.marked, b.marked) << "record " << i;
    EXPECT_EQ(a.gateways, b.gateways) << "record " << i;
    EXPECT_EQ(a.alive, b.alive) << "record " << i;
    EXPECT_EQ(a.min_energy, b.min_energy) << "record " << i;
    EXPECT_EQ(a.mean_energy, b.mean_energy) << "record " << i;
    EXPECT_EQ(a.max_energy, b.max_energy) << "record " << i;
  }
}

void expect_engines_agree(SimConfig config, std::uint64_t seed) {
  SimTrace full_trace;
  SimTrace inc_trace;
  config.engine = SimEngine::kFullRebuild;
  const TrialResult full = run_lifetime_trial(config, seed, &full_trace);
  config.engine = SimEngine::kIncremental;
  const TrialResult inc = run_lifetime_trial(config, seed, &inc_trace);
  expect_identical(full, inc);
  expect_identical(full_trace, inc_trace);
}

// ---- Whole-trial equivalence ----------------------------------------------

class EngineEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<RuleSet, MobilityKind, std::uint64_t>> {};

TEST_P(EngineEquivalenceTest, TrialAndTraceBitIdentical) {
  const auto [rs, mobility, seed] = GetParam();
  SimConfig config = base_config();
  config.rule_set = rs;
  config.mobility_kind = mobility;
  expect_engines_agree(config, seed);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesMobilitiesSeeds, EngineEquivalenceTest,
    ::testing::Combine(::testing::Values(RuleSet::kNR, RuleSet::kID,
                                         RuleSet::kND, RuleSet::kEL1,
                                         RuleSet::kEL2, RuleSet::kSEL),
                       ::testing::Values(MobilityKind::kPaperJump,
                                         MobilityKind::kRandomWaypoint),
                       ::testing::Values(7u, 4242u)),
    [](const ::testing::TestParamInfo<EngineEquivalenceTest::ParamType>&
           param_info) {
      std::string name = to_string(std::get<0>(param_info.param)) + "_" +
                         to_string(std::get<1>(param_info.param)) + "_seed" +
                         std::to_string(std::get<2>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';  // gtest names must be alphanumeric
      }
      return name;
    });

TEST(EngineEquivalenceTest, QuantizedBoundaryCrossings) {
  // quantum = 7 with integer drains: levels cross bucket boundaries at
  // staggered, non-trivial intervals, exercising the key-diff (X) path hard.
  SimConfig config = base_config();
  config.rule_set = RuleSet::kEL2;
  config.energy_key_quantum = 7.0;
  config.initial_energy = 100.0;
  expect_engines_agree(config, 99u);
}

TEST(EngineEquivalenceTest, UnquantizedKeys) {
  // quantum = 0: raw battery readings as keys — every alive node's key
  // changes every interval (worst case for the incremental engine, which
  // must then degrade gracefully to near-global regions, not diverge).
  SimConfig config = base_config();
  config.rule_set = RuleSet::kEL1;
  config.n_hosts = 25;
  config.energy_key_quantum = 0.0;
  expect_engines_agree(config, 5u);
}

TEST(EngineEquivalenceTest, CliquePolicyConfigs) {
  SimConfig config = base_config();
  config.rule_set = RuleSet::kND;
  config.cds_options.clique_policy = CliquePolicy::kElectMaxKey;
  expect_engines_agree(config, 11u);
}

TEST(EngineEquivalenceTest, ConstantTotalDrainModel) {
  // Model 1 (d = 2/|G'|): gateways drain slowly, non-gateways cross
  // quantization buckets in lockstep — the steady-state regime the
  // incremental engine is built for.
  SimConfig config = base_config();
  config.rule_set = RuleSet::kEL2;
  config.drain_model = DrainModel::kConstantTotal;
  config.energy_key_quantum = 10.0;
  config.initial_energy = 80.0;
  expect_engines_agree(config, 3u);
}

// ---- Scenario pack: radios, 3-D fields, stability keys ---------------------

TEST(EngineEquivalenceTest, ShadowingRadioConfigs) {
  // Per-pair fades make the link set a proper subset of the unit disk; the
  // incremental engine must apply the identical veto inside its delta
  // extraction.
  SimConfig config = base_config();
  config.rule_set = RuleSet::kEL2;
  config.radio = RadioKind::kShadowing;
  config.radio_params.sigma_db = 4.0;
  config.radio_params.fading_seed = 99;
  config.connect_retries = 5;  // faded graphs may simply stay disconnected
  expect_engines_agree(config, 17u);
}

TEST(EngineEquivalenceTest, ProbabilisticRadioConfigs) {
  SimConfig config = base_config();
  config.rule_set = RuleSet::kND;
  config.radio = RadioKind::kProbabilistic;
  config.radio_params.link_prob = 0.8;
  config.radio_params.fading_seed = 7;
  config.connect_retries = 5;
  expect_engines_agree(config, 23u);
}

TEST(EngineEquivalenceTest, ThreeDFieldConfigs) {
  SimConfig config = base_config();
  config.rule_set = RuleSet::kEL1;
  config.field_depth = 50.0;
  config.radius = 35.0;  // keep the sparser 3-D placement connectable
  config.connect_retries = 20;
  expect_engines_agree(config, 31u);
}

TEST(EngineEquivalenceTest, StabilityKeyWithThreeDShadowing) {
  // The full stack at once: SEL stability tracking (commit cadence and churn
  // counts must match between row-diff and delta-endpoint accounting), a 3-D
  // field, and a faded radio.
  SimConfig config = base_config();
  config.rule_set = RuleSet::kSEL;
  config.field_depth = 40.0;
  config.radius = 35.0;
  config.radio = RadioKind::kShadowing;
  config.radio_params.sigma_db = 3.0;
  config.radio_params.fading_seed = 5;
  config.stability_beta = 0.5;
  config.stability_quantum = 0.5;
  config.connect_retries = 5;
  expect_engines_agree(config, 41u);
}

TEST(EngineEquivalenceTest, StabilityQuantumVariants) {
  for (const double quantum : {0.0, 2.0}) {
    SimConfig config = base_config();
    config.rule_set = RuleSet::kSEL;
    config.stability_quantum = quantum;
    expect_engines_agree(config, 43u);
  }
}

// ---- Per-interval gateway sets (direct engine drive) -----------------------

TEST(EngineEquivalenceTest, PerIntervalGatewaySetsMatch) {
  SimConfig config = base_config();
  config.rule_set = RuleSet::kEL2;

  SimConfig full_cfg = config;
  full_cfg.engine = SimEngine::kFullRebuild;
  SimConfig inc_cfg = config;
  inc_cfg.engine = SimEngine::kIncremental;
  const auto full = make_lifetime_engine(full_cfg);
  const auto inc = make_lifetime_engine(inc_cfg);
  ASSERT_EQ(full->name(), "full-rebuild");
  ASSERT_EQ(inc->name(), "incremental");

  Xoshiro256 rng(2001);
  const Field field(config.field_width, config.field_height, config.boundary);
  auto positions = random_placement(config.n_hosts, field, rng);
  BatteryBank batteries(static_cast<std::size_t>(config.n_hosts),
                        config.initial_energy);
  PaperJumpMobility mobility(config.stay_probability, config.jump_min,
                             config.jump_max);
  for (int interval = 0; interval < 25; ++interval) {
    full->update(positions, batteries.levels());
    inc->update(positions, batteries.levels());
    ASSERT_EQ(full->gateways(), inc->gateways())
        << "interval " << interval << ": full "
        << full->gateways().to_string() << " vs incremental "
        << inc->gateways().to_string();
    ASSERT_EQ(full->counts().marked, inc->counts().marked);
    ASSERT_EQ(full->counts().gateways, inc->counts().gateways);
    // Drain so keys move, then roam.
    for (std::size_t host = 0; host < batteries.size(); ++host) {
      batteries.drain(host, full->gateways().test(host) ? 2.0 : 1.0);
    }
    mobility.step(positions, field, rng);
  }
}

// ---- Engine selection ------------------------------------------------------

TEST(EngineSelectionTest, AutoPicksIncrementalOnlyWhenEligible) {
  SimConfig config = base_config();
  EXPECT_TRUE(incremental_engine_eligible(config));
  EXPECT_EQ(make_lifetime_engine(config)->name(), "incremental");

  config.cds_options.strategy = Strategy::kSequential;
  EXPECT_FALSE(incremental_engine_eligible(config));
  EXPECT_EQ(make_lifetime_engine(config)->name(), "full-rebuild");
}

TEST(EngineSelectionTest, CustomKeyAndLinkModelDisqualify) {
  SimConfig config = base_config();
  config.custom_key = KeyKind::kEnergyId;
  EXPECT_FALSE(incremental_engine_eligible(config));

  config = base_config();
  config.link_model = LinkModel::kGabriel;
  EXPECT_FALSE(incremental_engine_eligible(config));
}

TEST(EngineSelectionTest, ForcedIncrementalThrowsWhenIneligible) {
  SimConfig config = base_config();
  config.engine = SimEngine::kIncremental;
  config.cds_options.strategy = Strategy::kSequential;
  EXPECT_THROW(make_lifetime_engine(config), std::invalid_argument);
  EXPECT_THROW((void)run_lifetime_trial(config, 1), std::invalid_argument);
}

TEST(EngineSelectionTest, ForcedFullRebuildAlwaysWorks) {
  SimConfig config = base_config();
  config.engine = SimEngine::kFullRebuild;
  const TrialResult r = run_lifetime_trial(config, 1);
  EXPECT_GT(r.intervals, 0);
}

}  // namespace
}  // namespace pacds
