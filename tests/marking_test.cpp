// Tests for the Wu-Li marking process, including the paper's Figure 1
// worked example and the complete-component clique policy.

#include "core/marking.hpp"

#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::figure1_graph;
using testing::path_graph;
using testing::star_graph;

TEST(MarkingTest, PaperFigure1Example) {
  // The paper derives: "only vertices v and w are marked T".
  const Graph g = figure1_graph();
  const DynBitset marked = marking_process(g);
  EXPECT_FALSE(marked.test(static_cast<std::size_t>(testing::kFig1U)));
  EXPECT_TRUE(marked.test(static_cast<std::size_t>(testing::kFig1V)));
  EXPECT_TRUE(marked.test(static_cast<std::size_t>(testing::kFig1W)));
  EXPECT_FALSE(marked.test(static_cast<std::size_t>(testing::kFig1X)));
  EXPECT_FALSE(marked.test(static_cast<std::size_t>(testing::kFig1Y)));
}

TEST(MarkingTest, CompleteGraphMarksNothing) {
  for (const NodeId n : {2, 3, 5, 8}) {
    const DynBitset marked = marking_process(complete_graph(n));
    EXPECT_TRUE(marked.none()) << "K_" << n;
  }
}

TEST(MarkingTest, IsolatedAndSingleNodeUnmarked) {
  EXPECT_TRUE(marking_process(Graph(1)).none());
  EXPECT_TRUE(marking_process(Graph(4)).none());
}

TEST(MarkingTest, PathMarksInteriorOnly) {
  const Graph g = path_graph(5);
  const DynBitset marked = marking_process(g);
  EXPECT_FALSE(marked.test(0));
  EXPECT_TRUE(marked.test(1));
  EXPECT_TRUE(marked.test(2));
  EXPECT_TRUE(marked.test(3));
  EXPECT_FALSE(marked.test(4));
}

TEST(MarkingTest, CycleMarksEverything) {
  // Every C_n (n >= 4) node has two non-adjacent neighbors.
  const DynBitset marked = marking_process(cycle_graph(6));
  EXPECT_EQ(marked.count(), 6u);
}

TEST(MarkingTest, TriangleMarksNothing) {
  EXPECT_TRUE(marking_process(cycle_graph(3)).none());
}

TEST(MarkingTest, StarMarksCenterOnly) {
  const DynBitset marked = marking_process(star_graph(5));
  EXPECT_TRUE(marked.test(0));
  EXPECT_EQ(marked.count(), 1u);
}

TEST(MarkingTest, MarksItselfMatchesProcess) {
  const Graph g = figure1_graph();
  const DynBitset marked = marking_process(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(marks_itself(g, v), marked.test(static_cast<std::size_t>(v)));
  }
}

TEST(MarkingTest, MarkedSetIsCds) {
  // Property 1 + 2: marked set dominates and is connected (non-complete
  // connected graph).
  for (const Graph& g :
       {figure1_graph(), path_graph(8), cycle_graph(7), star_graph(6)}) {
    const DynBitset marked = marking_process(g);
    const CdsCheck check = check_cds(g, marked);
    EXPECT_TRUE(check.ok()) << check.message;
  }
}

TEST(MarkingTest, Property3HoldsForMarkingOutput) {
  for (const Graph& g : {figure1_graph(), path_graph(9), cycle_graph(8)}) {
    EXPECT_TRUE(property3_holds(g, marking_process(g)));
  }
}

TEST(MarkingTest, DisconnectedGraphPerComponent) {
  // Two paths of 3: interiors of both are marked.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const DynBitset marked = marking_process(g);
  EXPECT_TRUE(marked.test(1));
  EXPECT_TRUE(marked.test(4));
  EXPECT_EQ(marked.count(), 2u);
}

TEST(MarkingTest, CliquePolicyNoneLeavesCliquesEmpty) {
  const Graph g = complete_graph(4);
  const PriorityKey key(KeyKind::kId, g);
  DynBitset marked = marking_process(g);
  apply_clique_policy(g, key, CliquePolicy::kNone, marked);
  EXPECT_TRUE(marked.none());
}

TEST(MarkingTest, CliquePolicyElectsMaxKey) {
  const Graph g = complete_graph(4);
  const PriorityKey key(KeyKind::kId, g);
  DynBitset marked = marking_process(g);
  apply_clique_policy(g, key, CliquePolicy::kElectMaxKey, marked);
  EXPECT_EQ(marked.count(), 1u);
  EXPECT_TRUE(marked.test(3));  // id-max
}

TEST(MarkingTest, CliquePolicySkipsSingletons) {
  Graph g(3);
  g.add_edge(0, 1);  // K2 plus an isolated node 2
  const PriorityKey key(KeyKind::kId, g);
  DynBitset marked = marking_process(g);
  apply_clique_policy(g, key, CliquePolicy::kElectMaxKey, marked);
  EXPECT_TRUE(marked.test(1));   // K2 gets its max elected
  EXPECT_FALSE(marked.test(2));  // singleton stays unmarked
  EXPECT_EQ(marked.count(), 1u);
}

TEST(MarkingTest, CliquePolicyWithEnergyKey) {
  const Graph g = complete_graph(3);
  const std::vector<double> energy{5.0, 9.0, 1.0};
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  DynBitset marked = marking_process(g);
  apply_clique_policy(g, key, CliquePolicy::kElectMaxKey, marked);
  EXPECT_TRUE(marked.test(1));  // highest energy elected
  EXPECT_EQ(marked.count(), 1u);
}

TEST(MarkingTest, CliquePolicyDoesNotTouchMarkedComponents) {
  const Graph g = path_graph(5);
  const PriorityKey key(KeyKind::kId, g);
  DynBitset marked = marking_process(g);
  const DynBitset before = marked;
  apply_clique_policy(g, key, CliquePolicy::kElectMaxKey, marked);
  EXPECT_EQ(marked, before);
}

}  // namespace
}  // namespace pacds
