// Tests for the streaming JSON writer.

#include "io/json.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace pacds {
namespace {

std::string render(const std::function<void(JsonWriter&)>& build) {
  std::ostringstream os;
  JsonWriter json(os);
  build(json);
  return os.str();
}

TEST(JsonTest, EmptyObjectAndArray) {
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_array().end_array(); }), "[]");
}

TEST(JsonTest, ScalarsAtTopLevel) {
  EXPECT_EQ(render([](JsonWriter& j) { j.value("hi"); }), "\"hi\"");
  EXPECT_EQ(render([](JsonWriter& j) { j.value(42); }), "42");
  EXPECT_EQ(render([](JsonWriter& j) { j.value(true); }), "true");
  EXPECT_EQ(render([](JsonWriter& j) { j.null(); }), "null");
}

TEST(JsonTest, ObjectWithCommas) {
  const std::string out = render([](JsonWriter& j) {
    j.begin_object();
    j.key("a").value(1);
    j.key("b").value("two");
    j.key("c").value(false);
    j.end_object();
  });
  EXPECT_EQ(out, "{\"a\":1,\"b\":\"two\",\"c\":false}");
}

TEST(JsonTest, NestedStructures) {
  const std::string out = render([](JsonWriter& j) {
    j.begin_object();
    j.key("xs").begin_array().value(1).value(2).value(3).end_array();
    j.key("inner").begin_object().key("k").value("v").end_object();
    j.end_object();
  });
  EXPECT_EQ(out, "{\"xs\":[1,2,3],\"inner\":{\"k\":\"v\"}}");
}

TEST(JsonTest, Escaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, DoublesRoundTripExactly) {
  // The old default-precision path truncated to 6 significant digits, which
  // corrupted bench timings and CI half-widths; format_double probes for the
  // shortest representation that strtod maps back to the same bits.
  for (const double value :
       {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 2.0 / 3.0, 96.66666666666667,
        3.141592653589793, 1234567.89012345, 6.02214076e23, 5e-324,
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::epsilon()}) {
    const std::string text = JsonWriter::format_double(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value)
        << value << " -> \"" << text << '"';
    EXPECT_EQ(std::strtod(JsonWriter::format_double(-value).c_str(), nullptr),
              -value);
  }
  // Values that 6 significant digits cannot represent must not collapse.
  EXPECT_NE(JsonWriter::format_double(1.0000001),
            JsonWriter::format_double(1.0000002));
  // Short values stay short — no max_digits10 noise.
  EXPECT_EQ(JsonWriter::format_double(0.5), "0.5");
  EXPECT_EQ(JsonWriter::format_double(100.0), "100");
}

TEST(JsonTest, ValueDoubleEmitsRoundTripText) {
  EXPECT_EQ(render([](JsonWriter& j) { j.value(96.66666666666667); }),
            "96.66666666666667");
  EXPECT_EQ(render([](JsonWriter& j) { j.value(0.25); }), "0.25");
}

TEST(JsonTest, PrettyPrintIndents) {
  std::ostringstream os;
  JsonWriter j(os, 2);
  j.begin_object();
  j.key("a").value(1);
  j.key("xs").begin_array().value(1).value(2).end_array();
  j.key("empty").begin_object().end_object();
  j.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"a\": 1,\n"
            "  \"xs\": [\n"
            "    1,\n"
            "    2\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}");
  EXPECT_TRUE(j.complete());
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(render([](JsonWriter& j) {
              j.begin_array();
              j.value(std::numeric_limits<double>::quiet_NaN());
              j.value(std::numeric_limits<double>::infinity());
              j.end_array();
            }),
            "[null,null]");
}

TEST(JsonTest, FormatDoubleMapsNonFiniteToNull) {
  // format_double is the raw path around value(double) — table cells, log
  // lines, corpus files. It must never leak an "inf"/"nan" token that a
  // strict JSON parser rejects.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(JsonWriter::format_double(inf), "null");
  EXPECT_EQ(JsonWriter::format_double(-inf), "null");
  EXPECT_EQ(JsonWriter::format_double(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(JsonWriter::format_double(1.5), "1.5");
}

TEST(JsonTest, MisuseThrows) {
  std::ostringstream os;
  {
    JsonWriter j(os);
    j.begin_object();
    EXPECT_THROW(j.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter j(os);
    j.begin_array();
    EXPECT_THROW(j.key("k"), std::logic_error);  // key inside array
    EXPECT_THROW(j.end_object(), std::logic_error);
  }
  {
    JsonWriter j(os);
    j.value(1);
    EXPECT_THROW(j.value(2), std::logic_error);  // two top-level values
  }
}

TEST(JsonTest, CompleteTracksBalance) {
  std::ostringstream os;
  JsonWriter j(os);
  EXPECT_FALSE(j.complete());
  j.begin_object();
  EXPECT_FALSE(j.complete());
  j.end_object();
  EXPECT_TRUE(j.complete());
}

}  // namespace
}  // namespace pacds
