// Tests for the paper's lifetime simulation loop.

#include "sim/lifetime.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pacds {
namespace {

SimConfig small_config() {
  SimConfig config;
  config.n_hosts = 20;
  config.drain_model = DrainModel::kLinearTotal;
  config.rule_set = RuleSet::kEL1;
  return config;
}

TEST(LifetimeTest, Deterministic) {
  const SimConfig config = small_config();
  const TrialResult a = run_lifetime_trial(config, 99);
  const TrialResult b = run_lifetime_trial(config, 99);
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_DOUBLE_EQ(a.avg_gateways, b.avg_gateways);
  EXPECT_DOUBLE_EQ(a.avg_marked, b.avg_marked);
}

TEST(LifetimeTest, DifferentSeedsDiffer) {
  const SimConfig config = small_config();
  const TrialResult a = run_lifetime_trial(config, 1);
  const TrialResult b = run_lifetime_trial(config, 2);
  // Interval counts could coincide, but the full metric tuple almost never
  // does.
  EXPECT_TRUE(a.intervals != b.intervals ||
              a.avg_gateways != b.avg_gateways);
}

TEST(LifetimeTest, TerminatesWithPositiveLifetime) {
  const TrialResult r = run_lifetime_trial(small_config(), 5);
  EXPECT_GT(r.intervals, 0);
  EXPECT_FALSE(r.hit_cap);
  EXPECT_GT(r.avg_gateways, 0.0);
  EXPECT_LE(r.avg_gateways, 20.0);
  EXPECT_GE(r.avg_marked, r.avg_gateways);  // rules only shrink
}

TEST(LifetimeTest, LifetimeBoundedByEnergyBudget) {
  // With d' = 1 and per-gateway drain >= 0, nobody can survive past
  // initial_energy intervals as a permanent non-gateway; with the linear
  // model the bound is much tighter, but initial/d' is a hard sanity cap
  // only when every node is a non-gateway every interval. Check the softer
  // invariant: lifetime <= initial_energy / min_drain where min_drain is
  // the smaller of d' and the smallest per-interval gateway drain (> 0 for
  // the linear model with |G'| <= n).
  SimConfig config = small_config();
  config.initial_energy = 10.0;
  const TrialResult r = run_lifetime_trial(config, 7);
  // Gateways pay N/|G'| >= 1; non-gateways pay 1 -> everyone loses >= 1 per
  // interval, so the first death happens within 10 intervals.
  EXPECT_LE(r.intervals, 10);
  EXPECT_GT(r.intervals, 0);
}

TEST(LifetimeTest, ZeroHostsThrows) {
  SimConfig config;
  config.n_hosts = 0;
  EXPECT_THROW((void)run_lifetime_trial(config, 1), std::invalid_argument);
}

TEST(LifetimeTest, SingleHostLivesForever) {
  // One host: no gateways, drains d' = 1 per interval -> dies at
  // initial_energy intervals exactly.
  SimConfig config = small_config();
  config.n_hosts = 1;
  config.initial_energy = 25.0;
  const TrialResult r = run_lifetime_trial(config, 3);
  EXPECT_EQ(r.intervals, 25);
  EXPECT_DOUBLE_EQ(r.avg_gateways, 0.0);
}

TEST(LifetimeTest, CapStopsDegenerateRuns) {
  // Zero drain for everyone: the network never dies; the cap must fire.
  SimConfig config = small_config();
  config.drain_params.nongateway_drain = 0.0;
  config.drain_model = DrainModel::kConstantTotal;
  config.drain_params.constant_base = 0.0;
  config.max_intervals = 50;
  const TrialResult r = run_lifetime_trial(config, 11);
  EXPECT_TRUE(r.hit_cap);
  EXPECT_EQ(r.intervals, 50);
}

TEST(LifetimeTest, AllSchemesRun) {
  for (const RuleSet rs : kAllRuleSets) {
    SimConfig config = small_config();
    config.rule_set = rs;
    const TrialResult r = run_lifetime_trial(config, 13);
    EXPECT_GT(r.intervals, 0) << to_string(rs);
  }
}

TEST(LifetimeTest, AllDrainModelsRun) {
  for (const DrainModel m :
       {DrainModel::kConstantTotal, DrainModel::kLinearTotal,
        DrainModel::kQuadraticTotal}) {
    SimConfig config = small_config();
    config.drain_model = m;
    const TrialResult r = run_lifetime_trial(config, 17);
    EXPECT_GT(r.intervals, 0) << to_string(m);
  }
}

TEST(LifetimeTest, HeavierTrafficShortensLife) {
  SimConfig config = small_config();
  config.drain_model = DrainModel::kConstantTotal;
  const TrialResult light = run_lifetime_trial(config, 19);
  config.drain_model = DrainModel::kQuadraticTotal;
  const TrialResult heavy = run_lifetime_trial(config, 19);
  EXPECT_LE(heavy.intervals, light.intervals);
}

TEST(LifetimeTest, ConnectivityRetryReported) {
  // Dense config: first placement should connect.
  SimConfig config = small_config();
  config.n_hosts = 60;
  const TrialResult r = run_lifetime_trial(config, 23);
  EXPECT_TRUE(r.initial_connected);
  EXPECT_GE(r.placement_attempts, 1);
}

TEST(LifetimeTest, SparseFallbackStillRuns) {
  // Three hosts with tiny radius: usually impossible to connect; the
  // simulation must still run on the disconnected graph.
  SimConfig config = small_config();
  config.n_hosts = 3;
  config.radius = 0.5;
  config.connect_retries = 5;
  const TrialResult r = run_lifetime_trial(config, 29);
  EXPECT_GT(r.intervals, 0);
}

}  // namespace
}  // namespace pacds
