// Tests for backbone redundancy: m-domination augmentation and
// single-failure robustness measurement.

#include "core/redundancy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "core/cds.hpp"
#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

DynBitset set_of(std::size_t n, std::initializer_list<std::size_t> bits) {
  DynBitset s(n);
  for (const auto b : bits) s.set(b);
  return s;
}

TEST(MDominationTest, CheckerBasics) {
  const Graph g = cycle_graph(6);
  // Every node has degree 2; alternating set 2-dominates.
  EXPECT_TRUE(is_m_dominating(g, set_of(6, {0, 2, 4}), 2));
  EXPECT_TRUE(is_m_dominating(g, set_of(6, {0, 2, 4}), 1));
  EXPECT_FALSE(is_m_dominating(g, set_of(6, {0, 3}), 2));
}

TEST(MDominationTest, LowDegreeHostsCapped) {
  // A leaf (degree 1) can never have 2 gateway neighbors; min(m, degree)
  // applies.
  const Graph g = star_graph(3);
  EXPECT_TRUE(is_m_dominating(g, set_of(4, {0}), 2));
}

TEST(MDominationTest, SizeMismatchThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)is_m_dominating(g, DynBitset(2), 1),
               std::invalid_argument);
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_THROW((void)augment_m_domination(g, DynBitset(2), 1, key),
               std::invalid_argument);
  EXPECT_THROW((void)augment_m_domination(g, DynBitset(3), 0, key),
               std::invalid_argument);
}

TEST(AugmentTest, AlreadySatisfiedIsIdentity) {
  const Graph g = path_graph(5);
  const DynBitset cds = set_of(5, {1, 2, 3});
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_EQ(augment_m_domination(g, cds, 1, key), cds);
}

TEST(AugmentTest, ProducesSuperset) {
  const Graph g = cycle_graph(8);
  const CdsResult cds = compute_cds(g, RuleSet::kID);
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset augmented = augment_m_domination(g, cds.gateways, 2, key);
  EXPECT_TRUE(cds.gateways.is_subset_of(augmented));
  EXPECT_TRUE(is_m_dominating(g, augmented, 2));
}

TEST(AugmentTest, PromotesHighestKeyNeighbors) {
  // Star with center gateway: each leaf has only the center as neighbor, so
  // m=2 cannot add anything (degree cap). Use C4 with one gateway instead:
  // host 2 (opposite) has neighbors 1 and 3; both must be promoted for m=2;
  // for m=1 only the higher-key one (id 3) is.
  const Graph g = cycle_graph(4);
  const DynBitset base = set_of(4, {0});
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset one = augment_m_domination(g, base, 1, key);
  EXPECT_TRUE(one.test(0));
  EXPECT_TRUE(one.test(3));   // highest-key neighbor of host 2... host 1 and
                              // 3 both candidates; 3 wins the key order
  EXPECT_FALSE(one.test(1));
  // For m = 2 host 1 is processed first and promotes host 2; {0, 2} then
  // already 2-dominates hosts 1 and 3, so nothing else is added.
  const DynBitset two = augment_m_domination(g, base, 2, key);
  EXPECT_TRUE(two.test(2));
  EXPECT_FALSE(two.test(1));
  EXPECT_TRUE(is_m_dominating(g, two, 2));
}

TEST(AugmentTest, EnergyKeyPromotesRichestHosts) {
  const Graph g = cycle_graph(4);
  const std::vector<double> energy{5.0, 9.0, 5.0, 1.0};
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  const DynBitset one = augment_m_domination(g, set_of(4, {0}), 1, key);
  // Host 2's candidates are 1 (energy 9) and 3 (energy 1): 1 is promoted.
  EXPECT_TRUE(one.test(1));
  EXPECT_FALSE(one.test(3));
}

TEST(AugmentTest, IdempotentAtFixpoint) {
  Xoshiro256 rng(3);
  const auto placed = random_connected_placement(30, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const CdsResult cds = compute_cds(g, RuleSet::kND);
  const PriorityKey key(KeyKind::kDegreeId, g);
  const DynBitset once = augment_m_domination(g, cds.gateways, 2, key);
  const DynBitset twice = augment_m_domination(g, once, 2, key);
  EXPECT_EQ(once, twice);
}

TEST(RobustnessTest, FullSetIsFullyRobust) {
  const Graph g = cycle_graph(6);
  DynBitset all(6);
  all.set_all();
  double baseline = 0.0;
  const double after = single_failure_delivery(g, all, &baseline);
  EXPECT_DOUBLE_EQ(baseline, 1.0);
  EXPECT_DOUBLE_EQ(after, 1.0);  // a cycle survives any single loss
}

TEST(RobustnessTest, StarCenterIsFatal) {
  const Graph g = star_graph(4);
  double baseline = 0.0;
  const double after =
      single_failure_delivery(g, set_of(5, {0}), &baseline);
  EXPECT_DOUBLE_EQ(baseline, 1.0);
  // Without the center, only the 4 leaf-center adjacent pairs survive out
  // of C(5,2) = 10 connected pairs.
  EXPECT_DOUBLE_EQ(after, 0.4);
}

TEST(RobustnessTest, EmptyGatewaySet) {
  const Graph g = path_graph(3);
  double baseline = 0.0;
  const double after = single_failure_delivery(g, DynBitset(3), &baseline);
  // Adjacent pairs deliver directly; (0,2) cannot. Nothing to fail.
  EXPECT_NEAR(baseline, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(after, 2.0 / 3.0, 1e-12);
}

TEST(BiconnectivityTest, CutVerticesOfBackbone) {
  // C5 with backbone {0,1,2}: within the induced path 0-1-2, node 1 cuts.
  const Graph g = cycle_graph(5);
  const DynBitset cuts = backbone_cut_vertices(g, set_of(5, {0, 1, 2}));
  EXPECT_TRUE(cuts.test(1));
  EXPECT_EQ(cuts.count(), 1u);
}

TEST(BiconnectivityTest, DiamondPatch) {
  // Diamond: path backbone 0-1-2, host 3 adjacent to both 0 and 2.
  // Promoting 3 closes the cycle and removes the cut at 1.
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 3}, {2, 3}});
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset base = set_of(4, {0, 1, 2});
  ASSERT_TRUE(backbone_cut_vertices(g, base).test(1));
  const DynBitset fixed = augment_biconnectivity(g, base, key);
  EXPECT_TRUE(fixed.test(3));
  EXPECT_TRUE(backbone_cut_vertices(g, fixed).none());
}

TEST(BiconnectivityTest, UnpatchableStopsGracefully) {
  // C6 with backbone {0,1,2,3}: fixing needs TWO promotions in sequence
  // with no single promotion bridging blocks (hosts 4 and 5 each touch only
  // one component of backbone - cut). The heuristic must return the input.
  const Graph g = cycle_graph(6);
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset base = set_of(6, {0, 1, 2, 3});
  const DynBitset result = augment_biconnectivity(g, base, key);
  EXPECT_EQ(result, base);
}

TEST(BiconnectivityTest, AlreadyBiconnectedIsIdentity) {
  const Graph g = cycle_graph(5);
  DynBitset all(5);
  all.set_all();
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_EQ(augment_biconnectivity(g, all, key), all);
}

TEST(BiconnectivityTest, SizeMismatchThrows) {
  const Graph g = path_graph(3);
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_THROW((void)augment_biconnectivity(g, DynBitset(2), key),
               std::invalid_argument);
}

TEST(BiconnectivityTest, RandomNetworksReduceCuts) {
  Xoshiro256 rng(9);
  const auto placed = random_connected_placement(40, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const CdsResult cds = compute_cds(g, RuleSet::kND);
  const PriorityKey key(KeyKind::kDegreeId, g);
  const DynBitset hardened = augment_biconnectivity(g, cds.gateways, key);
  EXPECT_TRUE(cds.gateways.is_subset_of(hardened));
  EXPECT_LE(backbone_cut_vertices(g, hardened).count(),
            backbone_cut_vertices(g, cds.gateways).count());
  EXPECT_TRUE(check_cds(g, hardened).ok());
  // Robustness never degrades.
  EXPECT_GE(single_failure_delivery(g, hardened),
            single_failure_delivery(g, cds.gateways) - 1e-9);
}

class RedundancyPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RedundancyPropertyTest, AugmentationImprovesRobustness) {
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  const auto placed = random_connected_placement(n, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const CdsResult cds = compute_cds(g, RuleSet::kND);
  const PriorityKey key(KeyKind::kDegreeId, g);
  const DynBitset augmented = augment_m_domination(g, cds.gateways, 2, key);

  EXPECT_TRUE(is_m_dominating(g, augmented, 2));
  EXPECT_TRUE(check_cds(g, augmented).ok());

  const double base_robustness = single_failure_delivery(g, cds.gateways);
  const double aug_robustness = single_failure_delivery(g, augmented);
  EXPECT_GE(aug_robustness, base_robustness - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, RedundancyPropertyTest,
    ::testing::Combine(::testing::Values(15, 30, 50),
                       ::testing::Values(61u, 62u, 63u)),
    [](const ::testing::TestParamInfo<RedundancyPropertyTest::ParamType>&
           param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace pacds
