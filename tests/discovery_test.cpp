// Tests for flooding route discovery and its CDS-restricted variant.

#include "routing/discovery.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cds.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

DynBitset set_of(std::size_t n, std::initializer_list<std::size_t> bits) {
  DynBitset s(n);
  for (const auto b : bits) s.set(b);
  return s;
}

TEST(DiscoveryTest, TrivialSelfRoute) {
  const Graph g = path_graph(3);
  const DiscoveryResult r = flood_discovery(g, 1, 1, nullptr);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.hops, 0);
  EXPECT_EQ(r.transmissions, 0u);
}

TEST(DiscoveryTest, AdjacentNeedsOneBroadcast) {
  const Graph g = path_graph(3);
  const DiscoveryResult r = flood_discovery(g, 0, 1, nullptr);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.hops, 1);
  EXPECT_EQ(r.transmissions, 1u);  // only src transmitted
  EXPECT_EQ(r.receptions, 1u);     // deg(0) = 1
}

TEST(DiscoveryTest, PathEndToEnd) {
  // P5, 0 -> 4: rings at hop 1, 2, 3, 4; transmitters: 0,1,2,3.
  const Graph g = path_graph(5);
  const DiscoveryResult r = flood_discovery(g, 0, 4, nullptr);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.hops, 4);
  EXPECT_EQ(r.transmissions, 4u);
}

TEST(DiscoveryTest, ExpandingRingStopsEarly) {
  // Star: src = leaf 1, dst = leaf 2. Ring 1: src transmits (reaches 0);
  // ring 2: center transmits, reaches all leaves including dst. Other
  // leaves never transmit.
  const Graph g = star_graph(5);
  const DiscoveryResult r = flood_discovery(g, 1, 2, nullptr);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.hops, 2);
  EXPECT_EQ(r.transmissions, 2u);  // leaf 1 + center only
}

TEST(DiscoveryTest, UnreachableDestination) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const DiscoveryResult r = flood_discovery(g, 0, 3, nullptr);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.hops, -1);
  EXPECT_GT(r.transmissions, 0u);
}

TEST(DiscoveryTest, IsolatedDestinationFailsCleanly) {
  // Fuzz-derived failure path: dst has degree 0, so no flood can reach it.
  // The discovery must report a clean miss — never throw — and still
  // account for the broadcasts it spent before giving up.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const DiscoveryResult plain = flood_discovery(g, 0, 4, nullptr);
  EXPECT_FALSE(plain.found);
  EXPECT_EQ(plain.hops, -1);
  EXPECT_GT(plain.transmissions, 0u);

  // Same under a relay restriction, and with the isolated node as source
  // (its own broadcast reaches nobody).
  const DynBitset relays = set_of(5, {1, 2, 3});
  EXPECT_FALSE(flood_discovery(g, 0, 4, &relays).found);
  const DiscoveryResult from_isolated = flood_discovery(g, 4, 0, nullptr);
  EXPECT_FALSE(from_isolated.found);
  EXPECT_EQ(from_isolated.receptions, 0u);
}

TEST(DiscoveryTest, OutOfRangeThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)flood_discovery(g, 0, 5, nullptr), std::invalid_argument);
  DynBitset wrong(2);
  EXPECT_THROW((void)flood_discovery(g, 0, 2, &wrong), std::invalid_argument);
}

TEST(DiscoveryTest, RelayRestrictionBlocksNonGateways) {
  // P5 with relays {1, 3} missing node 2: flood cannot pass node 2.
  const Graph g = path_graph(5);
  const DynBitset relays = set_of(5, {1, 3});
  const DiscoveryResult r = flood_discovery(g, 0, 4, &relays);
  EXPECT_FALSE(r.found);
}

TEST(DiscoveryTest, CdsFloodFindsSameHopCount) {
  // The marking backbone preserves shortest paths (Property 3), so the
  // restricted flood discovers routes of identical length.
  Xoshiro256 rng(41);
  const auto placed = random_connected_placement(30, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const DynBitset marked = compute_cds(g, RuleSet::kNR).gateways;
  for (NodeId s = 0; s < 10; ++s) {
    for (NodeId t = 20; t < 30; ++t) {
      const DiscoveryComparison cmp = compare_discovery(g, s, t, marked);
      ASSERT_TRUE(cmp.plain.found);
      ASSERT_TRUE(cmp.cds.found);
      EXPECT_EQ(cmp.plain.hops, cmp.cds.hops) << s << "->" << t;
    }
  }
}

TEST(DiscoveryTest, CdsFloodNeverMoreTransmissions) {
  Xoshiro256 rng(42);
  const auto placed = random_connected_placement(40, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const DynBitset gateways = compute_cds(g, RuleSet::kND).gateways;
  std::size_t plain_total = 0;
  std::size_t cds_total = 0;
  for (NodeId s = 0; s < 10; ++s) {
    const auto t = static_cast<NodeId>(39 - s);
    const DiscoveryComparison cmp = compare_discovery(g, s, t, gateways);
    ASSERT_TRUE(cmp.plain.found);
    ASSERT_TRUE(cmp.cds.found);
    EXPECT_LE(cmp.cds.transmissions, cmp.plain.transmissions);
    plain_total += cmp.plain.transmissions;
    cds_total += cmp.cds.transmissions;
  }
  EXPECT_LT(cds_total, plain_total);  // strictly cheaper in aggregate
}

TEST(DiscoveryTest, ReducedCdsMayStretchButStillFinds) {
  Xoshiro256 rng(43);
  const auto placed = random_connected_placement(30, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const DynBitset gateways = compute_cds(g, RuleSet::kID).gateways;
  for (NodeId s = 0; s < 5; ++s) {
    for (NodeId t = 25; t < 30; ++t) {
      const DiscoveryComparison cmp = compare_discovery(g, s, t, gateways);
      ASSERT_TRUE(cmp.cds.found) << s << "->" << t;
      EXPECT_GE(cmp.cds.hops, cmp.plain.hops);
    }
  }
}

}  // namespace
}  // namespace pacds
