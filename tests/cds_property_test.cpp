// Property-based tests over random unit-disk networks: every scheme and
// strategy must produce a dominating, internally-connected gateway set.
//
// One deliberate exception: the paper's *simultaneous* application of the
// refined Rule 2 (case 1 removes a node with no key guard) is not provably
// safe — two nodes can each be removed relying on the other as cover (the
// flaw later formalized by Dai & Wu 2004). The sequential and verified
// strategies are asserted strictly; the simultaneous strategy is asserted
// with a measured violation budget, and bench/ablation_strategies reports
// the observed rate.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/cds.hpp"
#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"

namespace pacds {
namespace {

struct RandomNet {
  Graph graph;
  std::vector<double> energy;
};

RandomNet make_random_net(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const Field field = Field::paper_field();
  RandomNet net;
  if (auto placed =
          random_connected_placement(n, field, kPaperRadius, rng, 500)) {
    net.graph = std::move(placed->graph);
  } else {
    // Accept a disconnected instance; per-component semantics still apply.
    net.graph = build_udg(random_placement(n, field, rng), kPaperRadius);
  }
  // Discrete energy levels 1..5 so EL ties actually occur.
  net.energy.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    net.energy.push_back(static_cast<double>(rng.uniform_int(1, 5)));
  }
  return net;
}

class CdsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CdsPropertyTest, MarkingOutputIsValidCds) {
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  const CdsCheck check = check_cds(net.graph, marking_process(net.graph));
  EXPECT_TRUE(check.ok()) << check.message;
}

TEST_P(CdsPropertyTest, MarkingOutputSatisfiesProperty3) {
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  EXPECT_TRUE(property3_holds(net.graph, marking_process(net.graph)));
}

TEST_P(CdsPropertyTest, SequentialStrategyAlwaysValid) {
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  for (const RuleSet rs : kAllRuleSets) {
    CdsOptions options;
    options.strategy = Strategy::kSequential;
    const CdsResult r = compute_cds(net.graph, rs, net.energy, options);
    const CdsCheck check = check_cds(net.graph, r.gateways);
    EXPECT_TRUE(check.ok())
        << to_string(rs) << " n=" << n << " seed=" << seed << ": "
        << check.message;
  }
}

TEST_P(CdsPropertyTest, VerifiedStrategyAlwaysValid) {
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  for (const RuleSet rs : kAllRuleSets) {
    CdsOptions options;
    options.strategy = Strategy::kVerified;
    const CdsResult r = compute_cds(net.graph, rs, net.energy, options);
    const CdsCheck check = check_cds(net.graph, r.gateways);
    EXPECT_TRUE(check.ok())
        << to_string(rs) << " n=" << n << " seed=" << seed << ": "
        << check.message;
  }
}

TEST_P(CdsPropertyTest, RulesOnlyShrinkTheMarkedSet) {
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  for (const RuleSet rs : kAllRuleSets) {
    const CdsResult r = compute_cds(net.graph, rs, net.energy);
    EXPECT_TRUE(r.gateways.is_subset_of(r.marked_only)) << to_string(rs);
  }
}

TEST_P(CdsPropertyTest, El2WithUniformEnergyEqualsNd) {
  // With all energy levels equal, the EL2 key chain (el, nd, id) degenerates
  // to (nd, id) — the EL2 and ND schemes must agree exactly.
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  const std::vector<double> uniform(static_cast<std::size_t>(n), 100.0);
  const CdsResult nd = compute_cds(net.graph, RuleSet::kND);
  const CdsResult el2 = compute_cds(net.graph, RuleSet::kEL2, uniform);
  EXPECT_EQ(nd.gateways, el2.gateways);
}

TEST_P(CdsPropertyTest, El1WithUniformEnergyEqualsIdKeyedRefined) {
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  const std::vector<double> uniform(static_cast<std::size_t>(n), 100.0);
  const CdsResult el1 = compute_cds(net.graph, RuleSet::kEL1, uniform);
  RuleConfig config;  // refined Rule 2, simultaneous — EL1's configuration
  const CdsResult id_refined =
      compute_cds_custom(net.graph, KeyKind::kId, config);
  EXPECT_EQ(el1.gateways, id_refined.gateways);
}

TEST_P(CdsPropertyTest, SequentialIsIdempotent) {
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  CdsOptions options;
  options.strategy = Strategy::kSequential;
  const CdsResult once = compute_cds(net.graph, RuleSet::kND, {}, options);
  // Re-applying the rules to the already-reduced set must change nothing
  // (the sequential sweep runs to a fixpoint).
  const PriorityKey key(KeyKind::kDegreeId, net.graph);
  RuleConfig config;
  config.strategy = Strategy::kSequential;
  DynBitset again = once.gateways;
  apply_rules(net.graph, key, config, again);
  EXPECT_EQ(again, once.gateways);
}

TEST_P(CdsPropertyTest, GatewaysDominateEveryNonGatewayNeighbor) {
  // Redundant with check_cds but phrased from the host's perspective: every
  // non-gateway host must see at least one gateway among its neighbors
  // (connected components of size >= 2 only).
  const auto [n, seed] = GetParam();
  const RandomNet net = make_random_net(n, seed);
  const CdsResult r = compute_cds(net.graph, RuleSet::kID);
  const auto comp = net.graph.components();
  std::vector<int> comp_size(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    ++comp_size[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])];
  }
  for (NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    if (r.gateways.test(static_cast<std::size_t>(v))) continue;
    if (comp_size[static_cast<std::size_t>(
            comp[static_cast<std::size_t>(v)])] < 2) {
      continue;
    }
    // Complete components legitimately have no gateways.
    bool has_gateway_neighbor = false;
    bool any_marked_in_comp = false;
    for (NodeId u = 0; u < net.graph.num_nodes(); ++u) {
      if (comp[static_cast<std::size_t>(u)] ==
              comp[static_cast<std::size_t>(v)] &&
          r.gateways.test(static_cast<std::size_t>(u))) {
        any_marked_in_comp = true;
      }
    }
    if (!any_marked_in_comp) continue;
    for (const NodeId u : net.graph.neighbors(v)) {
      if (r.gateways.test(static_cast<std::size_t>(u))) {
        has_gateway_neighbor = true;
        break;
      }
    }
    EXPECT_TRUE(has_gateway_neighbor) << "host " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, CdsPropertyTest,
    ::testing::Combine(::testing::Values(5, 10, 20, 35, 50, 75),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)),
    [](const ::testing::TestParamInfo<CdsPropertyTest::ParamType>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---- Simultaneous-strategy violation budget --------------------------------

TEST(SimultaneousSafetyTest, PublishedRulesViolateUnderSynchronousCommit) {
  // Regression-documenting test: the rules *as published*, committed
  // synchronously, are NOT safe — simultaneous removals can rely on each
  // other as cover (the gap Dai & Wu 2004 closed with a priority guard on
  // every case). We measured roughly 30% of dense random instances
  // affected, which is exactly why kSequential is this library's default.
  // This test pins both facts: violations exist (the flaw is real and our
  // simultaneous mode faithfully reproduces it), and the rate stays in a
  // plausible band (a jump to ~100% or a drop to 0 would mean the
  // implementation's semantics changed).
  std::size_t cases = 0;
  std::size_t violations = 0;
  CdsOptions simultaneous;
  simultaneous.strategy = Strategy::kSimultaneous;
  for (const int n : {10, 20, 35, 50}) {
    for (std::uint64_t seed = 100; seed < 150; ++seed) {
      const RandomNet net = make_random_net(n, seed);
      for (const RuleSet rs : kAllRuleSets) {
        const CdsResult r =
            compute_cds(net.graph, rs, net.energy, simultaneous);
        ++cases;
        if (!check_cds(net.graph, r.gateways).ok()) ++violations;
      }
    }
  }
  const double rate =
      static_cast<double>(violations) / static_cast<double>(cases);
  EXPECT_GT(violations, 0u) << "simultaneous semantics unexpectedly safe";
  EXPECT_LT(rate, 0.6) << violations << " violations in " << cases;
}

TEST(SimultaneousSafetyTest, DefaultOptionsAreSafe) {
  // The out-of-the-box configuration must never hand back a broken CDS.
  for (const int n : {10, 20, 35, 50}) {
    for (std::uint64_t seed = 200; seed < 215; ++seed) {
      const RandomNet net = make_random_net(n, seed);
      for (const RuleSet rs : kAllRuleSets) {
        const CdsResult r = compute_cds(net.graph, rs, net.energy);
        const CdsCheck check = check_cds(net.graph, r.gateways);
        EXPECT_TRUE(check.ok())
            << to_string(rs) << " n=" << n << " seed=" << seed << ": "
            << check.message;
      }
    }
  }
}

}  // namespace
}  // namespace pacds
