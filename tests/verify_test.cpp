// Tests for the CDS validity checkers: domination, induced connectivity,
// clique exemption, removal safety, Property 3, and distance stretch.

#include "core/verify.hpp"

#include <gtest/gtest.h>

#include "core/marking.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::figure1_graph;
using testing::path_graph;
using testing::star_graph;

DynBitset set_of(std::size_t n, std::initializer_list<std::size_t> bits) {
  DynBitset s(n);
  for (const auto b : bits) s.set(b);
  return s;
}

TEST(CheckCdsTest, ValidSetPasses) {
  const Graph g = path_graph(5);
  const CdsCheck check = check_cds(g, set_of(5, {1, 2, 3}));
  EXPECT_TRUE(check.ok());
  EXPECT_TRUE(check.message.empty());
}

TEST(CheckCdsTest, NonDominatingFails) {
  const Graph g = path_graph(5);
  const CdsCheck check = check_cds(g, set_of(5, {1}));
  EXPECT_FALSE(check.dominating);
  EXPECT_FALSE(check.ok());
  EXPECT_NE(check.message.find("not dominated"), std::string::npos);
}

TEST(CheckCdsTest, DisconnectedSetFails) {
  // 1 and 3 dominate P5 but are not adjacent.
  const Graph g = path_graph(5);
  const CdsCheck check = check_cds(g, set_of(5, {1, 3}));
  EXPECT_TRUE(check.dominating);
  EXPECT_FALSE(check.induced_connected);
  EXPECT_FALSE(check.ok());
}

TEST(CheckCdsTest, SizeMismatchFails) {
  const Graph g = path_graph(3);
  EXPECT_FALSE(check_cds(g, DynBitset(2)).ok());
}

TEST(CheckCdsTest, CompleteComponentExemptByDefault) {
  const Graph g = complete_graph(4);
  EXPECT_TRUE(check_cds(g, DynBitset(4)).ok());
  EXPECT_FALSE(check_cds(g, DynBitset(4), false).ok());
}

TEST(CheckCdsTest, SingletonExempt) {
  const Graph g(1);
  EXPECT_TRUE(check_cds(g, DynBitset(1)).ok());
}

TEST(CheckCdsTest, NonCompleteComponentWithoutGatewayFails) {
  const Graph g = path_graph(3);
  EXPECT_FALSE(check_cds(g, DynBitset(3)).ok());
}

TEST(CheckCdsTest, MultiComponentMixed) {
  // Component A: path 0-1-2 with gateway 1; component B: triangle 3-4-5
  // with no gateway (exempt clique).
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  EXPECT_TRUE(check_cds(g, set_of(6, {1})).ok());
  // But a path component without a gateway still fails.
  EXPECT_FALSE(check_cds(g, set_of(6, {4})).ok());
}

TEST(CheckCdsTest, ConnectivityIsPerComponent) {
  // Two disjoint paths, each with its own gateway set: valid even though
  // the union is "disconnected" globally.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  EXPECT_TRUE(check_cds(g, set_of(6, {1, 4})).ok());
}

TEST(RemovalSafetyTest, SafeAndUnsafe) {
  const Graph g = path_graph(5);
  const DynBitset cds = set_of(5, {1, 2, 3});
  // Removing 2 disconnects {1,3}; removing 1 leaves node 0 undominated.
  EXPECT_FALSE(removal_is_safe(g, cds, 2));
  EXPECT_FALSE(removal_is_safe(g, cds, 1));
  // A star: any leaf in the set is redundant.
  const Graph star = star_graph(4);
  const DynBitset star_cds = set_of(5, {0, 1});
  EXPECT_TRUE(removal_is_safe(star, star_cds, 1));
  EXPECT_FALSE(removal_is_safe(star, star_cds, 0));
}

TEST(RemovalSafetyTest, RemovingNonMemberIsSafe) {
  const Graph g = path_graph(3);
  EXPECT_TRUE(removal_is_safe(g, set_of(3, {1}), 0));
}

TEST(RemovalSafetyTest, LastGatewayOfMultiNodeComponentUnsafe) {
  const Graph g = path_graph(3);
  EXPECT_FALSE(removal_is_safe(g, set_of(3, {1}), 1));
}

TEST(RemovalSafetyTest, LastGatewayOfSingletonSafe) {
  const Graph g(1);
  EXPECT_TRUE(removal_is_safe(g, set_of(1, {0}), 0));
}

TEST(Property3Test, MarkingOutputsHold) {
  for (const Graph& g : {figure1_graph(), path_graph(7), cycle_graph(8),
                         star_graph(5)}) {
    EXPECT_TRUE(property3_holds(g, marking_process(g)));
  }
}

TEST(Property3Test, TooSmallGatewaySetFails) {
  // C6 with only half the nodes as gateways: opposite pairs lose their
  // shortest paths.
  const Graph g = cycle_graph(6);
  EXPECT_FALSE(property3_holds(g, set_of(6, {0, 1, 2})));
}

TEST(StretchTest, FullGatewaySetHasStretchOne) {
  const Graph g = cycle_graph(7);
  DynBitset all(7);
  all.set_all();
  EXPECT_DOUBLE_EQ(average_distance_stretch(g, all), 1.0);
}

TEST(StretchTest, MarkingOutputHasStretchOne) {
  const Graph g = figure1_graph();
  EXPECT_DOUBLE_EQ(average_distance_stretch(g, marking_process(g)), 1.0);
}

TEST(StretchTest, ReducedSetStretches) {
  // C6 with gateways {0,1,2,3} (a valid CDS): the 3-5 pair (true distance 2
  // via node 4) must route 3-2-1-0-5 (4 hops) -> stretch 2.
  const Graph g = cycle_graph(6);
  std::size_t unreachable = 0;
  const double stretch = average_distance_stretch(g, set_of(6, {0, 1, 2, 3}),
                                                  0.0, &unreachable);
  EXPECT_GT(stretch, 1.0);
  EXPECT_EQ(unreachable, 0u);
}

TEST(StretchTest, UnreachableCounted) {
  // Path 0-1-2 with no gateways: pair (0,2) cannot route.
  const Graph g = path_graph(3);
  std::size_t unreachable = 0;
  const double stretch =
      average_distance_stretch(g, DynBitset(3), 0.0, &unreachable);
  EXPECT_EQ(unreachable, 1u);
  // Adjacent pairs still average to 1.0.
  EXPECT_DOUBLE_EQ(stretch, 1.0);
}

TEST(StretchTest, UnreachablePenaltyApplied) {
  const Graph g = path_graph(3);
  const double stretch = average_distance_stretch(g, DynBitset(3), 10.0);
  // Pairs: (0,1)=1, (1,2)=1, (0,2)=penalty 10 -> mean 4.
  EXPECT_DOUBLE_EQ(stretch, 4.0);
}

}  // namespace
}  // namespace pacds
