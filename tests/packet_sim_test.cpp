// Tests for the discrete-event packet simulator.

#include "des/packet_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pacds::des {
namespace {

PacketSimConfig small_config() {
  PacketSimConfig config;
  config.n_hosts = 25;
  config.sim_time = 120.0;
  return config;
}

TEST(PacketSimTest, Deterministic) {
  const PacketSimResult a = run_packet_sim(small_config(), 11);
  const PacketSimResult b = run_packet_sim(small_config(), 11);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.latency.mean, b.latency.mean);
  EXPECT_DOUBLE_EQ(a.max_queue, b.max_queue);
}

TEST(PacketSimTest, AccountingBalances) {
  const PacketSimResult r = run_packet_sim(small_config(), 12);
  EXPECT_EQ(r.injected, r.delivered + r.drops.total());
  EXPECT_GT(r.injected, 0u);
  EXPECT_GT(r.delivered, 0u);
}

TEST(PacketSimTest, DeliversMostTrafficAtLowLoad) {
  PacketSimConfig config = small_config();
  config.injection_gap = 4.0;  // very light load
  const PacketSimResult r = run_packet_sim(config, 13);
  EXPECT_GT(r.delivery_ratio(), 0.7);
  EXPECT_GE(r.latency.mean, config.tx_time);  // at least one hop of service
  EXPECT_GE(r.hops.mean, 1.0);
}

TEST(PacketSimTest, LatencyGrowsWithLoad) {
  PacketSimConfig light = small_config();
  light.injection_gap = 4.0;
  PacketSimConfig heavy = small_config();
  heavy.injection_gap = 0.2;
  const PacketSimResult a = run_packet_sim(light, 14);
  const PacketSimResult b = run_packet_sim(heavy, 14);
  EXPECT_GT(b.latency.mean, a.latency.mean);
  EXPECT_GE(b.max_queue, a.max_queue);
}

TEST(PacketSimTest, TinyQueuesDropMore) {
  PacketSimConfig roomy = small_config();
  roomy.injection_gap = 0.2;
  roomy.queue_capacity = 64;
  PacketSimConfig cramped = roomy;
  cramped.queue_capacity = 1;
  const PacketSimResult a = run_packet_sim(roomy, 15);
  const PacketSimResult b = run_packet_sim(cramped, 15);
  EXPECT_GT(b.drops.queue_full, a.drops.queue_full);
}

TEST(PacketSimTest, FrozenNetworkNeverBreaksRoutes) {
  PacketSimConfig config = small_config();
  config.stay_probability = 1.0;  // nobody moves
  const PacketSimResult r = run_packet_sim(config, 16);
  EXPECT_EQ(r.drops.route_break, 0u);
  EXPECT_EQ(r.drops.no_route, 0u);  // started connected, stays connected
}

TEST(PacketSimTest, MobilityCausesBreakage) {
  PacketSimConfig config = small_config();
  config.sim_time = 300.0;
  config.update_interval = 10.0;
  const PacketSimResult r = run_packet_sim(config, 17);
  // Some breakage or routing failure is expected over 30 refreshes.
  EXPECT_GT(r.drops.route_break + r.drops.no_route, 0u);
}

TEST(PacketSimTest, AllSchemesRun) {
  for (const RuleSet rs : kAllRuleSets) {
    PacketSimConfig config = small_config();
    config.sim_time = 60.0;
    config.rule_set = rs;
    const PacketSimResult r = run_packet_sim(config, 18);
    EXPECT_GT(r.delivered, 0u) << to_string(rs);
    EXPECT_GT(r.avg_gateways, 0.0) << to_string(rs);
  }
}

TEST(PacketSimTest, BadConfigThrows) {
  PacketSimConfig config = small_config();
  config.n_hosts = 1;
  EXPECT_THROW((void)run_packet_sim(config, 1), std::invalid_argument);
  config = small_config();
  config.injection_gap = 0.0;
  EXPECT_THROW((void)run_packet_sim(config, 1), std::invalid_argument);
  config = small_config();
  config.sim_time = -1.0;
  EXPECT_THROW((void)run_packet_sim(config, 1), std::invalid_argument);
}

TEST(PacketSimTest, LossyRadioDropsAndRetransmits) {
  PacketSimConfig reliable = small_config();
  PacketSimConfig lossy = small_config();
  lossy.loss_probability = 0.3;
  lossy.max_retries = 1;
  const PacketSimResult a = run_packet_sim(reliable, 21);
  const PacketSimResult b = run_packet_sim(lossy, 21);
  EXPECT_EQ(a.drops.loss, 0u);
  EXPECT_GT(b.drops.loss, 0u);
  EXPECT_LT(b.delivery_ratio(), a.delivery_ratio());
  EXPECT_EQ(b.injected, b.delivered + b.drops.total());
}

TEST(PacketSimTest, RetriesRecoverFromModerateLoss) {
  PacketSimConfig fragile = small_config();
  fragile.loss_probability = 0.2;
  fragile.max_retries = 0;
  PacketSimConfig persistent = fragile;
  persistent.max_retries = 6;
  const PacketSimResult a = run_packet_sim(fragile, 22);
  const PacketSimResult b = run_packet_sim(persistent, 22);
  EXPECT_GT(b.delivery_ratio(), a.delivery_ratio());
  EXPECT_LT(b.drops.loss, a.drops.loss);
}

TEST(PacketSimTest, TtlCapsPathLength) {
  PacketSimConfig config = small_config();
  config.max_hops = 1;  // nothing beyond one hop survives
  const PacketSimResult r = run_packet_sim(config, 19);
  EXPECT_GT(r.drops.ttl, 0u);
  // Delivered packets are exactly the single-hop ones.
  if (r.delivered > 0) EXPECT_DOUBLE_EQ(r.hops.max, 1.0);
}

}  // namespace
}  // namespace pacds::des
