// Tests for the Welford accumulator and Summary snapshots.

#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pacds {
namespace {

TEST(StatsTest, EmptyAccumulator) {
  const Welford acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci95_half_width(), 0.0);
}

TEST(StatsTest, SingleSample) {
  Welford acc;
  acc.add(7.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 7.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 7.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
}

TEST(StatsTest, KnownMeanAndVariance) {
  Welford acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(StatsTest, StderrAndCi) {
  Welford acc;
  for (int i = 0; i < 100; ++i) acc.add(static_cast<double>(i % 2));
  const double se = acc.stddev() / 10.0;
  EXPECT_NEAR(acc.stderr_mean(), se, 1e-12);
  EXPECT_NEAR(acc.ci95_half_width(), 1.96 * se, 1e-12);
}

TEST(StatsTest, MergeMatchesSequential) {
  Welford all;
  Welford left;
  Welford right;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i * i % 17);
    all.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StatsTest, MergeWithEmpty) {
  Welford acc;
  acc.add(3.0);
  Welford empty;
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  empty.merge(acc);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(StatsTest, NumericalStabilityLargeOffset) {
  // Classic catastrophic-cancellation case: huge mean, small variance.
  Welford acc;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.add(x);
  EXPECT_NEAR(acc.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(StatsTest, EmptySummaryContractIsAllZero) {
  // Summary::of an untouched accumulator must equal the value-initialized
  // Summary: every field exactly 0.0 / 0, nothing NaN (stats.hpp pins this
  // so zero-trial runs serialize finite numbers).
  const Summary s = Summary::of(Welford{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_FALSE(std::isnan(s.mean));
  EXPECT_FALSE(std::isnan(s.stddev));
}

TEST(StatsTest, MergeEmptyIntoEmptyStaysEmpty) {
  Welford a;
  const Welford b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  // Still behaves like a fresh accumulator afterwards.
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(StatsTest, MergeWithEmptyPreservesMinMax) {
  // min()/max() sit at the 0.0 sentinel while empty; merging an empty
  // operand must not drag a positive-only distribution's min to 0 (or a
  // negative-only one's max).
  Welford acc;
  acc.add(4.0);
  acc.add(9.0);
  acc.merge(Welford{});
  EXPECT_DOUBLE_EQ(acc.min(), 4.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);

  Welford neg;
  neg.add(-4.0);
  Welford empty;
  empty.merge(neg);
  EXPECT_DOUBLE_EQ(empty.max(), -4.0);
  EXPECT_DOUBLE_EQ(empty.min(), -4.0);
}

TEST(StatsTest, SummarySnapshot) {
  Welford acc;
  acc.add(1.0);
  acc.add(3.0);
  const Summary s = Summary::of(acc);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_GT(s.ci95, 0.0);
}

}  // namespace
}  // namespace pacds
