// Tests for scenario (de)serialization.

#include "io/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

namespace pacds {
namespace {

Scenario sample() {
  Scenario s;
  s.radius = 25.0;
  s.positions = {{1.5, 2.5}, {10.0, 20.0}, {30.0, 40.0}};
  s.energies = {100.0, 87.5, 100.0};
  return s;
}

TEST(ScenarioTest, RoundTrip) {
  const Scenario original = sample();
  const Scenario parsed = scenario_from_string(scenario_to_string(original));
  EXPECT_DOUBLE_EQ(parsed.radius, original.radius);
  ASSERT_EQ(parsed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(parsed.positions[i].x, original.positions[i].x);
    EXPECT_DOUBLE_EQ(parsed.positions[i].y, original.positions[i].y);
    EXPECT_DOUBLE_EQ(parsed.energies[i], original.energies[i]);
  }
}

TEST(ScenarioTest, GraphConstruction) {
  Scenario s = sample();
  const Graph g = s.graph();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));   // distance ~19.5 <= 25
  EXPECT_FALSE(g.has_edge(0, 2));  // distance ~47
}

TEST(ScenarioTest, CommentsSkipped) {
  const Scenario s = scenario_from_string(
      "# header\nradius 10\n# mid\nhosts 1\n\n5 5 50\n# tail\n");
  EXPECT_DOUBLE_EQ(s.radius, 10.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.energies[0], 50.0);
}

TEST(ScenarioTest, EmptyScenario) {
  const Scenario s = scenario_from_string("radius 5\nhosts 0\n");
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.graph().num_nodes(), 0);
}

TEST(ScenarioTest, ParseErrorsCarryLines) {
  EXPECT_THROW((void)scenario_from_string(""), std::runtime_error);
  EXPECT_THROW((void)scenario_from_string("radius -1\nhosts 0\n"),
               std::runtime_error);
  EXPECT_THROW((void)scenario_from_string("radius 5\nhosts 2\n1 1 1\n"),
               std::runtime_error);
  EXPECT_THROW((void)scenario_from_string("radius 5\nhosts 1\n1 1\n"),
               std::runtime_error);
  EXPECT_THROW((void)scenario_from_string("radius 5\nhosts 1\n1 1 1 9\n"),
               std::runtime_error);
  EXPECT_THROW((void)scenario_from_string("bogus 5\nhosts 0\n"),
               std::runtime_error);
  try {
    (void)scenario_from_string("radius 5\nhosts 1\nbad line x\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ScenarioTest, MismatchedSizesRefuseToSerialize) {
  Scenario s = sample();
  s.energies.pop_back();
  EXPECT_THROW((void)scenario_to_string(s), std::invalid_argument);
}

TEST(ScenarioTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pacds_scenario.txt";
  ASSERT_TRUE(save_scenario_file(path, sample()));
  const Scenario loaded = load_scenario_file(path);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.radius, 25.0);
  std::remove(path.c_str());
}

TEST(ScenarioTest, MissingFileThrows) {
  EXPECT_THROW((void)load_scenario_file("/no/such/scenario.txt"),
               std::runtime_error);
}

TEST(ScenarioTest, HighPrecisionSurvives) {
  Scenario s;
  s.radius = 25.000000000000004;
  s.positions = {{0.1 + 0.2, 1.0 / 3.0}};
  s.energies = {99.999999999999986};
  const Scenario parsed = scenario_from_string(scenario_to_string(s));
  EXPECT_DOUBLE_EQ(parsed.positions[0].x, s.positions[0].x);
  EXPECT_DOUBLE_EQ(parsed.positions[0].y, s.positions[0].y);
  EXPECT_DOUBLE_EQ(parsed.energies[0], s.energies[0]);
  EXPECT_DOUBLE_EQ(parsed.radius, s.radius);
}

}  // namespace
}  // namespace pacds
