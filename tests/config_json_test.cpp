// Exhaustive tests for the SimConfig wire format (sim/config_json): every
// field must survive write -> parse -> write losslessly. The suite exists
// because the format once dropped keys silently — `mobility` and
// `mobility_params` were never written, so a Gauss-Markov serve tenant
// quietly simulated paper-jump. The per-field comparison plus the
// sizeof(SimConfig) tripwire below make the next added knob fail loudly
// here instead.

#include "sim/config_json.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "io/json.hpp"
#include "io/json_parse.hpp"

namespace pacds {
namespace {

// See SimConfigSizeIsPinnedToTheWireFormat at the bottom.
constexpr std::size_t kExpectedSimConfigSize = 296;

std::string to_json(const SimConfig& config) {
  std::ostringstream out;
  JsonWriter json(out, 2);
  write_sim_config_json(json, config);
  return out.str();
}

SimConfig from_json(const std::string& text) {
  SimConfig config;
  parse_sim_config_json(parse_json(text), config, "test: ");
  return config;
}

/// EXPECTs equality of every SimConfig member. Update together with the
/// wire format when SimConfig grows.
void expect_config_eq(const SimConfig& a, const SimConfig& b) {
  EXPECT_EQ(a.n_hosts, b.n_hosts);
  EXPECT_EQ(a.field_width, b.field_width);
  EXPECT_EQ(a.field_height, b.field_height);
  EXPECT_EQ(a.field_depth, b.field_depth);
  EXPECT_EQ(a.boundary, b.boundary);
  EXPECT_EQ(a.radius, b.radius);
  EXPECT_EQ(a.link_model, b.link_model);
  EXPECT_EQ(a.radio, b.radio);
  EXPECT_EQ(a.radio_params, b.radio_params);
  EXPECT_EQ(a.initial_energy, b.initial_energy);
  EXPECT_EQ(a.drain_model, b.drain_model);
  EXPECT_EQ(a.drain_params.nongateway_drain, b.drain_params.nongateway_drain);
  EXPECT_EQ(a.drain_params.constant_base, b.drain_params.constant_base);
  EXPECT_EQ(a.drain_params.quadratic_divisor,
            b.drain_params.quadratic_divisor);
  EXPECT_EQ(a.stay_probability, b.stay_probability);
  EXPECT_EQ(a.jump_min, b.jump_min);
  EXPECT_EQ(a.jump_max, b.jump_max);
  EXPECT_EQ(a.mobility_kind, b.mobility_kind);
  EXPECT_EQ(a.mobility_params.stay_probability,
            b.mobility_params.stay_probability);
  EXPECT_EQ(a.mobility_params.jump_min, b.mobility_params.jump_min);
  EXPECT_EQ(a.mobility_params.jump_max, b.mobility_params.jump_max);
  EXPECT_EQ(a.mobility_params.step_min, b.mobility_params.step_min);
  EXPECT_EQ(a.mobility_params.step_max, b.mobility_params.step_max);
  EXPECT_EQ(a.mobility_params.speed_min, b.mobility_params.speed_min);
  EXPECT_EQ(a.mobility_params.speed_max, b.mobility_params.speed_max);
  EXPECT_EQ(a.mobility_params.pause_intervals,
            b.mobility_params.pause_intervals);
  EXPECT_EQ(a.mobility_params.mean_speed, b.mobility_params.mean_speed);
  EXPECT_EQ(a.mobility_params.alpha, b.mobility_params.alpha);
  EXPECT_EQ(a.mobility_params.speed_stddev, b.mobility_params.speed_stddev);
  EXPECT_EQ(a.mobility_params.heading_stddev,
            b.mobility_params.heading_stddev);
  EXPECT_EQ(a.rule_set, b.rule_set);
  EXPECT_EQ(a.cds_options.strategy, b.cds_options.strategy);
  EXPECT_EQ(a.cds_options.clique_policy, b.cds_options.clique_policy);
  EXPECT_EQ(a.custom_key, b.custom_key);
  EXPECT_EQ(a.custom_rule2_form, b.custom_rule2_form);
  EXPECT_EQ(a.use_rule_k, b.use_rule_k);
  EXPECT_EQ(a.energy_key_quantum, b.energy_key_quantum);
  EXPECT_EQ(a.stability_beta, b.stability_beta);
  EXPECT_EQ(a.stability_quantum, b.stability_quantum);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.backbone, b.backbone);
  EXPECT_EQ(a.tiles, b.tiles);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.connect_retries, b.connect_retries);
  EXPECT_EQ(a.max_intervals, b.max_intervals);
}

/// Every member set away from its default (the values are deliberately
/// "ugly" doubles that still print/parse exactly). link_model stays
/// unit-disk because a non-trivial radio requires it; the link-model loop
/// below covers the sparser graphs.
SimConfig non_default_config() {
  SimConfig c;
  c.n_hosts = 17;
  c.field_width = 120.5;
  c.field_height = 80.25;
  c.field_depth = 30.75;
  c.boundary = BoundaryPolicy::kReflect;
  c.radius = 27.5;
  c.link_model = LinkModel::kUnitDisk;
  c.radio = RadioKind::kShadowing;
  c.radio_params.sigma_db = 5.5;
  c.radio_params.path_loss_exp = 2.75;
  c.radio_params.link_prob = 0.65;
  c.radio_params.fading_seed = 123456789;
  c.initial_energy = 42.5;
  c.drain_model = DrainModel::kQuadraticTotal;
  c.drain_params.nongateway_drain = 0.125;
  c.drain_params.constant_base = 2.5;
  c.drain_params.quadratic_divisor = 7.0;
  c.stay_probability = 0.375;
  c.jump_min = 2;
  c.jump_max = 5;
  c.mobility_kind = MobilityKind::kGaussMarkov;
  c.mobility_params.stay_probability = 0.625;
  c.mobility_params.jump_min = 0;
  c.mobility_params.jump_max = 3;
  c.mobility_params.step_min = 0.5;
  c.mobility_params.step_max = 4.5;
  c.mobility_params.speed_min = 1.25;
  c.mobility_params.speed_max = 3.75;
  c.mobility_params.pause_intervals = 2;
  c.mobility_params.mean_speed = 2.25;
  c.mobility_params.alpha = 0.875;
  c.mobility_params.speed_stddev = 1.125;
  c.mobility_params.heading_stddev = 0.6875;
  c.rule_set = RuleSet::kSEL;
  c.cds_options.strategy = Strategy::kVerified;
  c.cds_options.clique_policy = CliquePolicy::kElectMaxKey;
  c.custom_key = KeyKind::kDegreeId;
  c.custom_rule2_form = Rule2Form::kSimple;
  c.use_rule_k = true;
  c.energy_key_quantum = 3.5;
  c.stability_beta = 0.8125;
  c.stability_quantum = 1.25;
  c.engine = SimEngine::kTiled;
  c.backbone = BackboneMode::kCds22;
  c.tiles = 9;
  c.threads = 4;
  c.connect_retries = 77;
  c.max_intervals = 1234;
  return c;
}

TEST(ConfigJsonTest, EveryFieldRoundTripsLossless) {
  const SimConfig original = non_default_config();
  const std::string wire = to_json(original);
  const SimConfig parsed = from_json(wire);
  expect_config_eq(parsed, original);
  // Byte stability: re-serializing the parsed config reproduces the exact
  // document, so nothing is normalized or defaulted along the way.
  EXPECT_EQ(to_json(parsed), wire);
}

TEST(ConfigJsonTest, DefaultsRoundTrip) {
  const SimConfig original;
  const std::string wire = to_json(original);
  const SimConfig parsed = from_json(wire);
  expect_config_eq(parsed, original);
  EXPECT_EQ(to_json(parsed), wire);
}

// The regression this file exists for: a non-default mobility model must
// come back as itself, not as paper-jump. Pins every kind.
TEST(ConfigJsonTest, EveryMobilityKindRoundTrips) {
  for (const MobilityKind kind :
       {MobilityKind::kPaperJump, MobilityKind::kRandomWalk,
        MobilityKind::kRandomWaypoint, MobilityKind::kGaussMarkov,
        MobilityKind::kStatic}) {
    SimConfig c;
    c.mobility_kind = kind;
    c.mobility_params.mean_speed = 4.25;  // must ride along for every kind
    const SimConfig parsed = from_json(to_json(c));
    EXPECT_EQ(parsed.mobility_kind, kind) << to_string(kind);
    EXPECT_EQ(parsed.mobility_params.mean_speed, 4.25) << to_string(kind);
  }
}

TEST(ConfigJsonTest, EveryRadioKindRoundTrips) {
  for (const RadioKind kind : {RadioKind::kUnitDisk, RadioKind::kShadowing,
                               RadioKind::kProbabilistic}) {
    SimConfig c;
    c.radio = kind;
    c.radio_params.fading_seed = 42;
    const SimConfig parsed = from_json(to_json(c));
    EXPECT_EQ(parsed.radio, kind) << to_string(kind);
    EXPECT_EQ(parsed.radio_params.fading_seed, 42u) << to_string(kind);
  }
}

TEST(ConfigJsonTest, EveryLinkModelRoundTrips) {
  for (const LinkModel model :
       {LinkModel::kUnitDisk, LinkModel::kGabriel, LinkModel::kRng}) {
    SimConfig c;
    c.link_model = model;
    EXPECT_EQ(from_json(to_json(c)).link_model, model) << to_string(model);
  }
}

TEST(ConfigJsonTest, EverySchemeRoundTrips) {
  for (const RuleSet rs : {RuleSet::kNR, RuleSet::kID, RuleSet::kND,
                           RuleSet::kEL1, RuleSet::kEL2, RuleSet::kSEL}) {
    SimConfig c;
    c.rule_set = rs;
    EXPECT_EQ(from_json(to_json(c)).rule_set, rs) << to_string(rs);
  }
}

TEST(ConfigJsonTest, CustomKeyRoundTripsIncludingUnset) {
  {
    SimConfig c;  // default: unset, written as JSON null
    EXPECT_FALSE(from_json(to_json(c)).custom_key.has_value());
  }
  for (const KeyKind kind :
       {KeyKind::kId, KeyKind::kDegreeId, KeyKind::kEnergyId,
        KeyKind::kEnergyDegreeId, KeyKind::kStabilityEnergyId}) {
    SimConfig c;
    c.custom_key = kind;
    const SimConfig parsed = from_json(to_json(c));
    ASSERT_TRUE(parsed.custom_key.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed.custom_key, kind) << to_string(kind);
  }
}

// Older corpus entries predate most keys: absent keys keep the caller's
// defaults instead of failing or zeroing.
TEST(ConfigJsonTest, AbsentKeysKeepDefaults) {
  const SimConfig parsed = from_json("{\"n\": 7}");
  SimConfig expected;
  expected.n_hosts = 7;
  expect_config_eq(parsed, expected);
}

TEST(ConfigJsonTest, UnknownKeyFailsLoudly) {
  EXPECT_THROW((void)from_json("{\"mobilty\": \"static\"}"),
               std::runtime_error);
}

TEST(ConfigJsonTest, RadioRequiresUnitDiskLinks) {
  SimConfig c;
  c.radio = RadioKind::kShadowing;
  c.link_model = LinkModel::kGabriel;
  EXPECT_THROW((void)from_json(to_json(c)), std::runtime_error);
}

TEST(ConfigJsonTest, FadingSeedBeyondExactDoubleRangeFails) {
  // 2^53 + 2 is representable as a double but past the exact-integer range.
  EXPECT_THROW(
      (void)from_json(
          "{\"radio_params\": {\"fading_seed\": 9007199254740994}}"),
      std::runtime_error);
}

TEST(ConfigJsonTest, OutOfRangeValuesFail) {
  EXPECT_THROW((void)from_json("{\"stability_beta\": 1.5}"),
               std::runtime_error);
  EXPECT_THROW((void)from_json("{\"field_depth\": -1}"), std::runtime_error);
  EXPECT_THROW(
      (void)from_json("{\"radio_params\": {\"link_prob\": 1.5}}"),
      std::runtime_error);
  EXPECT_THROW(
      (void)from_json(
          "{\"mobility_params\": {\"jump_min\": 4, \"jump_max\": 2}}"),
      std::runtime_error);
}

// Tripwire: if this fails, SimConfig gained (or lost) a member. Extend
// write_sim_config_json, parse_sim_config_json, non_default_config() and
// expect_config_eq() above, then update the expected size.
TEST(ConfigJsonTest, SimConfigSizeIsPinnedToTheWireFormat) {
  EXPECT_EQ(sizeof(SimConfig), kExpectedSimConfigSize)
      << "SimConfig changed shape. Every member must be serialized by "
         "write_sim_config_json, accepted by parse_sim_config_json, and "
         "covered by this suite's non_default_config/expect_config_eq "
         "before bumping this constant.";
}

}  // namespace
}  // namespace pacds
