// Tests for the Monte-Carlo thread pool.

#include "sim/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pacds {
namespace {

TEST(ThreadPoolTest, DefaultHasAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, ExplicitThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPoolTest, SequentialReuse) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
  sum = 0;
  pool.parallel_for(10, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ParallelForSubmitsFarFewerTasksThanIndices) {
  // The chunked path must not take one queue round-trip per index: 100k
  // indices may enqueue at most one helper task per worker.
  ThreadPool pool(4);
  const std::size_t before = pool.tasks_submitted();
  std::atomic<long> counter{0};
  pool.parallel_for(100000, [&counter](std::size_t) {
    counter.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 100000);
  const std::size_t used = pool.tasks_submitted() - before;
  EXPECT_LE(used, pool.thread_count());
  EXPECT_LT(used, 1000u);  // ≪ index count, belt and braces
}

TEST(ThreadPoolTest, RunChunksCoversRangeWithAlignedBoundaries) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 1000;
  constexpr std::size_t kAlign = 64;
  std::vector<std::atomic<int>> hits(kCount);
  std::atomic<bool> misaligned{false};
  std::atomic<bool> bad_lane{false};
  auto body = [&](std::size_t begin, std::size_t end, std::size_t lane) {
    if (begin % kAlign != 0 || (end != kCount && end % kAlign != 0)) {
      misaligned.store(true);
    }
    if (lane >= pool.max_lanes()) bad_lane.store(true);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  };
  pool.run_chunks(kCount, kAlign, body);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_FALSE(misaligned.load());
  EXPECT_FALSE(bad_lane.load());
}

TEST(ThreadPoolTest, RunChunksLanesAreExclusive) {
  // Two chunks running concurrently never share a lane, so plain (non-atomic)
  // per-lane accumulators must come out exact. TSAN builds additionally
  // verify the absence of racing writes here.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 4096;
  std::vector<std::size_t> per_lane(pool.max_lanes(), 0);
  auto body = [&per_lane](std::size_t begin, std::size_t end,
                          std::size_t lane) {
    per_lane[lane] += end - begin;
  };
  pool.run_chunks(kCount, 1, body);
  std::size_t total = 0;
  for (const std::size_t c : per_lane) total += c;
  EXPECT_EQ(total, kCount);
}

TEST(ThreadPoolTest, RunChunksZeroCount) {
  ThreadPool pool(2);
  auto body = [](std::size_t, std::size_t, std::size_t) { FAIL(); };
  pool.run_chunks(0, 64, body);
  SUCCEED();
}

TEST(ThreadPoolTest, SerialExecutorRunsInline) {
  SerialExecutor exec;
  EXPECT_EQ(exec.max_lanes(), 1u);
  std::vector<int> hits(100, 0);
  auto body = [&hits](std::size_t begin, std::size_t end, std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  };
  exec.run_chunks(hits.size(), 8, body);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace pacds
