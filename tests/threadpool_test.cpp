// Tests for the Monte-Carlo thread pool.

#include "sim/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pacds {
namespace {

TEST(ThreadPoolTest, DefaultHasAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, ExplicitThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPoolTest, SequentialReuse) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
  sum = 0;
  pool.parallel_for(10, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace pacds
