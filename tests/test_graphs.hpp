#pragma once
// Shared graph builders for the test suite.

#include <utility>
#include <vector>

#include "core/graph.hpp"

namespace pacds::testing {

inline Graph path_graph(NodeId n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, static_cast<NodeId>(i + 1));
  return g;
}

inline Graph cycle_graph(NodeId n) {
  Graph g = path_graph(n);
  if (n >= 3) g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

inline Graph complete_graph(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

/// K_{1,n}: center 0 connected to 1..leaves.
inline Graph star_graph(NodeId leaves) {
  Graph g(static_cast<NodeId>(leaves + 1));
  for (NodeId i = 1; i <= leaves; ++i) g.add_edge(0, i);
  return g;
}

/// The paper's Figure 1 example: nodes u=0, v=1, w=2, x=3, y=4 with
/// N(u)={v,y}, N(v)={u,w,y}, N(w)={v,x}, N(x)={w}, N(y)={u,v}.
/// The marking process marks exactly v and w.
inline Graph figure1_graph() {
  return Graph::from_edges(5, {{0, 1}, {0, 4}, {1, 2}, {1, 4}, {2, 3}});
}
inline constexpr NodeId kFig1U = 0;
inline constexpr NodeId kFig1V = 1;
inline constexpr NodeId kFig1W = 2;
inline constexpr NodeId kFig1X = 3;
inline constexpr NodeId kFig1Y = 4;

}  // namespace pacds::testing
