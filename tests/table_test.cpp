// Tests for the text-table renderer.

#include "io/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace pacds {
namespace {

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TableTest, ArityEnforced) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_NO_THROW(table.add_row({"1", "2"}));
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.num_columns(), 2u);
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable table({"n", "value"});
  table.add_row({"3", "1.50"});
  table.add_row({"100", "12.25"});
  const std::string out = table.to_string();
  // Header, rule, two data lines.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  EXPECT_NE(line.find("n"), std::string::npos);
  EXPECT_NE(line.find("value"), std::string::npos);
  std::getline(is, line);
  EXPECT_EQ(line.find_first_not_of('-'), std::string::npos);
  std::getline(is, line);
  EXPECT_NE(line.find("3"), std::string::npos);
  std::getline(is, line);
  EXPECT_NE(line.find("100"), std::string::npos);
  EXPECT_FALSE(std::getline(is, line));
}

TEST(TableTest, RightAlignmentDefault) {
  TextTable table({"col"});
  table.add_row({"1"});
  table.add_row({"100"});
  const std::string out = table.to_string();
  // "  1" (right aligned to width 3).
  EXPECT_NE(out.find("  1\n"), std::string::npos);
}

TEST(TableTest, LeftAlignmentOption) {
  TextTable table({"col"});
  table.set_align(0, Align::kLeft);
  table.add_row({"1"});
  table.add_row({"100"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("1  \n"), std::string::npos);
}

TEST(TableTest, SetAlignOutOfRangeThrows) {
  TextTable table({"a"});
  EXPECT_THROW(table.set_align(1, Align::kLeft), std::out_of_range);
}

TEST(TableTest, FmtDouble) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(1.0, 0), "1");
  EXPECT_EQ(TextTable::fmt(-0.5, 1), "-0.5");
}

TEST(TableTest, FmtIntegers) {
  EXPECT_EQ(TextTable::fmt(std::size_t{42}), "42");
  EXPECT_EQ(TextTable::fmt(-7), "-7");
}

TEST(TableTest, PrintToStream) {
  TextTable table({"x"});
  table.add_row({"9"});
  std::ostringstream os;
  table.print(os);
  EXPECT_EQ(os.str(), table.to_string());
}

TEST(TableTest, RowsAccessor) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  ASSERT_EQ(table.rows().size(), 1u);
  EXPECT_EQ(table.rows()[0][1], "2");
}

}  // namespace
}  // namespace pacds
