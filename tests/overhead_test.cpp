// Tests for the maintenance-overhead model.

#include "sim/overhead.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pacds {
namespace {

OverheadConfig base_config() {
  OverheadConfig config;
  config.n_hosts = 30;
  config.intervals = 20;
  return config;
}

TEST(OverheadTest, Deterministic) {
  const MaintenanceOverhead a = measure_maintenance_overhead(base_config(), 4);
  const MaintenanceOverhead b = measure_maintenance_overhead(base_config(), 4);
  EXPECT_EQ(a.neighbor_msgs, b.neighbor_msgs);
  EXPECT_EQ(a.status_msgs, b.status_msgs);
}

TEST(OverheadTest, GlobalBaselineIsTwoNPerInterval) {
  const MaintenanceOverhead r = measure_maintenance_overhead(base_config(), 5);
  EXPECT_EQ(r.global_msgs, 2u * 30u * 20u);
  EXPECT_EQ(r.setup_msgs, 60u);
  EXPECT_EQ(r.intervals, 20u);
}

TEST(OverheadTest, StaticHostsSendNothingAfterSetup) {
  OverheadConfig config = base_config();
  config.mobility_kind = MobilityKind::kStatic;
  const MaintenanceOverhead r = measure_maintenance_overhead(config, 6);
  EXPECT_EQ(r.neighbor_msgs, 0u);
  EXPECT_EQ(r.status_msgs, 0u);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

TEST(OverheadTest, LocalizedBeatsGlobalUnderPaperMobility) {
  const MaintenanceOverhead r = measure_maintenance_overhead(base_config(), 7);
  EXPECT_GT(r.localized_total(), 0u);  // hosts do move
  EXPECT_LT(r.ratio(), 1.0);           // but far fewer messages than flooding
}

TEST(OverheadTest, SlowerMobilityFewerMessages) {
  OverheadConfig config = base_config();
  config.mobility_params.stay_probability = 0.95;  // rarely move
  const MaintenanceOverhead slow = measure_maintenance_overhead(config, 8);
  config.mobility_params.stay_probability = 0.0;  // always move
  const MaintenanceOverhead fast = measure_maintenance_overhead(config, 8);
  EXPECT_LT(slow.localized_total(), fast.localized_total());
}

TEST(OverheadTest, ZeroIntervals) {
  OverheadConfig config = base_config();
  config.intervals = 0;
  const MaintenanceOverhead r = measure_maintenance_overhead(config, 9);
  EXPECT_EQ(r.intervals, 0u);
  EXPECT_EQ(r.localized_total(), 0u);
  EXPECT_EQ(r.global_msgs, 0u);
}

TEST(OverheadTest, BadConfigThrows) {
  OverheadConfig config = base_config();
  config.n_hosts = 0;
  EXPECT_THROW((void)measure_maintenance_overhead(config, 1),
               std::invalid_argument);
  config = base_config();
  config.intervals = -1;
  EXPECT_THROW((void)measure_maintenance_overhead(config, 1),
               std::invalid_argument);
}

TEST(OverheadTest, AllRuleSetsWork) {
  for (const RuleSet rs : kAllRuleSets) {
    OverheadConfig config = base_config();
    config.rule_set = rs;
    config.intervals = 5;
    const MaintenanceOverhead r = measure_maintenance_overhead(config, 10);
    EXPECT_EQ(r.intervals, 5u) << to_string(rs);
  }
}

}  // namespace
}  // namespace pacds
