// Tests for the generic reduction rules: Rule 1 under every key kind,
// the simple and refined Rule 2 case analyses, and the three application
// strategies. Gadget graphs are built so each paper case fires in isolation.

#include "core/rules.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/verify.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::path_graph;

/// Rule 1 gadget: x=0, y=1 non-adjacent; v=2 and u=3 adjacent, both adjacent
/// to x and y; u additionally owns private neighbor z=4.
/// N[v] = {0,1,2,3} ⊆ N[u] = {0,1,2,3,4}; both v and u are marked.
Graph rule1_gadget() {
  return Graph::from_edges(
      5, {{2, 0}, {2, 1}, {2, 3}, {3, 0}, {3, 1}, {3, 4}});
}

/// Twin gadget (paper Fig. 3(b)): v=2, u=3 adjacent with identical closed
/// neighborhoods {0,1,2,3}; x=0, y=1 non-adjacent so both are marked.
Graph twin_gadget() {
  return Graph::from_edges(4, {{2, 0}, {2, 1}, {2, 3}, {3, 0}, {3, 1}});
}

/// Rule 2 gadget: triangle v=0, u=1, w=2; a=3 adjacent to v and u;
/// b=4 adjacent to w only. N(v) ⊆ N(u) ∪ N(w); u also covered; w not
/// (private neighbor b). All of v, u, w are marked.
Graph rule2_gadget() {
  return Graph::from_edges(
      5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {0, 3}, {2, 4}});
}

/// Case-1 gadget: same as rule2_gadget but u=1 also gets a private neighbor
/// (5), so neither u nor w is covered while v=0 still is.
Graph rule2_case1_gadget() {
  Graph g = Graph::from_edges(
      6, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {0, 3}, {2, 4}, {1, 5}});
  return g;
}

/// Case-3 gadget: triangle 0,1,2 plus nodes 3 and 4 adjacent to all of
/// 0,1,2 but not to each other. Marked set = {0,1,2}; each is covered by
/// the other two.
Graph rule2_case3_gadget() {
  return Graph::from_edges(5, {{0, 1},
                               {0, 2},
                               {1, 2},
                               {3, 0},
                               {3, 1},
                               {3, 2},
                               {4, 0},
                               {4, 1},
                               {4, 2}});
}

DynBitset marks_of(const Graph& g) { return marking_process(g); }

// ---- Rule 1 --------------------------------------------------------------

TEST(Rule1Test, GadgetPreconditions) {
  const Graph g = rule1_gadget();
  const DynBitset marked = marks_of(g);
  EXPECT_TRUE(marked.test(2));
  EXPECT_TRUE(marked.test(3));
  EXPECT_TRUE(g.closed_covered_by(2, 3));
  EXPECT_FALSE(g.closed_covered_by(3, 2));
}

TEST(Rule1Test, IdKeyUnmarksCoveredLowerId) {
  const Graph g = rule1_gadget();
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset marked = marks_of(g);
  EXPECT_TRUE(rule1_would_unmark(g, marked, key, 2));
  EXPECT_FALSE(rule1_would_unmark(g, marked, key, 3));
  const DynBitset after = simultaneous_rule1_pass(g, key, marked);
  EXPECT_FALSE(after.test(2));
  EXPECT_TRUE(after.test(3));
  EXPECT_TRUE(check_cds(g, after).ok());
}

TEST(Rule1Test, RequiresCoveringNodeMarked) {
  // If u were unmarked, v must stay. Force it by handing a mark set where
  // only v is marked.
  const Graph g = rule1_gadget();
  const PriorityKey key(KeyKind::kId, g);
  DynBitset only_v(5);
  only_v.set(2);
  EXPECT_FALSE(rule1_would_unmark(g, only_v, key, 2));
}

TEST(Rule1Test, TwinsRemoveExactlyOne) {
  const Graph g = twin_gadget();
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset after = simultaneous_rule1_pass(g, key, marks_of(g));
  EXPECT_FALSE(after.test(2));  // smaller id yields
  EXPECT_TRUE(after.test(3));
  EXPECT_TRUE(check_cds(g, after).ok());
}

TEST(Rule1Test, DegreeKeyIgnoresIdOrder) {
  // v=2 has smaller degree than u=3 but LARGER id in this relabeled gadget:
  // v=4, u=3. Under ND the degree decides; under ID nothing fires for v.
  const Graph g = Graph::from_edges(
      5, {{4, 0}, {4, 1}, {4, 3}, {3, 0}, {3, 1}, {3, 2}});
  const DynBitset marked = marks_of(g);
  ASSERT_TRUE(marked.test(4));
  ASSERT_TRUE(marked.test(3));
  const PriorityKey nd_key(KeyKind::kDegreeId, g);
  const PriorityKey id_key(KeyKind::kId, g);
  EXPECT_TRUE(rule1_would_unmark(g, marked, nd_key, 4));   // nd 3 < nd 4
  EXPECT_FALSE(rule1_would_unmark(g, marked, id_key, 4));  // id 4 > 3
}

TEST(Rule1Test, EnergyKeyDecides) {
  const Graph g = rule1_gadget();
  // v=2 has MORE energy than u=3: v must stay under EL keys.
  std::vector<double> energy{1.0, 1.0, 9.0, 2.0, 1.0};
  const PriorityKey el_key(KeyKind::kEnergyId, g, &energy);
  const DynBitset marked = marks_of(g);
  EXPECT_FALSE(rule1_would_unmark(g, marked, el_key, 2));
  // Flip the energies: now v yields.
  energy[2] = 1.0;
  energy[3] = 9.0;
  EXPECT_TRUE(rule1_would_unmark(g, marked, el_key, 2));
}

TEST(Rule1Test, EnergyTieFallsBackToId) {
  const Graph g = twin_gadget();
  const std::vector<double> energy{1.0, 1.0, 5.0, 5.0};
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  const DynBitset after = simultaneous_rule1_pass(g, key, marks_of(g));
  EXPECT_FALSE(after.test(2));
  EXPECT_TRUE(after.test(3));
}

TEST(Rule1Test, UnmarkedNodeNeverFires) {
  const Graph g = rule1_gadget();
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset marked = marks_of(g);
  EXPECT_FALSE(rule1_would_unmark(g, marked, key, 0));
  EXPECT_FALSE(rule1_would_unmark(g, marked, key, 4));
}

// ---- Rule 2, simple form (paper Rule 2) -----------------------------------

TEST(Rule2SimpleTest, GadgetPreconditions) {
  const Graph g = rule2_gadget();
  const DynBitset marked = marks_of(g);
  EXPECT_TRUE(marked.test(0));
  EXPECT_TRUE(marked.test(1));
  EXPECT_TRUE(marked.test(2));
  EXPECT_TRUE(g.open_covered_by_pair(0, 1, 2));
  EXPECT_TRUE(g.open_covered_by_pair(1, 0, 2));
  EXPECT_FALSE(g.open_covered_by_pair(2, 0, 1));
}

TEST(Rule2SimpleTest, MinIdUnmarks) {
  const Graph g = rule2_gadget();
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset marked = marks_of(g);
  EXPECT_TRUE(rule2_simple_would_unmark(g, marked, key, 0));
  EXPECT_FALSE(rule2_simple_would_unmark(g, marked, key, 1));  // not min id
  EXPECT_FALSE(rule2_simple_would_unmark(g, marked, key, 2));  // not covered
  const DynBitset after =
      simultaneous_rule2_pass(g, key, Rule2Form::kSimple, marked);
  EXPECT_FALSE(after.test(0));
  EXPECT_TRUE(after.test(1));
  EXPECT_TRUE(after.test(2));
  EXPECT_TRUE(check_cds(g, after).ok());
}

TEST(Rule2SimpleTest, NeedsBothNeighborsMarked) {
  const Graph g = rule2_gadget();
  const PriorityKey key(KeyKind::kId, g);
  DynBitset partial(5);
  partial.set(0);
  partial.set(1);  // w=2 not marked
  EXPECT_FALSE(rule2_simple_would_unmark(g, partial, key, 0));
}

TEST(Rule2SimpleTest, PathInteriorNotCovered) {
  // Path interior vertices have no pair of neighbors covering them.
  const Graph g = path_graph(5);
  const PriorityKey key(KeyKind::kId, g);
  const DynBitset marked = marks_of(g);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_FALSE(rule2_simple_would_unmark(g, marked, key, v));
  }
}

// ---- Rule 2, refined form (Rules 2a / 2b / 2b') ---------------------------

TEST(Rule2RefinedTest, Case1UnmarksRegardlessOfKey) {
  const Graph g = rule2_case1_gadget();
  const DynBitset marked = marks_of(g);
  ASSERT_TRUE(marked.test(0));
  ASSERT_TRUE(marked.test(1));
  ASSERT_TRUE(marked.test(2));
  // Give v=0 the HIGHEST energy: the simple form would keep it, case 1 of
  // the refined form removes it anyway because neither competitor is
  // covered.
  const std::vector<double> energy{99.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, key, 0));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 1));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 2));
}

TEST(Rule2RefinedTest, Case2KeyDecidesBetweenCoveredPair) {
  const Graph g = rule2_gadget();  // v=0 and u=1 covered, w=2 not
  const DynBitset marked = marks_of(g);
  const PriorityKey id_key(KeyKind::kId, g);
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, id_key, 0));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, id_key, 1));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, id_key, 2));
  // With energies favoring 0, node 1 yields instead.
  const std::vector<double> energy{9.0, 1.0, 5.0, 5.0, 5.0};
  const PriorityKey el_key(KeyKind::kEnergyId, g, &energy);
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, el_key, 0));
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, el_key, 1));
}

TEST(Rule2RefinedTest, Case2SymmetricInPairOrder) {
  // Relabel rule2_gadget so the covered competitor has the larger id and
  // appears second in ascending pair enumeration; the decision must match.
  // v=2, u=1 (covered), w=0 (private neighbor 4): triangle 0,1,2; 3 adj to
  // 1,2; 4 adj to 0.
  const Graph g = Graph::from_edges(
      5, {{2, 1}, {2, 0}, {1, 0}, {1, 3}, {2, 3}, {0, 4}});
  const DynBitset marked = marks_of(g);
  ASSERT_TRUE(marked.test(0));
  ASSERT_TRUE(marked.test(1));
  ASSERT_TRUE(marked.test(2));
  const PriorityKey key(KeyKind::kId, g);
  // v=1 is the min id of the covered pair {1, 2}; it yields, 2 stays.
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, key, 1));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 2));
}

TEST(Rule2RefinedTest, Case3StrictMinimumYields) {
  const Graph g = rule2_case3_gadget();
  const DynBitset marked = marks_of(g);
  ASSERT_EQ(marked.count(), 3u);
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, key, 0));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 1));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 2));
  const DynBitset after =
      simultaneous_rule2_pass(g, key, Rule2Form::kRefined, marked);
  EXPECT_EQ(after.count(), 2u);
  EXPECT_TRUE(check_cds(g, after).ok());
}

TEST(Rule2RefinedTest, Case3EnergyMinimumYields) {
  const Graph g = rule2_case3_gadget();
  const DynBitset marked = marks_of(g);
  const std::vector<double> energy{5.0, 2.0, 5.0, 5.0, 5.0};
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 0));
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, key, 1));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 2));
}

TEST(Rule2RefinedTest, Case3FullEnergyTieFallsToDegreeThenId) {
  const Graph g = rule2_case3_gadget();
  const DynBitset marked = marks_of(g);
  // All energies equal; degrees of 0,1,2 equal too -> id decides (EL2 chain).
  const std::vector<double> energy(5, 7.0);
  const PriorityKey key(KeyKind::kEnergyDegreeId, g, &energy);
  EXPECT_TRUE(rule2_refined_would_unmark(g, marked, key, 0));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 1));
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 2));
}

// ---- Strategies and pipelines ---------------------------------------------

RuleConfig config_with(Strategy strategy,
                       Rule2Form form = Rule2Form::kRefined) {
  RuleConfig config;
  config.strategy = strategy;
  config.rule2_form = form;
  return config;
}

TEST(StrategyTest, SimultaneousAppliesRule1ThenRule2) {
  const Graph g = rule1_gadget();
  const PriorityKey key(KeyKind::kId, g);
  DynBitset marked = marks_of(g);
  apply_rules(g, key, config_with(Strategy::kSimultaneous), marked);
  EXPECT_FALSE(marked.test(2));
  EXPECT_TRUE(marked.test(3));
  EXPECT_TRUE(check_cds(g, marked).ok());
}

TEST(StrategyTest, Rule2SeesPostRule1Marks) {
  // In rule1_gadget, after Rule 1 removes v=2, node u=3 has only one marked
  // neighbor left — Rule 2 must not fire using the stale pre-Rule-1 marks.
  const Graph g = rule1_gadget();
  const PriorityKey key(KeyKind::kId, g);
  DynBitset marked = marks_of(g);
  apply_rules(g, key, config_with(Strategy::kSimultaneous), marked);
  EXPECT_EQ(marked.count(), 1u);
}

TEST(StrategyTest, DisableRule1) {
  const Graph g = rule1_gadget();
  const PriorityKey key(KeyKind::kId, g);
  RuleConfig config = config_with(Strategy::kSimultaneous);
  config.use_rule1 = false;
  DynBitset marked = marks_of(g);
  const DynBitset before = marked;
  apply_rules(g, key, config, marked);
  // Rule 2 alone cannot fire here (v has only one marked neighbor).
  EXPECT_EQ(marked, before);
}

TEST(StrategyTest, DisableRule2) {
  const Graph g = rule2_gadget();
  const PriorityKey key(KeyKind::kId, g);
  RuleConfig config = config_with(Strategy::kSimultaneous);
  config.use_rule2 = false;
  DynBitset marked = marks_of(g);
  apply_rules(g, key, config, marked);
  // Rule 1 alone fires only for the twin pair 0/1 (N[0] = N[1] = {0,1,2,3});
  // with Rule 2 disabled the covered triple stays otherwise intact.
  EXPECT_FALSE(marked.test(0));
  EXPECT_TRUE(marked.test(1));
  EXPECT_TRUE(marked.test(2));
  EXPECT_EQ(marked.count(), 2u);
}

TEST(StrategyTest, SequentialNeverLargerThanSimultaneous) {
  for (const Graph& g : {rule1_gadget(), rule2_gadget(), rule2_case1_gadget(),
                         rule2_case3_gadget(), twin_gadget()}) {
    const PriorityKey key(KeyKind::kId, g);
    DynBitset sim = marks_of(g);
    apply_rules(g, key, config_with(Strategy::kSimultaneous), sim);
    DynBitset seq = marks_of(g);
    apply_rules(g, key, config_with(Strategy::kSequential), seq);
    EXPECT_LE(seq.count(), sim.count());
    EXPECT_TRUE(check_cds(g, seq).ok());
  }
}

TEST(StrategyTest, VerifiedAlwaysValid) {
  for (const Graph& g : {rule1_gadget(), rule2_gadget(), rule2_case1_gadget(),
                         rule2_case3_gadget(), twin_gadget()}) {
    const PriorityKey key(KeyKind::kId, g);
    DynBitset marked = marks_of(g);
    apply_rules(g, key, config_with(Strategy::kVerified), marked);
    const CdsCheck check = check_cds(g, marked);
    EXPECT_TRUE(check.ok()) << check.message;
  }
}

TEST(StrategyTest, CompleteGraphNothingToDo) {
  const Graph g = complete_graph(5);
  const PriorityKey key(KeyKind::kId, g);
  DynBitset marked = marks_of(g);
  apply_rules(g, key, config_with(Strategy::kSimultaneous), marked);
  EXPECT_TRUE(marked.none());
}

TEST(StrategyTest, ToStringCoverage) {
  EXPECT_EQ(to_string(Rule2Form::kSimple), "simple");
  EXPECT_EQ(to_string(Rule2Form::kRefined), "refined");
  EXPECT_EQ(to_string(Strategy::kSimultaneous), "simultaneous");
  EXPECT_EQ(to_string(Strategy::kSequential), "sequential");
  EXPECT_EQ(to_string(Strategy::kVerified), "verified");
}

}  // namespace
}  // namespace pacds
