// Unit tests for PriorityKey: each key kind's lexicographic order, tie
// breaking, and the strict-total-order guarantees the rules rely on.

#include "core/keys.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::path_graph;
using testing::star_graph;

TEST(KeysTest, ToString) {
  EXPECT_EQ(to_string(KeyKind::kId), "ID");
  EXPECT_EQ(to_string(KeyKind::kDegreeId), "ND");
  EXPECT_EQ(to_string(KeyKind::kEnergyId), "EL1");
  EXPECT_EQ(to_string(KeyKind::kEnergyDegreeId), "EL2");
}

TEST(KeysTest, IdKeyOrdersById) {
  const Graph g = path_graph(4);
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_TRUE(key.less(0, 1));
  EXPECT_FALSE(key.less(1, 0));
  EXPECT_FALSE(key.less(2, 2));
}

TEST(KeysTest, DegreeKeyPrefersLowerDegree) {
  // Star: center 0 has degree 3, leaves degree 1.
  const Graph g = star_graph(3);
  const PriorityKey key(KeyKind::kDegreeId, g);
  EXPECT_TRUE(key.less(1, 0));   // leaf < center
  EXPECT_FALSE(key.less(0, 1));
  // Equal degrees fall back to id.
  EXPECT_TRUE(key.less(1, 2));
  EXPECT_FALSE(key.less(2, 1));
}

TEST(KeysTest, EnergyKeyPrefersLowerEnergy) {
  const Graph g = path_graph(3);
  const std::vector<double> energy{5.0, 1.0, 5.0};
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  EXPECT_TRUE(key.less(1, 0));
  EXPECT_FALSE(key.less(0, 1));
  // Tie in energy -> id decides.
  EXPECT_TRUE(key.less(0, 2));
  EXPECT_FALSE(key.less(2, 0));
}

TEST(KeysTest, EnergyDegreeKeyFullChain) {
  // Path 0-1-2-3: degrees 1,2,2,1.
  const Graph g = path_graph(4);
  const std::vector<double> energy{2.0, 2.0, 2.0, 9.0};
  const PriorityKey key(KeyKind::kEnergyDegreeId, g, &energy);
  // 0 (deg 1) beats 1 (deg 2) at equal energy.
  EXPECT_TRUE(key.less(0, 1));
  // 1 vs 2: equal energy, equal degree -> id.
  EXPECT_TRUE(key.less(1, 2));
  // Energy dominates degree: 1 (el 2, deg 2) < 3 (el 9, deg 1).
  EXPECT_TRUE(key.less(1, 3));
  EXPECT_FALSE(key.less(3, 1));
}

TEST(KeysTest, EnergyKindWithoutEnergyThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW(PriorityKey(KeyKind::kEnergyId, g), std::invalid_argument);
  const std::vector<double> short_energy{1.0};
  EXPECT_THROW(PriorityKey(KeyKind::kEnergyId, g, &short_energy),
               std::invalid_argument);
}

TEST(KeysTest, NonEnergyKindIgnoresEnergyVector) {
  const Graph g = path_graph(3);
  EXPECT_NO_THROW(PriorityKey(KeyKind::kId, g));
  EXPECT_NO_THROW(PriorityKey(KeyKind::kDegreeId, g));
}

TEST(KeysTest, StrictTotalOrder) {
  // For every pair exactly one of less(a,b), less(b,a), a==b holds.
  const Graph g = star_graph(4);
  const std::vector<double> energy{3.0, 1.0, 1.0, 2.0, 3.0};
  for (const KeyKind kind : {KeyKind::kId, KeyKind::kDegreeId,
                             KeyKind::kEnergyId, KeyKind::kEnergyDegreeId}) {
    const PriorityKey key(kind, g, &energy);
    for (NodeId a = 0; a < 5; ++a) {
      for (NodeId b = 0; b < 5; ++b) {
        if (a == b) {
          EXPECT_FALSE(key.less(a, b)) << to_string(kind);
        } else {
          EXPECT_NE(key.less(a, b), key.less(b, a))
              << to_string(kind) << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

TEST(KeysTest, IsMinOfThree) {
  const Graph g = path_graph(5);
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_TRUE(key.is_min_of_three(0, 1, 2));
  EXPECT_FALSE(key.is_min_of_three(1, 0, 2));
  EXPECT_FALSE(key.is_min_of_three(2, 0, 1));
}

TEST(KeysTest, AscendingOrderById) {
  const Graph g = path_graph(4);
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_EQ(key.ascending_order(), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(KeysTest, AscendingOrderByEnergy) {
  const Graph g = path_graph(4);
  const std::vector<double> energy{4.0, 3.0, 2.0, 1.0};
  const PriorityKey key(KeyKind::kEnergyId, g, &energy);
  EXPECT_EQ(key.ascending_order(), (std::vector<NodeId>{3, 2, 1, 0}));
}

TEST(KeysTest, DegreeOrderReadsLiveGraph) {
  // Keys reference the graph; mutating the graph changes degree keys.
  Graph g = path_graph(3);  // degrees 1,2,1
  const PriorityKey key(KeyKind::kDegreeId, g);
  EXPECT_TRUE(key.less(0, 1));
  g.add_edge(0, 2);  // now all degree 2
  EXPECT_TRUE(key.less(0, 1));  // id tie-break
  EXPECT_FALSE(key.less(1, 0));
}

}  // namespace
}  // namespace pacds
