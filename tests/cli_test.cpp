// End-to-end tests of the pacds CLI subcommands, driven in-process.

#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/json_parse.hpp"

namespace pacds::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run_cli(const std::vector<std::string>& tokens) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(tokens, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliTest, NoArgsShowsUsage) {
  const CliRun r = run_cli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage: pacds"), std::string::npos);
}

TEST(CliTest, HelpIsSuccess) {
  const CliRun r = run_cli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("commands:"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  const CliRun r = run_cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, CdsOnRandomNetwork) {
  const CliRun r = run_cli({"cds", "--random", "25", "--seed", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("valid CDS: yes"), std::string::npos);
  EXPECT_NE(r.out.find("gateways:"), std::string::npos);
}

TEST(CliTest, CdsAllSchemes) {
  for (const char* scheme : {"NR", "ID", "ND", "EL1", "EL2", "RULEK"}) {
    const CliRun r =
        run_cli({"cds", "--random", "20", "--seed", "5", "--scheme", scheme});
    EXPECT_EQ(r.code, 0) << scheme << ": " << r.err;
    EXPECT_NE(r.out.find("valid CDS: yes"), std::string::npos) << scheme;
  }
}

TEST(CliTest, CdsUnknownSchemeFails) {
  const CliRun r = run_cli({"cds", "--scheme", "XYZ"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown scheme"), std::string::npos);
}

TEST(CliTest, CdsDotOutput) {
  const CliRun r = run_cli({"cds", "--random", "10", "--seed", "7", "--dot"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("graph pacds {"), std::string::npos);
  EXPECT_NE(r.out.find("--"), std::string::npos);
}

TEST(CliTest, CdsJsonOutput) {
  const CliRun r = run_cli({"cds", "--random", "12", "--seed", "9", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_NE(r.out.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(r.out.find("\"gateways\":["), std::string::npos);
  EXPECT_NE(r.out.find("\"scheme\":\"ID\""), std::string::npos);
}

TEST(CliTest, CdsHelp) {
  const CliRun r = run_cli({"cds", "--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("--scheme"), std::string::npos);
}

TEST(CliTest, CdsFromFile) {
  const std::string path = ::testing::TempDir() + "/pacds_cli_graph.txt";
  {
    std::ofstream file(path);
    file << "5 5\n0 1\n1 2\n2 3\n3 4\n4 0\n";  // C5
  }
  const CliRun r = run_cli({"cds", "--input", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("hosts:     5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, CdsMissingFileFails) {
  const CliRun r = run_cli({"cds", "--input", "/no/such/file.txt"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, InfoReportsStructure) {
  const CliRun r = run_cli({"info", "--random", "30", "--seed", "11"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("hosts:        30"), std::string::npos);
  EXPECT_NE(r.out.find("connected:    yes"), std::string::npos);
  EXPECT_NE(r.out.find("cut vertices:"), std::string::npos);
  EXPECT_NE(r.out.find("diameter:"), std::string::npos);
}

TEST(CliTest, InfoOnFileGraph) {
  const std::string path = ::testing::TempDir() + "/pacds_cli_info.txt";
  {
    std::ofstream file(path);
    file << "4 3\n0 1\n1 2\n2 3\n";  // P4: cuts at 1 and 2
  }
  const CliRun r = run_cli({"info", "--input", path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("cut vertices: 2"), std::string::npos);
  EXPECT_NE(r.out.find("bridges:      3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, RouteDeliversOnConnectedNetwork) {
  const CliRun r = run_cli({"route", "--random", "25", "--seed", "13",
                            "--src", "0", "--dst", "20"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("route 0 -> 20"), std::string::npos);
  EXPECT_NE(r.out.find("hops"), std::string::npos);
}

TEST(CliTest, RouteRejectsBadHostIds) {
  const CliRun r = run_cli({"route", "--random", "10", "--src", "0",
                            "--dst", "99"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("out of range"), std::string::npos);
}

TEST(CliTest, SimRunsAllSchemes) {
  const CliRun r = run_cli({"sim", "--n", "15", "--trials", "3",
                            "--model", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("EL1"), std::string::npos);
  EXPECT_NE(r.out.find("lifetime"), std::string::npos);
}

TEST(CliTest, SimSingleScheme) {
  const CliRun r = run_cli({"sim", "--n", "12", "--trials", "2",
                            "--model", "1", "--scheme", "ND"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ND"), std::string::npos);
  EXPECT_EQ(r.out.find("EL1"), std::string::npos);
}

TEST(CliTest, SimRejectsBadModel) {
  const CliRun r = run_cli({"sim", "--model", "9"});
  EXPECT_EQ(r.code, 2);
}

TEST(CliTest, ScenarioSaveAndReload) {
  const std::string path = ::testing::TempDir() + "/pacds_cli_scene.txt";
  const CliRun saved = run_cli({"cds", "--random", "15", "--seed", "21",
                                "--save-scenario", path});
  EXPECT_EQ(saved.code, 0) << saved.err;
  EXPECT_NE(saved.out.find("saved scenario"), std::string::npos);
  // Reloading the scenario must reproduce the identical gateway set (the
  // energies are stored in the file, so EL schemes agree too).
  const CliRun direct = run_cli({"cds", "--random", "15", "--seed", "21",
                                 "--scheme", "EL1"});
  const CliRun reloaded =
      run_cli({"cds", "--scenario", path, "--scheme", "EL1"});
  EXPECT_EQ(reloaded.code, 0) << reloaded.err;
  const auto set_line = [](const std::string& text) {
    const auto pos = text.find("set:");
    return pos == std::string::npos ? text : text.substr(pos);
  };
  EXPECT_EQ(set_line(direct.out), set_line(reloaded.out));
  std::remove(path.c_str());
}

TEST(CliTest, ScenarioMissingFileFails) {
  const CliRun r = run_cli({"cds", "--scenario", "/no/such/scene.txt"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, SaveScenarioNeedsPositions) {
  const std::string graph_path = ::testing::TempDir() + "/pacds_cli_g.txt";
  {
    std::ofstream file(graph_path);
    file << "3 2\n0 1\n1 2\n";
  }
  const CliRun r = run_cli({"cds", "--input", graph_path, "--save-scenario",
                            ::testing::TempDir() + "/out.txt"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("positional"), std::string::npos);
  std::remove(graph_path.c_str());
}

TEST(CliTest, SimMetricsEmitsManifestPlusIntervalRecords) {
  const std::string path = ::testing::TempDir() + "/pacds_cli_metrics.jsonl";
  const CliRun r = run_cli({"sim", "--n", "12", "--trials", "2", "--model",
                            "2", "--scheme", "EL1", "--seed", "4",
                            "--metrics", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("metrics records to " + path), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t line_count = 0;
  std::size_t interval_count = 0;
  for (std::string line; std::getline(in, line); ++line_count) {
    const JsonValue record = parse_json(line);  // throws on any bad line
    ASSERT_NE(record.find("type"), nullptr);
    const std::string& type = record.find("type")->as_string();
    if (line_count == 0) {
      EXPECT_EQ(type, "run_manifest");
      EXPECT_EQ(record.find("scheme")->as_string(), "EL1");
      EXPECT_EQ(record.find("n_hosts")->as_number(), 12.0);
      EXPECT_EQ(record.find("trials")->as_number(), 2.0);
    } else {
      EXPECT_EQ(type, "interval");
      for (const char* key :
           {"trial", "interval", "marked", "gateways", "alive", "touched",
            "energy_min", "energy_mean", "energy_max", "marking_ns",
            "rules_ns", "nodes_touched"}) {
        EXPECT_NE(record.find(key), nullptr) << "missing " << key;
      }
      ++interval_count;
    }
  }
  EXPECT_GT(interval_count, 0u);
  std::remove(path.c_str());
}

TEST(CliTest, SweepPrintsBothTables) {
  const CliRun r = run_cli({"sweep", "--hosts", "8,12", "--scheme", "ID",
                            "--trials", "2", "--seed", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("lifetime"), std::string::npos);
  EXPECT_NE(r.out.find("gateway"), std::string::npos);
  EXPECT_NE(r.out.find("ID"), std::string::npos);
}

TEST(CliTest, SweepWritesCsvAndMetrics) {
  const std::string csv_path = ::testing::TempDir() + "/pacds_cli_sweep.csv";
  const std::string jsonl_path =
      ::testing::TempDir() + "/pacds_cli_sweep.jsonl";
  const CliRun r = run_cli({"sweep", "--hosts", "8,12", "--scheme", "ID",
                            "--trials", "2", "--seed", "3", "--csv", csv_path,
                            "--metrics", jsonl_path});
  EXPECT_EQ(r.code, 0) << r.err;

  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header.substr(0, 13), "n,ID_lifetime");
  EXPECT_NE(header.find("ID_gateways"), std::string::npos);

  // One manifest per (host count, scheme) cell plus that cell's intervals.
  std::ifstream jsonl(jsonl_path);
  ASSERT_TRUE(jsonl.good());
  std::size_t manifests = 0;
  std::size_t lines = 0;
  for (std::string line; std::getline(jsonl, line); ++lines) {
    const JsonValue record = parse_json(line);
    if (record.find("type")->as_string() == "run_manifest") ++manifests;
  }
  EXPECT_EQ(manifests, 2u);
  EXPECT_GT(lines, manifests);
  std::remove(csv_path.c_str());
  std::remove(jsonl_path.c_str());
}

TEST(CliTest, SweepRejectsBadHosts) {
  // Every malformed entry exits 2 with a diagnostic naming the offender —
  // including the partial tokens ("4x") and overflowing literals the old
  // std::stoi path silently accepted or clamped.
  for (const char* hosts :
       {"8,banana", "4x", "8,4x", "0", "8,-3", "8,,10",
        "99999999999999999999", "8,2000000000000"}) {
    const CliRun r = run_cli({"sweep", "--hosts", hosts});
    EXPECT_EQ(r.code, 2) << hosts;
    EXPECT_NE(r.err.find("bad --hosts entry '"), std::string::npos) << hosts;
  }
  const CliRun empty = run_cli({"sweep", "--hosts", ""});
  EXPECT_EQ(empty.code, 2);
  EXPECT_NE(empty.err.find("at least one host count"), std::string::npos);
}

TEST(CliTest, SweepInUsage) {
  const CliRun help = run_cli({"help"});
  EXPECT_NE(help.out.find("sweep"), std::string::npos);
  const CliRun r = run_cli({"sweep", "--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("--hosts"), std::string::npos);
  EXPECT_NE(r.out.find("--metrics"), std::string::npos);
}

TEST(CliTest, GapReportsRatiosAndWritesMetrics) {
  const std::string jsonl_path = ::testing::TempDir() + "/pacds_cli_gap.jsonl";
  const CliRun r = run_cli({"gap", "--hosts", "10,14", "--radius", "30",
                            "--trials", "2", "--seed", "7", "--metrics",
                            jsonl_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("opt"), std::string::npos);
  EXPECT_NE(r.out.find("cds22"), std::string::npos);

  // One gap_manifest, then one gap_point per (n, radius, trial) instance.
  std::ifstream jsonl(jsonl_path);
  ASSERT_TRUE(jsonl.good());
  std::size_t manifests = 0;
  std::size_t points = 0;
  for (std::string line; std::getline(jsonl, line);) {
    const JsonValue record = parse_json(line);
    const std::string type = record.find("type")->as_string();
    if (type == "gap_manifest") ++manifests;
    if (type == "gap_point") ++points;
  }
  EXPECT_EQ(manifests, 1u);
  EXPECT_EQ(points, 4u);  // 2 host counts x 1 radius x 2 trials
  std::remove(jsonl_path.c_str());
}

TEST(CliTest, GapRejectsBadLists) {
  const CliRun hosts = run_cli({"gap", "--hosts", "10,banana"});
  EXPECT_EQ(hosts.code, 2);
  EXPECT_NE(hosts.err.find("bad --hosts entry '"), std::string::npos);
  const CliRun radius = run_cli({"gap", "--radius", "0"});
  EXPECT_EQ(radius.code, 2);
  EXPECT_NE(radius.err.find("bad --radius entry '"), std::string::npos);
}

TEST(CliTest, SimBackboneOption) {
  const CliRun ok =
      run_cli({"sim", "--n", "12", "--trials", "1", "--backbone", "cds22"});
  EXPECT_EQ(ok.code, 0) << ok.err;
  const CliRun clash = run_cli({"sim", "--n", "12", "--trials", "1",
                                "--backbone", "cds22", "--engine",
                                "incremental"});
  EXPECT_EQ(clash.code, 2);
  EXPECT_NE(clash.err.find("needs --engine auto or full"), std::string::npos);
  const CliRun unknown = run_cli(
      {"sim", "--n", "12", "--trials", "1", "--backbone", "mesh"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("unknown backbone"), std::string::npos);
}

TEST(CliTest, MetricsUnwritablePathFails) {
  const CliRun r = run_cli({"sim", "--n", "10", "--trials", "1", "--metrics",
                            "/nonexistent_dir_zz/m.jsonl"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot write"), std::string::npos);
}

TEST(CliTest, SimDeterministicAcrossRuns) {
  const std::vector<std::string> cmd{"sim",      "--n",     "12",
                                     "--trials", "3",       "--model", "2",
                                     "--scheme", "EL1",     "--seed",  "9"};
  EXPECT_EQ(run_cli(cmd).out, run_cli(cmd).out);
}

std::string write_sample_plan() {
  const std::string path = ::testing::TempDir() + "/pacds_cli_plan.json";
  std::ofstream file(path);
  file << R"({
    "crashes": [{"node": 2, "at": 2, "recover_at": 6}, {"node": 4, "at": 3}],
    "thefts": [{"node": 1, "at": 4, "amount": 30}],
    "blackouts": [{"x0": 0, "y0": 0, "x1": 30, "y1": 30, "at": 5, "until": 8}]
  })";
  return path;
}

TEST(CliTest, FaultsPrintsResolvedSchedule) {
  const std::string path = write_sample_plan();
  const CliRun r = run_cli({"faults", "--plan", path, "--n", "20"});
  EXPECT_EQ(r.code, 0) << r.err;
  // 2 crashes + 1 recovery + 1 theft + blackout entry/exit = 6 events.
  EXPECT_NE(r.out.find("schedule (6 events):"), std::string::npos);
  EXPECT_NE(r.out.find("crash"), std::string::npos);
  EXPECT_NE(r.out.find("theft"), std::string::npos);
  EXPECT_NE(r.out.find("region 0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, FaultsJsonEchoesNormalizedPlan) {
  const std::string path = write_sample_plan();
  const CliRun r = run_cli({"faults", "--plan", path, "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  const JsonValue plan = parse_json(r.out);  // throws on malformed output
  ASSERT_NE(plan.find("crashes"), nullptr);
  EXPECT_EQ(plan.find("crashes")->as_array().size(), 2u);
  ASSERT_NE(plan.find("channel"), nullptr);  // defaults made explicit
  std::remove(path.c_str());
}

TEST(CliTest, FaultsRequiresPlan) {
  const CliRun r = run_cli({"faults"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--plan is required"), std::string::npos);
}

TEST(CliTest, FaultsRejectsBadPlans) {
  const CliRun missing = run_cli({"faults", "--plan", "/no/such/plan.json"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("cannot open"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/pacds_cli_bad_plan.json";
  {
    std::ofstream file(path);
    file << R"({"crashes": [{"node": 2, "at": 0}]})";  // interval < 1
  }
  const CliRun bad = run_cli({"faults", "--plan", path});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("error:"), std::string::npos);

  // Node ids are range-checked against --n when given.
  {
    std::ofstream file(path);
    file << R"({"crashes": [{"node": 50, "at": 2}]})";
  }
  EXPECT_EQ(run_cli({"faults", "--plan", path, "--n", "0"}).code, 0);
  const CliRun range = run_cli({"faults", "--plan", path, "--n", "10"});
  EXPECT_EQ(range.code, 1);
  EXPECT_NE(range.err.find("out of range"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, SimFaultsPrintsDegradedTable) {
  const std::string path = write_sample_plan();
  const CliRun r = run_cli({"sim", "--n", "16", "--trials", "2", "--scheme",
                            "EL1", "--seed", "4", "--faults", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("faults: " + path), std::string::npos);
  for (const char* column : {"run len", "events", "repairs", "min cov"}) {
    EXPECT_NE(r.out.find(column), std::string::npos) << column;
  }
  std::remove(path.c_str());
}

TEST(CliTest, SimFaultsValidatesPlanAgainstHostCount) {
  const std::string path = ::testing::TempDir() + "/pacds_cli_range.json";
  {
    std::ofstream file(path);
    file << R"({"thefts": [{"node": 30, "at": 2, "amount": 5}]})";
  }
  const CliRun r = run_cli({"sim", "--n", "10", "--trials", "1", "--faults",
                            path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("out of range"), std::string::npos);
  std::remove(path.c_str());

  const CliRun missing =
      run_cli({"sim", "--n", "10", "--faults", "/no/such/plan.json"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, SimMetricsDashStreamsJsonlToStdout) {
  const std::string path = write_sample_plan();
  const CliRun r = run_cli({"sim", "--n", "16", "--trials", "1", "--scheme",
                            "EL1", "--seed", "4", "--faults", path,
                            "--metrics", "-"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Human report moved to stderr; stdout is pure JSONL.
  EXPECT_NE(r.err.find("lifetime simulation"), std::string::npos);
  EXPECT_EQ(r.out.front(), '{');
  std::istringstream lines(r.out);
  std::size_t fault_events = 0;
  std::size_t line_count = 0;
  for (std::string line; std::getline(lines, line); ++line_count) {
    const JsonValue record = parse_json(line);  // throws on any table leak
    ASSERT_NE(record.find("type"), nullptr);
    const std::string& type = record.find("type")->as_string();
    if (line_count == 0) {
      EXPECT_EQ(type, "run_manifest");
      ASSERT_NE(record.find("faults"), nullptr);
      EXPECT_TRUE(record.find("faults")->is_object());
    } else if (type == "fault_event") {
      ++fault_events;
      for (const char* key : {"trial", "interval", "kind", "cause", "down"}) {
        EXPECT_NE(record.find(key), nullptr) << "missing " << key;
      }
    }
  }
  EXPECT_GT(fault_events, 0u);
  std::remove(path.c_str());
}

TEST(CliTest, ServeInUsage) {
  const CliRun help = run_cli({"help"});
  EXPECT_NE(help.out.find("serve"), std::string::npos);
  const CliRun r = run_cli({"serve", "--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("--socket"), std::string::npos);
  EXPECT_NE(r.out.find("--queue"), std::string::npos);
  EXPECT_NE(r.out.find("--max-tenants"), std::string::npos);
  EXPECT_NE(r.out.find("--threads"), std::string::npos);
}

TEST(CliTest, ServeRejectsBadOptions) {
  for (const std::vector<std::string> tokens :
       {std::vector<std::string>{"serve", "--queue", "0"},
        {"serve", "--queue", "abc"},
        {"serve", "--max-tenants", "0"},
        {"serve", "--threads", "-1"},
        {"serve", "--threads", "4096"}}) {
    const CliRun r = run_cli(tokens);
    EXPECT_EQ(r.code, 2) << tokens[1] << " " << tokens[2];
    EXPECT_NE(r.err.find("error:"), std::string::npos);
  }
}

TEST(CliTest, FaultsInUsage) {
  const CliRun help = run_cli({"help"});
  EXPECT_NE(help.out.find("faults"), std::string::npos);
  const CliRun r = run_cli({"faults", "--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("--plan"), std::string::npos);
  const CliRun sim_help = run_cli({"sim", "--help"});
  EXPECT_NE(sim_help.out.find("--faults"), std::string::npos);
}

}  // namespace
}  // namespace pacds::cli
