// Tests for dominating-set-based routing: membership lists, routing tables,
// and the 3-step routing process (paper Section 2.1, Figure 2).

#include "routing/routing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cds.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::figure1_graph;
using testing::path_graph;
using testing::star_graph;

DynBitset set_of(std::size_t n, std::initializer_list<std::size_t> bits) {
  DynBitset s(n);
  for (const auto b : bits) s.set(b);
  return s;
}

/// Verifies that `path` is a real walk in g from src to dst.
void expect_valid_path(const Graph& g, const std::vector<NodeId>& path,
                       NodeId src, NodeId dst) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), src);
  EXPECT_EQ(path.back(), dst);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]))
        << path[i] << "-" << path[i + 1];
  }
}

TEST(RoutingTest, MaskSizeMismatchThrows) {
  EXPECT_THROW(DominatingSetRouter(path_graph(3), DynBitset(2)),
               std::invalid_argument);
}

TEST(RoutingTest, MembershipListsOnFigure1) {
  // Gateways v=1, w=2 (marking output). Members: v covers u(0), y(4);
  // w covers x(3).
  const Graph g = figure1_graph();
  const DominatingSetRouter router(g, set_of(5, {1, 2}));
  EXPECT_TRUE(router.is_gateway(1));
  EXPECT_FALSE(router.is_gateway(0));
  EXPECT_EQ(router.domain_members(1), (std::vector<NodeId>{0, 4}));
  EXPECT_EQ(router.domain_members(2), (std::vector<NodeId>{3}));
  EXPECT_THROW((void)router.domain_members(0), std::invalid_argument);
}

TEST(RoutingTest, GatewaysOfHost) {
  const Graph g = figure1_graph();
  const DominatingSetRouter router(g, set_of(5, {1, 2}));
  EXPECT_EQ(router.gateways_of(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(router.gateways_of(3), (std::vector<NodeId>{2}));
  EXPECT_TRUE(router.gateways_of(1).empty());  // gateways have none
}

TEST(RoutingTest, RoutingTableEntries) {
  const Graph g = path_graph(5);
  const DominatingSetRouter router(g, set_of(5, {1, 2, 3}));
  const auto table = router.routing_table(1);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].gateway, 2);
  EXPECT_EQ(table[0].distance, 1);
  EXPECT_EQ(table[0].next_hop, 2);
  EXPECT_EQ(table[1].gateway, 3);
  EXPECT_EQ(table[1].distance, 2);
  EXPECT_EQ(table[1].next_hop, 2);  // first hop toward 3
  EXPECT_EQ(table[1].members, (std::vector<NodeId>{4}));
}

TEST(RoutingTest, RoutingTableThrowsForNonGateway) {
  const Graph g = path_graph(3);
  const DominatingSetRouter router(g, set_of(3, {1}));
  EXPECT_THROW((void)router.routing_table(0), std::invalid_argument);
}

TEST(RoutingTest, TrivialRoutes) {
  const Graph g = path_graph(3);
  const DominatingSetRouter router(g, set_of(3, {1}));
  const RouteResult self = router.route(0, 0);
  EXPECT_TRUE(self.delivered);
  EXPECT_EQ(self.path, (std::vector<NodeId>{0}));
  const RouteResult direct = router.route(0, 1);
  EXPECT_TRUE(direct.delivered);
  EXPECT_EQ(direct.path, (std::vector<NodeId>{0, 1}));
}

TEST(RoutingTest, ThreeStepRoute) {
  // P5 with backbone {1,2,3}: 0 -> 4 must go 0,1,2,3,4.
  const Graph g = path_graph(5);
  const DominatingSetRouter router(g, set_of(5, {1, 2, 3}));
  const RouteResult r = router.route(0, 4);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(router.route_hops(0, 4).value(), 4);
}

TEST(RoutingTest, GatewaySourceAndDestination) {
  const Graph g = path_graph(5);
  const DominatingSetRouter router(g, set_of(5, {1, 2, 3}));
  const RouteResult r = router.route(1, 3);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.path, (std::vector<NodeId>{1, 2, 3}));
}

TEST(RoutingTest, SharedGatewayTwoHops)  {
  // Star with center gateway: any leaf pair routes through the center.
  const Graph g = star_graph(4);
  const DominatingSetRouter router(g, set_of(5, {0}));
  const RouteResult r = router.route(1, 3);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.path, (std::vector<NodeId>{1, 0, 3}));
}

TEST(RoutingTest, UndominatedSourceFails) {
  // Gateway set misses node 0's neighborhood entirely.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const DominatingSetRouter router(g, set_of(4, {2}));
  const RouteResult r = router.route(0, 3);
  EXPECT_FALSE(r.delivered);
  EXPECT_FALSE(r.failure.empty());
}

TEST(RoutingTest, DisconnectedBackboneFails) {
  // Two separate path components, gateways in each; cross-component route
  // must fail with a backbone error.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const DominatingSetRouter router(g, set_of(6, {1, 4}));
  const RouteResult r = router.route(0, 5);
  EXPECT_FALSE(r.delivered);
}

TEST(RoutingTest, ConnectedGraphSplitBackboneFailsCleanly) {
  // Fuzz-derived failure path: the *graph* is connected (P6) but the
  // gateway-induced subgraph is not — gateways 1 and 4 are two backbone
  // components with non-gateway 2-3 between them. Both endpoints have a
  // source/destination gateway, so the failure must come from the backbone
  // BFS, as a clean undelivered result (no throw, no partial path).
  const Graph g = path_graph(6);
  const DominatingSetRouter router(g, set_of(6, {1, 4}));
  const RouteResult r = router.route(0, 5);
  EXPECT_FALSE(r.delivered);
  EXPECT_FALSE(r.failure.empty());
  EXPECT_TRUE(r.path.empty());
  EXPECT_FALSE(router.route_hops(0, 5).has_value());
  // Other cross-component pairs fail the same way — except adjacent hosts,
  // which deliver one-hop without touching the backbone at all.
  EXPECT_FALSE(router.route(0, 4).delivered);
  EXPECT_FALSE(router.route(1, 5).delivered);
  EXPECT_TRUE(router.route(2, 3).delivered);  // neighbor bypass
  EXPECT_TRUE(router.route(0, 2).delivered);
  EXPECT_TRUE(router.route(3, 5).delivered);
}

TEST(RoutingTest, FailedRouteHopsEmpty) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const DominatingSetRouter router(g, set_of(4, {1, 2}));
  EXPECT_FALSE(router.route_hops(0, 3).has_value());
}

TEST(RoutingTest, Figure1AllPairsDeliverable) {
  const Graph g = figure1_graph();
  const CdsResult cds = compute_cds(g, RuleSet::kID);
  const DominatingSetRouter router(g, cds.gateways);
  for (NodeId s = 0; s < 5; ++s) {
    for (NodeId t = 0; t < 5; ++t) {
      const RouteResult r = router.route(s, t);
      ASSERT_TRUE(r.delivered) << s << "->" << t << ": " << r.failure;
      expect_valid_path(g, r.path, s, t);
    }
  }
}

TEST(RoutingTest, RandomNetworkAllPairsDeliverable) {
  Xoshiro256 rng(31);
  const auto placed = random_connected_placement(30, Field::paper_field(),
                                                 kPaperRadius, rng, 500);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  CdsOptions options;
  options.strategy = Strategy::kVerified;
  const CdsResult cds = compute_cds(g, RuleSet::kND, {}, options);
  const DominatingSetRouter router(g, cds.gateways);
  const auto n = g.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = static_cast<NodeId>(s + 1); t < n; ++t) {
      const RouteResult r = router.route(s, t);
      ASSERT_TRUE(r.delivered) << s << "->" << t << ": " << r.failure;
      expect_valid_path(g, r.path, s, t);
      // Routed path can never beat the true shortest path.
      const auto true_dist =
          g.bfs_distances(s)[static_cast<std::size_t>(t)];
      EXPECT_GE(static_cast<NodeId>(r.path.size() - 1), true_dist);
    }
  }
}

TEST(RoutingTest, HopsMatchRestrictedBfs) {
  // The router's hop count must equal the gateway-interior-restricted BFS
  // distance — two independent implementations of the same semantics.
  Xoshiro256 rng(53);
  const auto placed = random_connected_placement(35, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  for (const RuleSet rs : {RuleSet::kNR, RuleSet::kID, RuleSet::kND}) {
    const CdsResult cds = compute_cds(g, rs);
    const DominatingSetRouter router(g, cds.gateways);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      const auto restricted = g.bfs_distances(s, &cds.gateways);
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        if (s == t) continue;
        const auto hops = router.route_hops(s, t);
        const NodeId expected = restricted[static_cast<std::size_t>(t)];
        if (expected < 0) {
          EXPECT_FALSE(hops.has_value()) << s << "->" << t;
        } else {
          ASSERT_TRUE(hops.has_value()) << s << "->" << t;
          EXPECT_EQ(*hops, expected)
              << to_string(rs) << " " << s << "->" << t;
        }
      }
    }
  }
}

TEST(RoutingTest, RouteInteriorUsesOnlyGateways) {
  const Graph g = figure1_graph();
  const CdsResult cds = compute_cds(g, RuleSet::kID);
  const DominatingSetRouter router(g, cds.gateways);
  for (NodeId s = 0; s < 5; ++s) {
    for (NodeId t = 0; t < 5; ++t) {
      const RouteResult r = router.route(s, t);
      ASSERT_TRUE(r.delivered);
      for (std::size_t i = 1; i + 1 < r.path.size(); ++i) {
        EXPECT_TRUE(router.is_gateway(r.path[i]))
            << "interior node " << r.path[i] << " on " << s << "->" << t;
      }
    }
  }
}

}  // namespace
}  // namespace pacds
