// Tests for the distributed message-passing emulation: agents acting only
// on their inboxes must compute exactly the same gateway set as the
// centralized implementation (simultaneous strategy).

#include "dist/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::figure1_graph;
using testing::path_graph;

CdsOptions simultaneous() {
  CdsOptions options;
  options.strategy = Strategy::kSimultaneous;
  return options;
}

TEST(DistProtocolTest, Figure1MatchesCentralized) {
  const Graph g = figure1_graph();
  const dist::ProtocolResult distributed =
      dist::run_protocol_scheme(g, RuleSet::kNR);
  const CdsResult central = compute_cds(g, RuleSet::kNR, {}, simultaneous());
  EXPECT_EQ(distributed.gateways, central.gateways);
  EXPECT_EQ(distributed.gateways.count(), 2u);  // v and w
}

TEST(DistProtocolTest, MessageCountsSetupRounds) {
  const Graph g = path_graph(6);
  const dist::ProtocolResult r = dist::run_protocol_scheme(g, RuleSet::kNR);
  EXPECT_EQ(r.hello_msgs, 6u);
  EXPECT_EQ(r.list_msgs, 6u);
  EXPECT_EQ(r.status_msgs, 6u);  // NR: statuses only, no rule flips
  EXPECT_EQ(r.total_msgs(), 18u);
}

TEST(DistProtocolTest, RuleFlipsAnnounceOnce) {
  // P6 under ID rules: marking marks {1,2,3,4}; the simultaneous rules
  // remove nobody on a path (no coverage), so no flip messages.
  const Graph g = path_graph(6);
  const dist::ProtocolResult r = dist::run_protocol_scheme(g, RuleSet::kID);
  EXPECT_EQ(r.status_msgs, 6u);
  // Twin gadget: Rule 1 removes one twin -> exactly one extra status.
  const Graph twins =
      Graph::from_edges(4, {{2, 0}, {2, 1}, {2, 3}, {3, 0}, {3, 1}});
  const dist::ProtocolResult t =
      dist::run_protocol_scheme(twins, RuleSet::kID);
  EXPECT_EQ(t.status_msgs, 4u + 1u);
}

TEST(DistProtocolTest, EnergySizeMismatchThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW(
      (void)dist::run_protocol(g, KeyKind::kEnergyId, Rule2Form::kRefined,
                               {1.0}),
      std::invalid_argument);
}

TEST(DistProtocolTest, CompleteGraphNobodyMarks) {
  const Graph g = complete_graph(5);
  const dist::ProtocolResult r = dist::run_protocol_scheme(g, RuleSet::kID);
  EXPECT_TRUE(r.gateways.none());
}

TEST(DistProtocolTest, EmptyGraph) {
  const dist::ProtocolResult r =
      dist::run_protocol_scheme(Graph(0), RuleSet::kID);
  EXPECT_EQ(r.total_msgs(), 0u);
  EXPECT_EQ(r.gateways.count(), 0u);
}

TEST(LossyProtocolTest, ZeroLossEqualsReliable) {
  Xoshiro256 rng(99);
  const Graph g =
      build_udg(random_placement(25, Field::paper_field(), rng), kPaperRadius);
  const dist::LossyProtocolResult lossy =
      dist::run_lossy_protocol(g, RuleSet::kID, 0.0, 1, 7);
  EXPECT_EQ(lossy.status_disagreements, 0u);
  EXPECT_EQ(lossy.protocol.gateways,
            dist::run_protocol_scheme(g, RuleSet::kID).gateways);
}

TEST(LossyProtocolTest, BadParamsThrow) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)dist::run_lossy_protocol(g, RuleSet::kID, -0.1, 1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)dist::run_lossy_protocol(g, RuleSet::kID, 1.0, 1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)dist::run_lossy_protocol(g, RuleSet::kID, 0.1, 0, 1),
               std::invalid_argument);
}

TEST(LossyProtocolTest, HeavyLossCausesDisagreements) {
  Xoshiro256 rng(100);
  const auto placed = random_connected_placement(40, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  std::size_t total_disagreements = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    total_disagreements += dist::run_lossy_protocol(placed->graph,
                                                    RuleSet::kND, 0.5, 1, seed)
                               .status_disagreements;
  }
  EXPECT_GT(total_disagreements, 0u);
}

TEST(LossyProtocolTest, BeaconRepeatsRecoverCorrectness) {
  // More HELLO/list repeats shrink the knowledge gap: disagreements at 8
  // repeats must not exceed those at 1 repeat (summed over seeds).
  Xoshiro256 rng(101);
  const auto placed = random_connected_placement(40, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  std::size_t one = 0;
  std::size_t many = 0;
  for (std::uint64_t seed = 50; seed < 62; ++seed) {
    one += dist::run_lossy_protocol(placed->graph, RuleSet::kND, 0.3, 1, seed)
               .status_disagreements;
    many += dist::run_lossy_protocol(placed->graph, RuleSet::kND, 0.3, 8,
                                     seed)
                .status_disagreements;
  }
  EXPECT_LT(many, one);
}

TEST(LossyProtocolTest, MessageCountScalesWithRepeats) {
  const Graph g = path_graph(5);
  const dist::LossyProtocolResult r =
      dist::run_lossy_protocol(g, RuleSet::kNR, 0.1, 4, 3);
  EXPECT_EQ(r.protocol.hello_msgs, 20u);
  EXPECT_EQ(r.protocol.list_msgs, 20u);
}

class DistEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, RuleSet>> {
};

TEST_P(DistEquivalenceTest, MatchesCentralizedSimultaneous) {
  const auto [n, seed, rs] = GetParam();
  Xoshiro256 rng(seed);
  const Graph g =
      build_udg(random_placement(n, Field::paper_field(), rng), kPaperRadius);
  std::vector<double> energy;
  for (int i = 0; i < n; ++i) {
    energy.push_back(static_cast<double>(rng.uniform_int(1, 5)));
  }
  const dist::ProtocolResult distributed =
      dist::run_protocol_scheme(g, rs, energy);
  const CdsResult central = compute_cds(g, rs, energy, simultaneous());
  EXPECT_EQ(distributed.gateways, central.gateways)
      << to_string(rs) << " n=" << n << " seed=" << seed << "\ndistributed "
      << distributed.gateways.to_string() << "\ncentral     "
      << central.gateways.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, DistEquivalenceTest,
    ::testing::Combine(::testing::Values(12, 25, 45),
                       ::testing::Values(71u, 72u, 73u, 74u),
                       ::testing::Values(RuleSet::kNR, RuleSet::kID,
                                         RuleSet::kND, RuleSet::kEL1,
                                         RuleSet::kEL2)),
    [](const ::testing::TestParamInfo<DistEquivalenceTest::ParamType>&
           param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param)) + "_" +
             to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace pacds
