// Tests for the ASCII chart renderer.

#include "io/chart.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pacds {
namespace {

TEST(ChartTest, EmptyChartPlaceholder) {
  const AsciiChart chart;
  EXPECT_EQ(chart.render(), "(empty chart)\n");
}

TEST(ChartTest, MismatchedSeriesThrows) {
  AsciiChart chart;
  EXPECT_THROW(chart.add_series("bad", {1.0, 2.0}, {1.0}),
               std::invalid_argument);
}

TEST(ChartTest, TooManySeriesThrows) {
  AsciiChart chart;
  for (int i = 0; i < 8; ++i) {
    chart.add_series("s" + std::to_string(i), {0.0, 1.0}, {0.0, 1.0});
  }
  EXPECT_THROW(chart.add_series("ninth", {0.0}, {0.0}),
               std::invalid_argument);
}

TEST(ChartTest, RendersGlyphsAndLegend) {
  AsciiChart chart(40, 10);
  chart.add_series("up", {0.0, 10.0}, {0.0, 10.0});
  chart.add_series("down", {0.0, 10.0}, {10.0, 0.0});
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("* up"), std::string::npos);
  EXPECT_NE(out.find("o down"), std::string::npos);
}

TEST(ChartTest, AxisLabelsAppear) {
  AsciiChart chart(30, 8);
  chart.set_labels("hosts", "lifetime");
  chart.add_series("s", {3.0, 100.0}, {50.0, 80.0});
  const std::string out = chart.render();
  EXPECT_NE(out.find("hosts"), std::string::npos);
  EXPECT_NE(out.find("lifetime"), std::string::npos);
  // Axis extremes are printed.
  EXPECT_NE(out.find("3.00"), std::string::npos);
  EXPECT_NE(out.find("100.00"), std::string::npos);
}

TEST(ChartTest, ConnectingDotsBetweenPoints) {
  AsciiChart chart(40, 10);
  chart.add_series("line", {0.0, 100.0}, {0.0, 100.0});
  const std::string out = chart.render();
  EXPECT_NE(out.find('.'), std::string::npos);  // interpolated segment
}

TEST(ChartTest, ConstantSeriesRenders) {
  AsciiChart chart(30, 8);
  chart.add_series("flat", {0.0, 1.0, 2.0}, {5.0, 5.0, 5.0});
  EXPECT_NO_THROW((void)chart.render());
}

TEST(ChartTest, SinglePointRenders) {
  AsciiChart chart(30, 8);
  chart.add_series("dot", {1.0}, {2.0});
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(ChartTest, MinimumDimensionsClamped) {
  AsciiChart chart(1, 1);  // clamps to 16x6
  chart.add_series("s", {0.0, 1.0}, {0.0, 1.0});
  const std::string out = chart.render();
  EXPECT_GT(out.size(), 40u);
}

}  // namespace
}  // namespace pacds
