// Tests for the mobility models, especially the paper's 8-direction jump
// model (stay probability, jump lengths, direction vectors).

#include "net/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pacds {
namespace {

TEST(PaperJumpTest, DirectionVectorsAreUnit) {
  for (int code = 1; code <= 8; ++code) {
    EXPECT_NEAR(PaperJumpMobility::direction(code).norm(), 1.0, 1e-12)
        << "code " << code;
  }
}

TEST(PaperJumpTest, DirectionCodesMatchPaperOrder) {
  // E, S, W, N, SE, NE, SW, NW.
  EXPECT_EQ(PaperJumpMobility::direction(1), Vec2(1.0, 0.0));
  EXPECT_EQ(PaperJumpMobility::direction(2), Vec2(0.0, -1.0));
  EXPECT_EQ(PaperJumpMobility::direction(3), Vec2(-1.0, 0.0));
  EXPECT_EQ(PaperJumpMobility::direction(4), Vec2(0.0, 1.0));
  EXPECT_GT(PaperJumpMobility::direction(5).x, 0.0);  // SE
  EXPECT_LT(PaperJumpMobility::direction(5).y, 0.0);
  EXPECT_GT(PaperJumpMobility::direction(6).x, 0.0);  // NE
  EXPECT_GT(PaperJumpMobility::direction(6).y, 0.0);
  EXPECT_LT(PaperJumpMobility::direction(7).x, 0.0);  // SW
  EXPECT_LT(PaperJumpMobility::direction(7).y, 0.0);
  EXPECT_LT(PaperJumpMobility::direction(8).x, 0.0);  // NW
  EXPECT_GT(PaperJumpMobility::direction(8).y, 0.0);
}

TEST(PaperJumpTest, BadDirectionThrows) {
  EXPECT_THROW((void)PaperJumpMobility::direction(0), std::invalid_argument);
  EXPECT_THROW((void)PaperJumpMobility::direction(9), std::invalid_argument);
}

TEST(PaperJumpTest, BadParamsThrow) {
  EXPECT_THROW(PaperJumpMobility(-0.1), std::invalid_argument);
  EXPECT_THROW(PaperJumpMobility(1.1), std::invalid_argument);
  EXPECT_THROW(PaperJumpMobility(0.5, 5, 2), std::invalid_argument);
  EXPECT_THROW(PaperJumpMobility(0.5, -1, 2), std::invalid_argument);
}

TEST(PaperJumpTest, StayProbabilityOneFreezesEverything) {
  PaperJumpMobility mobility(1.0);
  Xoshiro256 rng(1);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts{{10.0, 10.0}, {50.0, 50.0}};
  const auto before = pts;
  for (int i = 0; i < 20; ++i) mobility.step(pts, field, rng);
  EXPECT_EQ(pts[0], before[0]);
  EXPECT_EQ(pts[1], before[1]);
}

TEST(PaperJumpTest, StayProbabilityZeroMovesEveryone) {
  PaperJumpMobility mobility(0.0);
  Xoshiro256 rng(2);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts{{50.0, 50.0}};
  const Vec2 before = pts[0];
  mobility.step(pts, field, rng);
  EXPECT_NE(pts[0], before);
}

TEST(PaperJumpTest, JumpLengthWithinRange) {
  PaperJumpMobility mobility(0.0, 1, 6);
  Xoshiro256 rng(3);
  const Field field(1000.0, 1000.0);  // huge field: no boundary folding
  std::vector<Vec2> pts{{500.0, 500.0}};
  for (int i = 0; i < 500; ++i) {
    const Vec2 before = pts[0];
    mobility.step(pts, field, rng);
    const double len = distance(before, pts[0]);
    EXPECT_GE(len, 1.0 - 1e-9);
    EXPECT_LE(len, 6.0 + 1e-9);
  }
}

TEST(PaperJumpTest, StaysInsideField) {
  PaperJumpMobility mobility(0.5);
  Xoshiro256 rng(4);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts{{0.0, 0.0}, {99.9, 99.9}, {50.0, 0.1}};
  for (int i = 0; i < 200; ++i) {
    mobility.step(pts, field, rng);
    for (const Vec2 p : pts) EXPECT_TRUE(field.contains(p));
  }
}

TEST(PaperJumpTest, ApproximatelyHalfStay) {
  PaperJumpMobility mobility(0.5);
  Xoshiro256 rng(5);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts(1000, Vec2{50.0, 50.0});
  mobility.step(pts, field, rng);
  int stayed = 0;
  for (const Vec2 p : pts) {
    if (p == Vec2{50.0, 50.0}) ++stayed;
  }
  EXPECT_NEAR(stayed, 500, 60);
}

TEST(RandomWalkTest, StepLengthInRange) {
  RandomWalkMobility mobility(2.0, 3.0);
  Xoshiro256 rng(6);
  const Field field(1000.0, 1000.0);
  std::vector<Vec2> pts{{500.0, 500.0}};
  for (int i = 0; i < 200; ++i) {
    const Vec2 before = pts[0];
    mobility.step(pts, field, rng);
    const double len = distance(before, pts[0]);
    EXPECT_GE(len, 2.0 - 1e-9);
    EXPECT_LE(len, 3.0 + 1e-9);
  }
}

TEST(RandomWalkTest, BadRangeThrows) {
  EXPECT_THROW(RandomWalkMobility(3.0, 2.0), std::invalid_argument);
  EXPECT_THROW(RandomWalkMobility(-1.0, 2.0), std::invalid_argument);
}

TEST(RandomWaypointTest, ConvergesToTargets) {
  RandomWaypointMobility mobility(5.0, 5.0, 0);
  Xoshiro256 rng(7);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts{{0.0, 0.0}};
  Vec2 prev = pts[0];
  double traveled = 0.0;
  for (int i = 0; i < 100; ++i) {
    mobility.step(pts, field, rng);
    traveled += distance(prev, pts[0]);
    prev = pts[0];
    EXPECT_TRUE(field.contains(pts[0]));
  }
  EXPECT_GT(traveled, 100.0);  // keeps moving leg after leg
}

TEST(RandomWaypointTest, PauseHolds) {
  RandomWaypointMobility mobility(200.0, 200.0, 3);  // reach target in 1 step
  Xoshiro256 rng(8);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts{{0.0, 0.0}};
  mobility.step(pts, field, rng);  // arrives at waypoint
  const Vec2 at_target = pts[0];
  for (int i = 0; i < 3; ++i) {
    mobility.step(pts, field, rng);
    EXPECT_EQ(pts[0], at_target) << "pause step " << i;
  }
  mobility.step(pts, field, rng);
  EXPECT_NE(pts[0], at_target);
}

TEST(RandomWaypointTest, BadParamsThrow) {
  EXPECT_THROW(RandomWaypointMobility(3.0, 2.0), std::invalid_argument);
  EXPECT_THROW(RandomWaypointMobility(1.0, 2.0, -1), std::invalid_argument);
}

TEST(StaticMobilityTest, NeverMoves) {
  StaticMobility mobility;
  Xoshiro256 rng(9);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts{{10.0, 20.0}};
  mobility.step(pts, field, rng);
  EXPECT_EQ(pts[0], Vec2(10.0, 20.0));
}

TEST(MobilityTest, Names) {
  EXPECT_EQ(PaperJumpMobility().name(), "paper-jump");
  EXPECT_EQ(RandomWalkMobility(1.0, 2.0).name(), "random-walk");
  EXPECT_EQ(RandomWaypointMobility(1.0, 2.0).name(), "random-waypoint");
  EXPECT_EQ(GaussMarkovMobility(3.0, 0.5).name(), "gauss-markov");
  EXPECT_EQ(StaticMobility().name(), "static");
}

TEST(GaussMarkovTest, BadParamsThrow) {
  EXPECT_THROW(GaussMarkovMobility(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(GaussMarkovMobility(3.0, -0.1), std::invalid_argument);
  EXPECT_THROW(GaussMarkovMobility(3.0, 1.1), std::invalid_argument);
  EXPECT_THROW(GaussMarkovMobility(3.0, 0.5, -1.0), std::invalid_argument);
  EXPECT_THROW(GaussMarkovMobility(3.0, 0.5, 1.0, -0.5),
               std::invalid_argument);
}

TEST(GaussMarkovTest, StaysInField) {
  GaussMarkovMobility mobility(4.0, 0.8);
  Xoshiro256 rng(21);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts{{1.0, 1.0}, {99.0, 99.0}, {50.0, 50.0}};
  for (int i = 0; i < 300; ++i) {
    mobility.step(pts, field, rng);
    for (const Vec2 p : pts) EXPECT_TRUE(field.contains(p));
  }
}

TEST(GaussMarkovTest, AlphaOneCruisesStraight) {
  // With alpha = 1 the process keeps its initial speed and heading exactly
  // (the innovation term has weight sqrt(1 - alpha^2) = 0).
  GaussMarkovMobility mobility(2.0, 1.0);
  Xoshiro256 rng(22);
  const Field field(10000.0, 10000.0);
  std::vector<Vec2> pts{{5000.0, 5000.0}};
  mobility.step(pts, field, rng);
  const Vec2 first_delta = pts[0] - Vec2{5000.0, 5000.0};
  const Vec2 before = pts[0];
  mobility.step(pts, field, rng);
  const Vec2 second_delta = pts[0] - before;
  EXPECT_NEAR(first_delta.x, second_delta.x, 1e-9);
  EXPECT_NEAR(first_delta.y, second_delta.y, 1e-9);
  EXPECT_NEAR(first_delta.norm(), 2.0, 1e-9);
}

TEST(GaussMarkovTest, SmootherThanRandomWalk) {
  // Temporal correlation: consecutive displacement vectors of Gauss-Markov
  // motion (high alpha) should align far more than a memoryless walk's.
  const auto mean_cosine = [](MobilityModel& model, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    const Field field(100000.0, 100000.0);
    std::vector<Vec2> pts{{50000.0, 50000.0}};
    Vec2 prev_delta{0.0, 0.0};
    Vec2 prev_pos = pts[0];
    double sum = 0.0;
    int count = 0;
    for (int i = 0; i < 400; ++i) {
      model.step(pts, field, rng);
      const Vec2 delta = pts[0] - prev_pos;
      prev_pos = pts[0];
      if (i > 0 && prev_delta.norm() > 1e-12 && delta.norm() > 1e-12) {
        sum += prev_delta.dot(delta) / (prev_delta.norm() * delta.norm());
        ++count;
      }
      prev_delta = delta;
    }
    return sum / count;
  };
  GaussMarkovMobility smooth(3.0, 0.9);
  RandomWalkMobility jumpy(1.0, 6.0);
  EXPECT_GT(mean_cosine(smooth, 23), mean_cosine(jumpy, 23) + 0.3);
}

TEST(MobilityFactoryTest, BuildsEveryKind) {
  for (const MobilityKind kind :
       {MobilityKind::kPaperJump, MobilityKind::kRandomWalk,
        MobilityKind::kRandomWaypoint, MobilityKind::kGaussMarkov,
        MobilityKind::kStatic}) {
    const auto model = make_mobility(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), to_string(kind));
  }
}

TEST(MobilityFactoryTest, ParamsForwarded) {
  MobilityParams params;
  params.stay_probability = 1.0;  // frozen paper-jump
  const auto model = make_mobility(MobilityKind::kPaperJump, params);
  Xoshiro256 rng(24);
  const Field field = Field::paper_field();
  std::vector<Vec2> pts{{10.0, 10.0}};
  model->step(pts, field, rng);
  EXPECT_EQ(pts[0], Vec2(10.0, 10.0));
}

// The model folds its heading into [0, 2π) each step so long runs never
// feed sin/cos a huge argument. Folding is pure 2π-periodicity, so the
// trajectory must match an unfolded reference recurrence draw for draw.
// (The heading fold once collapsed the *mean* term too, which bent every
// long trajectory — this reference comparison pins the fix.)
TEST(GaussMarkovTest, FoldedHeadingMatchesUnfoldedReferenceTrajectory) {
  constexpr double kMeanSpeed = 3.0;
  constexpr double kAlpha = 0.8;
  constexpr double kSpeedStddev = 1.0;
  constexpr double kHeadingStddev = 0.5;
  constexpr int kIntervals = 500;
  constexpr double kTau = 2.0 * std::numbers::pi;

  // Huge clamped field so no boundary folding perturbs either trajectory.
  const Field field(1e6, 1e6, BoundaryPolicy::kClamp);
  const auto model = make_mobility(
      MobilityKind::kGaussMarkov,
      {.mean_speed = kMeanSpeed, .alpha = kAlpha,
       .speed_stddev = kSpeedStddev, .heading_stddev = kHeadingStddev});
  std::vector<Vec2> pts{{5e5, 5e5}};

  // Unfolded reference: the same AR(1) recurrences on the same RNG stream,
  // with the heading accumulating without bound.
  Xoshiro256 rng(2024);
  Xoshiro256 ref_rng(2024);
  const auto normal = [&ref_rng]() {
    const double u1 = 1.0 - ref_rng.uniform01();
    const double u2 = ref_rng.uniform01();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTau * u2);
  };
  const double memory = std::sqrt(1.0 - kAlpha * kAlpha);
  Vec2 ref_pos{5e5, 5e5};
  double speed = kMeanSpeed;
  double heading = 0.0;
  bool initialized = false;
  for (int t = 0; t < kIntervals; ++t) {
    model->step(pts, field, rng);
    if (!initialized) {
      heading = ref_rng.uniform(0.0, kTau);
      initialized = true;
    }
    speed = std::max(0.0, kAlpha * speed + (1.0 - kAlpha) * kMeanSpeed +
                              memory * kSpeedStddev * normal());
    heading += memory * kHeadingStddev * normal();  // never folded
    ref_pos = ref_pos +
              Vec2{std::cos(heading), std::sin(heading)} * speed;
    ASSERT_NEAR(pts[0].x, ref_pos.x, 1e-6) << "interval " << t;
    ASSERT_NEAR(pts[0].y, ref_pos.y, 1e-6) << "interval " << t;
  }
}

}  // namespace
}  // namespace pacds
