// Tests for the `pacds serve` layer: wire-protocol strictness, admission
// control, tenant lifecycle (digest caching, LRU eviction, shutdown), and
// the headline determinism claims — the serve path's metrics stream is
// bit-identical to a standalone run, and the output bytes do not depend on
// the server's --threads value.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "io/json_parse.hpp"
#include "obs/jsonl.hpp"
#include "obs/validate.hpp"
#include "sim/montecarlo.hpp"

namespace pacds::serve {
namespace {

std::string serve_lines(const std::vector<std::string>& lines,
                        ServeOptions options = {}) {
  std::ostringstream out;
  Server server(options, out);
  server.process_lines(lines);
  return out.str();
}

/// Splits a JSONL buffer into parsed records.
std::vector<JsonValue> records_of(const std::string& stream) {
  std::vector<JsonValue> records;
  std::istringstream in(stream);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) records.push_back(parse_json(line));
  }
  return records;
}

/// Records of one "type" (serve_response, serve_error, interval, ...).
std::vector<JsonValue> records_of_type(const std::string& stream,
                                       const std::string& type) {
  std::vector<JsonValue> out;
  for (JsonValue& record : records_of(stream)) {
    const JsonValue* t = record.find("type");
    if (t != nullptr && t->as_string() == type) out.push_back(record);
  }
  return out;
}

/// Re-serializes every record with the wall-clock "*_ns" fields zeroed and,
/// optionally, the serve envelope stripped for standalone comparison:
/// responses/errors dropped (no standalone counterpart) and the "tenant"
/// tag removed. Everything else — key order, number formatting, record
/// order — must match byte for byte.
std::string normalize(const std::string& stream, bool strip_envelope) {
  std::ostringstream out;
  std::istringstream in(stream);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue record = parse_json(line);
    const JsonValue* type = record.find("type");
    if (strip_envelope && type != nullptr &&
        (type->as_string() == "serve_response" ||
         type->as_string() == "serve_error")) {
      continue;
    }
    JsonWriter json(out);
    json.begin_object();
    for (const auto& [key, value] : record.as_object()) {
      if (strip_envelope && key == "tenant") continue;
      json.key(key);
      if (value.is_number() && key.size() > 3 &&
          key.compare(key.size() - 3, 3, "_ns") == 0) {
        json.value(0);
      } else {
        write_json(json, value);
      }
    }
    json.end_object();
    out << "\n";
  }
  return out.str();
}

/// Canonical form for serve-vs-standalone comparison.
std::string canonicalize(const std::string& stream) {
  return normalize(stream, /*strip_envelope=*/true);
}

/// Timing-free form of a full serve stream, envelope included.
std::string zero_ns(const std::string& stream) {
  return normalize(stream, /*strip_envelope=*/false);
}

RequestError parse_error_of(const std::string& line) {
  RequestError error;
  EXPECT_FALSE(parse_request(line, 1, error).has_value()) << line;
  return error;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocolTest, MalformedLinesAreParseErrors) {
  EXPECT_EQ(parse_error_of("not json").code, ErrorCode::kParse);
  EXPECT_EQ(parse_error_of("{\"op\":\"status\"").code, ErrorCode::kParse);
  EXPECT_EQ(parse_error_of("[1,2]").code, ErrorCode::kSchema);
  // Duplicate keys are rejected by the parser itself, before any schema
  // logic sees the line — a smuggled second "tenant" can't slip through.
  EXPECT_EQ(
      parse_error_of(R"({"op":"status","tenant":"a","tenant":"b"})").code,
      ErrorCode::kParse);
}

TEST(ServeProtocolTest, SchemaViolationsAreNamed) {
  EXPECT_EQ(parse_error_of(R"({"tenant":"a"})").code, ErrorCode::kSchema);
  EXPECT_EQ(parse_error_of(R"({"op":"warp","tenant":"a"})").code,
            ErrorCode::kSchema);
  // Per-op key whitelist: tick does not take config, status no intervals.
  EXPECT_EQ(parse_error_of(
                R"({"op":"tick","tenant":"a","config":{"n":5}})")
                .code,
            ErrorCode::kSchema);
  EXPECT_EQ(
      parse_error_of(R"({"op":"status","tenant":"a","intervals":3})").code,
      ErrorCode::kSchema);
  // Missing required keys.
  EXPECT_EQ(parse_error_of(R"({"op":"status"})").code, ErrorCode::kSchema);
  EXPECT_EQ(parse_error_of(R"({"op":"create","tenant":"a"})").code,
            ErrorCode::kSchema);
  // Range checks ride the shared config parser.
  EXPECT_EQ(parse_error_of(
                R"({"op":"create","tenant":"a","config":{"n":-3}})")
                .code,
            ErrorCode::kSchema);
}

TEST(ServeProtocolTest, TenantNamesAreIdentifiers) {
  EXPECT_TRUE(valid_tenant_name("a"));
  EXPECT_TRUE(valid_tenant_name("tenant-7.B_x"));
  EXPECT_FALSE(valid_tenant_name(""));
  EXPECT_FALSE(valid_tenant_name("has space"));
  EXPECT_FALSE(valid_tenant_name("quote\"inject"));
  EXPECT_FALSE(valid_tenant_name(std::string(65, 'a')));
  EXPECT_EQ(parse_error_of(R"({"op":"status","tenant":"a b"})").code,
            ErrorCode::kSchema);
}

TEST(ServeProtocolTest, ParsedCreateCarriesAllFields) {
  RequestError error;
  const auto request = parse_request(
      R"({"op":"create","tenant":"t1","config":{"n":9,"radius":40},)"
      R"("seed":11,"trials":3})",
      7, error);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->op, Op::kCreate);
  EXPECT_EQ(request->seq, 7u);
  EXPECT_EQ(request->tenant, "t1");
  EXPECT_EQ(request->config.n_hosts, 9);
  EXPECT_DOUBLE_EQ(request->config.radius, 40.0);
  EXPECT_EQ(request->seed, 11u);
  EXPECT_EQ(request->trials, 3);
  EXPECT_FALSE(request->has_faults);
}

TEST(ServeProtocolTest, DigestSeparatesStreamsNotSpellings) {
  SimConfig config;
  config.n_hosts = 12;
  const std::string base = tenant_digest(config, 5, 2, nullptr);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(tenant_digest(config, 5, 2, nullptr), base);
  EXPECT_NE(tenant_digest(config, 6, 2, nullptr), base);
  EXPECT_NE(tenant_digest(config, 5, 3, nullptr), base);
  SimConfig other = config;
  other.n_hosts = 13;
  EXPECT_NE(tenant_digest(other, 5, 2, nullptr), base);
}

TEST(ServeProtocolTest, TagTenantLinesPrependsFirstMember) {
  EXPECT_EQ(tag_tenant_lines("{\"a\":1}\n", "t"),
            "{\"tenant\":\"t\",\"a\":1}\n");
  EXPECT_EQ(tag_tenant_lines("{}\n", "t"), "{\"tenant\":\"t\"}\n");
  EXPECT_EQ(tag_tenant_lines("{\"a\":1}\n{\"b\":2}\n", "t"),
            "{\"tenant\":\"t\",\"a\":1}\n{\"tenant\":\"t\",\"b\":2}\n");
  // Tagged lines still parse strictly (no duplicate keys introduced).
  const JsonValue tagged =
      parse_json("{\"tenant\":\"t\",\"a\":1}");
  EXPECT_EQ(tagged.find("tenant")->as_string(), "t");
}

// ------------------------------------------------------------------ server

TEST(ServeServerTest, CreateTickRoundTrip) {
  const std::string out = serve_lines(
      {R"({"op":"create","tenant":"a","config":{"n":16,"radius":35},)"
       R"("seed":3,"trials":1})",
       R"({"op":"tick","tenant":"a","intervals":2})"});
  const auto manifests = records_of_type(out, "run_manifest");
  ASSERT_EQ(manifests.size(), 1u);
  EXPECT_EQ(manifests[0].find("tenant")->as_string(), "a");
  EXPECT_EQ(manifests[0].as_object()[0].first, "tenant");

  const auto intervals = records_of_type(out, "interval");
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].find("tenant")->as_string(), "a");

  const auto responses = records_of_type(out, "serve_response");
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].find("seq")->as_number(), 1.0);
  EXPECT_EQ(responses[0].find("op")->as_string(), "create");
  EXPECT_FALSE(responses[0].find("cached")->as_bool());
  EXPECT_EQ(responses[1].find("seq")->as_number(), 2.0);
  EXPECT_EQ(responses[1].find("intervals_run")->as_number(), 2.0);
  EXPECT_FALSE(responses[1].find("finished")->as_bool());
}

TEST(ServeServerTest, UnknownTenantIsAnError) {
  for (const char* line :
       {R"({"op":"tick","tenant":"ghost"})", R"({"op":"status","tenant":"ghost"})",
        R"({"op":"evict","tenant":"ghost"})"}) {
    const std::string out = serve_lines({line});
    const auto errors = records_of_type(out, "serve_error");
    ASSERT_EQ(errors.size(), 1u) << line;
    EXPECT_EQ(errors[0].find("code")->as_string(), "unknown_tenant");
  }
}

TEST(ServeServerTest, RecreateIsCachedOnlyOnDigestMatch) {
  const std::string create =
      R"({"op":"create","tenant":"a","config":{"n":10},"seed":2})";
  const std::string out = serve_lines(
      {create, create,
       // Same stream, different threads: forced to 1 before digesting, so
       // still a cache hit.
       R"({"op":"create","tenant":"a","config":{"n":10,"threads":8},"seed":2})",
       // Different seed: a genuinely different stream, so a conflict.
       R"({"op":"create","tenant":"a","config":{"n":10},"seed":3})"});
  const auto responses = records_of_type(out, "serve_response");
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].find("cached")->as_bool());
  EXPECT_TRUE(responses[1].find("cached")->as_bool());
  EXPECT_TRUE(responses[2].find("cached")->as_bool());
  const auto errors = records_of_type(out, "serve_error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].find("code")->as_string(), "tenant_exists");
  // Only the first create emits a manifest; cache hits are silent.
  EXPECT_EQ(records_of_type(out, "run_manifest").size(), 1u);
}

TEST(ServeServerTest, LruEvictionNamesTheVictim) {
  ServeOptions options;
  options.max_tenants = 2;
  std::ostringstream out;
  Server server(options, out);
  server.process_lines(
      {R"({"op":"create","tenant":"a","config":{"n":8}})",
       R"({"op":"create","tenant":"b","config":{"n":8}})",
       R"({"op":"status","tenant":"a"})",  // refresh a; b is now LRU
       R"({"op":"create","tenant":"c","config":{"n":8}})"});
  EXPECT_EQ(server.tenant_count(), 2u);
  const auto responses = records_of_type(out.str(), "serve_response");
  ASSERT_EQ(responses.size(), 4u);
  const JsonValue* evicted = responses[3].find("evicted");
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->as_string(), "b");
  server.process_lines({R"({"op":"status","tenant":"b"})"});
  const auto errors = records_of_type(out.str(), "serve_error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].find("code")->as_string(), "unknown_tenant");
}

TEST(ServeServerTest, QueueFullLinesGetErrorRecords) {
  std::ostringstream out;
  Server server(ServeOptions{}, out);
  std::vector<Server::RawLine> batch(3);
  batch[0].seq = 1;
  batch[0].text = R"({"op":"create","tenant":"a","config":{"n":8}})";
  batch[1].seq = 2;
  batch[1].rejected = true;  // shed by admission control, text gone
  batch[2].seq = 3;
  batch[2].text = R"({"op":"status","tenant":"a"})";
  EXPECT_TRUE(server.process_batch(batch));
  const auto errors = records_of_type(out.str(), "serve_error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].find("seq")->as_number(), 2.0);
  EXPECT_EQ(errors[0].find("code")->as_string(), "queue_full");
  // The shed line did not poison its neighbors.
  EXPECT_EQ(records_of_type(out.str(), "serve_response").size(), 2u);
}

TEST(ServeServerTest, ShutdownRejectsEverythingAfter) {
  std::ostringstream out;
  Server server(ServeOptions{}, out);
  EXPECT_FALSE(server.process_lines(
      {R"({"op":"create","tenant":"a","config":{"n":8}})",
       R"({"op":"shutdown"})",
       R"({"op":"status","tenant":"a"})"}));
  EXPECT_TRUE(server.shut_down());
  const auto errors = records_of_type(out.str(), "serve_error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].find("code")->as_string(), "shutdown");
  EXPECT_EQ(errors[0].find("seq")->as_number(), 3.0);
  // And later batches stay rejected.
  EXPECT_FALSE(server.process_lines({R"({"op":"status","tenant":"a"})"}));
}

TEST(ServeServerTest, StreamModeMatchesProcessLines) {
  const std::vector<std::string> lines = {
      R"({"op":"create","tenant":"a","config":{"n":12},"trials":1})",
      R"({"op":"tick","tenant":"a"})",
      R"({"op":"shutdown"})"};
  std::string piped;
  {
    std::ostringstream out;
    std::istringstream in(lines[0] + "\n\n" + lines[1] + "\n" + lines[2] +
                          "\n");
    Server server(ServeOptions{}, out);
    EXPECT_EQ(server.run(in), 0);
    piped = out.str();
  }
  EXPECT_EQ(zero_ns(piped), zero_ns(serve_lines(lines)));
}

TEST(ServeServerTest, TickZeroRunsAllRemainingTrials) {
  const std::string out = serve_lines(
      {R"({"op":"create","tenant":"a","config":{"n":14},"seed":5,"trials":2})",
       R"({"op":"tick","tenant":"a"})",
       R"({"op":"status","tenant":"a"})"});
  const auto responses = records_of_type(out, "serve_response");
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[1].find("finished")->as_bool());
  EXPECT_EQ(responses[1].find("trial")->as_number(), 2.0);
  EXPECT_TRUE(responses[2].find("finished")->as_bool());
  EXPECT_EQ(records_of_type(out, "trial_summary").size(), 0u)
      << "tick streams interval records only";
}

// The headline oracle: a tenant's serve stream — created, then advanced in
// uneven chunks across several requests — is bit-identical to a standalone
// run_lifetime_trials stream modulo the tenant tag and wall-clock fields.
TEST(ServeServerTest, TenantStreamMatchesStandaloneRun) {
  SimConfig config;
  config.n_hosts = 24;
  config.radius = 30.0;
  std::ostringstream standalone;
  {
    obs::JsonlSink sink(standalone);
    (void)run_lifetime_trials(config, 3, 77, nullptr, &sink, nullptr);
  }

  const std::string served = serve_lines(
      {R"({"op":"create","tenant":"iso","config":{"n":24,"radius":30},)"
       R"("seed":77,"trials":3})",
       R"({"op":"tick","tenant":"iso","intervals":5})",
       R"({"op":"tick","tenant":"iso","intervals":1})",
       R"({"op":"tick","tenant":"iso"})"});

  EXPECT_EQ(canonicalize(served), canonicalize(standalone.str()));
}

// Same oracle through the sweep op, which runs the Monte-Carlo path
// directly: identical stream, one request.
TEST(ServeServerTest, SweepStreamMatchesStandaloneRun) {
  SimConfig config;
  config.n_hosts = 18;
  std::ostringstream standalone;
  {
    obs::JsonlSink sink(standalone);
    (void)run_lifetime_trials(config, 2, 9, nullptr, &sink, nullptr);
  }
  const std::string served = serve_lines(
      {R"({"op":"sweep","tenant":"s","config":{"n":18},"seed":9,"trials":2})"});
  EXPECT_EQ(canonicalize(served), canonicalize(standalone.str()));
}

// Two tenants with identical configs and seeds produce identical canonical
// streams — interleaving their ticks does not leak state across tenants.
TEST(ServeServerTest, TenantsAreIsolated) {
  const std::string create_a =
      R"({"op":"create","tenant":"a","config":{"n":16},"seed":4,"trials":2})";
  const std::string create_b =
      R"({"op":"create","tenant":"b","config":{"n":16},"seed":4,"trials":2})";
  const std::string out = serve_lines(
      {create_a, create_b,
       R"({"op":"tick","tenant":"a","intervals":4})",
       R"({"op":"tick","tenant":"b","intervals":2})",
       R"({"op":"tick","tenant":"a"})",
       R"({"op":"tick","tenant":"b"})"});

  const auto tenant_only = [&](const std::string& name) {
    std::ostringstream filtered;
    std::istringstream in(out);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const JsonValue record = parse_json(line);
      const JsonValue* tenant = record.find("tenant");
      if (tenant != nullptr && tenant->is_string() &&
          tenant->as_string() == name) {
        filtered << line << "\n";
      }
    }
    return canonicalize(filtered.str());
  };
  const std::string a = tenant_only("a");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, tenant_only("b"));
}

// The output stream is a pure function of the input lines: the server's
// thread count schedules work but cannot reorder or perturb records.
TEST(ServeServerTest, OutputIdenticalAcrossServerThreads) {
  const std::vector<std::string> lines = {
      R"({"op":"create","tenant":"a","config":{"n":14},"seed":1,"trials":2})",
      R"({"op":"create","tenant":"b","config":{"n":18},"seed":2,"trials":1})",
      R"({"op":"create","tenant":"c","config":{"n":10},"seed":3,"trials":2})",
      R"({"op":"tick","tenant":"b","intervals":6})",
      R"({"op":"tick","tenant":"a","intervals":3})",
      R"({"op":"sweep","tenant":"d","config":{"n":12},"seed":8,"trials":2})",
      R"({"op":"tick","tenant":"c","intervals":4})",
      R"({"op":"status","tenant":"a"})",
      R"({"op":"tick","tenant":"a"})",
      R"({"op":"tick","tenant":"c"})",
  };
  ServeOptions serial;
  serial.threads = 1;
  ServeOptions pooled;
  pooled.threads = 8;
  const std::string a = serve_lines(lines, serial);
  const std::string b = serve_lines(lines, pooled);
  EXPECT_EQ(zero_ns(a), zero_ns(b));
  EXPECT_EQ(records_of_type(a, "serve_response").size(), lines.size());
}

// The full serve output — responses and errors included — is a valid
// schema-v1 metrics stream, so CI can pipe it straight into
// `bench_report --validate-jsonl --strict`.
TEST(ServeServerTest, FullStreamPassesSchemaValidation) {
  const std::string out = serve_lines(
      {R"({"op":"create","tenant":"a","config":{"n":12},"trials":1})",
       R"({"op":"tick","tenant":"a"})",
       R"({"op":"bad"})"});
  std::istringstream in(out);
  const obs::StreamValidation result = obs::validate_metrics_stream(in);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.count_of("run_manifest"), 1u);
  EXPECT_GE(result.count_of("interval"), 1u);
  EXPECT_EQ(result.count_of("serve_response"), 2u);
  EXPECT_EQ(result.count_of("serve_error"), 1u);
}

}  // namespace
}  // namespace pacds::serve
