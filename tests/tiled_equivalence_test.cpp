// The tiled engine must be interchangeable with the flat engines wherever it
// is eligible: bit-identical TrialResults and traces across tile counts,
// thread counts, schemes and mobility intensities — plus hand-placed halo
// edge cases (hosts exactly on tile borders, exactly 2r from a tile
// rectangle, cross-border moves) where an off-by-epsilon halo filter or a
// stale ownership list would first diverge.

#include "sim/tiled_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/lifetime.hpp"

namespace pacds {
namespace {

SimConfig base_config() {
  SimConfig config;
  config.n_hosts = 80;
  config.field_width = 200.0;   // radius 25 -> finest grid is 4x4, so the
  config.field_height = 200.0;  // requested tile counts 1/4/16 all differ
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.initial_energy = 60.0;  // keeps trials short
  return config;
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.avg_gateways, b.avg_gateways);  // exact, not approximate
  EXPECT_EQ(a.avg_marked, b.avg_marked);
  EXPECT_EQ(a.hit_cap, b.hit_cap);
  EXPECT_EQ(a.initial_connected, b.initial_connected);
  EXPECT_EQ(a.placement_attempts, b.placement_attempts);
}

void expect_identical(const SimTrace& a, const SimTrace& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const IntervalRecord& ra = a.records[i];
    const IntervalRecord& rb = b.records[i];
    EXPECT_EQ(ra.interval, rb.interval) << "record " << i;
    EXPECT_EQ(ra.marked, rb.marked) << "record " << i;
    EXPECT_EQ(ra.gateways, rb.gateways) << "record " << i;
    EXPECT_EQ(ra.alive, rb.alive) << "record " << i;
    EXPECT_EQ(ra.min_energy, rb.min_energy) << "record " << i;
  }
}

void expect_matches_flat(SimConfig config, std::uint64_t seed) {
  SimTrace full_trace;
  SimTrace tiled_trace;
  config.engine = SimEngine::kFullRebuild;
  const TrialResult full = run_lifetime_trial(config, seed, &full_trace);
  config.engine = SimEngine::kTiled;
  const TrialResult tiled = run_lifetime_trial(config, seed, &tiled_trace);
  expect_identical(full, tiled);
  expect_identical(full_trace, tiled_trace);
}

// ---- Whole-trial equivalence across the tile/thread/scheme matrix ----------

class TiledEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, RuleSet, double>> {};

TEST_P(TiledEquivalenceTest, TrialAndTraceBitIdentical) {
  const auto [tiles, threads, rs, stay] = GetParam();
  SimConfig config = base_config();
  config.tiles = tiles;
  config.threads = threads;
  config.rule_set = rs;
  config.stay_probability = stay;
  expect_matches_flat(config, 17u);
}

INSTANTIATE_TEST_SUITE_P(
    TilesThreadsSchemesMobility, TiledEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 4, 16), ::testing::Values(1, 8),
                       ::testing::Values(RuleSet::kID, RuleSet::kND,
                                         RuleSet::kEL1, RuleSet::kEL2,
                                         RuleSet::kSEL),
                       ::testing::Values(0.5, 0.95)),
    [](const ::testing::TestParamInfo<TiledEquivalenceTest::ParamType>&
           param_info) {
      std::string name =
          "tiles" + std::to_string(std::get<0>(param_info.param)) +
          "_threads" + std::to_string(std::get<1>(param_info.param)) + "_" +
          to_string(std::get<2>(param_info.param)) + "_stay" +
          std::to_string(
              static_cast<int>(std::get<3>(param_info.param) * 100));
      for (char& c : name) {
        if (c == '-') c = '_';  // gtest names must be alphanumeric
      }
      return name;
    });

TEST(TiledEquivalenceTest, ShadowingRadioAcrossTileCounts) {
  // The radio's per-pair veto runs inside the tiled delta extraction; the
  // pruned link set must still respect every halo bound (fading only ever
  // shrinks range below the nominal radius).
  for (const int tiles : {1, 4, 16}) {
    SimConfig config = base_config();
    config.tiles = tiles;
    config.rule_set = RuleSet::kEL2;
    config.radio = RadioKind::kShadowing;
    config.radio_params.sigma_db = 4.0;
    config.radio_params.fading_seed = 11;
    config.connect_retries = 5;  // faded graphs may stay disconnected
    expect_matches_flat(config, 29u);
  }
}

TEST(TiledEquivalenceTest, ThreeDFieldKeepsXyTilingSound) {
  // A deep field funnels whole z-columns into single xy tiles; dirt tests
  // and halos must stay supersets (xy distance lower-bounds 3-D distance).
  SimConfig config = base_config();
  config.field_depth = 60.0;
  config.radius = 35.0;
  config.rule_set = RuleSet::kEL2;
  config.tiles = 4;
  config.connect_retries = 20;
  expect_matches_flat(config, 37u);
}

TEST(TiledEquivalenceTest, StabilityKeyDirtiesDecayingBuckets) {
  // SEL's EWMA decays at quiet hosts, so a stability bucket can change with
  // no topology change anywhere nearby — the tiled engine's stability diff
  // dirt must catch exactly those, across tile and thread counts.
  for (const int threads : {1, 8}) {
    SimConfig config = base_config();
    config.rule_set = RuleSet::kSEL;
    config.tiles = 16;
    config.threads = threads;
    config.stability_beta = 0.5;
    config.stability_quantum = 0.25;
    config.stay_probability = 0.9;  // mostly-quiet network: decay dominates
    expect_matches_flat(config, 41u);
  }
}

TEST(TiledEquivalenceTest, AutoTileCountAndNoRulesScheme) {
  SimConfig config = base_config();
  config.tiles = 0;  // auto: finest grid the 2r side constraint allows
  config.rule_set = RuleSet::kNR;
  expect_matches_flat(config, 23u);
}

TEST(TiledEquivalenceTest, UnquantizedKeysDirtyEverythingEveryInterval) {
  // quantum = 0: every alive node's key changes every interval, so every
  // tile is dirty every interval — the tiled engine must degrade to a
  // sharded full recompute, not diverge.
  SimConfig config = base_config();
  config.rule_set = RuleSet::kEL1;
  config.n_hosts = 40;
  config.energy_key_quantum = 0.0;
  expect_matches_flat(config, 5u);
}

// ---- Halo boundary edge cases (direct engine drive) ------------------------

// Field 600x600, radius 100: tile side is exactly 2r = 200, grid 3x3 with
// interior borders at x,y in {200, 400}. All coordinates below are exactly
// representable, so distances to tile rectangles are computed without
// rounding and "exactly on the border" / "exactly 2r away" mean just that.
SimConfig halo_config(int n_hosts) {
  SimConfig config;
  config.n_hosts = n_hosts;
  config.field_width = 600.0;
  config.field_height = 600.0;
  config.radius = 100.0;
  config.cds_options.strategy = Strategy::kSimultaneous;
  config.rule_set = RuleSet::kND;
  return config;
}

void expect_engines_agree_on(const SimConfig& config,
                             const std::vector<Vec2>& initial,
                             const std::vector<std::vector<Vec2>>& steps) {
  SimConfig full_cfg = config;
  full_cfg.engine = SimEngine::kFullRebuild;
  FullRebuildEngine full(full_cfg);
  TiledEngine tiled(config);
  const std::vector<double> levels(initial.size(), 100.0);

  auto check = [&](const std::vector<Vec2>& positions, int step) {
    full.update(positions, levels);
    tiled.update(positions, levels);
    ASSERT_EQ(full.gateways(), tiled.gateways())
        << "step " << step << ": full " << full.gateways().to_string()
        << " vs tiled " << tiled.gateways().to_string();
    ASSERT_EQ(full.counts().marked, tiled.counts().marked) << "step " << step;
  };
  check(initial, -1);
  for (std::size_t s = 0; s < steps.size(); ++s) {
    check(steps[s], static_cast<int>(s));
  }
}

TEST(TiledHaloTest, HostExactlyOnTileBorder) {
  // A five-host chain straddling the x = 200 border, with one host exactly
  // on it. Every marking/rule decision crosses the border, so any
  // ownership or halo misclassification of the border host shows up as a
  // gateway diff.
  const SimConfig config = halo_config(5);
  const std::vector<Vec2> chain = {
      {100.0, 300.0}, {200.0, 300.0},  // exactly on the tile border
      {300.0, 300.0}, {400.0, 300.0}, {500.0, 300.0}};
  // Nudge the border host to either side (ownership flips), then back.
  std::vector<std::vector<Vec2>> steps(3, chain);
  steps[0][1] = {199.0, 300.0};
  steps[1][1] = {201.0, 300.0};
  expect_engines_agree_on(config, chain, steps);
}

TEST(TiledHaloTest, HostExactlyTwoRadiiFromTileRectangle) {
  // Colinear chain where the host at x = 400 sits exactly 2r = 200 from
  // tile (0,1)'s rectangle [0,200]x[200,400]: it is the farthest host whose
  // row can still matter to an owned decision, so the halo filter must use
  // <= 2r, not < 2r. Dropping it would change rule decisions for the host
  // at x = 200 (its neighbor's row would lose a bit).
  const SimConfig config = halo_config(5);
  const std::vector<Vec2> chain = {
      {100.0, 300.0}, {200.0, 300.0}, {300.0, 300.0},
      {400.0, 300.0},  // exactly 2r from the leftmost tile's rectangle
      {500.0, 300.0}};
  // Drop the chain end in and out of range so coverage decisions flip.
  std::vector<std::vector<Vec2>> steps(2, chain);
  steps[0][4] = {599.0, 300.0};  // breaks the 400-500 link
  expect_engines_agree_on(config, chain, steps);
}

TEST(TiledHaloTest, CrossBorderMoveMidTrial) {
  // A host jumps across a tile border (ownership must follow) while a
  // second host jumps two tiles away in the same interval. Both the old
  // and new neighborhoods span borders.
  const SimConfig config = halo_config(6);
  const std::vector<Vec2> initial = {{150.0, 150.0}, {210.0, 150.0},
                                     {290.0, 150.0}, {150.0, 250.0},
                                     {450.0, 450.0}, {500.0, 450.0}};
  std::vector<std::vector<Vec2>> steps;
  auto step = initial;
  step[1] = {190.0, 150.0};  // crosses x=200 right-to-left
  steps.push_back(step);
  step[1] = {210.0, 150.0};  // and back
  step[4] = {150.0, 350.0};  // two-tile jump into the far chain's tile column
  steps.push_back(step);
  step[4] = {450.0, 450.0};
  steps.push_back(step);
  expect_engines_agree_on(config, initial, steps);
}

// ---- Selection and eligibility ---------------------------------------------

TEST(TiledSelectionTest, ForcedTiledThrowsWhenIneligible) {
  SimConfig config = base_config();
  config.engine = SimEngine::kTiled;
  config.cds_options.strategy = Strategy::kSequential;
  EXPECT_THROW(make_lifetime_engine(config), std::invalid_argument);

  config = base_config();
  config.engine = SimEngine::kTiled;
  config.cds_options.clique_policy = CliquePolicy::kElectMaxKey;
  EXPECT_FALSE(tiled_engine_eligible(config));
  EXPECT_THROW(make_lifetime_engine(config), std::invalid_argument);
}

TEST(TiledSelectionTest, TileCountIsClampedNotRejected) {
  // Requesting more tiles than the 2r side constraint allows must clamp to
  // the finest legal grid (and still be bit-identical — covered above).
  SimConfig config = base_config();
  config.tiles = 1 << 20;
  config.engine = SimEngine::kTiled;
  const TrialResult r = run_lifetime_trial(config, 3);
  EXPECT_GT(r.intervals, 0);
}

}  // namespace
}  // namespace pacds
