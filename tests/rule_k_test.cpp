// Tests for the generalized Rule k (Dai-Wu): coverage by connected sets of
// higher-priority neighbors, safety under every strategy (including the
// synchronous one the pairwise rules fail), and gadgets that only Rule k
// can reduce.

#include "core/rule_k.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::figure1_graph;
using testing::path_graph;

/// Three-cover gadget: v=0 adjacent to u1=1, u2=2, u3=3 forming a path
/// 1-2-3 (connected), plus private leaves a=4 (on 1), b=5 (on 2), c=6
/// (on 3). N(0) = {1,2,3}; each ui covers the others' membership plus its
/// leaf. No PAIR of {1,2,3} covers N(0) ∪ leaves... but the triple does
/// cover N(0) = {1,2,3}: 1 ∈ N(2), 2 ∈ N(1), 3 ∈ N(2). A pair also covers
/// it, so extend N(0) with two extra nodes d=7, e=8 where d ∈ N(1) only
/// and e ∈ N(3) only; then {1,2,3} is needed: N(0) = {1,2,3,7,8},
/// 7 ∈ N(1) only, 8 ∈ N(3) only, 1 needs N(2), so no pair suffices.
Graph triple_cover_gadget() {
  return Graph::from_edges(9, {{0, 1},
                               {0, 2},
                               {0, 3},
                               {1, 2},
                               {2, 3},
                               {1, 4},
                               {2, 5},
                               {3, 6},
                               {0, 7},
                               {1, 7},
                               {0, 8},
                               {3, 8}});
}

TEST(RuleKTest, TripleCoverGadgetPreconditions) {
  const Graph g = triple_cover_gadget();
  const DynBitset marked = marking_process(g);
  for (const NodeId v : {0, 1, 2, 3}) {
    EXPECT_TRUE(marked.test(static_cast<std::size_t>(v))) << v;
  }
  // No pair of marked neighbors covers N(0) = {1,2,3,7,8}.
  EXPECT_FALSE(g.open_covered_by_pair(0, 1, 2));
  EXPECT_FALSE(g.open_covered_by_pair(0, 1, 3));
  EXPECT_FALSE(g.open_covered_by_pair(0, 2, 3));
}

TEST(RuleKTest, TripleCoverOnlyRuleKRemoves) {
  const Graph g = triple_cover_gadget();
  const DynBitset marked = marking_process(g);
  const PriorityKey key(KeyKind::kId, g);
  // The pairwise Rule 2 cannot fire for node 0...
  EXPECT_FALSE(rule2_refined_would_unmark(g, marked, key, 0));
  EXPECT_FALSE(rule1_would_unmark(g, marked, key, 0));
  // ...but the connected triple {1,2,3} (all higher id) covers it.
  EXPECT_TRUE(rule_k_would_unmark(g, marked, key, 0));
}

TEST(RuleKTest, RequiresHigherPriorityCovers) {
  // Relabel so v has the HIGHEST id: nobody may remove it.
  // v=8 adjacent to 0,1,2 (path 0-1-2), leaves and privates as before.
  const Graph g = Graph::from_edges(9, {{8, 0},
                                        {8, 1},
                                        {8, 2},
                                        {0, 1},
                                        {1, 2},
                                        {0, 3},
                                        {1, 4},
                                        {2, 5},
                                        {8, 6},
                                        {0, 6},
                                        {8, 7},
                                        {2, 7}});
  const DynBitset marked = marking_process(g);
  ASSERT_TRUE(marked.test(8));
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_FALSE(rule_k_would_unmark(g, marked, key, 8));
}

TEST(RuleKTest, RequiresConnectedCover) {
  // v=0 with neighbors 1 and 2 NOT adjacent; their union covers N(0) but
  // they are disconnected, so Rule k must not fire.
  // N(0) = {1,2}; 1 ∈ N(2)? no. Make N(0) = {1,2} with 1-3, 2-4 tails.
  const Graph g = Graph::from_edges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 4}});
  const DynBitset marked = marking_process(g);
  ASSERT_TRUE(marked.test(0));
  const PriorityKey key(KeyKind::kId, g);
  // Even though {1,2} both marked and higher id, 1 ∉ N(2) and 2 ∉ N(1):
  // coverage of N(0) = {1,2} already fails, and they are disconnected.
  EXPECT_FALSE(rule_k_would_unmark(g, marked, key, 0));
}

TEST(RuleKTest, RequiresMarkedCovers) {
  const Graph g = triple_cover_gadget();
  DynBitset partial(9);
  partial.set(0);
  partial.set(1);  // 2 and 3 unmarked
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_FALSE(rule_k_would_unmark(g, partial, key, 0));
}

TEST(RuleKTest, SubsumesRule1Gadget) {
  // Rule 1 case: N[v] ⊆ N[u] with higher-key u. Rule k sees u's component
  // {u} covering N(v).
  const Graph g = Graph::from_edges(
      5, {{2, 0}, {2, 1}, {2, 3}, {3, 0}, {3, 1}, {3, 4}});
  const DynBitset marked = marking_process(g);
  const PriorityKey key(KeyKind::kId, g);
  EXPECT_TRUE(rule_k_would_unmark(g, marked, key, 2));
  EXPECT_FALSE(rule_k_would_unmark(g, marked, key, 3));
}

TEST(RuleKTest, SimultaneousPassIsSafeOnGadgets) {
  for (const Graph& g :
       {triple_cover_gadget(), figure1_graph(), path_graph(8)}) {
    const PriorityKey key(KeyKind::kId, g);
    const DynBitset after =
        simultaneous_rule_k_pass(g, key, marking_process(g));
    const CdsCheck check = check_cds(g, after);
    EXPECT_TRUE(check.ok()) << check.message;
  }
}

TEST(RuleKTest, ComputeApiValidatesEnergy) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)compute_cds_rule_k(g, KeyKind::kEnergyId),
               std::invalid_argument);
  EXPECT_NO_THROW((void)compute_cds_rule_k(g, KeyKind::kId));
}

TEST(RuleKTest, CliquePolicyApplied) {
  const Graph g = complete_graph(4);
  const CdsResult r = compute_cds_rule_k(g, KeyKind::kId, {},
                                         Strategy::kSimultaneous,
                                         CliquePolicy::kElectMaxKey);
  EXPECT_EQ(r.gateway_count, 1u);
}

class RuleKPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RuleKPropertyTest, AllStrategiesAndKeysSafe) {
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  const Field field = Field::paper_field();
  const Graph g = build_udg(random_placement(n, field, rng), kPaperRadius);
  std::vector<double> energy;
  for (int i = 0; i < n; ++i) {
    energy.push_back(static_cast<double>(rng.uniform_int(1, 5)));
  }
  for (const KeyKind kind : {KeyKind::kId, KeyKind::kDegreeId,
                             KeyKind::kEnergyId, KeyKind::kEnergyDegreeId}) {
    for (const Strategy strategy :
         {Strategy::kSimultaneous, Strategy::kSequential}) {
      const CdsResult r = compute_cds_rule_k(g, kind, energy, strategy);
      const CdsCheck check = check_cds(g, r.gateways);
      // The headline property: Rule k is safe even under the SYNCHRONOUS
      // strategy where the pairwise refined rules fail ~30% of the time.
      EXPECT_TRUE(check.ok())
          << to_string(kind) << "/" << to_string(strategy) << " n=" << n
          << " seed=" << seed << ": " << check.message;
      EXPECT_TRUE(r.gateways.is_subset_of(r.marked_only));
    }
  }
}

TEST_P(RuleKPropertyTest, SubsumesKeyGuardedPairwiseDecisions) {
  // Theorems: on the same mark snapshot, (a) a Rule-1 removal (coverage by
  // one higher-key marked neighbor) is always a Rule-k removal, and (b) a
  // simple-Rule-2 removal (v key-min of a covered triple — both covers
  // strictly higher) is always a Rule-k removal. The converse is false:
  // Rule k accepts connected covers of any size. Note the *refined* Rule 2
  // is NOT subsumed — its case 1 removes without a priority guard, which is
  // precisely the unsafe part Rule k drops.
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed ^ 0xfeed);
  const Field field = Field::paper_field();
  const Graph g = build_udg(random_placement(n, field, rng), kPaperRadius);
  const DynBitset marked = marking_process(g);
  for (const KeyKind kind : {KeyKind::kId, KeyKind::kDegreeId}) {
    const PriorityKey key(kind, g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rule1_would_unmark(g, marked, key, v) ||
          rule2_simple_would_unmark(g, marked, key, v)) {
        EXPECT_TRUE(rule_k_would_unmark(g, marked, key, v))
            << "node " << v << " key " << to_string(kind);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, RuleKPropertyTest,
    ::testing::Combine(::testing::Values(10, 25, 40, 60),
                       ::testing::Values(3u, 7u, 11u, 13u, 17u)),
    [](const ::testing::TestParamInfo<RuleKPropertyTest::ParamType>&
           param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace pacds
