// Tests for deterministic RNG: reproducibility, ranges, seed derivation.

#include "net/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace pacds {
namespace {

TEST(RngTest, SplitMixDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SplitMixSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, XoshiroDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, XoshiroSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, Uniform01InRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, Uniform01RoughlyUniform) {
  Xoshiro256 rng(2);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformBadRangeThrows) {
  Xoshiro256 rng(3);
  EXPECT_THROW((void)rng.uniform(5.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_int(5, 1), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Xoshiro256 rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.uniform_int(1, 8);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 8);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 paper directions appear
}

TEST(RngTest, UniformIntDegenerateRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(RngTest, UniformIntUnbiased) {
  Xoshiro256 rng(6);
  std::vector<int> counts(6, 0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(1, 6) - 1)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 6.0, trials * 0.01);
  }
}

TEST(RngTest, BernoulliRate) {
  Xoshiro256 rng(7);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, DeriveSeedDecorrelates) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(derive_seed(12345, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace pacds
