// Tests for the exact minimum-CDS solver and the approximation quality of
// every heuristic against it on small graphs.

#include "baselines/exact_mcds.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "baselines/tree_cds.hpp"
#include "core/cds.hpp"
#include "core/verify.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "test_graphs.hpp"

namespace pacds {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::figure1_graph;
using testing::path_graph;
using testing::star_graph;

TEST(ExactMcdsTest, KnownOptima) {
  // P5: optimum {1,2,3}. Star: {center}. C5: any 3 consecutive. K4: empty
  // (exempt clique). Figure 1: {v, w} is optimal? v alone dominates u,w,y
  // but not x -> need 2.
  EXPECT_EQ(exact_min_cds(path_graph(5))->count(), 3u);
  EXPECT_EQ(exact_min_cds(star_graph(6))->count(), 1u);
  EXPECT_EQ(exact_min_cds(cycle_graph(5))->count(), 3u);
  EXPECT_EQ(exact_min_cds(complete_graph(4))->count(), 0u);
  EXPECT_EQ(exact_min_cds(figure1_graph())->count(), 2u);
}

TEST(ExactMcdsTest, ResultIsValid) {
  for (const Graph& g : {path_graph(7), cycle_graph(8), figure1_graph()}) {
    const auto opt = exact_min_cds(g);
    ASSERT_TRUE(opt.has_value());
    EXPECT_TRUE(check_cds(g, *opt).ok());
  }
}

TEST(ExactMcdsTest, EmptyAndTinyGraphs) {
  EXPECT_EQ(exact_min_cds(Graph(0))->count(), 0u);
  EXPECT_EQ(exact_min_cds(Graph(1))->count(), 0u);   // singleton exempt
  EXPECT_EQ(exact_min_cds(Graph(3))->count(), 0u);   // isolated singletons
  EXPECT_EQ(exact_min_cds(complete_graph(2))->count(), 0u);
}

TEST(ExactMcdsTest, DisconnectedComponents) {
  // Two P3s: each needs its middle -> optimum 2.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  EXPECT_EQ(exact_min_cds(g)->count(), 2u);
}

TEST(ExactMcdsTest, SizeGuard) {
  EXPECT_FALSE(exact_min_cds(Graph(25), 20).has_value());
  EXPECT_TRUE(exact_min_cds(Graph(10), 20).has_value());
}

TEST(ClusterCdsTest, LowestIdHeads) {
  // P5: head 0 covers {0,1}; 2 covers {1,2,3}... iterate: v=0 head, covers
  // 0,1; v=2 uncovered -> head, covers 1,2,3; v=4 uncovered -> head.
  const DynBitset heads = lowest_id_clusterheads(path_graph(5));
  EXPECT_TRUE(heads.test(0));
  EXPECT_TRUE(heads.test(2));
  EXPECT_TRUE(heads.test(4));
  EXPECT_EQ(heads.count(), 3u);
}

TEST(ClusterCdsTest, HeadsDominateAndCdsValid) {
  Xoshiro256 rng(91);
  const auto placed = random_connected_placement(30, Field::paper_field(),
                                                 kPaperRadius, rng, 2000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const DynBitset heads = lowest_id_clusterheads(g);
  // Heads form a dominating independent set.
  for (const auto& [u, v] : g.edges()) {
    EXPECT_FALSE(heads.test(static_cast<std::size_t>(u)) &&
                 heads.test(static_cast<std::size_t>(v)));
  }
  const DynBitset cds = cluster_cds(g);
  EXPECT_TRUE(heads.is_subset_of(cds));
  EXPECT_TRUE(check_cds(g, cds).ok());
}

// Approximation quality of every scheme/baseline vs the optimum on small
// random networks.
class ApproxRatioTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ApproxRatioTest, AllHeuristicsWithinBound) {
  const auto [n, seed] = GetParam();
  Xoshiro256 rng(seed);
  const auto placed = random_connected_placement(n, Field::paper_field(),
                                                 kPaperRadius * 2.0, rng,
                                                 5000);
  ASSERT_TRUE(placed.has_value());
  const Graph& g = placed->graph;
  const auto opt = exact_min_cds(g, 14);
  ASSERT_TRUE(opt.has_value());
  const std::size_t optimum = opt->count();

  const auto check_ratio = [&](const char* name, std::size_t size) {
    EXPECT_GE(size, optimum) << name;  // nobody beats the optimum
    // Loose sanity bound: no heuristic should exceed 4x + 3 on such tiny
    // dense graphs.
    EXPECT_LE(size, 4 * optimum + 3) << name;
  };
  check_ratio("ID", compute_cds(g, RuleSet::kID).gateway_count);
  check_ratio("ND", compute_cds(g, RuleSet::kND).gateway_count);
  check_ratio("greedy", greedy_mcds(g).count());
  check_ratio("tree", bfs_tree_cds(g).count());
  check_ratio("mis", mis_cds(g).count());
  check_ratio("cluster", cluster_cds(g).count());
}

INSTANTIATE_TEST_SUITE_P(
    SmallNetworks, ApproxRatioTest,
    ::testing::Combine(::testing::Values(8, 11, 14),
                       ::testing::Values(301u, 302u, 303u, 304u)),
    [](const ::testing::TestParamInfo<ApproxRatioTest::ParamType>&
           param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace pacds
