// Unit tests for DynBitset: construction, bit ops, set algebra, iteration.

#include "core/bitset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace pacds {
namespace {

TEST(BitsetTest, DefaultConstructedIsEmpty) {
  DynBitset bits;
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
}

TEST(BitsetTest, SizedConstructionAllClear) {
  DynBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.count(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.test(i));
}

TEST(BitsetTest, SetAndTest) {
  DynBitset bits(100);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(99);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(99));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 4u);
}

TEST(BitsetTest, SetFalseClears) {
  DynBitset bits(10);
  bits.set(5);
  bits.set(5, false);
  EXPECT_FALSE(bits.test(5));
}

TEST(BitsetTest, ResetClearsBit) {
  DynBitset bits(10);
  bits.set(3);
  bits.reset(3);
  EXPECT_FALSE(bits.test(3));
  EXPECT_TRUE(bits.none());
}

TEST(BitsetTest, OutOfRangeThrows) {
  DynBitset bits(10);
  EXPECT_THROW(bits.set(10), std::out_of_range);
  EXPECT_THROW((void)bits.test(10), std::out_of_range);
  EXPECT_THROW((void)bits.test(1000), std::out_of_range);
}

TEST(BitsetTest, SetAllRespectsSize) {
  DynBitset bits(70);
  bits.set_all();
  EXPECT_EQ(bits.count(), 70u);
  bits.reset_all();
  EXPECT_TRUE(bits.none());
}

TEST(BitsetTest, SetAllOnWordBoundary) {
  DynBitset bits(128);
  bits.set_all();
  EXPECT_EQ(bits.count(), 128u);
}

TEST(BitsetTest, AnyNone) {
  DynBitset bits(65);
  EXPECT_TRUE(bits.none());
  EXPECT_FALSE(bits.any());
  bits.set(64);
  EXPECT_TRUE(bits.any());
  EXPECT_FALSE(bits.none());
}

TEST(BitsetTest, SubsetBasic) {
  DynBitset a(100);
  DynBitset b(100);
  a.set(10);
  a.set(90);
  b.set(10);
  b.set(90);
  b.set(50);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(BitsetTest, EmptyIsSubsetOfAnything) {
  DynBitset empty(64);
  DynBitset full(64);
  full.set_all();
  EXPECT_TRUE(empty.is_subset_of(full));
  EXPECT_TRUE(empty.is_subset_of(empty));
}

TEST(BitsetTest, SubsetOfUnion) {
  DynBitset v(100);
  DynBitset a(100);
  DynBitset b(100);
  v.set(1);
  v.set(70);
  a.set(1);
  b.set(70);
  EXPECT_TRUE(v.is_subset_of_union(a, b));
  EXPECT_FALSE(v.is_subset_of(a));
  EXPECT_FALSE(v.is_subset_of(b));
  b.reset(70);
  EXPECT_FALSE(v.is_subset_of_union(a, b));
}

TEST(BitsetTest, SizeMismatchThrows) {
  DynBitset a(10);
  DynBitset b(11);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW((void)a.intersects(b), std::invalid_argument);
}

TEST(BitsetTest, Intersects) {
  DynBitset a(128);
  DynBitset b(128);
  a.set(100);
  b.set(101);
  EXPECT_FALSE(a.intersects(b));
  b.set(100);
  EXPECT_TRUE(a.intersects(b));
}

TEST(BitsetTest, UnionOperator) {
  DynBitset a(70);
  DynBitset b(70);
  a.set(1);
  b.set(69);
  const DynBitset u = a | b;
  EXPECT_TRUE(u.test(1));
  EXPECT_TRUE(u.test(69));
  EXPECT_EQ(u.count(), 2u);
}

TEST(BitsetTest, IntersectionOperator) {
  DynBitset a(70);
  DynBitset b(70);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  const DynBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(2));
}

TEST(BitsetTest, XorOperator) {
  DynBitset a(10);
  DynBitset b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  a ^= b;
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
  EXPECT_TRUE(a.test(3));
}

TEST(BitsetTest, Subtract) {
  DynBitset a(10);
  DynBitset b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  a.subtract(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
}

TEST(BitsetTest, Equality) {
  DynBitset a(10);
  DynBitset b(10);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

TEST(BitsetTest, FindFirst) {
  DynBitset bits(200);
  EXPECT_EQ(bits.find_first(), 200u);
  bits.set(150);
  EXPECT_EQ(bits.find_first(), 150u);
  bits.set(3);
  EXPECT_EQ(bits.find_first(), 3u);
}

TEST(BitsetTest, FindNext) {
  DynBitset bits(200);
  bits.set(3);
  bits.set(64);
  bits.set(199);
  EXPECT_EQ(bits.find_next(3), 64u);
  EXPECT_EQ(bits.find_next(64), 199u);
  EXPECT_EQ(bits.find_next(199), 200u);
  EXPECT_EQ(bits.find_next(0), 3u);
}

TEST(BitsetTest, ForEachSetAscending) {
  DynBitset bits(300);
  const std::vector<std::size_t> expected{0, 63, 64, 127, 128, 299};
  for (const auto i : expected) bits.set(i);
  std::vector<std::size_t> seen;
  bits.for_each_set([&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, ToIndices) {
  DynBitset bits(10);
  bits.set(2);
  bits.set(7);
  EXPECT_EQ(bits.to_indices(), (std::vector<std::size_t>{2, 7}));
}

TEST(BitsetTest, ToString) {
  DynBitset bits(10);
  EXPECT_EQ(bits.to_string(), "{}");
  bits.set(1);
  bits.set(4);
  EXPECT_EQ(bits.to_string(), "{1, 4}");
}

TEST(BitsetTest, CopySemantics) {
  DynBitset a(10);
  a.set(1);
  DynBitset b = a;
  b.set(2);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
  EXPECT_TRUE(b.test(2));
}

TEST(BitsetTest, SubsetAcrossManyWords) {
  DynBitset a(1000);
  DynBitset b(1000);
  for (std::size_t i = 0; i < 1000; i += 7) {
    a.set(i);
    b.set(i);
  }
  EXPECT_TRUE(a.is_subset_of(b));
  a.set(999);
  EXPECT_FALSE(a.is_subset_of(b));
}

}  // namespace
}  // namespace pacds
