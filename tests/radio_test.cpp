// Tests for the radio/propagation models (net/radio): deterministic
// per-pair fading, symmetry, downward truncation (the nominal radius stays
// a hard upper bound on link length — the contract the spatial grid and the
// tile halos are built on), and the ARQ drop surface the dist layer reads.

#include "net/radio.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/rng.hpp"
#include "net/udg.hpp"
#include "net/vec2.hpp"

namespace pacds {
namespace {

std::vector<Vec2> random_points(int n, double extent, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  }
  return pts;
}

TEST(RadioModelTest, UnitDiskIsExactlyTheNominalGraph) {
  const auto pts = random_points(60, 100.0, 1);
  const double radius = 30.0;
  const RadioModel radio(RadioKind::kUnitDisk, {}, radius);
  const Graph nominal = build_udg(pts, radius);
  const Graph gated = build_radio_links(pts, radius, radio);
  ASSERT_EQ(nominal.num_edges(), gated.num_edges());
  for (NodeId u = 0; u < nominal.num_nodes(); ++u) {
    for (const NodeId v : nominal.neighbors(u)) {
      EXPECT_TRUE(gated.has_edge(u, v));
    }
  }
  EXPECT_DOUBLE_EQ(radio.arq_drop(3, 7), 0.0);
}

TEST(RadioModelTest, FadedGraphsAreSubgraphsOfTheUnitDisk) {
  const auto pts = random_points(60, 100.0, 2);
  const double radius = 30.0;
  const Graph nominal = build_udg(pts, radius);
  for (const RadioKind kind :
       {RadioKind::kShadowing, RadioKind::kProbabilistic}) {
    RadioParams params;
    params.fading_seed = 77;
    const RadioModel radio(kind, params, radius);
    const Graph gated = build_radio_links(pts, radius, radio);
    EXPECT_LE(gated.num_edges(), nominal.num_edges()) << to_string(kind);
    for (NodeId u = 0; u < gated.num_nodes(); ++u) {
      for (const NodeId v : gated.neighbors(u)) {
        EXPECT_TRUE(nominal.has_edge(u, v))
            << to_string(kind) << ": radio added edge " << u << "-" << v;
      }
    }
  }
}

TEST(RadioModelTest, LinkIsDeterministicAndSymmetric) {
  RadioParams params;
  params.fading_seed = 5;
  const RadioModel a(RadioKind::kShadowing, params, 25.0);
  const RadioModel b(RadioKind::kShadowing, params, 25.0);  // fresh instance
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      const double d2 = 400.0;  // 20 units, inside the nominal radius
      EXPECT_EQ(a.link(u, v, d2), a.link(v, u, d2)) << u << "-" << v;
      EXPECT_EQ(a.link(u, v, d2), b.link(u, v, d2)) << u << "-" << v;
      EXPECT_DOUBLE_EQ(a.arq_drop(u, v), a.arq_drop(v, u)) << u << "-" << v;
      EXPECT_DOUBLE_EQ(a.arq_drop(u, v), b.arq_drop(u, v)) << u << "-" << v;
    }
  }
}

TEST(RadioModelTest, DifferentSeedsFadeDifferently) {
  const auto pts = random_points(80, 100.0, 3);
  RadioParams params;
  params.fading_seed = 1;
  const RadioModel one(RadioKind::kProbabilistic, params, 30.0);
  params.fading_seed = 2;
  const RadioModel two(RadioKind::kProbabilistic, params, 30.0);
  const Graph g1 = build_radio_links(pts, 30.0, one);
  const Graph g2 = build_radio_links(pts, 30.0, two);
  bool differs = false;
  for (NodeId u = 0; u < g1.num_nodes() && !differs; ++u) {
    for (const NodeId v : g1.neighbors(u)) {
      if (!g2.has_edge(u, v)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs) << "seeds 1 and 2 produced identical fading";
}

TEST(RadioModelTest, ZeroDistancePairsStayLinkedUnderShadowing) {
  // The truncated fade scales the radius by a factor in (0, 1]; a pair at
  // (essentially) zero distance survives every fade.
  RadioParams params;
  params.sigma_db = 8.0;
  params.fading_seed = 9;
  const RadioModel radio(RadioKind::kShadowing, params, 25.0);
  for (NodeId u = 0; u < 50; ++u) {
    EXPECT_TRUE(radio.link(u, u + 1, 0.0)) << u;
  }
}

TEST(RadioModelTest, ArqDropIsBoundedForEveryKind) {
  for (const RadioKind kind :
       {RadioKind::kShadowing, RadioKind::kProbabilistic}) {
    RadioParams params;
    params.fading_seed = 13;
    const RadioModel radio(kind, params, 25.0);
    for (NodeId u = 0; u < 30; ++u) {
      for (NodeId v = u + 1; v < 30; ++v) {
        const double drop = radio.arq_drop(u, v);
        EXPECT_GE(drop, 0.0) << to_string(kind);
        EXPECT_LE(drop, 0.5) << to_string(kind);  // kArqDropCap
      }
    }
  }
}

}  // namespace
}  // namespace pacds
