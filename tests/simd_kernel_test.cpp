// Word-exact equivalence of every simd kernel against the scalar reference,
// swept over every dispatch level the host supports and over widths that
// cover the empty row, sub-word rows, exact vector-lane multiples, and the
// ragged tails in between. The kernels operate on whole words (DynBitset
// keeps its padding bits clear separately), so equality here is on raw
// word arrays, including the full destination contents of the in-place ops.

#include "core/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/bitset.hpp"

namespace pacds {
namespace {

using simd::Kernels;
using simd::Level;
using simd::Word;

constexpr std::size_t kWidths[] = {0, 1, 63, 64, 65, 127, 512, 1000};

std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

std::vector<Word> random_words(std::mt19937_64& rng, std::size_t nwords,
                               int density_shift) {
  // density_shift selects how sparse the row is: AND of k draws keeps
  // roughly 2^-k of the bits, exercising both dense and near-empty rows.
  std::vector<Word> w(nwords);
  for (auto& x : w) {
    x = rng();
    for (int k = 0; k < density_shift; ++k) x &= rng();
  }
  return w;
}

const Kernels& table_at(Level level) {
  EXPECT_TRUE(simd::set_level(level));
  return simd::active();
}

class SimdLevelTest : public ::testing::TestWithParam<Level> {
 protected:
  void TearDown() override { simd::set_level(Level::kScalar); }
};

TEST_P(SimdLevelTest, InPlaceCombinesMatchScalar) {
  const Kernels& scalar = table_at(Level::kScalar);
  const Kernels& vec = table_at(GetParam());
  std::mt19937_64 rng(0xC0FFEEu);
  for (const std::size_t bits : kWidths) {
    const std::size_t nwords = words_for(bits);
    for (int density = 0; density < 3; ++density) {
      const auto a = random_words(rng, nwords, density);
      const auto b = random_words(rng, nwords, density);
      for (const auto op : {&Kernels::or_inplace, &Kernels::and_inplace,
                            &Kernels::andnot_inplace, &Kernels::xor_inplace}) {
        auto want = a;
        auto got = a;
        (scalar.*op)(want.data(), b.data(), nwords);
        (vec.*op)(got.data(), b.data(), nwords);
        EXPECT_EQ(want, got) << "nwords=" << nwords;
      }
    }
  }
}

TEST_P(SimdLevelTest, PredicatesMatchScalar) {
  const Kernels& scalar = table_at(Level::kScalar);
  const Kernels& vec = table_at(GetParam());
  std::mt19937_64 rng(0xBEEFu);
  for (const std::size_t bits : kWidths) {
    const std::size_t nwords = words_for(bits);
    for (int trial = 0; trial < 8; ++trial) {
      auto a = random_words(rng, nwords, trial % 3);
      auto b = random_words(rng, nwords, trial % 2);
      // Half the trials force a ⊆ b so the true branch is exercised too.
      if (trial % 2 == 0) {
        for (std::size_t i = 0; i < nwords; ++i) b[i] |= a[i];
      }
      const auto c = random_words(rng, nwords, 1);
      EXPECT_EQ(scalar.is_subset(a.data(), b.data(), nwords),
                vec.is_subset(a.data(), b.data(), nwords));
      EXPECT_EQ(scalar.is_subset_union(a.data(), b.data(), c.data(), nwords),
                vec.is_subset_union(a.data(), b.data(), c.data(), nwords));
      EXPECT_EQ(scalar.intersects(a.data(), b.data(), nwords),
                vec.intersects(a.data(), b.data(), nwords));
      EXPECT_EQ(scalar.is_zero(a.data(), nwords),
                vec.is_zero(a.data(), nwords));
      EXPECT_EQ(scalar.popcount(a.data(), nwords),
                vec.popcount(a.data(), nwords));
      if (bits > 0) {
        // Excuse one random bit; also probe the exact bit that breaks the
        // subset when only one residual bit exists.
        const std::size_t ignore = rng() % bits;
        const std::size_t iw = ignore / 64;
        const Word imask = Word{1} << (ignore % 64);
        EXPECT_EQ(scalar.is_subset_except(a.data(), b.data(), nwords, iw, imask),
                  vec.is_subset_except(a.data(), b.data(), nwords, iw, imask));
      }
    }
    // Degenerate rows: all-zero and all-ones.
    const std::vector<Word> zero(nwords, 0);
    const std::vector<Word> ones(nwords, ~Word{0});
    EXPECT_EQ(scalar.is_zero(zero.data(), nwords),
              vec.is_zero(zero.data(), nwords));
    EXPECT_EQ(scalar.is_subset(ones.data(), ones.data(), nwords),
              vec.is_subset(ones.data(), ones.data(), nwords));
    EXPECT_EQ(scalar.popcount(ones.data(), nwords),
              vec.popcount(ones.data(), nwords));
  }
}

TEST_P(SimdLevelTest, AndnotIntoAndScanMatchScalar) {
  const Kernels& scalar = table_at(Level::kScalar);
  const Kernels& vec = table_at(GetParam());
  std::mt19937_64 rng(0xABCDu);
  for (const std::size_t bits : kWidths) {
    const std::size_t nwords = words_for(bits);
    for (int trial = 0; trial < 8; ++trial) {
      auto a = random_words(rng, nwords, trial % 3);
      auto b = random_words(rng, nwords, trial % 2);
      if (trial % 3 == 0) {
        for (std::size_t i = 0; i < nwords; ++i) b[i] |= a[i];  // empty residual
      }
      std::vector<Word> want(nwords, Word{0xAA});  // sentinel fill
      std::vector<Word> got(nwords, Word{0x55});
      const std::size_t want_pop =
          scalar.andnot_into(want.data(), a.data(), b.data(), nwords);
      const std::size_t got_pop =
          vec.andnot_into(got.data(), a.data(), b.data(), nwords);
      EXPECT_EQ(want_pop, got_pop) << "nwords=" << nwords;
      EXPECT_EQ(want, got) << "nwords=" << nwords;
      EXPECT_EQ(scalar.first_uncovered_word(a.data(), b.data(), nwords),
                vec.first_uncovered_word(a.data(), b.data(), nwords))
          << "nwords=" << nwords;
    }
  }
}

TEST_P(SimdLevelTest, SubsetRowsMatchesScalar) {
  const Kernels& scalar = table_at(Level::kScalar);
  const Kernels& vec = table_at(GetParam());
  std::mt19937_64 rng(0xF00Du);
  for (const std::size_t bits : kWidths) {
    const std::size_t nwords = words_for(bits);
    for (const std::size_t nrows : {std::size_t{1}, std::size_t{3},
                                    std::size_t{17}, std::size_t{64}}) {
      std::vector<Word> rows(nrows * nwords);
      const auto b = random_words(rng, nwords, 0);
      for (std::size_t r = 0; r < nrows; ++r) {
        // Mix forced-subset rows (b masked down) with free random rows so
        // both mask polarities appear in every batch.
        auto row = random_words(rng, nwords, static_cast<int>(r % 3));
        if (r % 2 == 0) {
          for (std::size_t i = 0; i < nwords; ++i) row[i] &= b[i];
        }
        std::copy(row.begin(), row.end(),
                  rows.begin() + static_cast<std::ptrdiff_t>(r * nwords));
      }
      const std::uint64_t want =
          scalar.subset_rows(rows.data(), nrows, nwords, b.data());
      const std::uint64_t got =
          vec.subset_rows(rows.data(), nrows, nwords, b.data());
      EXPECT_EQ(want, got) << "nwords=" << nwords << " nrows=" << nrows;
      if (nwords == 0) {
        // Every empty row is vacuously a subset.
        EXPECT_EQ(want, nrows == 64 ? ~std::uint64_t{0}
                                    : (std::uint64_t{1} << nrows) - 1);
      }
    }
  }
}

TEST_P(SimdLevelTest, DynBitsetOpsMatchScalar) {
  // The same operations one level up: DynBitset routes through active(),
  // so forcing levels and comparing whole bitsets covers the glue too.
  const Level level = GetParam();
  std::mt19937_64 rng(0x5EEDu);
  for (const std::size_t bits : kWidths) {
    if (bits == 0) continue;
    DynBitset a(bits);
    DynBitset b(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      if (rng() & 1) a.set(i);
      if (rng() & 1) b.set(i);
    }
    ASSERT_TRUE(simd::set_level(Level::kScalar));
    const bool want_subset = a.is_subset_of(b);
    const bool want_inter = a.intersects(b);
    const std::size_t want_count = a.count();
    DynBitset want_or = a;
    want_or |= b;
    DynBitset want_sub = a;
    want_sub.subtract(b);
    ASSERT_TRUE(simd::set_level(level));
    EXPECT_EQ(want_subset, a.is_subset_of(b));
    EXPECT_EQ(want_inter, a.intersects(b));
    EXPECT_EQ(want_count, a.count());
    DynBitset got_or = a;
    got_or |= b;
    DynBitset got_sub = a;
    got_sub.subtract(b);
    EXPECT_EQ(want_or, got_or);
    EXPECT_EQ(want_sub, got_sub);
  }
}

std::string level_name(const ::testing::TestParamInfo<Level>& param_info) {
  return simd::to_string(param_info.param);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, SimdLevelTest,
                         ::testing::ValuesIn(simd::available_levels()),
                         level_name);

TEST(SimdDispatchTest, SetLevelRejectsUnsupported) {
  const auto avail = simd::available_levels();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Level::kScalar);
  const Level best = simd::detect_best();
  EXPECT_EQ(avail.back(), best);
#if !defined(__aarch64__)
  EXPECT_FALSE(simd::set_level(Level::kNeon));
#endif
  EXPECT_TRUE(simd::set_level(Level::kScalar));
  EXPECT_EQ(simd::active_level(), Level::kScalar);
  EXPECT_TRUE(simd::set_level(best));
  EXPECT_EQ(simd::active_level(), best);
  EXPECT_EQ(simd::active().level, best);
  simd::set_level(Level::kScalar);
}

TEST(SimdDispatchTest, ToStringNamesAllLevels) {
  EXPECT_STREQ("scalar", simd::to_string(Level::kScalar));
  EXPECT_STREQ("neon", simd::to_string(Level::kNeon));
  EXPECT_STREQ("avx2", simd::to_string(Level::kAvx2));
  EXPECT_STREQ("avx512", simd::to_string(Level::kAvx512));
}

}  // namespace
}  // namespace pacds
