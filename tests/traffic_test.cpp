// Tests for the paper's three gateway drain models.

#include "energy/traffic.hpp"

#include <gtest/gtest.h>

namespace pacds {
namespace {

TEST(TrafficTest, Model1ConstantTotal) {
  // d = 2 / |G'| regardless of N.
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kConstantTotal, 50, 10), 0.2);
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kConstantTotal, 100, 10), 0.2);
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kConstantTotal, 50, 2), 1.0);
}

TEST(TrafficTest, Model2LinearTotal) {
  // d = N / |G'|.
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kLinearTotal, 50, 10), 5.0);
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kLinearTotal, 100, 25), 4.0);
}

TEST(TrafficTest, Model3QuadraticTotal) {
  // d = N(N-1)/2 / (10 |G'|). For N = 10, |G'| = 9: 45 / 90 = 0.5.
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kQuadraticTotal, 10, 9), 0.5);
  // N = 50, |G'| = 25: 1225 / 250 = 4.9.
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kQuadraticTotal, 50, 25), 4.9);
}

TEST(TrafficTest, EmptyGatewaySetCostsNothing) {
  // The paper's budget d = total / |G'| is undefined at |G'| = 0; the repo
  // pins the convention "nobody to charge -> zero drain" (DESIGN.md
  // "Faithfulness"), rather than NaN/inf leaking into energy levels.
  for (const DrainModel m :
       {DrainModel::kConstantTotal, DrainModel::kLinearTotal,
        DrainModel::kQuadraticTotal}) {
    EXPECT_DOUBLE_EQ(gateway_drain(m, 50, 0), 0.0);
    EXPECT_DOUBLE_EQ(gateway_drain(m, 0, 0), 0.0);
    DrainParams params;
    params.constant_base = 100.0;
    params.quadratic_divisor = 0.5;
    EXPECT_DOUBLE_EQ(gateway_drain(m, 50, 0, params), 0.0);
  }
}

TEST(TrafficTest, SingleGatewayAbsorbsEntireBudget) {
  // |G'| = 1 is the other boundary: the lone gateway carries the model's
  // whole bypass budget, with no division artifacts.
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kConstantTotal, 50, 1), 2.0);
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kLinearTotal, 50, 1), 50.0);
  // N = 50: 50*49/2 / (10*1) = 122.5.
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kQuadraticTotal, 50, 1), 122.5);
  for (const DrainModel m :
       {DrainModel::kConstantTotal, DrainModel::kLinearTotal,
        DrainModel::kQuadraticTotal}) {
    EXPECT_DOUBLE_EQ(gateway_drain(m, 60, 1), total_bypass_traffic(m, 60));
  }
}

TEST(TrafficTest, LargerCdsSharesLoad) {
  for (const DrainModel m :
       {DrainModel::kConstantTotal, DrainModel::kLinearTotal,
        DrainModel::kQuadraticTotal}) {
    EXPECT_GT(gateway_drain(m, 50, 5), gateway_drain(m, 50, 20));
  }
}

TEST(TrafficTest, TotalTimesSizeIsInvariant) {
  // d * |G'| must equal the model's total traffic for any |G'|.
  for (const DrainModel m :
       {DrainModel::kConstantTotal, DrainModel::kLinearTotal,
        DrainModel::kQuadraticTotal}) {
    const double total = total_bypass_traffic(m, 60);
    for (const std::size_t size : {1u, 7u, 30u}) {
      EXPECT_DOUBLE_EQ(gateway_drain(m, 60, size) * static_cast<double>(size),
                       total);
    }
  }
}

TEST(TrafficTest, CustomParams) {
  DrainParams params;
  params.constant_base = 10.0;
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kConstantTotal, 50, 5, params),
                   2.0);
  params.quadratic_divisor = 1.0;
  EXPECT_DOUBLE_EQ(gateway_drain(DrainModel::kQuadraticTotal, 10, 45, params),
                   1.0);
}

TEST(TrafficTest, ToStringMatchesPaperFormulas) {
  EXPECT_EQ(to_string(DrainModel::kConstantTotal), "d=2/|G'|");
  EXPECT_EQ(to_string(DrainModel::kLinearTotal), "d=N/|G'|");
  EXPECT_EQ(to_string(DrainModel::kQuadraticTotal), "d=N(N-1)/2/(10|G'|)");
}

TEST(TrafficTest, DefaultNonGatewayDrainIsUnit) {
  EXPECT_DOUBLE_EQ(DrainParams{}.nongateway_drain, 1.0);
}

}  // namespace
}  // namespace pacds
