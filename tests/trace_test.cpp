// Tests for SimTrace recording, CSV conversion and sparklines.

#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "sim/lifetime.hpp"

namespace pacds {
namespace {

SimConfig traced_config() {
  SimConfig config;
  config.n_hosts = 15;
  config.drain_model = DrainModel::kLinearTotal;
  config.rule_set = RuleSet::kEL1;
  return config;
}

TEST(TraceTest, OneRecordPerInterval) {
  SimTrace trace;
  const TrialResult result = run_lifetime_trial(traced_config(), 5, &trace);
  EXPECT_EQ(trace.records.size(), static_cast<std::size_t>(result.intervals));
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(trace.records[i].interval, static_cast<long>(i + 1));
  }
}

TEST(TraceTest, EnergyMonotoneDecreasing) {
  SimTrace trace;
  (void)run_lifetime_trial(traced_config(), 6, &trace);
  ASSERT_GT(trace.records.size(), 1u);
  for (std::size_t i = 1; i < trace.records.size(); ++i) {
    EXPECT_LE(trace.records[i].min_energy, trace.records[i - 1].min_energy);
    EXPECT_LE(trace.records[i].mean_energy, trace.records[i - 1].mean_energy);
  }
  // The run ends at the first death: last record has min energy 0.
  EXPECT_DOUBLE_EQ(trace.records.back().min_energy, 0.0);
  EXPECT_EQ(trace.records.back().alive,
            static_cast<std::size_t>(traced_config().n_hosts) - 1);
}

TEST(TraceTest, InvariantsPerRecord) {
  SimTrace trace;
  (void)run_lifetime_trial(traced_config(), 7, &trace);
  for (const IntervalRecord& r : trace.records) {
    EXPECT_LE(r.gateways, r.marked);
    EXPECT_LE(r.min_energy, r.mean_energy);
    EXPECT_LE(r.mean_energy, r.max_energy);
    EXPECT_LE(r.alive, static_cast<std::size_t>(traced_config().n_hosts));
  }
}

TEST(TraceTest, NullTraceIsNoop) {
  const TrialResult a = run_lifetime_trial(traced_config(), 8);
  SimTrace trace;
  const TrialResult b = run_lifetime_trial(traced_config(), 8, &trace);
  EXPECT_EQ(a.intervals, b.intervals);  // tracing must not perturb the run
}

TEST(TraceTest, CsvShape) {
  SimTrace trace;
  (void)run_lifetime_trial(traced_config(), 9, &trace);
  const auto header = SimTrace::csv_header();
  const auto rows = trace.csv_rows();
  EXPECT_EQ(rows.size(), trace.records.size());
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), header.size());
  }
}

TEST(TraceTest, CsvCarriesTouchedColumn) {
  const auto header = SimTrace::csv_header();
  ASSERT_EQ(header.size(), 8u);
  EXPECT_EQ(header.back(), "touched");
  SimTrace trace;
  (void)run_lifetime_trial(traced_config(), 9, &trace);
  const auto rows = trace.csv_rows();
  ASSERT_EQ(rows.size(), trace.records.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].back(), std::to_string(trace.records[i].touched));
  }
}

TEST(TraceTest, RecordsCarryMetricsSlices) {
  // SimTrace consumes the same IntervalRecord stream as the JSONL emitter:
  // phase timings and counters arrive per interval, not cumulatively.
  SimTrace trace;
  (void)run_lifetime_trial(traced_config(), 5, &trace);
  ASSERT_FALSE(trace.records.empty());
  const IntervalRecord& first = trace.records.front();
  using obs::Counter;
  using obs::Phase;
  const auto counter = [](const IntervalRecord& r, Counter c) {
    return r.counters[static_cast<std::size_t>(c)];
  };
  const auto phase_ns = [](const IntervalRecord& r, Phase p) {
    return r.phase_ns[static_cast<std::size_t>(p)];
  };
  // The first interval is a full (re)build: marking ran, nodes were touched.
  EXPECT_EQ(counter(first, Counter::kFullRefreshes), 1u);
  EXPECT_GT(counter(first, Counter::kNodesTouched), 0u);
  EXPECT_GT(phase_ns(first, Phase::kMarking), 0u);
  EXPECT_GT(phase_ns(first, Phase::kLinkBuild), 0u);
  // Slice semantics: full_refreshes never exceeds 1 per interval.
  for (const IntervalRecord& r : trace.records) {
    EXPECT_LE(counter(r, Counter::kFullRefreshes), 1u);
  }
}

TEST(TraceTest, SeriesAccessors) {
  SimTrace trace;
  trace.records.push_back({1, 10, 5, 1.0, 2.0, 3.0, 15});
  trace.records.push_back({2, 9, 4, 0.5, 1.5, 3.0, 15});
  EXPECT_EQ(trace.min_energy_series(), (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(trace.gateway_series(), (std::vector<double>{5.0, 4.0}));
}

TEST(SparklineTest, ScalesToRange) {
  // One glyph per sample; extremes map to the lowest/highest glyph.
  const std::string line = sparkline({0.0, 100.0}, 0.0, 100.0);
  EXPECT_EQ(line.substr(0, 3), "▁");  // ▁ (3 UTF-8 bytes)
  EXPECT_EQ(line.substr(3), "█");     // █
}

TEST(SparklineTest, ClampsOutOfRange) {
  const std::string line = sparkline({-5.0, 500.0}, 0.0, 100.0);
  EXPECT_EQ(line.substr(0, 3), "▁");
  EXPECT_EQ(line.substr(3), "█");
}

TEST(SparklineTest, DegenerateRange) {
  EXPECT_NO_THROW((void)sparkline({1.0, 1.0}, 1.0, 1.0));
  EXPECT_TRUE(sparkline({}, 0.0, 1.0).empty());
}

}  // namespace
}  // namespace pacds
