#pragma once
// Per-interval trace of a lifetime run: gateway counts and the energy
// distribution over time, for post-hoc analysis and plotting. The trace is
// plain data; io helpers serialize it as CSV.

#include <string>
#include <vector>

namespace pacds {

/// One update interval's snapshot (taken after the drain step).
struct IntervalRecord {
  long interval = 0;
  std::size_t marked = 0;       ///< marking-process set size
  std::size_t gateways = 0;     ///< final gateway count
  double min_energy = 0.0;
  double mean_energy = 0.0;
  double max_energy = 0.0;
  std::size_t alive = 0;
};

/// Whole-run trace.
struct SimTrace {
  std::vector<IntervalRecord> records;

  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;

  /// Minimum-energy series, one value per interval (for sparklines).
  [[nodiscard]] std::vector<double> min_energy_series() const;
  [[nodiscard]] std::vector<double> gateway_series() const;
};

/// Compact ASCII sparkline of a series (8 levels, scaled to [lo, hi]).
[[nodiscard]] std::string sparkline(const std::vector<double>& series,
                                    double lo, double hi);

}  // namespace pacds
