#pragma once
// Per-interval observation of a lifetime run. The simulator publishes one
// IntervalRecord per update interval to an IntervalObserver; SimTrace is the
// in-memory consumer (gateway counts and the energy distribution over time,
// for post-hoc analysis and plotting), the JSONL emitter in sim/metrics_io
// is the streaming one. The record is plain data; io helpers serialize it.

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pacds {

/// One update interval's snapshot (taken after the drain step). The obs
/// fields (touched/phase_ns/counters) are that interval's slice of the
/// pipeline's metrics registry; all-zero when the producer ran unobserved.
struct IntervalRecord {
  long interval = 0;
  std::size_t marked = 0;       ///< marking-process set size
  std::size_t gateways = 0;     ///< final gateway count
  double min_energy = 0.0;
  double mean_energy = 0.0;
  double max_energy = 0.0;
  std::size_t alive = 0;
  std::size_t touched = 0;      ///< nodes re-evaluated this interval
  obs::PhaseArray phase_ns{};   ///< per-phase wall time, indexed by obs::Phase
  obs::CounterArray counters{};  ///< event counts, indexed by obs::Counter
};

/// Receives every interval's record as the simulator produces it. Records
/// arrive in interval order; the referenced record dies with the call.
class IntervalObserver {
 public:
  virtual ~IntervalObserver() = default;
  virtual void on_interval(const IntervalRecord& record) = 0;
};

/// Whole-run trace: the buffering IntervalObserver.
struct SimTrace : IntervalObserver {
  std::vector<IntervalRecord> records;

  void on_interval(const IntervalRecord& record) override {
    records.push_back(record);
  }

  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;

  /// Minimum-energy series, one value per interval (for sparklines).
  [[nodiscard]] std::vector<double> min_energy_series() const;
  [[nodiscard]] std::vector<double> gateway_series() const;
};

/// Compact ASCII sparkline of a series (8 levels, scaled to [lo, hi]).
[[nodiscard]] std::string sparkline(const std::vector<double>& series,
                                    double lo, double hi);

}  // namespace pacds
