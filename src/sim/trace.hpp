#pragma once
// Per-interval observation of a lifetime run. The simulator publishes one
// IntervalRecord per update interval to an IntervalObserver; SimTrace is the
// in-memory consumer (gateway counts and the energy distribution over time,
// for post-hoc analysis and plotting), the JSONL emitter in sim/metrics_io
// is the streaming one. The record is plain data; io helpers serialize it.

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pacds {

/// One update interval's snapshot (taken after the drain step). The obs
/// fields (touched/phase_ns/counters) are that interval's slice of the
/// pipeline's metrics registry; all-zero when the producer ran unobserved.
struct IntervalRecord {
  long interval = 0;
  std::size_t marked = 0;       ///< marking-process set size
  std::size_t gateways = 0;     ///< final gateway count
  double min_energy = 0.0;
  double mean_energy = 0.0;
  double max_energy = 0.0;
  std::size_t alive = 0;
  std::size_t touched = 0;      ///< nodes re-evaluated this interval
  obs::PhaseArray phase_ns{};   ///< per-phase wall time, indexed by obs::Phase
  obs::CounterArray counters{};  ///< event counts, indexed by obs::Counter
};

/// What happened to a host (or to the backbone) in a fault event.
enum class FaultKind : std::uint8_t {
  kCrash,    ///< host went down (scheduled crash or blackout entry)
  kRecover,  ///< host came back (scheduled recovery or blackout exit)
  kTheft,    ///< battery theft drained a host by `amount`
  kDeath,    ///< battery reached zero (drain or theft)
  kRepair,   ///< localized backbone repair round after the down set changed
};

/// Why a crash/recover event fired.
enum class FaultCause : std::uint8_t {
  kPlan,      ///< an explicit per-node entry in the fault plan
  kBlackout,  ///< membership in a region blackout
  kBattery,   ///< energy depletion
  kNone,      ///< not applicable (repair records)
};

[[nodiscard]] std::string to_string(FaultKind kind);
[[nodiscard]] std::string to_string(FaultCause cause);

/// One fault event in a degraded-mode run. Events are published in the
/// order they applied; `down` is the total number of non-functioning hosts
/// immediately after the event. The repair-only fields describe the
/// localized recomputation that healed the interval's down-set change
/// (schema: the `fault_event` record, DESIGN.md §7 / FAULTS.md).
struct FaultRecord {
  long interval = 0;
  FaultKind kind = FaultKind::kCrash;
  FaultCause cause = FaultCause::kPlan;
  int node = -1;          ///< affected host; -1 for repair records
  double amount = 0.0;    ///< energy removed (theft records)
  std::size_t down = 0;   ///< hosts down after the event
  // Repair records only:
  std::size_t touched = 0;        ///< nodes re-evaluated by the repair
  std::uint64_t repair_ns = 0;    ///< wall time of the repair update
  bool backbone_ok = true;        ///< surviving set passes check_cds
  double coverage = 1.0;          ///< dominated fraction of active hosts
  std::size_t gateways = 0;       ///< active gateways after the repair
};

/// Receives every interval's record as the simulator produces it. Records
/// arrive in interval order; the referenced record dies with the call.
/// on_fault fires only in degraded-mode runs (a non-empty fault plan) and
/// defaults to ignoring the event, so interval-only consumers are untouched.
class IntervalObserver {
 public:
  virtual ~IntervalObserver() = default;
  virtual void on_interval(const IntervalRecord& record) = 0;
  virtual void on_fault(const FaultRecord& record) { (void)record; }
};

/// Whole-run trace: the buffering IntervalObserver.
struct SimTrace : IntervalObserver {
  std::vector<IntervalRecord> records;
  std::vector<FaultRecord> fault_records;

  void on_interval(const IntervalRecord& record) override {
    records.push_back(record);
  }
  void on_fault(const FaultRecord& record) override {
    fault_records.push_back(record);
  }

  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;

  /// Minimum-energy series, one value per interval (for sparklines).
  [[nodiscard]] std::vector<double> min_energy_series() const;
  [[nodiscard]] std::vector<double> gateway_series() const;
};

/// Compact ASCII sparkline of a series (8 levels, scaled to [lo, hi]).
[[nodiscard]] std::string sparkline(const std::vector<double>& series,
                                    double lo, double hi);

}  // namespace pacds
