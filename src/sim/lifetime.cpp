#include "sim/lifetime.hpp"

#include <algorithm>
#include <stdexcept>

#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "sim/engine.hpp"

namespace pacds {

TrialResult run_lifetime_trial(const SimConfig& config, std::uint64_t seed,
                               IntervalObserver* observer) {
  if (config.n_hosts < 1) {
    throw std::invalid_argument("run_lifetime_trial: need at least one host");
  }
  Xoshiro256 rng(seed);
  const Field field(config.field_width, config.field_height, config.boundary);

  TrialResult result;
  std::vector<Vec2> positions;
  if (auto placed = random_connected_placement(
          config.n_hosts, field, config.radius, rng, config.connect_retries)) {
    positions = std::move(placed->positions);
    result.placement_attempts = placed->attempts;
  } else {
    // No connected placement found (tiny n or sparse density): proceed with
    // a plain placement; the marking/rules handle components independently.
    positions = random_placement(config.n_hosts, field, rng);
    result.initial_connected = false;
    result.placement_attempts = config.connect_retries;
  }

  BatteryBank batteries(static_cast<std::size_t>(config.n_hosts),
                        config.initial_energy);
  MobilityParams mobility_params = config.mobility_params;
  if (config.mobility_kind == MobilityKind::kPaperJump) {
    mobility_params.stay_probability = config.stay_probability;
    mobility_params.jump_min = config.jump_min;
    mobility_params.jump_max = config.jump_max;
  }
  const std::unique_ptr<MobilityModel> mobility =
      make_mobility(config.mobility_kind, mobility_params);

  // Placement and mobility are the only RNG consumers, so the choice of
  // engine cannot perturb the random stream: both engines yield
  // bit-identical trials wherever the incremental one is eligible.
  const std::unique_ptr<LifetimeEngine> engine = make_lifetime_engine(config);

  // Metrics are gathered only when someone is listening; with no observer
  // the engine keeps its null registry and every timer/counter is skipped.
  obs::MetricsRegistry metrics;
  if (observer != nullptr) engine->set_metrics(&metrics);

  double gateway_sum = 0.0;
  double marked_sum = 0.0;
  while (result.intervals < config.max_intervals) {
    metrics.reset();  // per-interval slice
    engine->update(positions, batteries.levels());
    const DynBitset& gateways = engine->gateways();
    const IntervalCounts counts = engine->counts();
    gateway_sum += static_cast<double>(counts.gateways);
    marked_sum += static_cast<double>(counts.marked);

    const double d = gateway_drain(config.drain_model, batteries.size(),
                                   counts.gateways, config.drain_params);
    const double d_prime = config.drain_params.nongateway_drain;
    bool someone_died = false;
    for (std::size_t host = 0; host < batteries.size(); ++host) {
      const bool is_gateway = gateways.test(host);
      someone_died |= batteries.drain(host, is_gateway ? d : d_prime);
    }
    ++result.intervals;
    if (observer != nullptr) {
      IntervalRecord record;
      record.interval = result.intervals;
      record.marked = counts.marked;
      record.gateways = counts.gateways;
      record.alive = batteries.alive_count();
      record.min_energy = batteries.min_level();
      double sum = 0.0;
      double max_level = 0.0;
      for (const double level : batteries.levels()) {
        sum += level;
        max_level = std::max(max_level, level);
      }
      record.mean_energy = sum / static_cast<double>(batteries.size());
      record.max_energy = max_level;
      record.touched = engine->last_touched();
      record.phase_ns = metrics.phases();
      record.counters = metrics.counters();
      observer->on_interval(record);
    }
    if (someone_died) break;
    mobility->step(positions, field, rng);
  }
  result.hit_cap =
      !batteries.any_dead() && result.intervals >= config.max_intervals;
  if (result.intervals > 0) {
    gateway_sum /= static_cast<double>(result.intervals);
    marked_sum /= static_cast<double>(result.intervals);
  }
  result.avg_gateways = gateway_sum;
  result.avg_marked = marked_sum;
  return result;
}

}  // namespace pacds
