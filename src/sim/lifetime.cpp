#include "sim/lifetime.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "sim/engine.hpp"

namespace pacds {

LifetimeRun::LifetimeRun(const SimConfig& config, std::uint64_t seed,
                         IntervalObserver* observer, const FaultPlan* faults)
    : config_(config),
      rng_(seed),
      field_(config.field_width, config.field_height, config.field_depth,
             config.boundary),
      observer_(observer),
      batteries_(static_cast<std::size_t>(std::max(config.n_hosts, 1)),
                 config.initial_energy) {
  if (config_.n_hosts < 1) {
    throw std::invalid_argument("run_lifetime_trial: need at least one host");
  }
  if (config_.radio != RadioKind::kUnitDisk &&
      config_.link_model != LinkModel::kUnitDisk) {
    throw std::invalid_argument(
        "run_lifetime_trial: a non-unit-disk radio prunes unit-disk "
        "candidates and cannot compose with the gabriel/rng link models");
  }
  if (!(config_.stability_beta >= 0.0) || !(config_.stability_beta <= 1.0)) {
    throw std::invalid_argument(
        "run_lifetime_trial: stability_beta must be in [0, 1]");
  }
  if (auto placed =
          random_connected_placement(config_.n_hosts, field_, config_.radius,
                                     rng_, config_.connect_retries)) {
    positions_ = std::move(placed->positions);
    result_.placement_attempts = placed->attempts;
  } else {
    // No connected placement found (tiny n or sparse density): proceed with
    // a plain placement; the marking/rules handle components independently.
    positions_ = random_placement(config_.n_hosts, field_, rng_);
    result_.initial_connected = false;
    result_.placement_attempts = config_.connect_retries;
  }

  MobilityParams mobility_params = config_.mobility_params;
  if (config_.mobility_kind == MobilityKind::kPaperJump) {
    mobility_params.stay_probability = config_.stay_probability;
    mobility_params.jump_min = config_.jump_min;
    mobility_params.jump_max = config_.jump_max;
  }
  mobility_ = make_mobility(config_.mobility_kind, mobility_params);

  // Placement and mobility are the only RNG consumers, so neither the choice
  // of engine nor a fault plan can perturb the random stream: both engines
  // yield bit-identical trials wherever the incremental one is eligible, and
  // a faulted run shares its fault-free twin's placement and trajectories.
  engine_ = make_lifetime_engine(config_);

  // Metrics are gathered only when someone is listening; with no observer
  // the engine keeps its null registry and every timer/counter is skipped.
  if (observer_ != nullptr) engine_->set_metrics(&metrics_);

  // Degraded mode: only a plan with scheduled lifetime events changes the
  // loop at all; an empty or null plan stays on the exact fault-free path.
  faulted_ = faults != nullptr && faults->has_lifetime_events();
  if (faulted_) {
    fault_plan_ = *faults;
    validate_fault_plan(fault_plan_, config_.n_hosts);
    injector_.emplace(fault_plan_, batteries_.size(), config_.field_width,
                      config_.radius);
    health_scratch_ = DynBitset(batteries_.size());
  }
}

LifetimeRun::~LifetimeRun() = default;

bool LifetimeRun::finished() const {
  return attrition_stop_ || result_.intervals >= config_.max_intervals;
}

void LifetimeRun::set_observer(IntervalObserver* observer) {
  observer_ = observer;
  engine_->set_metrics(observer_ != nullptr ? &metrics_ : nullptr);
}

bool LifetimeRun::step() {
  if (finished()) return false;
  metrics_.reset();  // per-interval slice
  const long interval = result_.intervals + 1;

  // 1. Inject this interval's scheduled faults (before the CDS update, so
  //    the engine always computes against the post-event topology).
  bool repair_due = false;
  if (faulted_) {
    fault_events_.clear();
    {
      const obs::PhaseTimer timer(observer_ != nullptr ? &metrics_ : nullptr,
                                  obs::Phase::kFaultApply);
      injector_->apply(interval, positions_, batteries_, fault_events_);
    }
    repair_due = injector_->take_down_changed();
  }

  // 2. Bring the gateway set up to date. Down hosts enter parked (hence
  //    isolated) — for the incremental engine the update IS the localized
  //    repair: only the k-hop ball around the excised links re-evaluates.
  const std::vector<Vec2>& radio_positions =
      faulted_ ? injector_->effective_positions(positions_) : positions_;
  std::uint64_t repair_ns = 0;
  if (repair_due) {
    const auto start = std::chrono::steady_clock::now();
    engine_->update(radio_positions, batteries_.levels());
    repair_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  } else {
    engine_->update(radio_positions, batteries_.levels());
  }
  const DynBitset& gateways = engine_->gateways();
  IntervalCounts counts = engine_->counts();
  // A repair round happened only if the engine actually re-derived the set.
  // The cds22 backbone keeps its cached set through a member crash (the
  // survivors still verify), so a down-set change need not cost a repair.
  const bool repaired = repair_due && engine_->last_update_recomputed();

  // 3. Degraded-mode health: domination + connectivity of the surviving
  //    backbone. assess_backbone leaves the active gateway set in
  //    health_scratch_, which then also drives the drain step.
  BackboneHealth health;
  const DynBitset* drain_gateways = &gateways;
  if (faulted_) {
    health = assess_backbone(*engine_->graph(), gateways, injector_->down(),
                             health_scratch_);
    drain_gateways = &health_scratch_;
    counts.gateways = health.active_gateways;
  }
  gateway_sum_ += static_cast<double>(counts.gateways);
  marked_sum_ += static_cast<double>(counts.marked);

  // CDS churn: backbone membership turned over since the previous interval
  // (the stability ablation's headline metric). Judged on the engine's raw
  // gateway set so the fault-free and degraded paths measure the same thing.
  if (have_prev_gateways_ && prev_gateways_.size() == gateways.size()) {
    churn_scratch_ = gateways;
    churn_scratch_ ^= prev_gateways_;
    churn_sum_ += static_cast<double>(churn_scratch_.count());
  }
  prev_gateways_ = gateways;
  have_prev_gateways_ = true;

  // 4. Drain. Down hosts spend nothing (a crashed radio is off); gateway
  //    duty is judged against the active set.
  const double d = gateway_drain(config_.drain_model, batteries_.size(),
                                 counts.gateways, config_.drain_params);
  const double d_prime = config_.drain_params.nongateway_drain;
  bool someone_died = false;
  const std::size_t death_start = fault_events_.size();
  for (std::size_t host = 0; host < batteries_.size(); ++host) {
    if (faulted_ && injector_->down().test(host)) continue;
    const bool is_gateway = drain_gateways->test(host);
    if (batteries_.drain(host, is_gateway ? d : d_prime)) {
      someone_died = true;
      if (faulted_) injector_->record_death(host, interval, fault_events_);
    }
  }
  ++result_.intervals;

  // 5. Degraded-mode bookkeeping: event tallies, health aggregates, and
  //    the repair record for this interval's down-set change.
  FaultRecord repair_record;
  if (faulted_) {
    FaultStats& fs = result_.faults;
    for (const FaultRecord& event : fault_events_) {
      switch (event.kind) {
        case FaultKind::kCrash:
          ++fs.events;
          ++fs.crashes;
          break;
        case FaultKind::kRecover:
          ++fs.events;
          ++fs.recoveries;
          break;
        case FaultKind::kTheft:
          ++fs.events;
          ++fs.thefts;
          break;
        case FaultKind::kDeath:
          ++fs.deaths;
          if (fs.first_death_interval < 0) {
            fs.first_death_interval = event.interval;
          }
          break;
        case FaultKind::kRepair:
          break;
      }
    }
    if (!health.backbone_ok) ++fs.disconnected_intervals;
    if (health.coverage < 1.0) ++fs.uncovered_intervals;
    fs.min_coverage = std::min(fs.min_coverage, health.coverage);
    if (repaired) {
      ++fs.repairs;
      fs.repair_ns_total += repair_ns;
      fs.repair_touched_total += engine_->last_touched();
      repair_record = {interval,
                       FaultKind::kRepair,
                       FaultCause::kNone,
                       -1,
                       0.0,
                       injector_->down_count(),
                       engine_->last_touched(),
                       repair_ns,
                       health.backbone_ok,
                       health.coverage,
                       health.active_gateways};
    }
  }

  if (observer_ != nullptr) {
    if (faulted_) {
      metrics_.add(obs::Counter::kFaultEvents, fault_events_.size());
      metrics_.add(obs::Counter::kHostsDown, injector_->down_count());
    }
    IntervalRecord record;
    record.interval = result_.intervals;
    record.marked = counts.marked;
    record.gateways = counts.gateways;
    record.alive = batteries_.alive_count();
    record.min_energy = batteries_.min_level();
    double sum = 0.0;
    double max_level = 0.0;
    for (const double level : batteries_.levels()) {
      sum += level;
      max_level = std::max(max_level, level);
    }
    record.mean_energy = sum / static_cast<double>(batteries_.size());
    record.max_energy = max_level;
    record.touched = engine_->last_touched();
    record.phase_ns = metrics_.phases();
    record.counters = metrics_.counters();
    // Emission order: injected events, the repair that healed them, the
    // interval snapshot, then the drain deaths the interval caused.
    if (faulted_) {
      for (std::size_t i = 0; i < death_start; ++i) {
        observer_->on_fault(fault_events_[i]);
      }
      if (repaired) observer_->on_fault(repair_record);
    }
    observer_->on_interval(record);
    if (faulted_) {
      for (std::size_t i = death_start; i < fault_events_.size(); ++i) {
        observer_->on_fault(fault_events_[i]);
      }
    }
  }

  // 6. Stop: a degraded run keeps going until at most one host still
  //    functions; the paper's run ends at the first death. Mobility steps
  //    exactly as in the original loop: after every non-terminal interval,
  //    including the one the max_intervals cap then cuts off.
  if (faulted_) {
    if (batteries_.size() - injector_->down_count() <= 1) {
      attrition_stop_ = true;
      return true;
    }
  } else if (someone_died) {
    attrition_stop_ = true;
    return true;
  }
  mobility_->step(positions_, field_, rng_);
  return true;
}

TrialResult LifetimeRun::result() const {
  TrialResult out = result_;
  out.hit_cap = !attrition_stop_ && out.intervals >= config_.max_intervals;
  double gateways = gateway_sum_;
  double marked = marked_sum_;
  double churn = churn_sum_;
  if (out.intervals > 0) {
    gateways /= static_cast<double>(out.intervals);
    marked /= static_cast<double>(out.intervals);
    churn /= static_cast<double>(out.intervals);
  }
  out.avg_gateways = gateways;
  out.avg_marked = marked;
  out.avg_cds_churn = churn;
  return out;
}

TrialResult run_lifetime_trial(const SimConfig& config, std::uint64_t seed,
                               IntervalObserver* observer,
                               const FaultPlan* faults) {
  LifetimeRun run(config, seed, observer, faults);
  while (run.step()) {
  }
  return run.result();
}

}  // namespace pacds
