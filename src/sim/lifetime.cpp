#include "sim/lifetime.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rule_k.hpp"
#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "net/udg.hpp"

namespace pacds {

namespace {

/// Quantized view of the battery levels for EL-key comparisons.
std::vector<double> key_levels(const std::vector<double>& levels,
                               double quantum) {
  if (quantum <= 0.0) return levels;
  std::vector<double> out;
  out.reserve(levels.size());
  for (const double level : levels) {
    out.push_back(std::floor(level / quantum));
  }
  return out;
}

}  // namespace

TrialResult run_lifetime_trial(const SimConfig& config, std::uint64_t seed,
                               SimTrace* trace) {
  if (config.n_hosts < 1) {
    throw std::invalid_argument("run_lifetime_trial: need at least one host");
  }
  Xoshiro256 rng(seed);
  const Field field(config.field_width, config.field_height, config.boundary);

  TrialResult result;
  std::vector<Vec2> positions;
  if (auto placed = random_connected_placement(
          config.n_hosts, field, config.radius, rng, config.connect_retries)) {
    positions = std::move(placed->positions);
    result.placement_attempts = placed->attempts;
  } else {
    // No connected placement found (tiny n or sparse density): proceed with
    // a plain placement; the marking/rules handle components independently.
    positions = random_placement(config.n_hosts, field, rng);
    result.initial_connected = false;
    result.placement_attempts = config.connect_retries;
  }

  BatteryBank batteries(static_cast<std::size_t>(config.n_hosts),
                        config.initial_energy);
  MobilityParams mobility_params = config.mobility_params;
  if (config.mobility_kind == MobilityKind::kPaperJump) {
    mobility_params.stay_probability = config.stay_probability;
    mobility_params.jump_min = config.jump_min;
    mobility_params.jump_max = config.jump_max;
  }
  const std::unique_ptr<MobilityModel> mobility =
      make_mobility(config.mobility_kind, mobility_params);

  double gateway_sum = 0.0;
  double marked_sum = 0.0;
  while (result.intervals < config.max_intervals) {
    const Graph g = build_links(positions, config.radius, config.link_model);
    const auto keys = key_levels(batteries.levels(), config.energy_key_quantum);
    CdsResult cds;
    if (config.custom_key && config.use_rule_k) {
      cds = compute_cds_rule_k(g, *config.custom_key, keys,
                               config.cds_options.strategy,
                               config.cds_options.clique_policy);
    } else if (config.custom_key) {
      RuleConfig rule_config;
      rule_config.rule2_form = config.custom_rule2_form;
      rule_config.strategy = config.cds_options.strategy;
      cds = compute_cds_custom(g, *config.custom_key, rule_config, keys,
                               config.cds_options.clique_policy);
    } else {
      cds = compute_cds(g, config.rule_set, keys, config.cds_options);
    }
    gateway_sum += static_cast<double>(cds.gateway_count);
    marked_sum += static_cast<double>(cds.marked_count);

    const double d =
        gateway_drain(config.drain_model, batteries.size(), cds.gateway_count,
                      config.drain_params);
    const double d_prime = config.drain_params.nongateway_drain;
    bool someone_died = false;
    for (std::size_t host = 0; host < batteries.size(); ++host) {
      const bool is_gateway = cds.gateways.test(host);
      someone_died |= batteries.drain(host, is_gateway ? d : d_prime);
    }
    ++result.intervals;
    if (trace != nullptr) {
      IntervalRecord record;
      record.interval = result.intervals;
      record.marked = cds.marked_count;
      record.gateways = cds.gateway_count;
      record.alive = batteries.alive_count();
      record.min_energy = batteries.min_level();
      double sum = 0.0;
      double max_level = 0.0;
      for (const double level : batteries.levels()) {
        sum += level;
        max_level = std::max(max_level, level);
      }
      record.mean_energy = sum / static_cast<double>(batteries.size());
      record.max_energy = max_level;
      trace->records.push_back(record);
    }
    if (someone_died) break;
    mobility->step(positions, field, rng);
  }
  result.hit_cap =
      !batteries.any_dead() && result.intervals >= config.max_intervals;
  if (result.intervals > 0) {
    gateway_sum /= static_cast<double>(result.intervals);
    marked_sum /= static_cast<double>(result.intervals);
  }
  result.avg_gateways = gateway_sum;
  result.avg_marked = marked_sum;
  return result;
}

}  // namespace pacds
