#include "sim/lifetime.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "sim/engine.hpp"

namespace pacds {

TrialResult run_lifetime_trial(const SimConfig& config, std::uint64_t seed,
                               IntervalObserver* observer,
                               const FaultPlan* faults) {
  if (config.n_hosts < 1) {
    throw std::invalid_argument("run_lifetime_trial: need at least one host");
  }
  Xoshiro256 rng(seed);
  const Field field(config.field_width, config.field_height, config.boundary);

  TrialResult result;
  std::vector<Vec2> positions;
  if (auto placed = random_connected_placement(
          config.n_hosts, field, config.radius, rng, config.connect_retries)) {
    positions = std::move(placed->positions);
    result.placement_attempts = placed->attempts;
  } else {
    // No connected placement found (tiny n or sparse density): proceed with
    // a plain placement; the marking/rules handle components independently.
    positions = random_placement(config.n_hosts, field, rng);
    result.initial_connected = false;
    result.placement_attempts = config.connect_retries;
  }

  BatteryBank batteries(static_cast<std::size_t>(config.n_hosts),
                        config.initial_energy);
  MobilityParams mobility_params = config.mobility_params;
  if (config.mobility_kind == MobilityKind::kPaperJump) {
    mobility_params.stay_probability = config.stay_probability;
    mobility_params.jump_min = config.jump_min;
    mobility_params.jump_max = config.jump_max;
  }
  const std::unique_ptr<MobilityModel> mobility =
      make_mobility(config.mobility_kind, mobility_params);

  // Placement and mobility are the only RNG consumers, so neither the choice
  // of engine nor a fault plan can perturb the random stream: both engines
  // yield bit-identical trials wherever the incremental one is eligible, and
  // a faulted run shares its fault-free twin's placement and trajectories.
  const std::unique_ptr<LifetimeEngine> engine = make_lifetime_engine(config);

  // Metrics are gathered only when someone is listening; with no observer
  // the engine keeps its null registry and every timer/counter is skipped.
  obs::MetricsRegistry metrics;
  if (observer != nullptr) engine->set_metrics(&metrics);

  // Degraded mode: only a plan with scheduled lifetime events changes the
  // loop at all; an empty or null plan stays on the exact fault-free path.
  const bool faulted = faults != nullptr && faults->has_lifetime_events();
  std::optional<FaultInjector> injector;
  std::vector<FaultRecord> fault_events;
  DynBitset health_scratch;
  if (faulted) {
    validate_fault_plan(*faults, config.n_hosts);
    injector.emplace(*faults, batteries.size(), config.field_width,
                     config.radius);
    health_scratch = DynBitset(batteries.size());
  }

  double gateway_sum = 0.0;
  double marked_sum = 0.0;
  bool attrition_stop = false;
  while (result.intervals < config.max_intervals) {
    metrics.reset();  // per-interval slice
    const long interval = result.intervals + 1;

    // 1. Inject this interval's scheduled faults (before the CDS update, so
    //    the engine always computes against the post-event topology).
    bool repair_due = false;
    if (faulted) {
      fault_events.clear();
      {
        const obs::PhaseTimer timer(observer != nullptr ? &metrics : nullptr,
                                    obs::Phase::kFaultApply);
        injector->apply(interval, positions, batteries, fault_events);
      }
      repair_due = injector->take_down_changed();
    }

    // 2. Bring the gateway set up to date. Down hosts enter parked (hence
    //    isolated) — for the incremental engine the update IS the localized
    //    repair: only the k-hop ball around the excised links re-evaluates.
    const std::vector<Vec2>& radio_positions =
        faulted ? injector->effective_positions(positions) : positions;
    std::uint64_t repair_ns = 0;
    if (repair_due) {
      const auto start = std::chrono::steady_clock::now();
      engine->update(radio_positions, batteries.levels());
      repair_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    } else {
      engine->update(radio_positions, batteries.levels());
    }
    const DynBitset& gateways = engine->gateways();
    IntervalCounts counts = engine->counts();

    // 3. Degraded-mode health: domination + connectivity of the surviving
    //    backbone. assess_backbone leaves the active gateway set in
    //    health_scratch, which then also drives the drain step.
    BackboneHealth health;
    const DynBitset* drain_gateways = &gateways;
    if (faulted) {
      health = assess_backbone(*engine->graph(), gateways, injector->down(),
                               health_scratch);
      drain_gateways = &health_scratch;
      counts.gateways = health.active_gateways;
    }
    gateway_sum += static_cast<double>(counts.gateways);
    marked_sum += static_cast<double>(counts.marked);

    // 4. Drain. Down hosts spend nothing (a crashed radio is off); gateway
    //    duty is judged against the active set.
    const double d = gateway_drain(config.drain_model, batteries.size(),
                                   counts.gateways, config.drain_params);
    const double d_prime = config.drain_params.nongateway_drain;
    bool someone_died = false;
    const std::size_t death_start = fault_events.size();
    for (std::size_t host = 0; host < batteries.size(); ++host) {
      if (faulted && injector->down().test(host)) continue;
      const bool is_gateway = drain_gateways->test(host);
      if (batteries.drain(host, is_gateway ? d : d_prime)) {
        someone_died = true;
        if (faulted) injector->record_death(host, interval, fault_events);
      }
    }
    ++result.intervals;

    // 5. Degraded-mode bookkeeping: event tallies, health aggregates, and
    //    the repair record for this interval's down-set change.
    FaultRecord repair_record;
    if (faulted) {
      FaultStats& fs = result.faults;
      for (const FaultRecord& event : fault_events) {
        switch (event.kind) {
          case FaultKind::kCrash:
            ++fs.events;
            ++fs.crashes;
            break;
          case FaultKind::kRecover:
            ++fs.events;
            ++fs.recoveries;
            break;
          case FaultKind::kTheft:
            ++fs.events;
            ++fs.thefts;
            break;
          case FaultKind::kDeath:
            ++fs.deaths;
            if (fs.first_death_interval < 0) {
              fs.first_death_interval = event.interval;
            }
            break;
          case FaultKind::kRepair:
            break;
        }
      }
      if (!health.backbone_ok) ++fs.disconnected_intervals;
      if (health.coverage < 1.0) ++fs.uncovered_intervals;
      fs.min_coverage = std::min(fs.min_coverage, health.coverage);
      if (repair_due) {
        ++fs.repairs;
        fs.repair_ns_total += repair_ns;
        fs.repair_touched_total += engine->last_touched();
        repair_record = {interval,
                         FaultKind::kRepair,
                         FaultCause::kNone,
                         -1,
                         0.0,
                         injector->down_count(),
                         engine->last_touched(),
                         repair_ns,
                         health.backbone_ok,
                         health.coverage,
                         health.active_gateways};
      }
    }

    if (observer != nullptr) {
      if (faulted) {
        metrics.add(obs::Counter::kFaultEvents, fault_events.size());
        metrics.add(obs::Counter::kHostsDown, injector->down_count());
      }
      IntervalRecord record;
      record.interval = result.intervals;
      record.marked = counts.marked;
      record.gateways = counts.gateways;
      record.alive = batteries.alive_count();
      record.min_energy = batteries.min_level();
      double sum = 0.0;
      double max_level = 0.0;
      for (const double level : batteries.levels()) {
        sum += level;
        max_level = std::max(max_level, level);
      }
      record.mean_energy = sum / static_cast<double>(batteries.size());
      record.max_energy = max_level;
      record.touched = engine->last_touched();
      record.phase_ns = metrics.phases();
      record.counters = metrics.counters();
      // Emission order: injected events, the repair that healed them, the
      // interval snapshot, then the drain deaths the interval caused.
      if (faulted) {
        for (std::size_t i = 0; i < death_start; ++i) {
          observer->on_fault(fault_events[i]);
        }
        if (repair_due) observer->on_fault(repair_record);
      }
      observer->on_interval(record);
      if (faulted) {
        for (std::size_t i = death_start; i < fault_events.size(); ++i) {
          observer->on_fault(fault_events[i]);
        }
      }
    }

    // 6. Stop: a degraded run keeps going until at most one host still
    //    functions; the paper's run ends at the first death.
    if (faulted) {
      if (batteries.size() - injector->down_count() <= 1) {
        attrition_stop = true;
        break;
      }
    } else if (someone_died) {
      attrition_stop = true;
      break;
    }
    mobility->step(positions, field, rng);
  }
  result.hit_cap = !attrition_stop && result.intervals >= config.max_intervals;
  if (result.intervals > 0) {
    gateway_sum /= static_cast<double>(result.intervals);
    marked_sum /= static_cast<double>(result.intervals);
  }
  result.avg_gateways = gateway_sum;
  result.avg_marked = marked_sum;
  return result;
}

}  // namespace pacds
