#include "sim/traffic_sim.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "net/udg.hpp"
#include "routing/routing.hpp"
#include "sim/engine.hpp"

namespace pacds {

namespace {

/// Unit-disk graph restricted to active, alive hosts (others stay as
/// isolated vertices so indices line up with the battery bank).
Graph build_active_udg(const std::vector<Vec2>& positions, double radius,
                       const std::vector<char>& usable) {
  const Graph full = build_udg(positions, radius);
  Graph g(full.num_nodes());
  for (const auto& [u, v] : full.edges()) {
    if (usable[static_cast<std::size_t>(u)] &&
        usable[static_cast<std::size_t>(v)]) {
      g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace

TrafficSimResult run_traffic_trial(const TrafficSimConfig& config,
                                   std::uint64_t seed) {
  if (config.n_hosts < 2) {
    throw std::invalid_argument("run_traffic_trial: need at least two hosts");
  }
  if (config.flows_per_interval < 0) {
    throw std::invalid_argument("run_traffic_trial: negative flow count");
  }
  Xoshiro256 rng(seed);
  const Field field(config.field_width, config.field_height, config.boundary);

  std::vector<Vec2> positions;
  if (auto placed = random_connected_placement(
          config.n_hosts, field, config.radius, rng, config.connect_retries)) {
    positions = std::move(placed->positions);
  } else {
    positions = random_placement(config.n_hosts, field, rng);
  }

  const auto n = static_cast<std::size_t>(config.n_hosts);
  BatteryBank batteries(n, config.initial_energy);
  PaperJumpMobility mobility(config.stay_probability, config.jump_min,
                             config.jump_max);
  std::vector<char> active(n, 1);

  TrafficSimResult result;
  double gateway_sum = 0.0;
  std::vector<double> key_scratch;
  while (result.intervals < config.max_intervals) {
    // Usable hosts: alive AND switched on.
    std::vector<char> usable(n, 0);
    std::vector<NodeId> usable_ids;
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i] && batteries.alive(i)) {
        usable[i] = 1;
        usable_ids.push_back(static_cast<NodeId>(i));
      }
    }
    if (usable_ids.size() < 2) break;  // nothing left to route

    const Graph g = build_active_udg(positions, config.radius, usable);
    const CdsResult cds = compute_cds(
        g, config.rule_set,
        quantize_key_levels(batteries.levels(), config.energy_key_quantum,
                            key_scratch),
        config.cds_options);
    gateway_sum += static_cast<double>(cds.gateway_count);

    // Per-interval baseline costs.
    bool someone_died = false;
    for (const NodeId host : usable_ids) {
      const auto hi = static_cast<std::size_t>(host);
      const double upkeep =
          config.costs.idle + (cds.gateways.test(hi) ? config.costs.beacon
                                                     : 0.0);
      someone_died |= batteries.drain(hi, upkeep);
    }

    // Route random flows through the backbone and charge per hop.
    const DominatingSetRouter router(g, cds.gateways);
    for (int flow = 0; flow < config.flows_per_interval; ++flow) {
      const auto si = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(usable_ids.size()) - 1));
      auto ti = si;
      while (ti == si) {
        ti = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(usable_ids.size()) - 1));
      }
      const NodeId src = usable_ids[si];
      const NodeId dst = usable_ids[ti];
      ++result.flows_attempted;
      const RouteResult route = router.route(src, dst);
      if (!route.delivered) {
        // The source still spends a transmission trying.
        someone_died |= batteries.drain(static_cast<std::size_t>(src),
                                        config.costs.tx);
        continue;
      }
      ++result.flows_delivered;
      for (std::size_t hop = 0; hop < route.path.size(); ++hop) {
        const auto node = static_cast<std::size_t>(route.path[hop]);
        double cost = 0.0;
        if (hop + 1 < route.path.size()) cost += config.costs.tx;
        if (hop > 0) cost += config.costs.rx;
        someone_died |= batteries.drain(node, cost);
      }
    }

    ++result.intervals;
    if (someone_died) break;

    // Mobility and churn for the next interval.
    mobility.step(positions, field, rng);
    for (std::size_t i = 0; i < n; ++i) {
      if (!batteries.alive(i)) continue;
      if (active[i]) {
        if (rng.bernoulli(config.churn.off_probability)) active[i] = 0;
      } else if (rng.bernoulli(config.churn.on_probability)) {
        active[i] = 1;
      }
    }
  }

  result.hit_cap =
      !batteries.any_dead() && result.intervals >= config.max_intervals;
  if (result.intervals > 0) {
    result.avg_gateways =
        gateway_sum / static_cast<double>(result.intervals);
  }
  if (result.flows_attempted > 0) {
    result.delivery_ratio = static_cast<double>(result.flows_delivered) /
                            static_cast<double>(result.flows_attempted);
  }
  // Energy spread at the end of the run (balance quality).
  double mean = 0.0;
  for (const double level : batteries.levels()) mean += level;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double level : batteries.levels()) {
    var += (level - mean) * (level - mean);
  }
  result.energy_stddev_at_death = std::sqrt(var / static_cast<double>(n));
  return result;
}

}  // namespace pacds
