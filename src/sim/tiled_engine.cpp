#include "sim/tiled_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace pacds {

TiledEngine::TiledEngine(const SimConfig& config)
    : config_(config), moved_(static_cast<std::size_t>(config.n_hosts)) {
  if (!tiled_engine_eligible(config_)) {
    throw std::invalid_argument(
        "TiledEngine: configuration not eligible (needs simultaneous "
        "strategy, no custom key, unit-disk links, no clique policy)");
  }
  make_interval_pool(config_.threads, pool_);
  if (config_.radio != RadioKind::kUnitDisk) {
    radio_.emplace(config_.radio, config_.radio_params, config_.radius);
  }
  if (uses_stability(config_.rule_set)) {
    tracker_.emplace(static_cast<std::size_t>(config_.n_hosts),
                     config_.stability_beta, config_.stability_quantum);
  }
}

void TiledEngine::initialize(const std::vector<Vec2>& positions) {
  const obs::PhaseTimer timer(metrics_, obs::Phase::kLinkBuild);
  prev_positions_ = positions;
  const double cell = config_.radius > 0.0 ? config_.radius : 1.0;
  grid_.emplace(prev_positions_, cell);
  const auto n = static_cast<NodeId>(positions.size());
  graph_.emplace(n);
  for (NodeId u = 0; u < n; ++u) {
    grid_->query_into(positions[static_cast<std::size_t>(u)], config_.radius,
                      u, nbrs_);
    for (const NodeId v : nbrs_) {
      if (v > u &&
          (!radio_ ||
           radio_->link(u, v,
                        distance2(positions[static_cast<std::size_t>(u)],
                                  positions[static_cast<std::size_t>(v)])))) {
        graph_->add_edge(u, v);
      }
    }
  }
  tiles_.reset(config_.field_width, config_.field_height, config_.radius,
               config_.tiles, positions.size());
  tiles_.assign_all(prev_positions_);
  tile_local_.resize(static_cast<std::size_t>(tiles_.tile_count()));
  lane_scratch_.resize(pool_ ? pool_->max_lanes() : 1);

  const auto nbits = positions.size();
  marked_.resize_clear(nbits);
  after_rule1_.resize_clear(nbits);
  final_.resize_clear(nbits);
  gateways_.resize_clear(nbits);
  dirty_tiles_.resize_clear(static_cast<std::size_t>(tiles_.tile_count()));
  for (std::size_t t = 0; t < dirty_tiles_.size(); ++t) dirty_tiles_.set(t);
}

void TiledEngine::extract_delta(const std::vector<Vec2>& positions) {
  const double dirt = 3.0 * tiles_.radius();
  delta_.clear();
  movers_.clear();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] != prev_positions_[i]) {
      movers_.push_back(static_cast<NodeId>(i));
      moved_.set(i);
    }
  }
  // Re-file every mover first so neighborhood queries see the full new
  // configuration; dirty both endpoints of the jump while the old position
  // is still at hand.
  for (const NodeId v : movers_) {
    const auto vi = static_cast<std::size_t>(v);
    tiles_.mark_dirty_around(prev_positions_[vi], dirt, dirty_tiles_);
    tiles_.mark_dirty_around(positions[vi], dirt, dirty_tiles_);
    tiles_.move_host(v, prev_positions_[vi], positions[vi]);
    grid_->move(v, prev_positions_[vi], positions[vi]);
    prev_positions_[vi] = positions[vi];
  }
  for (const NodeId v : movers_) {
    grid_->query_into(prev_positions_[static_cast<std::size_t>(v)],
                      config_.radius, v, nbrs_);
    // The stored rows are radio-filtered, so the candidate list must be
    // too, or the diff would re-add edges the channel vetoes.
    if (radio_) {
      nbrs_.erase(
          std::remove_if(
              nbrs_.begin(), nbrs_.end(),
              [&](NodeId u) {
                return !radio_->link(
                    v, u,
                    distance2(prev_positions_[static_cast<std::size_t>(v)],
                              prev_positions_[static_cast<std::size_t>(u)]));
              }),
          nbrs_.end());
    }
    // Two-pointer diff of old vs new sorted neighbor lists. A pair whose
    // endpoints both moved shows up in both diffs; keep it only for the
    // smaller endpoint.
    const auto keep = [&](NodeId u) {
      return !moved_.test(static_cast<std::size_t>(u)) || v < u;
    };
    const auto old = graph_->neighbors(v);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < old.size() || j < nbrs_.size()) {
      if (j == nbrs_.size() || (i < old.size() && old[i] < nbrs_[j])) {
        if (keep(old[i])) delta_.removed.emplace_back(v, old[i]);
        ++i;
      } else if (i == old.size() || nbrs_[j] < old[i]) {
        if (keep(nbrs_[j])) delta_.added.emplace_back(v, nbrs_[j]);
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  }
  for (const NodeId v : movers_) moved_.reset(static_cast<std::size_t>(v));
}

void TiledEngine::run_stages(const std::vector<double>& keys) {
  const bool needs_energy = uses_energy(config_.rule_set);
  const PriorityKey key(key_kind_of(config_.rule_set), *graph_,
                        needs_energy ? &keys : nullptr,
                        tracker_ ? &tracker_->stability() : nullptr);
  dirty_list_.clear();
  last_touched_ = 0;
  dirty_tiles_.for_each_set([&](std::size_t t) {
    dirty_list_.push_back(static_cast<int>(t));
    last_touched_ += tiles_.owned(static_cast<int>(t)).size();
  });
  Executor* exec = pool_ ? &*pool_ : nullptr;

  const auto for_each_dirty = [&](auto&& per_tile) {
    auto chunk = [&](std::size_t begin, std::size_t end, std::size_t lane) {
      for (std::size_t k = begin; k < end; ++k) {
        per_tile(dirty_list_[k], lane);
      }
    };
    run_sharded(exec, dirty_list_.size(), 1, chunk);
  };
  const auto scatter_dirty = [&](DynBitset& global) {
    for (const int t : dirty_list_) {
      scatter_tile_out(tile_local_[static_cast<std::size_t>(t)], global);
    }
  };

  // Local universes and dense rows, once per dirty tile per interval; all
  // three stages reuse them.
  for_each_dirty([&](int t, std::size_t lane) {
    build_tile_local(*graph_, tiles_, prev_positions_, t, lane_scratch_[lane],
                     tile_local_[static_cast<std::size_t>(t)]);
  });

  {
    const obs::PhaseTimer timer(metrics_, obs::Phase::kMarking);
    for_each_dirty([&](int t, std::size_t /*lane*/) {
      tile_marking_stage(tile_local_[static_cast<std::size_t>(t)]);
    });
    scatter_dirty(marked_);
  }
  {
    const obs::PhaseTimer timer(metrics_, obs::Phase::kRules);
    if (config_.rule_set == RuleSet::kNR) {
      after_rule1_ = marked_;
      final_ = marked_;
    } else {
      for_each_dirty([&](int t, std::size_t /*lane*/) {
        tile_rule1_stage(key, marked_, tile_local_[static_cast<std::size_t>(t)]);
      });
      scatter_dirty(after_rule1_);
      const bool simple = rule2_form_of(config_.rule_set) == Rule2Form::kSimple;
      for_each_dirty([&](int t, std::size_t /*lane*/) {
        tile_rule2_stage(key, simple, after_rule1_,
                         tile_local_[static_cast<std::size_t>(t)]);
      });
      scatter_dirty(final_);
    }
  }
  gateways_ = final_;

  if (metrics_ != nullptr) {
    metrics_->add(obs::Counter::kNodesTouched,
                  static_cast<std::uint64_t>(last_touched_));
  }
  dirty_tiles_.resize_clear(dirty_tiles_.size());
}

void TiledEngine::update(const std::vector<Vec2>& positions,
                         const std::vector<double>& levels) {
  with_pool_accounting(pool_, [&] {
    const auto& keys =
        quantize_key_levels(levels, config_.energy_key_quantum, key_scratch_);
    if (!graph_) {
      initialize(positions);
      if (uses_energy(config_.rule_set)) prev_keys_ = keys;
      if (tracker_) {
        // First interval: commit on zero counts (no link history) so the
        // EWMA cadence is one commit per update, as in the other engines.
        tracker_->commit();
        prev_stab_ = tracker_->stability();
      }
      if (metrics_ != nullptr) metrics_->add(obs::Counter::kFullRefreshes);
      run_stages(keys);
      return;
    }
    {
      const obs::PhaseTimer timer(metrics_, obs::Phase::kDeltaExtract);
      extract_delta(positions);
    }
    if (metrics_ != nullptr) {
      metrics_->add(obs::Counter::kEdgesAdded, delta_.added.size());
      metrics_->add(obs::Counter::kEdgesRemoved, delta_.removed.size());
    }
    for (const auto& [u, v] : delta_.removed) graph_->remove_edge(u, v);
    for (const auto& [u, v] : delta_.added) graph_->add_edge(u, v);
    if (tracker_) {
      // Both endpoints of every (deduped) delta edge — the same counts the
      // full-rebuild engine derives from row diffs.
      for (const auto& [u, v] : delta_.added) {
        tracker_->count(u);
        tracker_->count(v);
      }
      for (const auto& [u, v] : delta_.removed) {
        tracker_->count(u);
        tracker_->count(v);
      }
      tracker_->commit();
      // Stability-bucket changes dirty 2r around the host exactly like the
      // energy-key diff below (same marked-node filter, same locality
      // argument). This pass is what catches EWMA *decay*: a long-quiet
      // host's bucket can drop with no topology change anywhere near it,
      // so mover dirt alone would miss the key flip.
      const std::vector<double>& stab = tracker_->stability();
      const double dirt = 2.0 * tiles_.radius();
      for (std::size_t i = 0; i < stab.size(); ++i) {
        if (stab[i] != prev_stab_[i] && marked_.test(i)) {
          tiles_.mark_dirty_around(prev_positions_[i], dirt, dirty_tiles_);
        }
      }
      prev_stab_ = stab;
    }
    if (uses_energy(config_.rule_set)) {
      // A key change re-decides rules out to 2r around the host: key(i) is
      // read only by deciders within r (Rule 1 compares v against neighbor
      // keys; Rule 2/k draw candidates from N(v)), and a flipped Rule 1
      // decision at distance r can flip Rule 2 deciders one more hop out.
      // Marking reads no keys, so 2r covers the whole cascade — position
      // changes keep their 3r radius separately. Churn-aware filter
      // (mirrors the flat incremental engine's marked-filtered key diffs):
      // keys are only ever read for nodes in the marked set — Rule 1
      // compares marked v against marked u, Rule 2 draws its candidate
      // pairs from the post-Rule-1 set ⊆ marked — and marking itself is
      // pure topology. So a key change at a host that was unmarked last
      // interval flips no decision unless its marking flips too, and a
      // marking flip needs a topology change within r of the host, whose
      // mover endpoints (within r) already dirtied every tile within 3r —
      // covering all deciders within 2r of the host. EL2's steady energy
      // drain on non-backbone hosts therefore stops dirtying tiles
      // (DESIGN.md §11 spells out the argument).
      const double dirt = 2.0 * tiles_.radius();
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] != prev_keys_[i] && marked_.test(i)) {
          tiles_.mark_dirty_around(prev_positions_[i], dirt, dirty_tiles_);
        }
      }
      prev_keys_ = keys;
    }
    run_stages(keys);
  });
}

bool tiled_engine_eligible(const SimConfig& config) {
  return incremental_engine_eligible(config) &&
         config.cds_options.clique_policy == CliquePolicy::kNone;
}

}  // namespace pacds
