#pragma once
// Monte-Carlo driver: runs many independent lifetime trials (each seeded by
// derive_seed(base, trial)) across a thread pool and aggregates the metrics
// the paper's figures plot.

#include <cstdint>

#include "obs/jsonl.hpp"
#include "sim/lifetime.hpp"
#include "sim/stats.hpp"
#include "sim/threadpool.hpp"

namespace pacds {

/// Aggregated trial metrics for one (config) point.
struct LifetimeSummary {
  Summary intervals;      ///< network lifetime (Figures 11-13)
  Summary avg_gateways;   ///< per-interval gateway count (Figure 10)
  Summary avg_marked;     ///< marking-process set size (Figure 10's NR)
  /// Per-interval gateway-set churn (|G'_t XOR G'_{t-1}| averaged over the
  /// trial) — the stability metric the SEL key is designed to lower.
  Summary avg_churn;
  std::size_t capped_trials = 0;        ///< trials stopped by the cap
  std::size_t disconnected_trials = 0;  ///< trials starting disconnected
  /// Degraded-mode aggregates across trials: counts/ns sum; min_coverage is
  /// the minimum over trials; `first_death_interval` the earliest first death
  /// over trials that saw one (-1 if none did — a first-interval death is a
  /// real value, so 0 cannot double as the sentinel). Counts are all-zero
  /// for fault-free runs.
  FaultStats faults{};
};

/// The per-trial config run_lifetime_trials actually uses: identical to
/// `config` except that under a Monte-Carlo pool (`under_pool`) the
/// intra-interval thread count is forced to 1. Otherwise every concurrent
/// trial would spin up its own interval pool on top of the trial pool's
/// workers — trials x threads oversubscription for zero determinism benefit
/// (trial-level parallelism already saturates the host). Exposed so tests
/// can pin the invariant.
[[nodiscard]] SimConfig montecarlo_trial_config(const SimConfig& config,
                                                bool under_pool);

/// Runs `trials` independent trials of `config`. If `pool` is non-null the
/// trials run across its workers with per-trial intra-interval parallelism
/// disabled (see montecarlo_trial_config); otherwise they run inline.
/// Deterministic: aggregation order does not depend on completion order.
///
/// With `metrics` set, a run manifest plus every trial's interval records
/// are emitted — in trial order regardless of pool scheduling (pooled
/// trials buffer their lines and splice after the join).
///
/// A non-null `faults` plan is passed to every trial (see
/// run_lifetime_trial) and embedded in the manifest; trial seeds and the
/// record splice order are unchanged, so serial and pooled faulted runs
/// emit identical streams modulo `*_ns` timing fields.
[[nodiscard]] LifetimeSummary run_lifetime_trials(
    const SimConfig& config, std::size_t trials, std::uint64_t base_seed,
    ThreadPool* pool = nullptr, obs::JsonlSink* metrics = nullptr,
    const FaultPlan* faults = nullptr);

}  // namespace pacds
