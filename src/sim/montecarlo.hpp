#pragma once
// Monte-Carlo driver: runs many independent lifetime trials (each seeded by
// derive_seed(base, trial)) across a thread pool and aggregates the metrics
// the paper's figures plot.

#include <cstdint>

#include "sim/lifetime.hpp"
#include "sim/stats.hpp"
#include "sim/threadpool.hpp"

namespace pacds {

/// Aggregated trial metrics for one (config) point.
struct LifetimeSummary {
  Summary intervals;      ///< network lifetime (Figures 11-13)
  Summary avg_gateways;   ///< per-interval gateway count (Figure 10)
  Summary avg_marked;     ///< marking-process set size (Figure 10's NR)
  std::size_t capped_trials = 0;        ///< trials stopped by the cap
  std::size_t disconnected_trials = 0;  ///< trials starting disconnected
};

/// Runs `trials` independent trials of `config`. If `pool` is non-null the
/// trials run across its workers; otherwise they run inline. Deterministic:
/// aggregation order does not depend on completion order.
[[nodiscard]] LifetimeSummary run_lifetime_trials(const SimConfig& config,
                                                  std::size_t trials,
                                                  std::uint64_t base_seed,
                                                  ThreadPool* pool = nullptr);

}  // namespace pacds
