#pragma once
// The tiled lifetime engine: spatial tiles (core/tiles.hpp) over a
// persistent CSR graph. Each interval it
//
//   1. extracts the edge delta exactly like IncrementalEngine (spatial-grid
//      re-file + sorted neighbor diff) and applies it to the global graph;
//   2. marks dirty every tile whose rectangle intersects the 3r bounding
//      box of a changed position or of a host whose quantized key changed —
//      a superset of the tiles any stage decision can flip in (DESIGN.md
//      §9, locality radii in core/tiles.hpp);
//   3. re-files moved hosts between tile owned-lists;
//   4. runs the three simultaneous stages over the dirty tiles: each stage
//      computes every dirty tile's owned decisions in parallel against the
//      frozen global stage input (per-tile dense rows, built once per dirty
//      tile per interval), then a serial scatter commits them into the
//      global stage bitset before the next stage reads it. Clean tiles keep
//      their bits, which the locality argument proves unchanged.
//
// The result is bit-identical to the flat engines for every tile count and
// thread count wherever tiled_engine_eligible holds; peak memory is
// O(n + m + Σ_dirty L_t²/64) instead of the global-dense O(n²/64).

#include <optional>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "core/tiles.hpp"
#include "net/udg.hpp"
#include "sim/engine.hpp"

namespace pacds {

class TiledEngine final : public LifetimeEngine {
 public:
  /// Throws std::invalid_argument when !tiled_engine_eligible(config).
  explicit TiledEngine(const SimConfig& config);

  void update(const std::vector<Vec2>& positions,
              const std::vector<double>& levels) override;
  [[nodiscard]] const DynBitset& gateways() const override {
    return gateways_;
  }
  [[nodiscard]] const Graph* graph() const override {
    return graph_ ? &*graph_ : nullptr;
  }
  [[nodiscard]] IntervalCounts counts() const override {
    return {marked_.count(), gateways_.count()};
  }
  /// Owned hosts of the dirty tiles — the nodes re-evaluated this interval.
  [[nodiscard]] std::size_t last_touched() const override {
    return last_touched_;
  }
  [[nodiscard]] std::string name() const override { return "tiled"; }

 private:
  void initialize(const std::vector<Vec2>& positions);
  /// Mover detection + grid re-file + sorted neighbor diff (mirrors
  /// IncrementalEngine::extract_delta), plus tile re-files and 3r dirty
  /// marking around every mover's old and new position.
  void extract_delta(const std::vector<Vec2>& positions);
  void run_stages(const std::vector<double>& keys);

  SimConfig config_;
  std::vector<Vec2> prev_positions_;
  std::optional<SpatialGrid> grid_;
  /// Per-pair channel veto over the grid's unit-disk candidates (engaged
  /// when config.radio != unit-disk). Links only ever get shorter, so the
  /// 3r/2r tile dirt radii stay valid supersets.
  std::optional<RadioModel> radio_;
  /// Per-host churn EWMA feeding the SEL key; fed with both endpoints of
  /// every delta edge (== the full-rebuild engine's row-diff counts).
  std::optional<StabilityTracker> tracker_;
  std::optional<ThreadPool> pool_;
  std::optional<Graph> graph_;

  TileGrid tiles_;
  std::vector<TileLocal> tile_local_;
  std::vector<TileLaneScratch> lane_scratch_;

  // Global stage state (same staging as IncrementalCds).
  DynBitset marked_;       ///< marking-process output
  DynBitset after_rule1_;  ///< after the simultaneous Rule 1 pass
  DynBitset final_;        ///< after the simultaneous Rule 2 pass
  DynBitset gateways_;     ///< final_ (clique policy kNone by eligibility)

  DynBitset dirty_tiles_;  ///< one bit per tile
  std::vector<int> dirty_list_;
  std::size_t last_touched_ = 0;

  // Steady-state scratch — reused, never reallocated after warm-up.
  EdgeDelta delta_;
  std::vector<NodeId> movers_;
  std::vector<NodeId> nbrs_;
  DynBitset moved_;
  std::vector<double> prev_keys_;
  /// Last interval's quantized stability buckets (kSEL only): the diff
  /// drives 2r key-dirt exactly like prev_keys_, and is what catches
  /// decay-driven bucket drops at hosts with no nearby topology change.
  std::vector<double> prev_stab_;
  std::vector<double> key_scratch_;
};

/// True iff TiledEngine provably reproduces the full rebuild for this
/// configuration: everything incremental_engine_eligible requires, plus no
/// clique policy (electing a per-component maximum is a component-global
/// decision, which tiles cannot evaluate locally).
[[nodiscard]] bool tiled_engine_eligible(const SimConfig& config);

}  // namespace pacds
