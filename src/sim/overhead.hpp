#pragma once
// Maintenance-overhead model for the distributed protocol. The paper's
// Section 2.2 argues the marking process is cheap to maintain: when hosts
// move, only hosts near the change re-decide and re-announce their gateway
// status. This module counts protocol messages over a mobile run:
//
//   neighbor broadcasts — a host whose adjacency changed re-broadcasts its
//                         neighbor list (the marking process's input);
//   status broadcasts   — a host whose gateway/non-gateway status flipped
//                         announces the new status;
//
// and compares against a naive global baseline where every host re-floods
// both messages every update interval (2n per interval).

#include <cstdint>

#include "core/cds.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"

namespace pacds {

struct OverheadConfig {
  int n_hosts = 50;
  double radius = kPaperRadius;
  int intervals = 50;
  RuleSet rule_set = RuleSet::kND;
  MobilityKind mobility_kind = MobilityKind::kPaperJump;
  MobilityParams mobility_params{};
  int connect_retries = 500;
};

struct MaintenanceOverhead {
  std::size_t intervals = 0;
  std::size_t setup_msgs = 0;     ///< initial neighbor + status broadcasts
  std::size_t neighbor_msgs = 0;  ///< per-interval adjacency re-broadcasts
  std::size_t status_msgs = 0;    ///< per-interval status flips announced
  std::size_t global_msgs = 0;    ///< naive baseline: 2n per interval

  [[nodiscard]] std::size_t localized_total() const {
    return neighbor_msgs + status_msgs;
  }
  /// Localized messages as a fraction of the global baseline (lower is
  /// better; excludes the one-time setup both protocols need).
  [[nodiscard]] double ratio() const {
    return global_msgs == 0
               ? 0.0
               : static_cast<double>(localized_total()) /
                     static_cast<double>(global_msgs);
  }
};

/// Simulates `config.intervals` update intervals of host mobility (no
/// energy model) and tallies maintenance messages. Deterministic in
/// (config, seed).
[[nodiscard]] MaintenanceOverhead measure_maintenance_overhead(
    const OverheadConfig& config, std::uint64_t seed);

}  // namespace pacds
