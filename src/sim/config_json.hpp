#pragma once
// The SimConfig wire format: one strict JSON object mapping knob names to
// values, shared by the fuzz corpus ("config" in a pacds-fuzz-repro file)
// and the serve request schema ("config" in a create request). Unknown
// keys, wrong types, out-of-range values and inconsistent combinations all
// throw — both consumers promise that a config that parses is one the
// simulator will accept, and neither tolerates silent key drops.

#include <string>

#include "sim/lifetime.hpp"

namespace pacds {

class JsonValue;
class JsonWriter;

/// Applies the members of a parsed JSON config object onto `config`
/// (absent keys keep their current values, so defaults come from the
/// SimConfig the caller passes in). Throws std::runtime_error with
/// `error_prefix` prepended — e.g. "fuzz scenario: config.n must be ...".
void parse_sim_config_json(const JsonValue& value, SimConfig& config,
                           const std::string& error_prefix);

/// Writes the config object parse_sim_config_json accepts, every key
/// explicit, in the pinned corpus order. Exact round trip: parsing the
/// output reproduces the trial-relevant fields bit for bit.
void write_sim_config_json(JsonWriter& json, const SimConfig& config);

/// Stable wire name of a drain model ("constant" / "linear" / "quadratic").
[[nodiscard]] const char* drain_model_name(DrainModel model) noexcept;

}  // namespace pacds
