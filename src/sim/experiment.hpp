#pragma once
// Experiment harness: sweeps host count x rule scheme, reproducing the
// paper's Figures 10-13. All schemes share the same per-trial seeds, so
// every scheme sees identical placements and host trajectories (paired
// comparison; differences are due to the rules alone).

#include <cstdint>
#include <string>
#include <vector>

#include "io/table.hpp"
#include "sim/montecarlo.hpp"

namespace pacds {

/// One sweep definition.
struct SweepConfig {
  std::vector<int> host_counts;
  std::vector<RuleSet> schemes;
  SimConfig base;          ///< rule_set/n_hosts are overridden per point
  std::size_t trials = 100;
  std::uint64_t base_seed = 0x5eed2001;
};

/// Results for one host count: one LifetimeSummary per scheme, in
/// config.schemes order.
struct SweepRow {
  int n_hosts = 0;
  std::vector<LifetimeSummary> per_scheme;
};

struct SweepResult {
  SweepConfig config;
  std::vector<SweepRow> rows;
};

/// Which aggregated metric a table should show.
enum class SweepMetric {
  kLifetime,      ///< mean intervals to first death (Figures 11-13)
  kGatewayCount,  ///< mean per-interval gateway count (Figure 10)
};

/// Runs the full sweep; trials of each (n, scheme) point run across `pool`
/// when provided. With `metrics` set, each point emits its run manifest and
/// per-interval records through the sink (in sweep order).
[[nodiscard]] SweepResult run_sweep(const SweepConfig& config,
                                    ThreadPool* pool = nullptr,
                                    obs::JsonlSink* metrics = nullptr);

/// Renders one metric of a sweep as a text table: first column n, one
/// column per scheme (mean, with ±95% CI in a paired column when
/// `with_ci`).
[[nodiscard]] TextTable sweep_table(const SweepResult& result,
                                    SweepMetric metric, bool with_ci = false);

/// CSV rows matching sweep_table(metric) plus CI columns.
[[nodiscard]] std::vector<std::vector<std::string>> sweep_csv_rows(
    const SweepResult& result, SweepMetric metric);
[[nodiscard]] std::vector<std::string> sweep_csv_header(
    const SweepResult& result);

/// The paper's x-axis: host counts from 3 to 100.
[[nodiscard]] std::vector<int> paper_host_counts();

/// Smaller grid for smoke runs.
[[nodiscard]] std::vector<int> quick_host_counts();

/// Reads a positive integer from environment variable `name`, else
/// `fallback` (used for PACDS_TRIALS so CI and laptops can scale effort).
[[nodiscard]] std::size_t env_size_t(const char* name, std::size_t fallback);

}  // namespace pacds
