#include "sim/montecarlo.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "net/rng.hpp"
#include "sim/metrics_io.hpp"

namespace pacds {

SimConfig montecarlo_trial_config(const SimConfig& config, bool under_pool) {
  SimConfig trial_config = config;
  if (under_pool && trial_config.threads != 1) trial_config.threads = 1;
  return trial_config;
}

LifetimeSummary run_lifetime_trials(const SimConfig& config,
                                    std::size_t trials,
                                    std::uint64_t base_seed, ThreadPool* pool,
                                    obs::JsonlSink* metrics,
                                    const FaultPlan* faults) {
  const SimConfig trial_config =
      montecarlo_trial_config(config, pool != nullptr);
  if (metrics != nullptr) {
    write_run_manifest(*metrics, trial_config, base_seed, trials, faults);
  }

  std::vector<TrialResult> results(trials);
  // Pooled trials may finish in any order; each buffers its JSONL lines and
  // the buffers are spliced in trial order after the join, so the emitted
  // stream is identical to a serial run.
  std::vector<std::string> buffered_lines(metrics != nullptr ? trials : 0);
  const auto run_one = [&](std::size_t trial) {
    const std::uint64_t seed = derive_seed(base_seed, trial);
    if (metrics == nullptr) {
      results[trial] = run_lifetime_trial(trial_config, seed, nullptr, faults);
      return;
    }
    std::ostringstream buffer;
    obs::JsonlSink trial_sink(buffer);
    JsonlIntervalObserver observer(trial_sink, trial_config, trial);
    results[trial] =
        run_lifetime_trial(trial_config, seed, &observer, faults);
    buffered_lines[trial] = buffer.str();
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, run_one);
  } else {
    for (std::size_t t = 0; t < trials; ++t) run_one(t);
  }
  if (metrics != nullptr) {
    for (const std::string& lines : buffered_lines) metrics->splice(lines);
  }

  // Deterministic aggregation in trial order.
  Welford intervals;
  Welford gateways;
  Welford marked;
  Welford churn;
  LifetimeSummary summary;
  for (const TrialResult& r : results) {
    intervals.add(static_cast<double>(r.intervals));
    gateways.add(r.avg_gateways);
    marked.add(r.avg_marked);
    churn.add(r.avg_cds_churn);
    if (r.hit_cap) ++summary.capped_trials;
    if (!r.initial_connected) ++summary.disconnected_trials;
    FaultStats& fs = summary.faults;
    fs.events += r.faults.events;
    fs.crashes += r.faults.crashes;
    fs.recoveries += r.faults.recoveries;
    fs.thefts += r.faults.thefts;
    fs.deaths += r.faults.deaths;
    fs.repairs += r.faults.repairs;
    fs.disconnected_intervals += r.faults.disconnected_intervals;
    fs.uncovered_intervals += r.faults.uncovered_intervals;
    fs.min_coverage = std::min(fs.min_coverage, r.faults.min_coverage);
    if (r.faults.first_death_interval >= 0 &&
        (fs.first_death_interval < 0 ||
         r.faults.first_death_interval < fs.first_death_interval)) {
      fs.first_death_interval = r.faults.first_death_interval;
    }
    fs.repair_ns_total += r.faults.repair_ns_total;
    fs.repair_touched_total += r.faults.repair_touched_total;
  }
  summary.intervals = Summary::of(intervals);
  summary.avg_gateways = Summary::of(gateways);
  summary.avg_marked = Summary::of(marked);
  summary.avg_churn = Summary::of(churn);
  return summary;
}

}  // namespace pacds
