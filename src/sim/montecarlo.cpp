#include "sim/montecarlo.hpp"

#include <vector>

#include "net/rng.hpp"

namespace pacds {

LifetimeSummary run_lifetime_trials(const SimConfig& config,
                                    std::size_t trials,
                                    std::uint64_t base_seed,
                                    ThreadPool* pool) {
  std::vector<TrialResult> results(trials);
  const auto run_one = [&config, base_seed, &results](std::size_t trial) {
    results[trial] =
        run_lifetime_trial(config, derive_seed(base_seed, trial));
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, run_one);
  } else {
    for (std::size_t t = 0; t < trials; ++t) run_one(t);
  }

  // Deterministic aggregation in trial order.
  Welford intervals;
  Welford gateways;
  Welford marked;
  LifetimeSummary summary;
  for (const TrialResult& r : results) {
    intervals.add(static_cast<double>(r.intervals));
    gateways.add(r.avg_gateways);
    marked.add(r.avg_marked);
    if (r.hit_cap) ++summary.capped_trials;
    if (!r.initial_connected) ++summary.disconnected_trials;
  }
  summary.intervals = Summary::of(intervals);
  summary.avg_gateways = Summary::of(gateways);
  summary.avg_marked = Summary::of(marked);
  return summary;
}

}  // namespace pacds
