#include "sim/threadpool.hpp"

#include <algorithm>

namespace pacds {

namespace {

/// Shared state of one bulk (run_chunks / parallel_for) invocation. Lives on
/// the caller's stack; helpers hold a pointer only while the caller blocks
/// in bulk_run, so lifetime is guaranteed by the join.
struct BulkState {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  std::size_t chunk = 1;
  ChunkFnRef body;
  std::mutex mutex;
  std::condition_variable done;
  std::size_t active_helpers = 0;

  explicit BulkState(ChunkFnRef b) : body(b) {}
};

/// Claims chunks until the range is exhausted. `lane` is stable for the
/// whole drain, so chunk bodies may use it to index scratch without locks.
void drain_bulk(BulkState& state, std::size_t lane) {
  while (true) {
    const std::size_t begin =
        state.next.fetch_add(state.chunk, std::memory_order_relaxed);
    if (begin >= state.count) return;
    state.body(begin, std::min(begin + state.chunk, state.count), lane);
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::bulk_run(std::size_t count, std::size_t chunk,
                          ChunkFnRef body) {
  if (count == 0) return;
  const std::size_t nchunks = (count + chunk - 1) / chunk;
  if (nchunks <= 1 || workers_.empty()) {
    body(0, count, 0);
    return;
  }
  BulkState state(body);
  state.count = count;
  state.chunk = chunk;
  // The caller takes lane 0 and one chunk for sure; at most one helper per
  // remaining chunk is worth waking.
  const std::size_t helpers = std::min(workers_.size(), nchunks - 1);
  state.active_helpers = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([bulk = &state, lane = h + 1] {
      drain_bulk(*bulk, lane);
      // Notify while holding the mutex: the caller destroys *bulk as soon as
      // its wait returns, and the wait cannot return before this unlock — so
      // the cv is never touched after it may have died.
      const std::lock_guard<std::mutex> lock(bulk->mutex);
      --bulk->active_helpers;
      bulk->done.notify_one();
    });
  }
  drain_bulk(state, 0);
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.active_helpers == 0; });
}

void ThreadPool::run_chunks(std::size_t count, std::size_t align,
                            ChunkFnRef body) {
  if (align == 0) align = 1;
  // Target a few chunks per lane: enough slack for dynamic balance, few
  // enough that claim overhead stays invisible; then round the chunk up to
  // the alignment so shards never split an output word.
  const std::size_t lanes = max_lanes();
  std::size_t chunk = (count + lanes * 4 - 1) / (lanes * 4);
  chunk = std::max(chunk, std::size_t{1});
  chunk = (chunk + align - 1) / align * align;
  bulk_run(count, chunk, body);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  auto body = [&fn](std::size_t begin, std::size_t end, std::size_t /*lane*/) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  };
  // Chunk of 1: tasks like Monte-Carlo trials are few and long, so per-index
  // claiming gives the best balance while still enqueueing at most
  // thread_count() tasks.
  bulk_run(count, 1, body);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace pacds
