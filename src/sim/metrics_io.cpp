#include "sim/metrics_io.hpp"

#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace pacds {

namespace {

const char* clique_policy_name(CliquePolicy policy) {
  return policy == CliquePolicy::kElectMaxKey ? "elect-max-key" : "none";
}

}  // namespace

void write_run_manifest(obs::JsonlSink& sink, const SimConfig& config,
                        std::uint64_t base_seed, std::size_t trials,
                        const FaultPlan* faults) {
  sink.record([&](JsonWriter& json) {
    json.key("type").value("run_manifest");
    json.key("schema").value(kMetricsSchemaVersion);
    json.key("base_seed").value(static_cast<std::size_t>(base_seed));
    json.key("trials").value(trials);
    json.key("scheme").value(to_string(config.rule_set));
    json.key("engine").value(resolved_engine_name(config));
    json.key("engine_config").value(to_string(config.engine));
    json.key("backbone").value(to_string(config.backbone));
    json.key("threads").value(config.threads);
    json.key("tiles").value(config.tiles);
    json.key("n_hosts").value(config.n_hosts);
    json.key("field_width").value(config.field_width);
    json.key("field_height").value(config.field_height);
    json.key("field_depth").value(config.field_depth);
    json.key("boundary").value(to_string(config.boundary));
    json.key("radius").value(config.radius);
    json.key("link_model").value(to_string(config.link_model));
    json.key("radio").value(to_string(config.radio));
    if (config.radio != RadioKind::kUnitDisk) {
      json.key("sigma_db").value(config.radio_params.sigma_db);
      json.key("path_loss_exp").value(config.radio_params.path_loss_exp);
      json.key("link_prob").value(config.radio_params.link_prob);
      json.key("fading_seed")
          .value(static_cast<std::size_t>(config.radio_params.fading_seed));
    }
    json.key("initial_energy").value(config.initial_energy);
    json.key("drain_model").value(to_string(config.drain_model));
    json.key("nongateway_drain").value(config.drain_params.nongateway_drain);
    json.key("constant_base").value(config.drain_params.constant_base);
    json.key("quadratic_divisor")
        .value(config.drain_params.quadratic_divisor);
    json.key("mobility").value(to_string(config.mobility_kind));
    json.key("stay_probability").value(config.stay_probability);
    json.key("jump_min").value(config.jump_min);
    json.key("jump_max").value(config.jump_max);
    switch (config.mobility_kind) {
      case MobilityKind::kRandomWalk:
        json.key("step_min").value(config.mobility_params.step_min);
        json.key("step_max").value(config.mobility_params.step_max);
        break;
      case MobilityKind::kRandomWaypoint:
        json.key("speed_min").value(config.mobility_params.speed_min);
        json.key("speed_max").value(config.mobility_params.speed_max);
        json.key("pause_intervals")
            .value(config.mobility_params.pause_intervals);
        break;
      case MobilityKind::kGaussMarkov:
        json.key("mean_speed").value(config.mobility_params.mean_speed);
        json.key("alpha").value(config.mobility_params.alpha);
        json.key("speed_stddev").value(config.mobility_params.speed_stddev);
        json.key("heading_stddev")
            .value(config.mobility_params.heading_stddev);
        break;
      case MobilityKind::kPaperJump:
      case MobilityKind::kStatic:
        break;  // the three legacy keys above already cover paper-jump
    }
    if (config.rule_set == RuleSet::kSEL ||
        config.custom_key == KeyKind::kStabilityEnergyId) {
      json.key("stability_beta").value(config.stability_beta);
      json.key("stability_quantum").value(config.stability_quantum);
    }
    json.key("strategy").value(to_string(config.cds_options.strategy));
    json.key("clique_policy")
        .value(clique_policy_name(config.cds_options.clique_policy));
    if (config.custom_key.has_value()) {
      json.key("custom_key").value(to_string(*config.custom_key));
      json.key("custom_rule2_form").value(to_string(config.custom_rule2_form));
    } else {
      json.key("custom_key").null();
    }
    json.key("use_rule_k").value(config.use_rule_k);
    json.key("energy_key_quantum").value(config.energy_key_quantum);
    json.key("connect_retries").value(config.connect_retries);
    json.key("max_intervals").value(static_cast<std::int64_t>(
        config.max_intervals));
    if (faults != nullptr && !faults->empty()) {
      json.key("faults");
      write_fault_plan(json, *faults);
    } else {
      json.key("faults").null();
    }
  });
}

JsonlIntervalObserver::JsonlIntervalObserver(obs::JsonlSink& sink,
                                             const SimConfig& config,
                                             std::size_t trial)
    : sink_(&sink),
      scheme_(to_string(config.rule_set)),
      engine_(resolved_engine_name(config)),
      trial_(trial) {}

void JsonlIntervalObserver::on_interval(const IntervalRecord& record) {
  sink_->record([&](JsonWriter& json) {
    json.key("type").value("interval");
    json.key("schema").value(kMetricsSchemaVersion);
    json.key("trial").value(trial_);
    json.key("scheme").value(scheme_);
    json.key("engine").value(engine_);
    json.key("interval").value(static_cast<std::int64_t>(record.interval));
    json.key("marked").value(record.marked);
    json.key("gateways").value(record.gateways);
    json.key("alive").value(record.alive);
    json.key("touched").value(record.touched);
    json.key("energy_min").value(record.min_energy);
    json.key("energy_mean").value(record.mean_energy);
    json.key("energy_max").value(record.max_energy);
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      json.key(std::string(obs::phase_name(static_cast<obs::Phase>(i))) +
               "_ns")
          .value(static_cast<std::size_t>(record.phase_ns[i]));
    }
    for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
      json.key(obs::counter_name(static_cast<obs::Counter>(i)))
          .value(static_cast<std::size_t>(record.counters[i]));
    }
  });
}

void JsonlIntervalObserver::on_fault(const FaultRecord& record) {
  sink_->record([&](JsonWriter& json) {
    json.key("type").value("fault_event");
    json.key("schema").value(kMetricsSchemaVersion);
    json.key("trial").value(trial_);
    json.key("scheme").value(scheme_);
    json.key("engine").value(engine_);
    json.key("interval").value(static_cast<std::int64_t>(record.interval));
    json.key("kind").value(to_string(record.kind));
    json.key("cause").value(to_string(record.cause));
    if (record.node >= 0) {
      json.key("node").value(record.node);
    } else {
      json.key("node").null();
    }
    json.key("amount").value(record.amount);
    json.key("down").value(record.down);
    if (record.kind == FaultKind::kRepair) {
      json.key("touched").value(record.touched);
      json.key("repair_ns").value(static_cast<std::size_t>(record.repair_ns));
      json.key("backbone_ok").value(record.backbone_ok);
      json.key("coverage").value(record.coverage);
      json.key("gateways").value(record.gateways);
    }
  });
}

}  // namespace pacds
