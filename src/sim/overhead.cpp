#include "sim/overhead.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "net/udg.hpp"

namespace pacds {

MaintenanceOverhead measure_maintenance_overhead(const OverheadConfig& config,
                                                 std::uint64_t seed) {
  if (config.n_hosts < 1 || config.intervals < 0) {
    throw std::invalid_argument("measure_maintenance_overhead: bad config");
  }
  Xoshiro256 rng(seed);
  const Field field = Field::paper_field();

  std::vector<Vec2> positions;
  if (auto placed = random_connected_placement(
          config.n_hosts, field, config.radius, rng, config.connect_retries)) {
    positions = std::move(placed->positions);
  } else {
    positions = random_placement(config.n_hosts, field, rng);
  }
  const auto n = static_cast<std::size_t>(config.n_hosts);

  // No energy model here: the EL schemes see uniform levels (their keys
  // then degenerate to the corresponding static tie-break chains).
  const std::vector<double> uniform(n, 1.0);
  Graph current = build_udg(positions, config.radius);
  CdsResult cds = compute_cds(current, config.rule_set, uniform);

  MaintenanceOverhead result;
  // Setup: every host broadcasts its neighbor list, then its status.
  result.setup_msgs = 2 * n;

  const auto mobility =
      make_mobility(config.mobility_kind, config.mobility_params);
  for (int interval = 0; interval < config.intervals; ++interval) {
    mobility->step(positions, field, rng);
    const Graph next = build_udg(positions, config.radius);

    // Hosts whose adjacency changed re-broadcast their neighbor list.
    std::size_t changed_hosts = 0;
    for (NodeId v = 0; v < next.num_nodes(); ++v) {
      const auto vs = current.neighbors(v);
      const auto ns = next.neighbors(v);
      if (!std::equal(vs.begin(), vs.end(), ns.begin(), ns.end())) {
        ++changed_hosts;
      }
    }
    result.neighbor_msgs += changed_hosts;

    // Status flips after the (localized) recomputation.
    const CdsResult next_cds = compute_cds(next, config.rule_set, uniform);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (cds.gateways.test(i) != next_cds.gateways.test(i)) ++flips;
    }
    result.status_msgs += flips;

    result.global_msgs += 2 * n;  // naive baseline: full re-flood
    ++result.intervals;
    current = next;
    cds = next_cds;
  }
  return result;
}

}  // namespace pacds
