#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/verify.hpp"
#include "io/json.hpp"
#include "io/json_parse.hpp"

namespace pacds {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("fault plan: " + message);
}

double number_of(const JsonValue& value, const std::string& what) {
  if (!value.is_number()) fail(what + " must be a number");
  return value.as_number();
}

long interval_of(const JsonValue& value, const std::string& what) {
  const double raw = number_of(value, what);
  if (raw != std::floor(raw) || raw < 1.0 || raw > 1e15) {
    fail(what + " must be an integer interval >= 1");
  }
  return static_cast<long>(raw);
}

/// recover_at / until: 0 (never) or a later interval; the "> at" half is
/// checked by the caller once both ends are known.
long end_interval_of(const JsonValue& value, const std::string& what) {
  const double raw = number_of(value, what);
  if (raw != std::floor(raw) || raw < 0.0 || raw > 1e15) {
    fail(what + " must be 0 or an integer interval");
  }
  return static_cast<long>(raw);
}

int node_of(const JsonValue& value, const std::string& what) {
  const double raw = number_of(value, what);
  if (raw != std::floor(raw) || raw < 0.0 || raw > 1e9) {
    fail(what + " must be a non-negative integer host id");
  }
  return static_cast<int>(raw);
}

double rate_of(const JsonValue& value, const std::string& what) {
  const double raw = number_of(value, what);
  if (!(raw >= 0.0) || raw >= 1.0) fail(what + " must be in [0, 1)");
  return raw;
}

int positive_int_of(const JsonValue& value, const std::string& what) {
  const double raw = number_of(value, what);
  if (raw != std::floor(raw) || raw < 1.0 || raw > 1e9) {
    fail(what + " must be an integer >= 1");
  }
  return static_cast<int>(raw);
}

CrashSpec parse_crash(const JsonValue& value, std::size_t index) {
  const std::string at = "crashes[" + std::to_string(index) + "]";
  if (!value.is_object()) fail(at + " must be an object");
  CrashSpec spec;
  bool have_node = false;
  bool have_at = false;
  for (const auto& [key, member] : value.as_object()) {
    if (key == "node") {
      spec.node = node_of(member, at + ".node");
      have_node = true;
    } else if (key == "at") {
      spec.at = interval_of(member, at + ".at");
      have_at = true;
    } else if (key == "recover_at") {
      spec.recover_at = end_interval_of(member, at + ".recover_at");
    } else {
      fail(at + ": unknown key \"" + key + "\"");
    }
  }
  if (!have_node || !have_at) fail(at + " needs \"node\" and \"at\"");
  if (spec.recover_at != 0 && spec.recover_at <= spec.at) {
    fail(at + ".recover_at must be 0 or > at");
  }
  return spec;
}

TheftSpec parse_theft(const JsonValue& value, std::size_t index) {
  const std::string at = "thefts[" + std::to_string(index) + "]";
  if (!value.is_object()) fail(at + " must be an object");
  TheftSpec spec;
  bool have_node = false;
  bool have_at = false;
  bool have_amount = false;
  for (const auto& [key, member] : value.as_object()) {
    if (key == "node") {
      spec.node = node_of(member, at + ".node");
      have_node = true;
    } else if (key == "at") {
      spec.at = interval_of(member, at + ".at");
      have_at = true;
    } else if (key == "amount") {
      spec.amount = number_of(member, at + ".amount");
      have_amount = true;
    } else {
      fail(at + ": unknown key \"" + key + "\"");
    }
  }
  if (!have_node || !have_at || !have_amount) {
    fail(at + " needs \"node\", \"at\" and \"amount\"");
  }
  if (!(spec.amount > 0.0)) fail(at + ".amount must be > 0");
  return spec;
}

BlackoutSpec parse_blackout(const JsonValue& value, std::size_t index) {
  const std::string at = "blackouts[" + std::to_string(index) + "]";
  if (!value.is_object()) fail(at + " must be an object");
  BlackoutSpec spec;
  bool have[5] = {false, false, false, false, false};  // x0 y0 x1 y1 at
  for (const auto& [key, member] : value.as_object()) {
    if (key == "x0") {
      spec.x0 = number_of(member, at + ".x0");
      have[0] = true;
    } else if (key == "y0") {
      spec.y0 = number_of(member, at + ".y0");
      have[1] = true;
    } else if (key == "x1") {
      spec.x1 = number_of(member, at + ".x1");
      have[2] = true;
    } else if (key == "y1") {
      spec.y1 = number_of(member, at + ".y1");
      have[3] = true;
    } else if (key == "at") {
      spec.at = interval_of(member, at + ".at");
      have[4] = true;
    } else if (key == "until") {
      spec.until = end_interval_of(member, at + ".until");
    } else {
      fail(at + ": unknown key \"" + key + "\"");
    }
  }
  if (!have[0] || !have[1] || !have[2] || !have[3] || !have[4]) {
    fail(at + " needs \"x0\", \"y0\", \"x1\", \"y1\" and \"at\"");
  }
  if (spec.x1 < spec.x0 || spec.y1 < spec.y0) {
    fail(at + ": x1/y1 must not be below x0/y0");
  }
  if (spec.until != 0 && spec.until <= spec.at) {
    fail(at + ".until must be 0 or > at");
  }
  return spec;
}

void parse_channel(const JsonValue& value, FaultPlan& plan) {
  if (!value.is_object()) fail("channel must be an object");
  for (const auto& [key, member] : value.as_object()) {
    if (key == "drop") {
      plan.channel.drop = rate_of(member, "channel.drop");
    } else if (key == "duplicate") {
      plan.channel.duplicate = rate_of(member, "channel.duplicate");
    } else if (key == "delay") {
      plan.channel.delay = rate_of(member, "channel.delay");
    } else if (key == "max_attempts") {
      plan.retry.max_attempts = positive_int_of(member, "channel.max_attempts");
    } else if (key == "backoff_base") {
      plan.retry.backoff_base = positive_int_of(member, "channel.backoff_base");
    } else if (key == "backoff_cap") {
      plan.retry.backoff_cap = positive_int_of(member, "channel.backoff_cap");
    } else {
      fail("channel: unknown key \"" + key + "\"");
    }
  }
  if (plan.retry.backoff_cap < plan.retry.backoff_base) {
    fail("channel.backoff_cap must be >= channel.backoff_base");
  }
}

}  // namespace

FaultPlan parse_fault_plan(std::string_view text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) fail("document must be a JSON object");
  FaultPlan plan;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "seed") {
      const double raw = number_of(value, "seed");
      if (raw != std::floor(raw) || raw < 0.0) {
        fail("seed must be a non-negative integer");
      }
      plan.seed = static_cast<std::uint64_t>(raw);
    } else if (key == "crashes") {
      if (!value.is_array()) fail("crashes must be an array");
      const JsonArray& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        plan.crashes.push_back(parse_crash(items[i], i));
      }
    } else if (key == "thefts") {
      if (!value.is_array()) fail("thefts must be an array");
      const JsonArray& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        plan.thefts.push_back(parse_theft(items[i], i));
      }
    } else if (key == "blackouts") {
      if (!value.is_array()) fail("blackouts must be an array");
      const JsonArray& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        plan.blackouts.push_back(parse_blackout(items[i], i));
      }
    } else if (key == "channel") {
      parse_channel(value, plan);
    } else {
      fail("unknown top-level key \"" + key + "\"");
    }
  }
  return plan;
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error(path + ": cannot open fault plan");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    return parse_fault_plan(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_fault_plan(JsonWriter& json, const FaultPlan& plan) {
  json.begin_object();
  json.key("seed").value(static_cast<std::size_t>(plan.seed));
  json.key("crashes").begin_array();
  for (const CrashSpec& crash : plan.crashes) {
    json.begin_object();
    json.key("node").value(crash.node);
    json.key("at").value(static_cast<std::int64_t>(crash.at));
    json.key("recover_at").value(static_cast<std::int64_t>(crash.recover_at));
    json.end_object();
  }
  json.end_array();
  json.key("thefts").begin_array();
  for (const TheftSpec& theft : plan.thefts) {
    json.begin_object();
    json.key("node").value(theft.node);
    json.key("at").value(static_cast<std::int64_t>(theft.at));
    json.key("amount").value(theft.amount);
    json.end_object();
  }
  json.end_array();
  json.key("blackouts").begin_array();
  for (const BlackoutSpec& blackout : plan.blackouts) {
    json.begin_object();
    json.key("x0").value(blackout.x0);
    json.key("y0").value(blackout.y0);
    json.key("x1").value(blackout.x1);
    json.key("y1").value(blackout.y1);
    json.key("at").value(static_cast<std::int64_t>(blackout.at));
    json.key("until").value(static_cast<std::int64_t>(blackout.until));
    json.end_object();
  }
  json.end_array();
  json.key("channel").begin_object();
  json.key("drop").value(plan.channel.drop);
  json.key("duplicate").value(plan.channel.duplicate);
  json.key("delay").value(plan.channel.delay);
  json.key("max_attempts").value(plan.retry.max_attempts);
  json.key("backoff_base").value(plan.retry.backoff_base);
  json.key("backoff_cap").value(plan.retry.backoff_cap);
  json.end_object();
  json.end_object();
}

void validate_fault_plan(const FaultPlan& plan, int n_hosts) {
  const auto check_node = [n_hosts](int node, const char* what) {
    if (node < 0 || node >= n_hosts) {
      throw std::invalid_argument(
          std::string("fault plan: ") + what + " node " +
          std::to_string(node) + " out of range [0, " +
          std::to_string(n_hosts) + ")");
    }
  };
  for (const CrashSpec& crash : plan.crashes) {
    check_node(crash.node, "crash");
    if (crash.at < 1 || (crash.recover_at != 0 && crash.recover_at <= crash.at)) {
      throw std::invalid_argument("fault plan: bad crash schedule");
    }
  }
  for (const TheftSpec& theft : plan.thefts) {
    check_node(theft.node, "theft");
    if (theft.at < 1 || !(theft.amount > 0.0)) {
      throw std::invalid_argument("fault plan: bad theft schedule");
    }
  }
  for (const BlackoutSpec& blackout : plan.blackouts) {
    if (blackout.at < 1 ||
        (blackout.until != 0 && blackout.until <= blackout.at) ||
        blackout.x1 < blackout.x0 || blackout.y1 < blackout.y0) {
      throw std::invalid_argument("fault plan: bad blackout schedule");
    }
  }
}

std::vector<ScheduledFault> resolve_schedule(const FaultPlan& plan) {
  std::vector<ScheduledFault> schedule;
  for (const CrashSpec& crash : plan.crashes) {
    schedule.push_back({crash.at, FaultKind::kCrash, FaultCause::kPlan,
                        crash.node, 0.0, -1});
    if (crash.recover_at != 0) {
      schedule.push_back({crash.recover_at, FaultKind::kRecover,
                          FaultCause::kPlan, crash.node, 0.0, -1});
    }
  }
  for (const TheftSpec& theft : plan.thefts) {
    schedule.push_back({theft.at, FaultKind::kTheft, FaultCause::kPlan,
                        theft.node, theft.amount, -1});
  }
  for (std::size_t i = 0; i < plan.blackouts.size(); ++i) {
    const BlackoutSpec& blackout = plan.blackouts[i];
    schedule.push_back({blackout.at, FaultKind::kCrash, FaultCause::kBlackout,
                        -1, 0.0, static_cast<int>(i)});
    if (blackout.until != 0) {
      schedule.push_back({blackout.until, FaultKind::kRecover,
                          FaultCause::kBlackout, -1, 0.0,
                          static_cast<int>(i)});
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ScheduledFault& a, const ScheduledFault& b) {
                     return a.interval < b.interval;
                   });
  return schedule;
}

BackboneHealth assess_backbone(const Graph& g, const DynBitset& gateways,
                               const DynBitset& down, DynBitset& scratch) {
  scratch = gateways;
  down.for_each_set([&scratch](std::size_t host) { scratch.reset(host); });
  BackboneHealth health;
  health.active = static_cast<std::size_t>(g.num_nodes()) - down.count();
  health.active_gateways = scratch.count();
  health.backbone_ok = check_cds(g, scratch).ok();
  std::size_t covered = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (down.test(vi)) continue;
    if (scratch.test(vi)) {
      ++covered;
      continue;
    }
    for (const NodeId u : g.neighbors(v)) {
      if (scratch.test(static_cast<std::size_t>(u))) {
        ++covered;
        break;
      }
    }
  }
  health.coverage = health.active == 0
                        ? 1.0
                        : static_cast<double>(covered) /
                              static_cast<double>(health.active);
  return health;
}

// ---- FaultInjector ---------------------------------------------------------

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t n_hosts,
                             double field_width, double radius)
    : plan_(&plan),
      schedule_(resolve_schedule(plan)),
      field_width_(field_width),
      park_spacing_(2.0 * (radius > 0.0 ? radius : 1.0)),
      down_reasons_(n_hosts, 0),
      dead_(n_hosts, false),
      down_(n_hosts),
      blackout_members_(plan.blackouts.size()) {}

Vec2 FaultInjector::park_position(std::size_t host) const {
  return {field_width_ + park_spacing_ * static_cast<double>(host + 1),
          -park_spacing_};
}

void FaultInjector::add_down_reason(std::size_t host) {
  ++down_reasons_[host];
  refresh_down(host);
}

void FaultInjector::remove_down_reason(std::size_t host) {
  if (down_reasons_[host] > 0) --down_reasons_[host];
  refresh_down(host);
}

void FaultInjector::refresh_down(std::size_t host) {
  const bool should_be_down = dead_[host] || down_reasons_[host] > 0;
  if (should_be_down == down_.test(host)) return;
  down_.set(host, should_be_down);
  if (should_be_down) {
    ++down_count_;
  } else {
    --down_count_;
  }
  down_changed_ = true;
}

void FaultInjector::apply(long interval, const std::vector<Vec2>& positions,
                          BatteryBank& batteries,
                          std::vector<FaultRecord>& events) {
  while (cursor_ < schedule_.size() &&
         schedule_[cursor_].interval <= interval) {
    const ScheduledFault& event = schedule_[cursor_++];
    if (event.interval < interval) continue;  // defensive: already past
    switch (event.kind) {
      case FaultKind::kCrash: {
        if (event.blackout < 0) {
          const auto host = static_cast<std::size_t>(event.node);
          const bool was_down = down_.test(host);
          add_down_reason(host);
          if (!was_down) {
            events.push_back({interval, FaultKind::kCrash, FaultCause::kPlan,
                              event.node, 0.0, down_count_});
          }
          break;
        }
        // Blackout entry: capture every functioning host inside the region.
        const BlackoutSpec& region =
            plan_->blackouts[static_cast<std::size_t>(event.blackout)];
        auto& members =
            blackout_members_[static_cast<std::size_t>(event.blackout)];
        members.clear();
        for (std::size_t host = 0; host < positions.size(); ++host) {
          if (down_.test(host)) continue;
          const Vec2 p = positions[host];
          if (p.x < region.x0 || p.x > region.x1 || p.y < region.y0 ||
              p.y > region.y1) {
            continue;
          }
          members.push_back(host);
          add_down_reason(host);
          events.push_back({interval, FaultKind::kCrash,
                            FaultCause::kBlackout, static_cast<int>(host),
                            0.0, down_count_});
        }
        break;
      }
      case FaultKind::kRecover: {
        if (event.blackout < 0) {
          const auto host = static_cast<std::size_t>(event.node);
          remove_down_reason(host);
          if (!down_.test(host)) {
            events.push_back({interval, FaultKind::kRecover, FaultCause::kPlan,
                              event.node, 0.0, down_count_});
          }
          break;
        }
        // Blackout exit: release exactly the hosts captured at entry.
        auto& members =
            blackout_members_[static_cast<std::size_t>(event.blackout)];
        for (const std::size_t host : members) {
          remove_down_reason(host);
          if (!down_.test(host)) {  // dead hosts stay down
            events.push_back({interval, FaultKind::kRecover,
                              FaultCause::kBlackout, static_cast<int>(host),
                              0.0, down_count_});
          }
        }
        members.clear();
        break;
      }
      case FaultKind::kTheft: {
        const auto host = static_cast<std::size_t>(event.node);
        const bool killed = batteries.drain(host, event.amount);
        events.push_back({interval, FaultKind::kTheft, FaultCause::kPlan,
                          event.node, event.amount, down_count_});
        if (killed) record_death(host, interval, events);
        break;
      }
      case FaultKind::kDeath:
      case FaultKind::kRepair:
        break;  // never scheduled
    }
  }
}

void FaultInjector::record_death(std::size_t host, long interval,
                                 std::vector<FaultRecord>& events) {
  if (dead_[host]) return;
  dead_[host] = true;
  refresh_down(host);
  events.push_back({interval, FaultKind::kDeath, FaultCause::kBattery,
                    static_cast<int>(host), 0.0, down_count_});
}

const std::vector<Vec2>& FaultInjector::effective_positions(
    const std::vector<Vec2>& positions) {
  if (down_count_ == 0) return positions;
  effective_.assign(positions.begin(), positions.end());
  down_.for_each_set(
      [this](std::size_t host) { effective_[host] = park_position(host); });
  return effective_;
}

}  // namespace pacds
