#pragma once
// Deterministic fault injection for the lifetime simulator and the packet
// DES: a seeded FaultPlan of scheduled events (per-node crash/recover,
// battery theft, region blackouts) plus channel fault rates for the dist
// protocol. A run with a plan enters *degraded mode*: instead of ending at
// the first host death, non-functioning hosts are removed from the radio
// graph (parked outside the field, so both lifetime engines see them as
// isolated), the CDS is repaired localizedly, and the run continues until
// at most one functioning host remains — reporting repair latency,
// backbone-disconnection intervals and domination coverage on the way.
//
// Everything is interval-scheduled — the lifetime side of a plan consumes
// NO randomness, so a faulted run draws the exact random stream of its
// fault-free twin (placement + mobility only) and the two are directly
// comparable. The plan's seed feeds only the dist channel. The JSON schema
// is specified in FAULTS.md; an empty plan is the identity (pinned by
// tests/faults_test).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/bitset.hpp"
#include "core/graph.hpp"
#include "dist/channel.hpp"
#include "energy/battery.hpp"
#include "net/vec2.hpp"
#include "sim/trace.hpp"

namespace pacds {

class JsonWriter;

/// Host goes down at the start of interval `at`; comes back at the start of
/// interval `recover_at` (0 = never) if its battery is still positive.
struct CrashSpec {
  int node = 0;
  long at = 1;
  long recover_at = 0;
};

/// `amount` of energy vanishes from the host at the start of interval `at`
/// (the paper's adversarial counterpart to gateway drain). May kill.
struct TheftSpec {
  int node = 0;
  long at = 1;
  double amount = 0.0;
};

/// Every functioning host inside [x0,x1]x[y0,y1] *at the start of interval
/// `at`* goes down; the same hosts recover at interval `until` (0 = never).
/// Membership is resolved once, at entry, from true positions. On a 3D
/// field the rectangle is a z-column: membership ignores depth (a blackout
/// models a ground-area outage, which takes down every altitude above it).
struct BlackoutSpec {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;
  long at = 1;
  long until = 0;
};

/// The full fault model of one run. All fields optional in the JSON form;
/// defaults are the no-fault identity. See FAULTS.md for the schema.
struct FaultPlan {
  std::uint64_t seed = 0;  ///< seeds the dist channel stream only
  std::vector<CrashSpec> crashes;
  std::vector<TheftSpec> thefts;
  std::vector<BlackoutSpec> blackouts;
  dist::ChannelFaultConfig channel{};
  dist::RetryPolicy retry{};

  /// True iff the plan schedules any lifetime-side event. Only such plans
  /// switch run_lifetime_trial into degraded mode; channel rates alone
  /// affect only the dist protocol.
  [[nodiscard]] bool has_lifetime_events() const noexcept {
    return !crashes.empty() || !thefts.empty() || !blackouts.empty();
  }
  [[nodiscard]] bool empty() const noexcept {
    return !has_lifetime_events() && !channel.any();
  }
};

/// Parses a plan document (strict JSON; unknown keys are errors so typos
/// fail loudly). Range rules: intervals >= 1, rates in [0, 1), amounts > 0,
/// recover_at/until either 0 or > at. Throws std::runtime_error naming the
/// offending field.
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view text);

/// Reads and parses a plan file; errors are prefixed with the path.
[[nodiscard]] FaultPlan load_fault_plan(const std::string& path);

/// Emits the normalized plan as one JSON object (every field explicit, in
/// schema order) through a writer positioned to accept a value.
void write_fault_plan(JsonWriter& json, const FaultPlan& plan);

/// Node-range check against a concrete host count (parse_fault_plan cannot
/// know n). Throws std::invalid_argument on an out-of-range node.
void validate_fault_plan(const FaultPlan& plan, int n_hosts);

/// One statically resolvable entry of a plan's schedule (blackout entries
/// carry the region index; their member hosts are only known at run time).
struct ScheduledFault {
  long interval = 0;
  FaultKind kind = FaultKind::kCrash;
  FaultCause cause = FaultCause::kPlan;
  int node = -1;      ///< -1 for blackout entries
  double amount = 0.0;
  int blackout = -1;  ///< index into FaultPlan::blackouts, or -1
};

/// The plan's schedule sorted by interval (stable: crashes, then thefts,
/// then blackouts, each in plan order — the exact application order the
/// injector uses). `pacds faults` prints this.
[[nodiscard]] std::vector<ScheduledFault> resolve_schedule(
    const FaultPlan& plan);

/// Health of the surviving backbone, measured each degraded-mode interval.
struct BackboneHealth {
  bool backbone_ok = true;   ///< active gateway set passes check_cds
  double coverage = 1.0;     ///< dominated fraction of active hosts
  std::size_t active = 0;          ///< hosts not down
  std::size_t active_gateways = 0; ///< gateways among them
};

/// Evaluates the gateway set against the current graph with `down` hosts
/// excised. `scratch` must be n bits and is left holding the active gateway
/// set (gateways minus down) — callers reuse it as the effective set.
[[nodiscard]] BackboneHealth assess_backbone(const Graph& g,
                                             const DynBitset& gateways,
                                             const DynBitset& down,
                                             DynBitset& scratch);

/// Degraded-mode aggregates of one trial (all zero for fault-free runs).
struct FaultStats {
  std::size_t events = 0;      ///< scheduled events applied
  std::size_t crashes = 0;     ///< crash events (plan + blackout members)
  std::size_t recoveries = 0;
  std::size_t thefts = 0;
  std::size_t deaths = 0;      ///< battery deaths (drain or theft)
  std::size_t repairs = 0;     ///< localized repair rounds
  long disconnected_intervals = 0;  ///< intervals failing check_cds
  long uncovered_intervals = 0;     ///< intervals with coverage < 1
  double min_coverage = 1.0;
  long first_death_interval = -1;   ///< -1 = no battery death
  std::uint64_t repair_ns_total = 0;
  std::size_t repair_touched_total = 0;

  bool operator==(const FaultStats&) const = default;
};

/// Applies a plan's schedule interval by interval. Owns the down set: a
/// host is down while crashed (scheduled or blackout) or once dead; dead
/// hosts never recover. Down hosts are excised from the radio graph by
/// reporting a parked position — beyond the field and pairwise farther than
/// the radius apart, so they are isolated under every link model and both
/// engines (the spatial grid handles out-of-field coordinates).
class FaultInjector {
 public:
  /// `plan` is borrowed and must outlive the injector.
  FaultInjector(const FaultPlan& plan, std::size_t n_hosts,
                double field_width, double radius);

  /// Applies every event scheduled for `interval` (intervals must be
  /// visited in increasing order starting at 1). Blackout membership is
  /// resolved from `positions`; thefts drain `batteries` and may kill.
  /// One FaultRecord per applied event is appended to `events`.
  void apply(long interval, const std::vector<Vec2>& positions,
             BatteryBank& batteries, std::vector<FaultRecord>& events);

  /// Marks a battery death discovered during the drain step: the host goes
  /// permanently down and a kDeath record is appended.
  void record_death(std::size_t host, long interval,
                    std::vector<FaultRecord>& events);

  [[nodiscard]] const DynBitset& down() const noexcept { return down_; }
  [[nodiscard]] std::size_t down_count() const noexcept { return down_count_; }

  /// True once per down-set change: whether the *next* engine update must
  /// repair (clears the flag).
  [[nodiscard]] bool take_down_changed() noexcept {
    const bool changed = down_changed_;
    down_changed_ = false;
    return changed;
  }

  /// Positions as the radio sees them: `positions` itself while nobody is
  /// down (the zero-overhead path), otherwise an internal copy with down
  /// hosts parked. Valid until the next call.
  [[nodiscard]] const std::vector<Vec2>& effective_positions(
      const std::vector<Vec2>& positions);

  /// Where host i sits while down: outside the field, >= 2 * radius from
  /// the field and from every other parked host.
  [[nodiscard]] Vec2 park_position(std::size_t host) const;

 private:
  void add_down_reason(std::size_t host);
  void remove_down_reason(std::size_t host);
  void refresh_down(std::size_t host);

  const FaultPlan* plan_;
  std::vector<ScheduledFault> schedule_;
  std::size_t cursor_ = 0;
  double field_width_;
  double park_spacing_;

  /// A host is down iff dead or down_reasons_ > 0 (crash and blackout
  /// windows may overlap; recovery from one must not undo the other).
  std::vector<std::uint8_t> down_reasons_;
  std::vector<bool> dead_;
  DynBitset down_;
  std::size_t down_count_ = 0;
  bool down_changed_ = false;

  /// Hosts captured by each blackout at entry (released together at exit).
  std::vector<std::vector<std::size_t>> blackout_members_;
  std::vector<Vec2> effective_;
};

}  // namespace pacds
