#pragma once
// Traffic-driven lifetime simulation — an extension beyond the paper's
// abstract drain models. Instead of charging gateways a formula
// d = traffic/|G'|, every interval a batch of random flows is actually
// ROUTED through the dominating-set backbone, and hosts pay for the packets
// they transmit, forward and receive. This exercises the claim the
// d-models abstract: gateways burn energy handling bypass traffic, so
// rotating gateway duty by energy level should extend the time to first
// death — now with load that concentrates on the real forwarding paths.
//
// Dead and switched-off hosts drop out of the topology; the simulation also
// reports packet delivery, so the energy/service trade-off is visible.

#include <cstdint>

#include "core/cds.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"

namespace pacds {

/// Energy price list (arbitrary units per packet / per interval).
struct EnergyCosts {
  double tx = 1.0;      ///< transmitting one packet (source or forwarder)
  double rx = 0.5;      ///< receiving one packet (destination or forwarder)
  double idle = 0.05;   ///< per-interval baseline for every active host
  double beacon = 0.2;  ///< per-interval extra for gateways (table upkeep)
};

/// Host on/off churn (the paper's "switching on/off ... a special form of
/// mobility"). An inactive host vanishes from the topology and drains
/// nothing.
struct ChurnModel {
  double off_probability = 0.0;  ///< P(active host switches off) per interval
  double on_probability = 0.25;  ///< P(inactive host returns) per interval
};

struct TrafficSimConfig {
  int n_hosts = 50;
  double field_width = 100.0;
  double field_height = 100.0;
  BoundaryPolicy boundary = BoundaryPolicy::kClamp;
  double radius = kPaperRadius;

  double initial_energy = 200.0;
  EnergyCosts costs{};
  int flows_per_interval = 20;  ///< random src->dst packets each interval

  double stay_probability = 0.5;
  int jump_min = 1;
  int jump_max = 6;
  ChurnModel churn{};

  RuleSet rule_set = RuleSet::kEL1;
  CdsOptions cds_options{};
  double energy_key_quantum = 1.0;

  int connect_retries = 500;
  long max_intervals = 100000;
};

struct TrafficSimResult {
  long intervals = 0;           ///< completed intervals at first death
  double avg_gateways = 0.0;    ///< mean |G'| per interval
  double delivery_ratio = 1.0;  ///< delivered / attempted flows
  std::size_t flows_attempted = 0;
  std::size_t flows_delivered = 0;
  double energy_stddev_at_death = 0.0;  ///< battery spread when the run ends
                                        ///< (lower = better balancing)
  bool hit_cap = false;
};

/// Runs one traffic-driven trial, fully determined by (config, seed).
[[nodiscard]] TrafficSimResult run_traffic_trial(const TrafficSimConfig& config,
                                                 std::uint64_t seed);

}  // namespace pacds
