#pragma once
// JSONL emission for lifetime runs: a run-manifest record capturing the full
// SimConfig + seed bookkeeping, and an IntervalObserver that streams one
// record per update interval through the shared JsonlSink. Record schema is
// documented in DESIGN.md ("Observability") and pinned by obs_jsonl_test.

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/jsonl.hpp"
#include "sim/lifetime.hpp"

namespace pacds {

/// Bumped whenever a record field changes meaning; every record carries it.
inline constexpr int kMetricsSchemaVersion = 1;

/// Writes one `"type": "run_manifest"` line: every SimConfig knob (enums as
/// their to_string names), the resolved engine, `base_seed`, and `trials`.
/// A non-null, non-empty `faults` plan is embedded (normalized) under the
/// `"faults"` key; otherwise the key is emitted as null.
void write_run_manifest(obs::JsonlSink& sink, const SimConfig& config,
                        std::uint64_t base_seed, std::size_t trials,
                        const FaultPlan* faults = nullptr);

/// Streams each interval as a `"type": "interval"` line tagged with the
/// trial index, scheme, and resolved engine name (so multi-scheme /
/// multi-trial files stay self-describing). Degraded-mode runs additionally
/// stream one `"type": "fault_event"` line per FaultRecord.
class JsonlIntervalObserver final : public IntervalObserver {
 public:
  JsonlIntervalObserver(obs::JsonlSink& sink, const SimConfig& config,
                        std::size_t trial);

  void on_interval(const IntervalRecord& record) override;
  void on_fault(const FaultRecord& record) override;

 private:
  obs::JsonlSink* sink_;
  std::string scheme_;
  std::string engine_;
  std::size_t trial_;
};

}  // namespace pacds
