#pragma once
// Per-interval recomputation engines for the lifetime simulator. One
// update interval needs (link graph, gateway set) for the current positions
// and battery levels; the two engines get there differently:
//
//   FullRebuildEngine — rebuild_links + compute_cds from scratch (the
//     original simulator inner loop, and the only option for sequential
//     strategies, custom keys, or non-unit-disk link models).
//
//   IncrementalEngine — keeps one persistent Graph and an IncrementalCds
//     across intervals. Moved hosts are detected by position diff, re-filed
//     in a SpatialGrid, and their changed links extracted as an EdgeDelta;
//     the delta plus the quantized-energy diff drive one localized
//     IncrementalCds::advance. Steady-state intervals are allocation-free.
//
// Wherever the incremental engine is eligible the two are bit-identical —
// same gateway bitsets, same counts, hence byte-for-byte equal TrialResults
// (tests/engine_equivalence_test asserts this across schemes, mobility
// models and seeds).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cds.hpp"
#include "core/incremental.hpp"
#include "core/stability.hpp"
#include "core/workspace.hpp"
#include "net/radio.hpp"
#include "net/udg.hpp"
#include "net/vec2.hpp"
#include "obs/metrics.hpp"
#include "sim/lifetime.hpp"
#include "sim/threadpool.hpp"

namespace pacds {

/// Quantized view of battery levels for EL-key comparisons. quantum <= 0
/// disables quantization and returns `levels` itself (no copy); otherwise
/// `scratch` is filled with floor(level / quantum) and returned. The
/// returned reference is invalidated by the next call with the same
/// arguments' lifetimes — hot loops pass one long-lived scratch buffer.
[[nodiscard]] const std::vector<double>& quantize_key_levels(
    const std::vector<double>& levels, double quantum,
    std::vector<double>& scratch);

/// Resolves SimConfig::threads into an intra-interval pool. `threads` counts
/// lanes *including* the calling thread (the caller always participates in
/// sharded passes), so N lanes need a pool of N - 1 workers; 0 means one
/// lane per hardware thread; 1 — and anything negative — stays serial.
void make_interval_pool(int threads, std::optional<ThreadPool>& pool);

/// Set sizes the simulator accumulates per interval.
struct IntervalCounts {
  std::size_t marked = 0;    ///< marking-process set size
  std::size_t gateways = 0;  ///< final gateway set size
};

/// One trial's per-interval CDS recomputation strategy.
class LifetimeEngine {
 public:
  virtual ~LifetimeEngine() = default;
  LifetimeEngine(const LifetimeEngine&) = delete;
  LifetimeEngine& operator=(const LifetimeEngine&) = delete;

  /// Brings the gateway set up to date for the interval. `positions` holds
  /// every host's current position, `levels` the raw battery levels (the
  /// engine applies the key quantum itself).
  virtual void update(const std::vector<Vec2>& positions,
                      const std::vector<double>& levels) = 0;

  [[nodiscard]] virtual const DynBitset& gateways() const = 0;
  /// The link graph the last update computed against (null before the first
  /// update). Degraded-mode health checks read it; down hosts appear as
  /// isolated vertices because their parked positions have no links.
  [[nodiscard]] virtual const Graph* graph() const = 0;
  [[nodiscard]] virtual IntervalCounts counts() const = 0;
  /// Nodes re-evaluated by the last update (n for a full rebuild).
  [[nodiscard]] virtual std::size_t last_touched() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether the last update() actually recomputed the gateway set. The
  /// rule-based engines re-derive it every interval (always true); the
  /// (2,2) backbone engine keeps its cached set while it still verifies,
  /// and the fault loop counts a repair round only when this reports true.
  [[nodiscard]] virtual bool last_update_recomputed() const { return true; }

  /// Attaches a metrics registry (null detaches). Subsequent update() calls
  /// record phase timings and counters into it; with null everything stays
  /// on the zero-cost path. The registry is borrowed and must outlive the
  /// engine or a later set_metrics(nullptr).
  void set_metrics(obs::MetricsRegistry* metrics) {
    metrics_ = metrics;
    on_set_metrics();
  }

 protected:
  LifetimeEngine() = default;

  /// Lets derived engines forward the pointer into owned components.
  virtual void on_set_metrics() {}

  /// Records how many chunk tasks `update_fn` pushed through the pool.
  /// Wraps the body so the submitted-task counter diff lands in metrics_.
  template <typename Fn>
  void with_pool_accounting(std::optional<ThreadPool>& pool, Fn&& update_fn) {
    if (metrics_ == nullptr || !pool) {
      std::forward<Fn>(update_fn)();
      return;
    }
    const std::size_t before = pool->tasks_submitted();
    std::forward<Fn>(update_fn)();
    metrics_->add(obs::Counter::kPoolTasksSubmitted,
                  pool->tasks_submitted() - before);
  }

  obs::MetricsRegistry* metrics_ = nullptr;
};

/// The original inner loop: build_links + one of the compute_cds entry
/// points, every interval.
class FullRebuildEngine final : public LifetimeEngine {
 public:
  explicit FullRebuildEngine(const SimConfig& config);

  void update(const std::vector<Vec2>& positions,
              const std::vector<double>& levels) override;
  [[nodiscard]] const DynBitset& gateways() const override {
    return cds_.gateways;
  }
  [[nodiscard]] const Graph* graph() const override {
    return graph_ ? &*graph_ : nullptr;
  }
  [[nodiscard]] IntervalCounts counts() const override {
    return {cds_.marked_count, cds_.gateway_count};
  }
  [[nodiscard]] std::size_t last_touched() const override;
  [[nodiscard]] std::string name() const override { return "full-rebuild"; }

 private:
  SimConfig config_;
  /// Last interval's link graph, kept for graph() (rebuilt every update).
  std::optional<Graph> graph_;
  CdsResult cds_;
  std::vector<double> key_scratch_;
  /// Per-pair channel model; engaged when config.radio != unit-disk (it can
  /// only veto unit-disk candidate edges, never add longer ones).
  std::optional<RadioModel> radio_;
  /// Per-host churn EWMA feeding the SEL key; engaged when the scheme (or
  /// custom key) reads stability. Fed by diffing consecutive adjacency rows.
  std::optional<StabilityTracker> tracker_;
  /// Intra-interval pool (config.threads != 1) + reusable pass scratch.
  std::optional<ThreadPool> pool_;
  CdsWorkspace workspace_;
};

/// Persistent-state fast path: spatial-grid edge deltas + IncrementalCds.
/// Construction checks eligibility (see incremental_engine_eligible) and
/// throws std::invalid_argument when the configuration is not covered.
class IncrementalEngine final : public LifetimeEngine {
 public:
  explicit IncrementalEngine(const SimConfig& config);

  void update(const std::vector<Vec2>& positions,
              const std::vector<double>& levels) override;
  [[nodiscard]] const DynBitset& gateways() const override {
    return cds_->gateways();
  }
  [[nodiscard]] const Graph* graph() const override {
    return cds_ ? &cds_->graph() : nullptr;
  }
  [[nodiscard]] IntervalCounts counts() const override {
    return {cds_->marked_only().count(), cds_->gateways().count()};
  }
  [[nodiscard]] std::size_t last_touched() const override {
    return cds_->last_touched();
  }
  [[nodiscard]] std::string name() const override { return "incremental"; }

 private:
  void on_set_metrics() override {
    if (cds_) cds_->set_metrics(metrics_);
  }
  void initialize(const std::vector<Vec2>& positions,
                  const std::vector<double>& keys);
  void extract_delta(const std::vector<Vec2>& positions);

  SimConfig config_;
  /// The grid indexes this copy (it holds a pointer into it), so the engine
  /// owns the previous interval's positions and must not move them.
  std::vector<Vec2> prev_positions_;
  std::optional<SpatialGrid> grid_;
  /// Per-pair channel veto over the grid's unit-disk candidates (engaged
  /// when config.radio != unit-disk) — the deterministic pair hash makes
  /// the predicate re-evaluable edge by edge, which is exactly what delta
  /// extraction needs.
  std::optional<RadioModel> radio_;
  /// Per-host churn EWMA feeding the SEL key; fed with both endpoints of
  /// every delta edge (== the full-rebuild engine's row-diff counts).
  std::optional<StabilityTracker> tracker_;
  /// Intra-interval pool (config.threads != 1) + reusable pass scratch;
  /// declared before cds_, which borrows both for its lifetime.
  std::optional<ThreadPool> pool_;
  CdsWorkspace workspace_;
  std::optional<IncrementalCds> cds_;
  // Steady-state scratch — reused, never reallocated after warm-up.
  EdgeDelta delta_;
  std::vector<NodeId> movers_;
  std::vector<NodeId> nbrs_;
  DynBitset moved_;
  std::vector<double> key_scratch_;
};

/// Crash-tolerant backbone engine: maintains the greedy (2,2)-connected
/// dominating set (baselines/cds22) instead of a rule-derived gateway set.
/// Each update rebuilds the link graph, then keeps the cached backbone
/// verbatim while it still passes the plain check_cds against the current
/// links — a crashed member drops out as an exempt isolated singleton and
/// the survivors carry on with zero repair rounds (the (2,2) survival
/// property; tests/faults_test demonstrates it). Only when the cached set
/// fails validation (mobility tore it, or it never existed) does the
/// engine recompute greedy_cds22 from scratch.
class Cds22Engine final : public LifetimeEngine {
 public:
  explicit Cds22Engine(const SimConfig& config);

  void update(const std::vector<Vec2>& positions,
              const std::vector<double>& levels) override;
  [[nodiscard]] const DynBitset& gateways() const override {
    return backbone_;
  }
  [[nodiscard]] const Graph* graph() const override {
    return graph_ ? &*graph_ : nullptr;
  }
  [[nodiscard]] IntervalCounts counts() const override {
    return {backbone_.count(), backbone_.count()};
  }
  [[nodiscard]] std::size_t last_touched() const override;
  [[nodiscard]] std::string name() const override { return "cds22"; }
  [[nodiscard]] bool last_update_recomputed() const override {
    return last_recomputed_;
  }

  /// Whether the current backbone satisfies the full (2,2) property
  /// (biconnected + 2-dominating); false when the topology cannot support
  /// one and greedy_cds22 degraded to a plain CDS.
  [[nodiscard]] bool full_22() const { return full_22_; }

 private:
  SimConfig config_;
  std::optional<Graph> graph_;
  /// Per-pair channel veto (config.radio != unit-disk); the backbone is
  /// maintained on whatever link graph the radio admits.
  std::optional<RadioModel> radio_;
  DynBitset backbone_;
  bool have_backbone_ = false;
  bool full_22_ = false;
  bool last_recomputed_ = false;
};

/// True iff IncrementalEngine provably reproduces the full rebuild for this
/// configuration: simultaneous strategy (the only semantics IncrementalCds
/// maintains), scheme-driven keys (no custom key / Rule k), unit-disk
/// links (Gabriel/RNG pruning is not locally updatable), and the scheme
/// backbone (the (2,2) backbone has no incremental form).
[[nodiscard]] bool incremental_engine_eligible(const SimConfig& config);

/// Builds the engine selected by config.engine; kAuto picks the incremental
/// engine exactly when it is eligible. Throws std::invalid_argument when
/// kIncremental is forced on an ineligible configuration.
[[nodiscard]] std::unique_ptr<LifetimeEngine> make_lifetime_engine(
    const SimConfig& config);

/// Name of the engine make_lifetime_engine would select (resolves kAuto via
/// eligibility) without constructing one — used by run manifests.
[[nodiscard]] std::string resolved_engine_name(const SimConfig& config);

}  // namespace pacds
