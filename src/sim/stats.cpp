#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pacds {

void Welford::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

double Welford::stderr_mean() const noexcept {
  return count_ < 2 ? 0.0
                    : stddev() / std::sqrt(static_cast<double>(count_));
}

double Welford::ci95_half_width() const noexcept {
  return 1.96 * stderr_mean();
}

Summary Summary::of(const Welford& acc) {
  Summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.ci95 = acc.ci95_half_width();
  s.min = acc.min();
  s.max = acc.max();
  return s;
}

}  // namespace pacds
