#pragma once
// The paper's Section 4 simulation loop:
//   1. place hosts uniformly in the field (retry until the unit-disk graph
//      is connected);
//   2. each update interval, recompute the gateway set with the configured
//      rule family, using current battery levels as the EL keys;
//   3. drain each gateway by d (drain model / |G'|) and each non-gateway by
//      d' = 1; stop when the first host dies;
//   4. otherwise every host roams per the movement model and the next
//      interval begins.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cds.hpp"
#include "energy/traffic.hpp"
#include "net/geometric.hpp"
#include "net/mobility.hpp"
#include "net/radio.hpp"
#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"
#include "sim/faults.hpp"
#include "sim/trace.hpp"

namespace pacds {

class LifetimeEngine;

/// Which per-interval recomputation engine drives a lifetime trial.
enum class SimEngine : std::uint8_t {
  /// Incremental where provably bit-identical to a full rebuild
  /// (simultaneous strategy, no custom key, unit-disk links), full rebuild
  /// everywhere else. The safe default.
  kAuto,
  /// Rebuild the link graph and the CDS from scratch every interval.
  kFullRebuild,
  /// Persistent graph + localized CDS updates (spatial-grid edge deltas fed
  /// to IncrementalCds). Throws at trial start if the configuration is not
  /// eligible.
  kIncremental,
  /// Spatial tiling: the field is cut into tiles (side >= 2 * radius), each
  /// interval recomputes only the tiles near a change, and per-tile dense
  /// adjacency rows keep coverage tests word-parallel without the global
  /// O(n²) footprint. Bit-identical to the other engines where eligible
  /// (see tiled_engine_eligible); throws at trial start otherwise.
  kTiled,
};

[[nodiscard]] std::string to_string(SimEngine engine);

/// What kind of backbone each interval maintains.
enum class BackboneMode : std::uint8_t {
  /// The paper's marking + pruning rules (rule_set / custom_key / Rule k):
  /// recompute the gateway set every interval. The default.
  kScheme,
  /// Greedy (2,2)-connected dominating set (baselines/cds22): biconnected
  /// and 2-dominating where the topology allows, so any single gateway
  /// crash leaves a valid plain CDS with zero repair rounds. The cached
  /// backbone is kept verbatim while it still passes check_cds against the
  /// current links and only rebuilt when it fails — the fault-tolerance
  /// trade: a bigger standing backbone for fewer recomputations.
  kCds22,
};

[[nodiscard]] std::string to_string(BackboneMode mode);

/// All knobs of one lifetime simulation; defaults are the paper's settings.
struct SimConfig {
  int n_hosts = 50;
  double field_width = 100.0;
  double field_height = 100.0;
  /// z extent of the field; 0 (default) keeps the paper's planar world.
  /// With a positive depth, placement and every mobility model draw/move in
  /// 3-D and link distances are full Euclidean.
  double field_depth = 0.0;
  BoundaryPolicy boundary = BoundaryPolicy::kClamp;
  double radius = kPaperRadius;

  /// Which proximity graph links the hosts (paper: unit disk). The sparser
  /// Gabriel/RNG models keep the same connectivity with far fewer links.
  LinkModel link_model = LinkModel::kUnitDisk;

  /// Propagation model gating candidate links (see net/radio.hpp). Anything
  /// other than kUnitDisk requires link_model == kUnitDisk: the radio prunes
  /// unit-disk candidates per pair (and can only shrink range, so every
  /// spatial-locality bound built on `radius` still holds), while the
  /// Gabriel/RNG models are whole-neighborhood constructions that do not
  /// compose with per-pair fading.
  RadioKind radio = RadioKind::kUnitDisk;
  RadioParams radio_params{};

  double initial_energy = 100.0;
  DrainModel drain_model = DrainModel::kLinearTotal;
  DrainParams drain_params{};

  double stay_probability = 0.5;  ///< the paper's c
  int jump_min = 1;               ///< the paper's l range
  int jump_max = 6;

  /// Mobility model; kPaperJump (default) is driven by the three fields
  /// above, the other kinds read `mobility_params` (sensitivity studies).
  MobilityKind mobility_kind = MobilityKind::kPaperJump;
  MobilityParams mobility_params{};

  RuleSet rule_set = RuleSet::kEL1;
  CdsOptions cds_options{};

  /// When set, overrides the scheme with a fully custom (key, Rule 2 form)
  /// pair via compute_cds_custom — used by ablations that hold the rule
  /// machinery fixed while swapping only the priority key (e.g. id-keyed
  /// refined rules vs. EL1, isolating the rotation effect).
  std::optional<KeyKind> custom_key;
  Rule2Form custom_rule2_form = Rule2Form::kRefined;
  /// With custom_key set, use the generalized Rule k (Dai-Wu) instead of
  /// the pairwise rules (custom_rule2_form is then ignored).
  bool use_rule_k = false;

  /// The paper treats energy as "multiple discrete levels": EL keys compare
  /// quantized levels (floor(level / quantum) buckets) so ties — and the
  /// ND/ID tie-break chains — actually occur. 0 disables quantization
  /// (raw battery readings as keys). Battery accounting itself is always
  /// exact; only the priority keys see the quantized view.
  double energy_key_quantum = 1.0;

  /// RuleSet::kSEL knobs: the EWMA memory of the per-host neighborhood
  /// churn estimate (0 = latest interval only, 1 = frozen) and the bucket
  /// width applied to the EWMA before it enters the key (<= 0 = raw values;
  /// see core/stability.hpp). Ignored by the other schemes.
  double stability_beta = 0.75;
  double stability_quantum = 0.5;

  /// Per-interval recomputation engine (see SimEngine). Both engines
  /// produce bit-identical TrialResults wherever kIncremental is eligible;
  /// equivalence is asserted by tests/engine_equivalence_test.
  SimEngine engine = SimEngine::kAuto;

  /// Backbone family (see BackboneMode). kCds22 overrides the scheme with
  /// the greedy (2,2)-connected backbone; engine must then be kAuto or
  /// kFullRebuild (the incremental/tiled fast paths maintain rule-based
  /// semantics only — make_lifetime_engine throws if they are forced).
  BackboneMode backbone = BackboneMode::kScheme;

  /// Requested tile count for SimEngine::kTiled (0 = auto: the finest grid
  /// whose tile side stays >= 2 * radius; requests are clamped to that same
  /// constraint). Gateways are bit-identical for every value.
  int tiles = 0;

  /// Worker threads for the CDS passes *inside* one interval (marking +
  /// simultaneous rule passes, sharded deterministically — gateway sets are
  /// bit-identical for every value; tests/parallel_equivalence_test).
  /// 1 = serial (default), 0 = hardware concurrency, N > 1 = N workers.
  /// Independent of the Monte-Carlo trial pool: a sweep of many trials
  /// should parallelize across trials instead and keep this at 1.
  int threads = 1;

  /// Placement retries before accepting a disconnected initial graph.
  int connect_retries = 500;
  /// Hard interval cap so degenerate configurations terminate.
  long max_intervals = 200000;
};

/// Outcome of one simulated network lifetime. In a fault-free run
/// `intervals` is the paper's lifetime (intervals to first death). In a
/// degraded-mode run (non-empty fault plan) the trial continues past deaths
/// and crashes until at most one host still functions, so `intervals` is
/// the degraded run length and `faults.first_death_interval` carries the
/// paper metric; per-interval means then count only functioning hosts.
struct TrialResult {
  long intervals = 0;        ///< completed update intervals
  double avg_gateways = 0.0; ///< mean |G'| per interval (Figure 10's metric)
  double avg_marked = 0.0;   ///< mean marking-process set size (NR size)
  /// Mean CDS churn per interval: |G_t XOR G_{t-1}| (0 on the first
  /// interval) — how much of the backbone membership turns over under
  /// mobility. The stability-key ablation's headline metric.
  double avg_cds_churn = 0.0;
  bool hit_cap = false;      ///< stopped by max_intervals, not by attrition
  bool initial_connected = true;  ///< whether placement retries succeeded
  int placement_attempts = 1;
  FaultStats faults{};       ///< degraded-mode aggregates (zero when none)
};

/// One lifetime trial as a resumable object: construction does placement and
/// engine setup, each step() runs exactly one update interval, and result()
/// finalizes the aggregates at any point. `while (run.step()) {}` is
/// bit-identical to run_lifetime_trial (which is now implemented that way) —
/// the class exists so a resident process (`pacds serve`) can hold a trial's
/// engine/battery/mobility state cached between requests and advance it a
/// few intervals per tick instead of replaying the trial from scratch.
///
/// Determinism contract: the trial is a pure function of (config, seed) plus
/// the fault plan; the observer only watches. Placement (constructor) and
/// mobility (inside step) are the only RNG consumers, so tick granularity —
/// how many step() calls happen per scheduler batch — cannot perturb the
/// stream.
class LifetimeRun {
 public:
  /// Validates the config/plan (throws std::invalid_argument or the fault
  /// plan's errors) and performs placement + engine construction. The
  /// config and plan are copied; the observer is borrowed and must outlive
  /// the run or be replaced via set_observer.
  explicit LifetimeRun(const SimConfig& config, std::uint64_t seed,
                       IntervalObserver* observer = nullptr,
                       const FaultPlan* faults = nullptr);
  // Not movable: the engine holds the address of the embedded metrics
  // registry. Long-lived holders (serve tenants) keep a unique_ptr instead.
  LifetimeRun(const LifetimeRun&) = delete;
  LifetimeRun& operator=(const LifetimeRun&) = delete;
  ~LifetimeRun();

  /// Runs one update interval. Returns false (doing nothing) once the run
  /// has finished — by attrition or by the max_intervals cap.
  bool step();

  /// True once the stop condition has been reached (first death, degraded
  /// attrition, or the interval cap).
  [[nodiscard]] bool finished() const;

  /// Completed update intervals so far.
  [[nodiscard]] long intervals() const { return result_.intervals; }

  /// Aggregated trial outcome. Callable at any point; before finished() it
  /// reports the averages over the intervals completed so far with
  /// hit_cap = false.
  [[nodiscard]] TrialResult result() const;

  /// Swaps the observer between steps (serve re-points each trial's stream
  /// at a fresh per-request buffer). Passing nullptr detaches metrics
  /// gathering entirely; attaching one re-enables it from the next step.
  void set_observer(IntervalObserver* observer);

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
  Xoshiro256 rng_;
  Field field_;
  IntervalObserver* observer_ = nullptr;
  FaultPlan fault_plan_{};
  bool faulted_ = false;

  TrialResult result_;
  std::vector<Vec2> positions_;
  BatteryBank batteries_;
  std::unique_ptr<MobilityModel> mobility_;
  std::unique_ptr<LifetimeEngine> engine_;
  obs::MetricsRegistry metrics_;
  std::optional<FaultInjector> injector_;
  std::vector<FaultRecord> fault_events_;
  DynBitset health_scratch_;

  double gateway_sum_ = 0.0;
  double marked_sum_ = 0.0;
  double churn_sum_ = 0.0;
  DynBitset prev_gateways_;
  DynBitset churn_scratch_;
  bool have_prev_gateways_ = false;
  bool attrition_stop_ = false;
};

/// Runs one trial, fully determined by (config, seed). When `observer` is
/// non-null, one IntervalRecord per update interval is published (snapshots
/// taken after each drain step) with the interval's metrics slice attached
/// — pass a SimTrace to buffer, a JsonlIntervalObserver to stream. With a
/// null observer no metrics are gathered at all (the zero-cost path).
///
/// `faults` switches the trial into degraded mode iff the plan schedules
/// lifetime events (FaultPlan::has_lifetime_events): scheduled events apply
/// at the start of their interval, down hosts leave the radio graph, the
/// engine's localized update repairs the backbone, and each interval's
/// health (check_cds + domination coverage of functioning hosts) lands in
/// TrialResult::faults and in FaultRecords pushed through the observer. A
/// null or event-free plan leaves the trial bit-identical to the fault-free
/// path — the plan itself consumes no randomness, so faulted and fault-free
/// twins of one seed share the same placement and mobility stream.
[[nodiscard]] TrialResult run_lifetime_trial(const SimConfig& config,
                                             std::uint64_t seed,
                                             IntervalObserver* observer =
                                                 nullptr,
                                             const FaultPlan* faults =
                                                 nullptr);

}  // namespace pacds
