#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "baselines/cds22.hpp"
#include "core/rule_k.hpp"
#include "core/verify.hpp"
#include "net/geometric.hpp"
#include "sim/tiled_engine.hpp"

namespace pacds {

void make_interval_pool(int threads, std::optional<ThreadPool>& pool) {
  std::size_t lanes = threads > 0 ? static_cast<std::size_t>(threads) : 1;
  if (threads == 0) {
    lanes = std::max(1u, std::thread::hardware_concurrency());
  }
  if (lanes > 1) pool.emplace(lanes - 1);
}

std::string to_string(SimEngine engine) {
  switch (engine) {
    case SimEngine::kAuto:
      return "auto";
    case SimEngine::kFullRebuild:
      return "full";
    case SimEngine::kIncremental:
      return "incremental";
    case SimEngine::kTiled:
      return "tiled";
  }
  return "?";
}

std::string to_string(BackboneMode mode) {
  switch (mode) {
    case BackboneMode::kScheme:
      return "scheme";
    case BackboneMode::kCds22:
      return "cds22";
  }
  return "?";
}

const std::vector<double>& quantize_key_levels(
    const std::vector<double>& levels, double quantum,
    std::vector<double>& scratch) {
  if (quantum <= 0.0) return levels;
  scratch.resize(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    scratch[i] = std::floor(levels[i] / quantum);
  }
  return scratch;
}

// ---- FullRebuildEngine -----------------------------------------------------

FullRebuildEngine::FullRebuildEngine(const SimConfig& config)
    : config_(config) {
  make_interval_pool(config_.threads, pool_);
  if (config_.radio != RadioKind::kUnitDisk) {
    if (config_.link_model != LinkModel::kUnitDisk) {
      throw std::invalid_argument(
          "FullRebuildEngine: a non-unit-disk radio composes only with "
          "unit-disk links");
    }
    radio_.emplace(config_.radio, config_.radio_params, config_.radius);
  }
  const bool wants_stability = config_.custom_key
                                   ? uses_stability(*config_.custom_key)
                                   : uses_stability(config_.rule_set);
  if (wants_stability) {
    tracker_.emplace(static_cast<std::size_t>(config_.n_hosts),
                     config_.stability_beta, config_.stability_quantum);
  }
}

void FullRebuildEngine::update(const std::vector<Vec2>& positions,
                               const std::vector<double>& levels) {
  with_pool_accounting(pool_, [&] {
    std::optional<Graph> links;
    {
      const obs::PhaseTimer timer(metrics_, obs::Phase::kLinkBuild);
      links.emplace(radio_
                        ? build_radio_links(positions, config_.radius, *radio_)
                        : build_links(positions, config_.radius,
                                      config_.link_model));
    }
    if (tracker_) {
      if (graph_) {
        // Two-pointer diff of each node's sorted row against last interval:
        // every endpoint of every changed edge accrues exactly one count —
        // the same accounting the incremental engines get from counting both
        // endpoints of their delta edges, so the EWMA streams (and hence the
        // SEL keys) agree bit-for-bit across engines.
        const auto n = static_cast<NodeId>(positions.size());
        for (NodeId v = 0; v < n; ++v) {
          const auto old_row = graph_->neighbors(v);
          const auto new_row = links->neighbors(v);
          std::size_t i = 0;
          std::size_t j = 0;
          while (i < old_row.size() || j < new_row.size()) {
            if (j == new_row.size() ||
                (i < old_row.size() && old_row[i] < new_row[j])) {
              tracker_->count(v);
              ++i;
            } else if (i == old_row.size() || new_row[j] < old_row[i]) {
              tracker_->count(v);
              ++j;
            } else {
              ++i;
              ++j;
            }
          }
        }
      }
      tracker_->commit();
    }
    graph_ = std::move(*links);
    const Graph& g = *graph_;
    const auto& keys =
        quantize_key_levels(levels, config_.energy_key_quantum, key_scratch_);
    const std::vector<double> no_stability;
    const std::vector<double>& stability =
        tracker_ ? tracker_->stability() : no_stability;
    const ExecContext ctx{pool_ ? &*pool_ : nullptr, &workspace_, metrics_};
    if (config_.custom_key && config_.use_rule_k) {
      cds_ = compute_cds_rule_k(g, *config_.custom_key, keys,
                                config_.cds_options.strategy,
                                config_.cds_options.clique_policy, ctx,
                                stability);
      if (metrics_ != nullptr) {
        metrics_->add(obs::Counter::kFullRefreshes);
        metrics_->add(obs::Counter::kNodesTouched,
                      static_cast<std::uint64_t>(g.num_nodes()));
      }
    } else if (config_.custom_key) {
      RuleConfig rule_config;
      rule_config.rule2_form = config_.custom_rule2_form;
      rule_config.strategy = config_.cds_options.strategy;
      cds_ = compute_cds_custom(g, *config_.custom_key, rule_config, keys,
                                config_.cds_options.clique_policy, ctx,
                                stability);
    } else {
      cds_ = compute_cds(g, config_.rule_set, keys, config_.cds_options, ctx,
                         stability);
    }
  });
}

std::size_t FullRebuildEngine::last_touched() const {
  return cds_.gateways.size();
}

// ---- IncrementalEngine -----------------------------------------------------

IncrementalEngine::IncrementalEngine(const SimConfig& config)
    : config_(config),
      moved_(static_cast<std::size_t>(config.n_hosts)) {
  if (!incremental_engine_eligible(config_)) {
    throw std::invalid_argument(
        "IncrementalEngine: configuration not eligible (needs simultaneous "
        "strategy, no custom key, unit-disk links)");
  }
  make_interval_pool(config_.threads, pool_);
  if (config_.radio != RadioKind::kUnitDisk) {
    radio_.emplace(config_.radio, config_.radio_params, config_.radius);
  }
  if (uses_stability(config_.rule_set)) {
    tracker_.emplace(static_cast<std::size_t>(config_.n_hosts),
                     config_.stability_beta, config_.stability_quantum);
  }
}

void IncrementalEngine::initialize(const std::vector<Vec2>& positions,
                                   const std::vector<double>& keys) {
  std::optional<Graph> links;
  {
    const obs::PhaseTimer timer(metrics_, obs::Phase::kLinkBuild);
    prev_positions_ = positions;
    grid_.emplace(prev_positions_,
                  config_.radius > 0.0 ? config_.radius : 1.0);
    const auto n = static_cast<NodeId>(positions.size());
    links.emplace(n);
    for (NodeId u = 0; u < n; ++u) {
      grid_->query_into(positions[static_cast<std::size_t>(u)], config_.radius,
                        u, nbrs_);
      for (const NodeId v : nbrs_) {
        if (v > u &&
            (!radio_ ||
             radio_->link(u, v,
                          distance2(positions[static_cast<std::size_t>(u)],
                                    positions[static_cast<std::size_t>(v)])))) {
          links->add_edge(u, v);
        }
      }
    }
  }
  // The first interval has no link history: commit once on zero counts so
  // the EWMA cadence matches the full-rebuild engine's (one commit per
  // update), leaving every host maximally stable.
  if (tracker_) tracker_->commit();
  cds_.emplace(std::move(*links), config_.rule_set,
               uses_energy(config_.rule_set) ? keys : std::vector<double>{},
               config_.cds_options,
               ExecContext{pool_ ? &*pool_ : nullptr, &workspace_, metrics_},
               tracker_ ? tracker_->stability() : std::vector<double>{});
}

void IncrementalEngine::extract_delta(const std::vector<Vec2>& positions) {
  delta_.clear();
  movers_.clear();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] != prev_positions_[i]) {
      movers_.push_back(static_cast<NodeId>(i));
      moved_.set(i);
    }
  }
  // Re-file every mover first so neighborhood queries see the full new
  // configuration (the grid reads through prev_positions_).
  for (const NodeId v : movers_) {
    const auto vi = static_cast<std::size_t>(v);
    grid_->move(v, prev_positions_[vi], positions[vi]);
    prev_positions_[vi] = positions[vi];
  }
  for (const NodeId v : movers_) {
    grid_->query_into(prev_positions_[static_cast<std::size_t>(v)],
                      config_.radius, v, nbrs_);
    // The stored rows are radio-filtered, so the candidate list must be
    // too, or the diff would re-add edges the channel vetoes. Safe pairwise
    // because the radio's fade is a pure hash of (seed, pair): re-evaluating
    // one mover's links cannot disturb anyone else's.
    if (radio_) {
      nbrs_.erase(
          std::remove_if(
              nbrs_.begin(), nbrs_.end(),
              [&](NodeId u) {
                return !radio_->link(
                    v, u,
                    distance2(prev_positions_[static_cast<std::size_t>(v)],
                              prev_positions_[static_cast<std::size_t>(u)]));
              }),
          nbrs_.end());
    }
    // Two-pointer diff of old vs new sorted neighbor lists. A pair whose
    // endpoints both moved shows up in both diffs; keep it only for the
    // smaller endpoint.
    const auto keep = [&](NodeId u) {
      return !moved_.test(static_cast<std::size_t>(u)) || v < u;
    };
    const auto old = cds_->graph().neighbors(v);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < old.size() || j < nbrs_.size()) {
      if (j == nbrs_.size() || (i < old.size() && old[i] < nbrs_[j])) {
        if (keep(old[i])) delta_.removed.emplace_back(v, old[i]);
        ++i;
      } else if (i == old.size() || nbrs_[j] < old[i]) {
        if (keep(nbrs_[j])) delta_.added.emplace_back(v, nbrs_[j]);
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  }
  for (const NodeId v : movers_) moved_.reset(static_cast<std::size_t>(v));
}

void IncrementalEngine::update(const std::vector<Vec2>& positions,
                               const std::vector<double>& levels) {
  with_pool_accounting(pool_, [&] {
    const auto& keys =
        quantize_key_levels(levels, config_.energy_key_quantum, key_scratch_);
    if (!cds_) {
      initialize(positions, keys);
      return;
    }
    {
      const obs::PhaseTimer timer(metrics_, obs::Phase::kDeltaExtract);
      extract_delta(positions);
    }
    if (metrics_ != nullptr) {
      metrics_->add(obs::Counter::kEdgesAdded, delta_.added.size());
      metrics_->add(obs::Counter::kEdgesRemoved, delta_.removed.size());
    }
    if (tracker_) {
      // The deduped delta IS the symmetric difference of the two link sets,
      // so counting both endpoints matches the full-rebuild row diffs.
      for (const auto& [u, v] : delta_.added) {
        tracker_->count(u);
        tracker_->count(v);
      }
      for (const auto& [u, v] : delta_.removed) {
        tracker_->count(u);
        tracker_->count(v);
      }
      tracker_->commit();
      cds_->advance(delta_, keys, tracker_->stability());
    } else {
      cds_->advance(delta_, keys);
    }
  });
}

// ---- Cds22Engine -----------------------------------------------------------

Cds22Engine::Cds22Engine(const SimConfig& config) : config_(config) {
  if (config_.radio != RadioKind::kUnitDisk) {
    if (config_.link_model != LinkModel::kUnitDisk) {
      throw std::invalid_argument(
          "Cds22Engine: a non-unit-disk radio composes only with unit-disk "
          "links");
    }
    radio_.emplace(config_.radio, config_.radio_params, config_.radius);
  }
}

void Cds22Engine::update(const std::vector<Vec2>& positions,
                         const std::vector<double>& /*levels*/) {
  {
    const obs::PhaseTimer timer(metrics_, obs::Phase::kLinkBuild);
    graph_.emplace(
        radio_ ? build_radio_links(positions, config_.radius, *radio_)
               : build_links(positions, config_.radius, config_.link_model));
  }
  // Keep the cached backbone while it still verifies as a plain CDS of the
  // current links. Deliberately *not* check_cds22: after a member crash the
  // survivors are no longer (2,2) but are still a valid CDS — demanding the
  // full property back would force exactly the repair round the (2,2)
  // backbone exists to avoid.
  if (have_backbone_ && check_cds(*graph_, backbone_).ok()) {
    last_recomputed_ = false;
    return;
  }
  const Cds22Result result = greedy_cds22(*graph_);
  backbone_ = result.backbone;
  full_22_ = result.full_22;
  have_backbone_ = true;
  last_recomputed_ = true;
  if (metrics_ != nullptr) {
    metrics_->add(obs::Counter::kFullRefreshes);
    metrics_->add(obs::Counter::kNodesTouched,
                  static_cast<std::uint64_t>(graph_->num_nodes()));
  }
}

std::size_t Cds22Engine::last_touched() const {
  return last_recomputed_ && graph_ ? graph_->num_nodes() : 0;
}

// ---- Selection -------------------------------------------------------------

bool incremental_engine_eligible(const SimConfig& config) {
  return config.cds_options.strategy == Strategy::kSimultaneous &&
         !config.custom_key.has_value() &&
         config.link_model == LinkModel::kUnitDisk &&
         config.backbone == BackboneMode::kScheme;
}

std::unique_ptr<LifetimeEngine> make_lifetime_engine(const SimConfig& config) {
  if (config.backbone == BackboneMode::kCds22) {
    if (config.engine == SimEngine::kIncremental ||
        config.engine == SimEngine::kTiled) {
      throw std::invalid_argument(
          "make_lifetime_engine: the cds22 backbone has no incremental or "
          "tiled form (use engine auto or full)");
    }
    return std::make_unique<Cds22Engine>(config);
  }
  switch (config.engine) {
    case SimEngine::kFullRebuild:
      return std::make_unique<FullRebuildEngine>(config);
    case SimEngine::kIncremental:
      return std::make_unique<IncrementalEngine>(config);  // throws if unfit
    case SimEngine::kTiled:
      return std::make_unique<TiledEngine>(config);  // throws if unfit
    case SimEngine::kAuto:
      break;
  }
  if (incremental_engine_eligible(config)) {
    return std::make_unique<IncrementalEngine>(config);
  }
  return std::make_unique<FullRebuildEngine>(config);
}

std::string resolved_engine_name(const SimConfig& config) {
  if (config.backbone == BackboneMode::kCds22) return "cds22";
  switch (config.engine) {
    case SimEngine::kFullRebuild:
      return "full-rebuild";
    case SimEngine::kIncremental:
      return "incremental";
    case SimEngine::kTiled:
      return "tiled";
    case SimEngine::kAuto:
      break;
  }
  return incremental_engine_eligible(config) ? "incremental" : "full-rebuild";
}

}  // namespace pacds
