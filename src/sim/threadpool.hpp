#pragma once
// Fixed-size thread pool with two execution paths:
//
//   submit()/wait_idle() — a plain task queue, used to spread independent
//     Monte-Carlo trials across cores (each trial is seeded independently
//     via net/rng.hpp, so there is no shared mutable state to protect).
//
//   run_chunks() — the core::Executor bulk path used *inside* one CDS
//     computation: the index range is split into a handful of chunks which
//     workers (and the calling thread) claim off a shared atomic counter.
//     One queue task per participating worker, zero per-index allocations,
//     and a distinct scratch lane per concurrent claimant. Chunk boundaries
//     respect the requested alignment so bitset-writing shards never share
//     an output word.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace pacds {

/// Fixed set of worker threads draining a task queue; also an Executor.
class ThreadPool final : public Executor {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains remaining tasks, then joins the workers.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task. Tasks must not throw (they run detached from any
  /// future); wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, count) across the pool and waits. Work is
  /// claimed in chunks off an atomic counter — the number of queued tasks is
  /// bounded by the worker count, not by `count` (no per-index allocation or
  /// queue round-trip; the probe below makes tests able to assert this).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Total tasks ever placed on the queue (submit calls + bulk helper
  /// tasks). Test probe for the chunking guarantee.
  [[nodiscard]] std::size_t tasks_submitted() const noexcept {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }

  // ---- Executor ----------------------------------------------------------

  /// Workers plus the participating caller.
  [[nodiscard]] std::size_t max_lanes() const override {
    return workers_.size() + 1;
  }

  /// Fork/join over [0, count): chunk size is a multiple of `align`
  /// (targeting a few chunks per lane), chunks are claimed off an atomic
  /// counter by up to thread_count() helper tasks plus the calling thread,
  /// and each concurrent claimant holds a distinct lane id. Returns after
  /// every chunk ran.
  void run_chunks(std::size_t count, std::size_t align,
                  ChunkFnRef body) override;

 private:
  void worker_loop();
  /// Shared bulk path: runs `body` over [0, count) in `chunk`-sized pieces.
  void bulk_run(std::size_t count, std::size_t chunk, ChunkFnRef body);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::atomic<std::size_t> tasks_submitted_{0};
};

}  // namespace pacds
