#pragma once
// Minimal fixed-size thread pool for the Monte-Carlo driver. Each trial is
// seeded independently (net/rng.hpp), so trials are embarrassingly parallel;
// the pool exists so sweeps scale with cores without any shared mutable
// state inside the simulation itself.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pacds {

/// Fixed set of worker threads draining a task queue.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task. Tasks must not throw (they run detached from any
  /// future); wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace pacds
