#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "io/table.hpp"

namespace pacds {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kTheft: return "theft";
    case FaultKind::kDeath: return "death";
    case FaultKind::kRepair: return "repair";
  }
  return "?";
}

std::string to_string(FaultCause cause) {
  switch (cause) {
    case FaultCause::kPlan: return "plan";
    case FaultCause::kBlackout: return "blackout";
    case FaultCause::kBattery: return "battery";
    case FaultCause::kNone: return "none";
  }
  return "?";
}

std::vector<std::string> SimTrace::csv_header() {
  return {"interval",    "marked",     "gateways", "min_energy",
          "mean_energy", "max_energy", "alive",    "touched"};
}

std::vector<std::vector<std::string>> SimTrace::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(records.size());
  for (const IntervalRecord& r : records) {
    rows.push_back({std::to_string(r.interval), std::to_string(r.marked),
                    std::to_string(r.gateways),
                    TextTable::fmt(r.min_energy, 3),
                    TextTable::fmt(r.mean_energy, 3),
                    TextTable::fmt(r.max_energy, 3),
                    std::to_string(r.alive),
                    std::to_string(r.touched)});
  }
  return rows;
}

std::vector<double> SimTrace::min_energy_series() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const IntervalRecord& r : records) out.push_back(r.min_energy);
  return out;
}

std::vector<double> SimTrace::gateway_series() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const IntervalRecord& r : records) {
    out.push_back(static_cast<double>(r.gateways));
  }
  return out;
}

std::string sparkline(const std::vector<double>& series, double lo,
                      double hi) {
  static const char* const kLevels[] = {"▁", "▂", "▃",
                                        "▄", "▅", "▆",
                                        "▇", "█"};
  std::ostringstream os;
  const double span = hi > lo ? hi - lo : 1.0;
  for (const double value : series) {
    const double t = std::clamp((value - lo) / span, 0.0, 1.0);
    os << kLevels[static_cast<int>(t * 7.0 + 0.5)];
  }
  return os.str();
}

}  // namespace pacds
