#pragma once
// Streaming statistics (Welford's algorithm) for Monte-Carlo aggregation:
// numerically stable mean/variance without storing samples.

#include <cstddef>

namespace pacds {

/// Single-pass mean/variance/min/max accumulator.
class Welford {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const Welford& other);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Frozen snapshot of a Welford accumulator, convenient for result structs.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] static Summary of(const Welford& acc);
};

}  // namespace pacds
