#pragma once
// Streaming statistics (Welford's algorithm) for Monte-Carlo aggregation:
// numerically stable mean/variance without storing samples.

#include <cstddef>

namespace pacds {

/// Single-pass mean/variance/min/max accumulator.
///
/// Empty-accumulator contract (pinned by tests/stats_test): with no samples
/// every statistic — mean, variance, stddev, stderr, ci95, min, max — reads
/// exactly 0.0 and count() is 0. merge() with an empty operand is the
/// identity in either direction (merge(empty, empty) stays empty), so
/// parallel reductions over workers that happened to receive no samples
/// need no special-casing. Note min()/max() read 0.0 when empty, NOT
/// ±infinity — callers must gate on count() before interpreting them.
class Welford {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const Welford& other);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Frozen snapshot of a Welford accumulator, convenient for result structs.
/// Summary::of an empty accumulator is the all-zero Summary — identical to
/// a value-initialized `Summary{}` — so serialized summaries of zero-trial
/// runs carry finite numbers (never NaN) and compare equal to the default.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] static Summary of(const Welford& acc);
};

}  // namespace pacds
