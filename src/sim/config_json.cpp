#include "sim/config_json.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "io/json.hpp"
#include "io/json_parse.hpp"

namespace pacds {
namespace {

[[noreturn]] void fail(const std::string& prefix, const std::string& message) {
  throw std::runtime_error(prefix + message);
}

DrainModel parse_drain(const std::string& prefix, const std::string& name) {
  if (name == "constant") return DrainModel::kConstantTotal;
  if (name == "linear") return DrainModel::kLinearTotal;
  if (name == "quadratic") return DrainModel::kQuadraticTotal;
  fail(prefix, "unknown drain model \"" + name + "\"");
}

BoundaryPolicy parse_boundary(const std::string& prefix,
                              const std::string& name) {
  if (name == "clamp") return BoundaryPolicy::kClamp;
  if (name == "reflect") return BoundaryPolicy::kReflect;
  if (name == "wrap") return BoundaryPolicy::kWrap;
  fail(prefix, "unknown boundary policy \"" + name + "\"");
}

LinkModel parse_link(const std::string& prefix, const std::string& name) {
  if (name == "unit-disk") return LinkModel::kUnitDisk;
  if (name == "gabriel") return LinkModel::kGabriel;
  if (name == "rng") return LinkModel::kRng;
  fail(prefix, "unknown link model \"" + name + "\"");
}

RuleSet parse_scheme(const std::string& prefix, const std::string& name) {
  if (name == "NR") return RuleSet::kNR;
  if (name == "ID") return RuleSet::kID;
  if (name == "ND") return RuleSet::kND;
  if (name == "EL1") return RuleSet::kEL1;
  if (name == "EL2") return RuleSet::kEL2;
  if (name == "SEL") return RuleSet::kSEL;
  fail(prefix, "unknown scheme \"" + name + "\"");
}

MobilityKind parse_mobility(const std::string& prefix,
                            const std::string& name) {
  if (name == "paper-jump") return MobilityKind::kPaperJump;
  if (name == "random-walk") return MobilityKind::kRandomWalk;
  if (name == "random-waypoint") return MobilityKind::kRandomWaypoint;
  if (name == "gauss-markov") return MobilityKind::kGaussMarkov;
  if (name == "static") return MobilityKind::kStatic;
  fail(prefix, "unknown mobility model \"" + name + "\"");
}

RadioKind parse_radio(const std::string& prefix, const std::string& name) {
  if (name == "unit-disk") return RadioKind::kUnitDisk;
  if (name == "shadowing") return RadioKind::kShadowing;
  if (name == "probabilistic") return RadioKind::kProbabilistic;
  fail(prefix, "unknown radio \"" + name + "\"");
}

CliquePolicy parse_clique(const std::string& prefix, const std::string& name) {
  if (name == "none") return CliquePolicy::kNone;
  if (name == "elect-max-key") return CliquePolicy::kElectMaxKey;
  fail(prefix, "unknown clique policy \"" + name + "\"");
}

KeyKind parse_key_kind(const std::string& prefix, const std::string& name) {
  if (name == "ID") return KeyKind::kId;
  if (name == "ND") return KeyKind::kDegreeId;
  if (name == "EL1") return KeyKind::kEnergyId;
  if (name == "EL2") return KeyKind::kEnergyDegreeId;
  if (name == "SEL") return KeyKind::kStabilityEnergyId;
  fail(prefix, "unknown key kind \"" + name + "\"");
}

Rule2Form parse_rule2_form(const std::string& prefix,
                           const std::string& name) {
  if (name == "simple") return Rule2Form::kSimple;
  if (name == "refined") return Rule2Form::kRefined;
  fail(prefix, "unknown rule2 form \"" + name + "\"");
}

Strategy parse_strategy(const std::string& prefix, const std::string& name) {
  if (name == "sequential") return Strategy::kSequential;
  if (name == "simultaneous") return Strategy::kSimultaneous;
  if (name == "verified") return Strategy::kVerified;
  fail(prefix, "unknown strategy \"" + name + "\"");
}

BackboneMode parse_backbone(const std::string& prefix,
                            const std::string& name) {
  if (name == "scheme") return BackboneMode::kScheme;
  if (name == "cds22") return BackboneMode::kCds22;
  fail(prefix, "unknown backbone \"" + name + "\"");
}

SimEngine parse_engine(const std::string& prefix, const std::string& name) {
  if (name == "auto") return SimEngine::kAuto;
  if (name == "full") return SimEngine::kFullRebuild;
  if (name == "incremental") return SimEngine::kIncremental;
  if (name == "tiled") return SimEngine::kTiled;
  fail(prefix, "unknown engine \"" + name + "\"");
}

const std::string& string_of(const std::string& prefix, const JsonValue& value,
                             const std::string& what) {
  if (!value.is_string()) fail(prefix, what + " must be a string");
  return value.as_string();
}

double number_of(const std::string& prefix, const JsonValue& value,
                 const std::string& what) {
  if (!value.is_number()) fail(prefix, what + " must be a number");
  const double raw = value.as_number();
  if (!std::isfinite(raw)) fail(prefix, what + " must be finite");
  return raw;
}

long integer_of(const std::string& prefix, const JsonValue& value,
                const std::string& what, double lo, double hi) {
  const double raw = number_of(prefix, value, what);
  if (raw != std::floor(raw) || raw < lo || raw > hi) {
    fail(prefix, what + " must be an integer in [" +
                     JsonWriter::format_double(lo) + ", " +
                     JsonWriter::format_double(hi) + "]");
  }
  return static_cast<long>(raw);
}

bool bool_of(const std::string& prefix, const JsonValue& value,
             const std::string& what) {
  if (!value.is_bool()) fail(prefix, what + " must be a boolean");
  return value.as_bool();
}

// The 2^53 ceiling keeps integer-valued doubles exact, so a seed survives
// the JSON round trip bit-for-bit.
constexpr double kMaxExactSeed = 9007199254740992.0;

void parse_mobility_params(const std::string& prefix, const JsonValue& value,
                           MobilityParams& params) {
  if (!value.is_object()) fail(prefix, "config.mobility_params must be an object");
  for (const auto& [key, member] : value.as_object()) {
    const std::string what = "config.mobility_params." + key;
    if (key == "stay_probability") {
      params.stay_probability = number_of(prefix, member, what);
    } else if (key == "jump_min") {
      params.jump_min = static_cast<int>(integer_of(prefix, member, what, 0, 1e6));
    } else if (key == "jump_max") {
      params.jump_max = static_cast<int>(integer_of(prefix, member, what, 0, 1e6));
    } else if (key == "step_min") {
      params.step_min = number_of(prefix, member, what);
    } else if (key == "step_max") {
      params.step_max = number_of(prefix, member, what);
    } else if (key == "speed_min") {
      params.speed_min = number_of(prefix, member, what);
    } else if (key == "speed_max") {
      params.speed_max = number_of(prefix, member, what);
    } else if (key == "pause_intervals") {
      params.pause_intervals =
          static_cast<int>(integer_of(prefix, member, what, 0, 1e6));
    } else if (key == "mean_speed") {
      params.mean_speed = number_of(prefix, member, what);
    } else if (key == "alpha") {
      params.alpha = number_of(prefix, member, what);
    } else if (key == "speed_stddev") {
      params.speed_stddev = number_of(prefix, member, what);
    } else if (key == "heading_stddev") {
      params.heading_stddev = number_of(prefix, member, what);
    } else {
      fail(prefix, "config.mobility_params: unknown key \"" + key + "\"");
    }
  }
}

void parse_radio_params(const std::string& prefix, const JsonValue& value,
                        RadioParams& params) {
  if (!value.is_object()) fail(prefix, "config.radio_params must be an object");
  for (const auto& [key, member] : value.as_object()) {
    const std::string what = "config.radio_params." + key;
    if (key == "sigma_db") {
      params.sigma_db = number_of(prefix, member, what);
    } else if (key == "path_loss_exp") {
      params.path_loss_exp = number_of(prefix, member, what);
    } else if (key == "link_prob") {
      params.link_prob = number_of(prefix, member, what);
    } else if (key == "fading_seed") {
      params.fading_seed = static_cast<std::uint64_t>(
          integer_of(prefix, member, what, 0, kMaxExactSeed));
    } else {
      fail(prefix, "config.radio_params: unknown key \"" + key + "\"");
    }
  }
}

void parse_drain_params(const std::string& prefix, const JsonValue& value,
                        DrainParams& params) {
  if (!value.is_object()) fail(prefix, "config.drain_params must be an object");
  for (const auto& [key, member] : value.as_object()) {
    const std::string what = "config.drain_params." + key;
    if (key == "nongateway_drain") {
      params.nongateway_drain = number_of(prefix, member, what);
    } else if (key == "constant_base") {
      params.constant_base = number_of(prefix, member, what);
    } else if (key == "quadratic_divisor") {
      params.quadratic_divisor = number_of(prefix, member, what);
    } else {
      fail(prefix, "config.drain_params: unknown key \"" + key + "\"");
    }
  }
}

}  // namespace

void parse_sim_config_json(const JsonValue& value, SimConfig& config,
                           const std::string& prefix) {
  if (!value.is_object()) fail(prefix, "config must be an object");
  for (const auto& [key, member] : value.as_object()) {
    if (key == "n") {
      config.n_hosts =
          static_cast<int>(integer_of(prefix, member, "config.n", 1, 1e6));
    } else if (key == "field_width") {
      config.field_width = number_of(prefix, member, "config.field_width");
    } else if (key == "field_height") {
      config.field_height = number_of(prefix, member, "config.field_height");
    } else if (key == "field_depth") {
      // Optional (older corpus entries predate 3-D fields); 0 = planar.
      config.field_depth = number_of(prefix, member, "config.field_depth");
    } else if (key == "boundary") {
      config.boundary = parse_boundary(
          prefix, string_of(prefix, member, "config.boundary"));
    } else if (key == "radius") {
      config.radius = number_of(prefix, member, "config.radius");
    } else if (key == "link_model") {
      config.link_model =
          parse_link(prefix, string_of(prefix, member, "config.link_model"));
    } else if (key == "radio") {
      // Optional (older corpus entries predate radio models).
      config.radio =
          parse_radio(prefix, string_of(prefix, member, "config.radio"));
    } else if (key == "radio_params") {
      parse_radio_params(prefix, member, config.radio_params);
    } else if (key == "initial_energy") {
      config.initial_energy =
          number_of(prefix, member, "config.initial_energy");
    } else if (key == "drain_model") {
      config.drain_model = parse_drain(
          prefix, string_of(prefix, member, "config.drain_model"));
    } else if (key == "drain_params") {
      // Optional: the drain shape knobs always defaulted on the wire before.
      parse_drain_params(prefix, member, config.drain_params);
    } else if (key == "stay_probability") {
      config.stay_probability =
          number_of(prefix, member, "config.stay_probability");
    } else if (key == "jump_min") {
      config.jump_min = static_cast<int>(
          integer_of(prefix, member, "config.jump_min", 0, 1e6));
    } else if (key == "jump_max") {
      config.jump_max = static_cast<int>(
          integer_of(prefix, member, "config.jump_max", 0, 1e6));
    } else if (key == "mobility") {
      // Optional, and THE bug this key's absence used to cause: without it
      // every non-default mobility model silently round-tripped back to
      // paper-jump, so serve tenants and replayed scenarios simulated a
      // different trajectory family than the one requested.
      config.mobility_kind = parse_mobility(
          prefix, string_of(prefix, member, "config.mobility"));
    } else if (key == "mobility_params") {
      parse_mobility_params(prefix, member, config.mobility_params);
    } else if (key == "scheme") {
      config.rule_set =
          parse_scheme(prefix, string_of(prefix, member, "config.scheme"));
    } else if (key == "strategy") {
      config.cds_options.strategy = parse_strategy(
          prefix, string_of(prefix, member, "config.strategy"));
    } else if (key == "clique_policy") {
      // Optional (defaulted silently before; another dropped-on-the-wire
      // field the exhaustive round-trip test now pins).
      config.cds_options.clique_policy = parse_clique(
          prefix, string_of(prefix, member, "config.clique_policy"));
    } else if (key == "custom_key") {
      if (member.is_null()) {
        config.custom_key.reset();
      } else {
        config.custom_key = parse_key_kind(
            prefix, string_of(prefix, member, "config.custom_key"));
      }
    } else if (key == "custom_rule2_form") {
      config.custom_rule2_form = parse_rule2_form(
          prefix, string_of(prefix, member, "config.custom_rule2_form"));
    } else if (key == "use_rule_k") {
      config.use_rule_k = bool_of(prefix, member, "config.use_rule_k");
    } else if (key == "quantum") {
      config.energy_key_quantum =
          number_of(prefix, member, "config.quantum");
    } else if (key == "stability_beta") {
      config.stability_beta =
          number_of(prefix, member, "config.stability_beta");
    } else if (key == "stability_quantum") {
      config.stability_quantum =
          number_of(prefix, member, "config.stability_quantum");
    } else if (key == "engine") {
      config.engine =
          parse_engine(prefix, string_of(prefix, member, "config.engine"));
    } else if (key == "backbone") {
      // Optional (older corpus entries predate the (2,2) backbone).
      config.backbone = parse_backbone(
          prefix, string_of(prefix, member, "config.backbone"));
    } else if (key == "tiles") {
      // Optional (older corpus entries predate the tiled engine): requested
      // tile count, 0 = auto. The TileGrid clamps, so any value is safe.
      config.tiles = static_cast<int>(
          integer_of(prefix, member, "config.tiles", 0, 1e6));
    } else if (key == "threads") {
      config.threads = static_cast<int>(
          integer_of(prefix, member, "config.threads", 0, 256));
    } else if (key == "max_intervals") {
      config.max_intervals =
          integer_of(prefix, member, "config.max_intervals", 1, 1e9);
    } else if (key == "connect_retries") {
      config.connect_retries = static_cast<int>(
          integer_of(prefix, member, "config.connect_retries", 1, 1e6));
    } else {
      fail(prefix, "config: unknown key \"" + key + "\"");
    }
  }
  if (!(config.radius > 0.0)) fail(prefix, "config.radius must be > 0");
  if (!(config.field_width > 0.0) || !(config.field_height > 0.0)) {
    fail(prefix, "config field dimensions must be > 0");
  }
  if (!(config.initial_energy > 0.0)) {
    fail(prefix, "config.initial_energy must be > 0");
  }
  if (!(config.stay_probability >= 0.0) || config.stay_probability > 1.0) {
    fail(prefix, "config.stay_probability must be in [0, 1]");
  }
  if (config.jump_max < config.jump_min) {
    fail(prefix, "config.jump_max must be >= config.jump_min");
  }
  if (config.energy_key_quantum < 0.0) {
    fail(prefix, "config.quantum must be >= 0");
  }
  if (config.field_depth < 0.0) {
    fail(prefix, "config.field_depth must be >= 0");
  }
  if (config.radio != RadioKind::kUnitDisk &&
      config.link_model != LinkModel::kUnitDisk) {
    fail(prefix,
         "config.radio other than unit-disk requires link_model unit-disk");
  }
  if (config.radio_params.sigma_db < 0.0) {
    fail(prefix, "config.radio_params.sigma_db must be >= 0");
  }
  if (!(config.radio_params.path_loss_exp > 0.0)) {
    fail(prefix, "config.radio_params.path_loss_exp must be > 0");
  }
  if (config.radio_params.link_prob < 0.0 ||
      config.radio_params.link_prob > 1.0) {
    fail(prefix, "config.radio_params.link_prob must be in [0, 1]");
  }
  if (config.stability_beta < 0.0 || config.stability_beta > 1.0) {
    fail(prefix, "config.stability_beta must be in [0, 1]");
  }
  if (config.mobility_params.jump_max < config.mobility_params.jump_min) {
    fail(prefix,
         "config.mobility_params.jump_max must be >= "
         "config.mobility_params.jump_min");
  }
  if (config.mobility_params.stay_probability < 0.0 ||
      config.mobility_params.stay_probability > 1.0) {
    fail(prefix, "config.mobility_params.stay_probability must be in [0, 1]");
  }
}

void write_sim_config_json(JsonWriter& json, const SimConfig& config) {
  json.begin_object();
  json.key("n").value(config.n_hosts);
  json.key("field_width").value(config.field_width);
  json.key("field_height").value(config.field_height);
  json.key("field_depth").value(config.field_depth);
  json.key("boundary").value(to_string(config.boundary));
  json.key("radius").value(config.radius);
  json.key("link_model").value(to_string(config.link_model));
  json.key("radio").value(to_string(config.radio));
  json.key("radio_params").begin_object();
  json.key("sigma_db").value(config.radio_params.sigma_db);
  json.key("path_loss_exp").value(config.radio_params.path_loss_exp);
  json.key("link_prob").value(config.radio_params.link_prob);
  json.key("fading_seed")
      .value(static_cast<std::size_t>(config.radio_params.fading_seed));
  json.end_object();
  json.key("initial_energy").value(config.initial_energy);
  json.key("drain_model").value(drain_model_name(config.drain_model));
  json.key("drain_params").begin_object();
  json.key("nongateway_drain").value(config.drain_params.nongateway_drain);
  json.key("constant_base").value(config.drain_params.constant_base);
  json.key("quadratic_divisor").value(config.drain_params.quadratic_divisor);
  json.end_object();
  json.key("stay_probability").value(config.stay_probability);
  json.key("jump_min").value(config.jump_min);
  json.key("jump_max").value(config.jump_max);
  json.key("mobility").value(to_string(config.mobility_kind));
  json.key("mobility_params").begin_object();
  json.key("stay_probability").value(config.mobility_params.stay_probability);
  json.key("jump_min").value(config.mobility_params.jump_min);
  json.key("jump_max").value(config.mobility_params.jump_max);
  json.key("step_min").value(config.mobility_params.step_min);
  json.key("step_max").value(config.mobility_params.step_max);
  json.key("speed_min").value(config.mobility_params.speed_min);
  json.key("speed_max").value(config.mobility_params.speed_max);
  json.key("pause_intervals").value(config.mobility_params.pause_intervals);
  json.key("mean_speed").value(config.mobility_params.mean_speed);
  json.key("alpha").value(config.mobility_params.alpha);
  json.key("speed_stddev").value(config.mobility_params.speed_stddev);
  json.key("heading_stddev").value(config.mobility_params.heading_stddev);
  json.end_object();
  json.key("scheme").value(to_string(config.rule_set));
  json.key("strategy").value(to_string(config.cds_options.strategy));
  json.key("clique_policy")
      .value(config.cds_options.clique_policy == CliquePolicy::kElectMaxKey
                 ? "elect-max-key"
                 : "none");
  if (config.custom_key.has_value()) {
    json.key("custom_key").value(to_string(*config.custom_key));
  } else {
    json.key("custom_key").null();
  }
  json.key("custom_rule2_form").value(to_string(config.custom_rule2_form));
  json.key("use_rule_k").value(config.use_rule_k);
  json.key("quantum").value(config.energy_key_quantum);
  json.key("stability_beta").value(config.stability_beta);
  json.key("stability_quantum").value(config.stability_quantum);
  json.key("engine").value(to_string(config.engine));
  json.key("backbone").value(to_string(config.backbone));
  json.key("tiles").value(config.tiles);
  json.key("threads").value(config.threads);
  json.key("max_intervals")
      .value(static_cast<std::int64_t>(config.max_intervals));
  json.key("connect_retries").value(config.connect_retries);
  json.end_object();
}

const char* drain_model_name(DrainModel model) noexcept {
  switch (model) {
    case DrainModel::kConstantTotal:
      return "constant";
    case DrainModel::kLinearTotal:
      return "linear";
    case DrainModel::kQuadraticTotal:
      return "quadratic";
  }
  return "?";
}

}  // namespace pacds
