#include "sim/config_json.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "io/json.hpp"
#include "io/json_parse.hpp"

namespace pacds {
namespace {

[[noreturn]] void fail(const std::string& prefix, const std::string& message) {
  throw std::runtime_error(prefix + message);
}

DrainModel parse_drain(const std::string& prefix, const std::string& name) {
  if (name == "constant") return DrainModel::kConstantTotal;
  if (name == "linear") return DrainModel::kLinearTotal;
  if (name == "quadratic") return DrainModel::kQuadraticTotal;
  fail(prefix, "unknown drain model \"" + name + "\"");
}

BoundaryPolicy parse_boundary(const std::string& prefix,
                              const std::string& name) {
  if (name == "clamp") return BoundaryPolicy::kClamp;
  if (name == "reflect") return BoundaryPolicy::kReflect;
  if (name == "wrap") return BoundaryPolicy::kWrap;
  fail(prefix, "unknown boundary policy \"" + name + "\"");
}

LinkModel parse_link(const std::string& prefix, const std::string& name) {
  if (name == "unit-disk") return LinkModel::kUnitDisk;
  if (name == "gabriel") return LinkModel::kGabriel;
  if (name == "rng") return LinkModel::kRng;
  fail(prefix, "unknown link model \"" + name + "\"");
}

RuleSet parse_scheme(const std::string& prefix, const std::string& name) {
  if (name == "NR") return RuleSet::kNR;
  if (name == "ID") return RuleSet::kID;
  if (name == "ND") return RuleSet::kND;
  if (name == "EL1") return RuleSet::kEL1;
  if (name == "EL2") return RuleSet::kEL2;
  fail(prefix, "unknown scheme \"" + name + "\"");
}

Strategy parse_strategy(const std::string& prefix, const std::string& name) {
  if (name == "sequential") return Strategy::kSequential;
  if (name == "simultaneous") return Strategy::kSimultaneous;
  if (name == "verified") return Strategy::kVerified;
  fail(prefix, "unknown strategy \"" + name + "\"");
}

BackboneMode parse_backbone(const std::string& prefix,
                            const std::string& name) {
  if (name == "scheme") return BackboneMode::kScheme;
  if (name == "cds22") return BackboneMode::kCds22;
  fail(prefix, "unknown backbone \"" + name + "\"");
}

SimEngine parse_engine(const std::string& prefix, const std::string& name) {
  if (name == "auto") return SimEngine::kAuto;
  if (name == "full") return SimEngine::kFullRebuild;
  if (name == "incremental") return SimEngine::kIncremental;
  if (name == "tiled") return SimEngine::kTiled;
  fail(prefix, "unknown engine \"" + name + "\"");
}

const std::string& string_of(const std::string& prefix, const JsonValue& value,
                             const std::string& what) {
  if (!value.is_string()) fail(prefix, what + " must be a string");
  return value.as_string();
}

double number_of(const std::string& prefix, const JsonValue& value,
                 const std::string& what) {
  if (!value.is_number()) fail(prefix, what + " must be a number");
  const double raw = value.as_number();
  if (!std::isfinite(raw)) fail(prefix, what + " must be finite");
  return raw;
}

long integer_of(const std::string& prefix, const JsonValue& value,
                const std::string& what, double lo, double hi) {
  const double raw = number_of(prefix, value, what);
  if (raw != std::floor(raw) || raw < lo || raw > hi) {
    fail(prefix, what + " must be an integer in [" +
                     JsonWriter::format_double(lo) + ", " +
                     JsonWriter::format_double(hi) + "]");
  }
  return static_cast<long>(raw);
}

}  // namespace

void parse_sim_config_json(const JsonValue& value, SimConfig& config,
                           const std::string& prefix) {
  if (!value.is_object()) fail(prefix, "config must be an object");
  for (const auto& [key, member] : value.as_object()) {
    if (key == "n") {
      config.n_hosts =
          static_cast<int>(integer_of(prefix, member, "config.n", 1, 1e6));
    } else if (key == "field_width") {
      config.field_width = number_of(prefix, member, "config.field_width");
    } else if (key == "field_height") {
      config.field_height = number_of(prefix, member, "config.field_height");
    } else if (key == "boundary") {
      config.boundary = parse_boundary(
          prefix, string_of(prefix, member, "config.boundary"));
    } else if (key == "radius") {
      config.radius = number_of(prefix, member, "config.radius");
    } else if (key == "link_model") {
      config.link_model =
          parse_link(prefix, string_of(prefix, member, "config.link_model"));
    } else if (key == "initial_energy") {
      config.initial_energy =
          number_of(prefix, member, "config.initial_energy");
    } else if (key == "drain_model") {
      config.drain_model = parse_drain(
          prefix, string_of(prefix, member, "config.drain_model"));
    } else if (key == "stay_probability") {
      config.stay_probability =
          number_of(prefix, member, "config.stay_probability");
    } else if (key == "jump_min") {
      config.jump_min = static_cast<int>(
          integer_of(prefix, member, "config.jump_min", 0, 1e6));
    } else if (key == "jump_max") {
      config.jump_max = static_cast<int>(
          integer_of(prefix, member, "config.jump_max", 0, 1e6));
    } else if (key == "scheme") {
      config.rule_set =
          parse_scheme(prefix, string_of(prefix, member, "config.scheme"));
    } else if (key == "strategy") {
      config.cds_options.strategy = parse_strategy(
          prefix, string_of(prefix, member, "config.strategy"));
    } else if (key == "quantum") {
      config.energy_key_quantum =
          number_of(prefix, member, "config.quantum");
    } else if (key == "engine") {
      config.engine =
          parse_engine(prefix, string_of(prefix, member, "config.engine"));
    } else if (key == "backbone") {
      // Optional (older corpus entries predate the (2,2) backbone).
      config.backbone = parse_backbone(
          prefix, string_of(prefix, member, "config.backbone"));
    } else if (key == "tiles") {
      // Optional (older corpus entries predate the tiled engine): requested
      // tile count, 0 = auto. The TileGrid clamps, so any value is safe.
      config.tiles = static_cast<int>(
          integer_of(prefix, member, "config.tiles", 0, 1e6));
    } else if (key == "threads") {
      config.threads = static_cast<int>(
          integer_of(prefix, member, "config.threads", 0, 256));
    } else if (key == "max_intervals") {
      config.max_intervals =
          integer_of(prefix, member, "config.max_intervals", 1, 1e9);
    } else if (key == "connect_retries") {
      config.connect_retries = static_cast<int>(
          integer_of(prefix, member, "config.connect_retries", 1, 1e6));
    } else {
      fail(prefix, "config: unknown key \"" + key + "\"");
    }
  }
  if (!(config.radius > 0.0)) fail(prefix, "config.radius must be > 0");
  if (!(config.field_width > 0.0) || !(config.field_height > 0.0)) {
    fail(prefix, "config field dimensions must be > 0");
  }
  if (!(config.initial_energy > 0.0)) {
    fail(prefix, "config.initial_energy must be > 0");
  }
  if (!(config.stay_probability >= 0.0) || config.stay_probability > 1.0) {
    fail(prefix, "config.stay_probability must be in [0, 1]");
  }
  if (config.jump_max < config.jump_min) {
    fail(prefix, "config.jump_max must be >= config.jump_min");
  }
  if (config.energy_key_quantum < 0.0) {
    fail(prefix, "config.quantum must be >= 0");
  }
}

void write_sim_config_json(JsonWriter& json, const SimConfig& config) {
  json.begin_object();
  json.key("n").value(config.n_hosts);
  json.key("field_width").value(config.field_width);
  json.key("field_height").value(config.field_height);
  json.key("boundary").value(to_string(config.boundary));
  json.key("radius").value(config.radius);
  json.key("link_model").value(to_string(config.link_model));
  json.key("initial_energy").value(config.initial_energy);
  json.key("drain_model").value(drain_model_name(config.drain_model));
  json.key("stay_probability").value(config.stay_probability);
  json.key("jump_min").value(config.jump_min);
  json.key("jump_max").value(config.jump_max);
  json.key("scheme").value(to_string(config.rule_set));
  json.key("strategy").value(to_string(config.cds_options.strategy));
  json.key("quantum").value(config.energy_key_quantum);
  json.key("engine").value(to_string(config.engine));
  json.key("backbone").value(to_string(config.backbone));
  json.key("tiles").value(config.tiles);
  json.key("threads").value(config.threads);
  json.key("max_intervals")
      .value(static_cast<std::int64_t>(config.max_intervals));
  json.key("connect_retries").value(config.connect_retries);
  json.end_object();
}

const char* drain_model_name(DrainModel model) noexcept {
  switch (model) {
    case DrainModel::kConstantTotal:
      return "constant";
    case DrainModel::kLinearTotal:
      return "linear";
    case DrainModel::kQuadraticTotal:
      return "quadratic";
  }
  return "?";
}

}  // namespace pacds
