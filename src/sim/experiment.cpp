#include "sim/experiment.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace pacds {

SweepResult run_sweep(const SweepConfig& config, ThreadPool* pool,
                      obs::JsonlSink* metrics) {
  if (config.host_counts.empty() || config.schemes.empty()) {
    throw std::invalid_argument("run_sweep: empty host counts or schemes");
  }
  SweepResult result;
  result.config = config;
  for (const int n : config.host_counts) {
    SweepRow row;
    row.n_hosts = n;
    for (const RuleSet scheme : config.schemes) {
      SimConfig sim = config.base;
      sim.n_hosts = n;
      sim.rule_set = scheme;
      // Same base seed across schemes -> paired trajectories.
      row.per_scheme.push_back(run_lifetime_trials(
          sim, config.trials,
          config.base_seed ^ (static_cast<std::uint64_t>(n) << 32), pool,
          metrics));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

namespace {

double metric_mean(const LifetimeSummary& s, SweepMetric metric) {
  return metric == SweepMetric::kLifetime ? s.intervals.mean
                                          : s.avg_gateways.mean;
}

double metric_ci(const LifetimeSummary& s, SweepMetric metric) {
  return metric == SweepMetric::kLifetime ? s.intervals.ci95
                                          : s.avg_gateways.ci95;
}

}  // namespace

TextTable sweep_table(const SweepResult& result, SweepMetric metric,
                      bool with_ci) {
  std::vector<std::string> headers{"n"};
  for (const RuleSet scheme : result.config.schemes) {
    headers.push_back(to_string(scheme));
    if (with_ci) headers.push_back("±95%");
  }
  TextTable table(std::move(headers));
  for (const SweepRow& row : result.rows) {
    std::vector<std::string> cells{TextTable::fmt(row.n_hosts)};
    for (const LifetimeSummary& s : row.per_scheme) {
      cells.push_back(TextTable::fmt(metric_mean(s, metric)));
      if (with_ci) cells.push_back(TextTable::fmt(metric_ci(s, metric)));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

std::vector<std::string> sweep_csv_header(const SweepResult& result) {
  std::vector<std::string> header{"n"};
  for (const RuleSet scheme : result.config.schemes) {
    const std::string name = to_string(scheme);
    header.push_back(name + "_lifetime");
    header.push_back(name + "_lifetime_ci95");
    header.push_back(name + "_gateways");
    header.push_back(name + "_gateways_ci95");
  }
  return header;
}

std::vector<std::vector<std::string>> sweep_csv_rows(const SweepResult& result,
                                                     SweepMetric) {
  std::vector<std::vector<std::string>> rows;
  for (const SweepRow& row : result.rows) {
    std::vector<std::string> cells{TextTable::fmt(row.n_hosts)};
    for (const LifetimeSummary& s : row.per_scheme) {
      cells.push_back(TextTable::fmt(s.intervals.mean));
      cells.push_back(TextTable::fmt(s.intervals.ci95));
      cells.push_back(TextTable::fmt(s.avg_gateways.mean));
      cells.push_back(TextTable::fmt(s.avg_gateways.ci95));
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

std::vector<int> paper_host_counts() {
  return {3, 5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100};
}

std::vector<int> quick_host_counts() { return {10, 30, 50, 80}; }

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0) {
    // A typo'd PACDS_TRIALS=abc silently behaving like unset wastes whole
    // experiment runs — say what happened, then fall back.
    std::cerr << "warning: ignoring " << name << "=\"" << raw
              << "\" (want a positive integer); using " << fallback << "\n";
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

}  // namespace pacds
