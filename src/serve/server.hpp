#pragma once
// The `pacds serve` resident process: multiplexes many named tenants, each
// holding a cached LifetimeRun (engine + batteries + mobility state) keyed
// by config digest, over a JSONL request stream (serve/protocol.hpp).
//
// Concurrency model — sequential semantics, parallel schedule:
//   * Requests are processed exactly as if handled one at a time in input
//     order; the emitted stream is a pure function of the input lines (and
//     of which lines admission control shed). This is what makes the
//     serve-vs-standalone bit-identity oracle possible.
//   * Within a batch, maximal runs of compute requests (tick / sweep) are
//     grouped by tenant and the groups execute on the Executor in parallel
//     — tenants share no state, so the schedule cannot change the output;
//     each request's records go to a private buffer spliced back in seq
//     order (the Monte-Carlo splice idiom). Control requests (create,
//     status, evict, shutdown) are barriers: they run serially in order.
//   * Per-trial intra-interval threading is forced to 1, exactly like the
//     Monte-Carlo trial pool (montecarlo_trial_config): serve's parallelism
//     is across tenants, and output is bit-identical for every --threads.
//
// Admission control (stream mode): a reader thread moves stdin lines into a
// bounded queue and NEVER blocks on the worker — when the queue is full the
// line is dropped on the floor and only its seq is kept, surfacing as a
// queue_full serve_error in the output. Backpressure is therefore visible
// to the client per-request instead of stalling the whole input stream.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "sim/threadpool.hpp"

namespace pacds::serve {

struct ServeOptions {
  /// Bounded admission queue length (stream mode). Lines arriving while the
  /// queue is full are shed with a queue_full error record.
  std::size_t queue_limit = 1024;
  /// Resident tenant cap; creating beyond it evicts the least-recently-used
  /// tenant (the create response names the victim).
  std::size_t max_tenants = 64;
  /// Executor threads for independent tenant groups: 1 = serial (default),
  /// 0 = hardware concurrency. Output is identical for every value.
  int threads = 1;
};

class Server {
 public:
  /// `out` receives every output record; it must outlive the server.
  Server(const ServeOptions& options, std::ostream& out);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// One raw input line as admission control saw it. `rejected` lines were
  /// shed before parsing (their text is already gone).
  struct RawLine {
    std::uint64_t seq = 0;
    std::string text;
    bool rejected = false;
  };

  /// Processes one batch of admitted/shed lines in seq order (seqs must be
  /// ascending). Returns false once a shutdown request has been processed —
  /// every request after it is answered with a shutdown error.
  bool process_batch(const std::vector<RawLine>& batch);

  /// Convenience for tests and benches: assigns seqs from the internal line
  /// counter and processes the lines as one fully-admitted batch.
  bool process_lines(const std::vector<std::string>& lines);

  /// Stream mode: reader thread + bounded queue until EOF or shutdown.
  /// Returns the process exit code (0 on clean EOF/shutdown).
  int run(std::istream& in);

#ifdef __unix__
  /// Unix-socket mode: accepts one client at a time on `path`, serving each
  /// connection's JSONL synchronously until shutdown. Returns the process
  /// exit code.
  int run_unix_socket(const std::string& path);
#endif

  /// Live tenant count (probe for tests/benches).
  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  [[nodiscard]] bool shut_down() const { return shutdown_; }

 private:
  struct Tenant {
    std::string name;
    std::string digest;
    SimConfig trial_config{};  // threads already forced to 1
    std::uint64_t seed = 1;
    long trials = 1;
    FaultPlan faults{};
    bool has_faults = false;
    long trial = 0;            // index of the trial `run` belongs to
    long total_intervals = 0;  // intervals stepped across all trials
    std::uint64_t last_used = 0;  // seq of the last touching request (LRU)
    std::unique_ptr<LifetimeRun> run;  // null between trials / when done
  };

  struct Item {
    RawLine raw;
    std::optional<Request> request;
    RequestError error;
    std::string output;  // this request's records, spliced in seq order
  };

  void execute_control(Item& item);
  void execute_window(std::vector<Item>& items, std::size_t begin,
                      std::size_t end);
  void run_tick(Tenant& tenant, const Request& request, std::string& output);
  void run_sweep(const Request& request, std::string& output);
  void handle_create(Item& item);

  ServeOptions options_;
  std::ostream* out_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::unique_ptr<ThreadPool> pool_;  // null when options_.threads == 1
  std::uint64_t line_counter_ = 0;    // process_lines convenience seqs
  bool shutdown_ = false;
};

}  // namespace pacds::serve
