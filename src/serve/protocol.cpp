#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "io/json.hpp"
#include "io/json_parse.hpp"
#include "sim/config_json.hpp"

namespace pacds::serve {

namespace {

constexpr std::string_view kPrefix = "serve: ";

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(std::string(kPrefix) + message);
}

const std::string& string_of(const JsonValue& value, const std::string& what) {
  if (!value.is_string()) fail(what + " must be a string");
  return value.as_string();
}

long integer_of(const JsonValue& value, const std::string& what, double lo,
                double hi) {
  if (!value.is_number()) fail(what + " must be a number");
  const double raw = value.as_number();
  if (!std::isfinite(raw) || raw != std::floor(raw) || raw < lo || raw > hi) {
    fail(what + " must be an integer in [" + JsonWriter::format_double(lo) +
         ", " + JsonWriter::format_double(hi) + "]");
  }
  return static_cast<long>(raw);
}

Op parse_op(const std::string& name) {
  if (name == "create") return Op::kCreate;
  if (name == "tick") return Op::kTick;
  if (name == "status") return Op::kStatus;
  if (name == "evict") return Op::kEvict;
  if (name == "sweep") return Op::kSweep;
  if (name == "shutdown") return Op::kShutdown;
  fail("unknown op \"" + name + "\"");
}

bool op_takes(Op op, const std::string& key) {
  const bool configured = op == Op::kCreate || op == Op::kSweep;
  if (key == "tenant") return op != Op::kShutdown;
  if (key == "config" || key == "seed" || key == "trials" || key == "faults") {
    return configured;
  }
  if (key == "intervals") return op == Op::kTick;
  return false;
}

}  // namespace

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kCreate: return "create";
    case Op::kTick: return "tick";
    case Op::kStatus: return "status";
    case Op::kEvict: return "evict";
    case Op::kSweep: return "sweep";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kSchema: return "schema";
    case ErrorCode::kUnknownTenant: return "unknown_tenant";
    case ErrorCode::kTenantExists: return "tenant_exists";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kShutdown: return "shutdown";
  }
  return "?";
}

bool valid_tenant_name(std::string_view name) noexcept {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::optional<Request> parse_request(std::string_view line, std::uint64_t seq,
                                     RequestError& error) {
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const std::exception& e) {
    error = {ErrorCode::kParse, e.what()};
    return std::nullopt;
  }

  Request request;
  request.seq = seq;
  try {
    if (!doc.is_object()) fail("request must be a JSON object");
    const JsonValue* op_value = doc.find("op");
    if (op_value == nullptr) fail("request needs an \"op\" key");
    request.op = parse_op(string_of(*op_value, "op"));

    bool have_config = false;
    for (const auto& [key, value] : doc.as_object()) {
      if (key == "op") continue;
      if (!op_takes(request.op, key)) {
        fail("op \"" + std::string(to_string(request.op)) +
             "\" does not take key \"" + key + "\"");
      }
      if (key == "tenant") {
        request.tenant = string_of(value, "tenant");
        if (!valid_tenant_name(request.tenant)) {
          fail("tenant must be 1-64 chars of [A-Za-z0-9._-]");
        }
      } else if (key == "config") {
        parse_sim_config_json(value, request.config, std::string(kPrefix));
        have_config = true;
      } else if (key == "seed") {
        request.seed = static_cast<std::uint64_t>(
            integer_of(value, "seed", 0, 9e15));
      } else if (key == "trials") {
        request.trials = integer_of(value, "trials", 1, 1e6);
      } else if (key == "faults") {
        // Re-serialize the sub-document and delegate to the fault-plan
        // parser so serve shares its strict schema and range rules exactly.
        std::ostringstream plan_text;
        JsonWriter plan_json(plan_text);
        write_json(plan_json, value);
        request.faults = parse_fault_plan(plan_text.str());
        request.has_faults = true;
      } else if (key == "intervals") {
        request.intervals = integer_of(value, "intervals", 0, 1e9);
      }
    }

    if (request.op != Op::kShutdown && request.tenant.empty()) {
      fail("op \"" + std::string(to_string(request.op)) +
           "\" needs a \"tenant\" key");
    }
    if ((request.op == Op::kCreate || request.op == Op::kSweep) &&
        !have_config) {
      fail("op \"" + std::string(to_string(request.op)) +
           "\" needs a \"config\" key");
    }
    if (request.has_faults) {
      validate_fault_plan(request.faults, request.config.n_hosts);
    }
  } catch (const std::exception& e) {
    error = {ErrorCode::kSchema, e.what()};
    return std::nullopt;
  }
  return request;
}

std::string tenant_digest(const SimConfig& config, std::uint64_t seed,
                          long trials, const FaultPlan* faults) {
  std::ostringstream canonical;
  {
    JsonWriter json(canonical);
    json.begin_object();
    json.key("config");
    write_sim_config_json(json, config);
    json.key("seed").value(static_cast<std::int64_t>(seed));
    json.key("trials").value(static_cast<std::int64_t>(trials));
    json.key("faults");
    if (faults != nullptr && !faults->empty()) {
      write_fault_plan(json, *faults);
    } else {
      json.null();
    }
    json.end_object();
  }
  const std::string text = canonical.str();
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string digest(16, '0');
  for (int i = 15; i >= 0; --i) {
    digest[static_cast<std::size_t>(i)] = kHex[hash & 0xF];
    hash >>= 4;
  }
  return digest;
}

void write_error_record(obs::JsonlSink& sink, std::uint64_t seq,
                        ErrorCode code, const std::string& message) {
  sink.record([&](JsonWriter& json) {
    json.key("type").value("serve_error");
    json.key("schema").value(kServeSchemaVersion);
    json.key("seq").value(static_cast<std::int64_t>(seq));
    json.key("code").value(error_code_name(code));
    json.key("error").value(message);
  });
}

std::string tag_tenant_lines(const std::string& lines,
                             const std::string& tenant) {
  std::string out;
  out.reserve(lines.size() + (tenant.size() + 16) * 8);
  std::size_t start = 0;
  while (start < lines.size()) {
    std::size_t stop = lines.find('\n', start);
    if (stop == std::string::npos) stop = lines.size();
    const std::string_view line(lines.data() + start, stop - start);
    if (!line.empty() && line.front() == '{') {
      out += "{\"tenant\":\"";
      out += tenant;
      out += '"';
      if (line.size() > 1 && line[1] != '}') out += ',';
      out.append(line.substr(1));
    } else {
      out.append(line);
    }
    out += '\n';
    start = stop + 1;
  }
  return out;
}

}  // namespace pacds::serve
