#include "serve/server.hpp"

#include <algorithm>
#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "net/rng.hpp"
#include "sim/metrics_io.hpp"
#include "sim/montecarlo.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#endif

namespace pacds::serve {

namespace {

bool blank_line(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// Opens the standard serve_response envelope; the caller appends
/// op-specific fields before the record closes.
void write_response(obs::JsonlSink& sink, std::uint64_t seq, Op op,
                    const std::function<void(JsonWriter&)>& fields) {
  sink.record([&](JsonWriter& json) {
    json.key("type").value("serve_response");
    json.key("schema").value(kServeSchemaVersion);
    json.key("seq").value(static_cast<std::int64_t>(seq));
    json.key("op").value(to_string(op));
    fields(json);
  });
}

}  // namespace

Server::Server(const ServeOptions& options, std::ostream& out)
    : options_(options), out_(&out) {
  if (options_.queue_limit < 1) options_.queue_limit = 1;
  if (options_.max_tenants < 1) options_.max_tenants = 1;
  if (options_.threads != 1) {
    pool_ = std::make_unique<ThreadPool>(
        options_.threads < 0 ? 0
                             : static_cast<std::size_t>(options_.threads));
  }
}

Server::~Server() = default;

bool Server::process_lines(const std::vector<std::string>& lines) {
  std::vector<RawLine> batch;
  batch.reserve(lines.size());
  for (const std::string& line : lines) {
    if (blank_line(line)) continue;  // blank lines are not requests
    RawLine raw;
    raw.seq = ++line_counter_;
    raw.text = line;
    batch.push_back(std::move(raw));
  }
  if (batch.empty()) return !shutdown_;
  return process_batch(batch);
}

bool Server::process_batch(const std::vector<RawLine>& batch) {
  // Parse phase: side-effect free, so every admitted line parses up front
  // regardless of where a shutdown lands in the batch.
  std::vector<Item> items(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    items[i].raw = batch[i];
    if (!batch[i].rejected) {
      items[i].request =
          parse_request(batch[i].text, batch[i].seq, items[i].error);
    }
  }

  // Execute phase: sequential semantics. Maximal runs of compute requests
  // (tick/sweep) form a window scheduled across tenants on the Executor;
  // everything else is a serial barrier.
  std::size_t i = 0;
  while (i < items.size()) {
    Item& item = items[i];
    const bool computable =
        !shutdown_ && !item.raw.rejected && item.request.has_value() &&
        (item.request->op == Op::kTick || item.request->op == Op::kSweep);
    if (!computable) {
      execute_control(item);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < items.size() && !items[j].raw.rejected &&
           items[j].request.has_value() &&
           (items[j].request->op == Op::kTick ||
            items[j].request->op == Op::kSweep)) {
      ++j;
    }
    execute_window(items, i, j);
    i = j;
  }

  // Emit phase: per-request buffers concatenate in seq order, so the output
  // stream never depends on the parallel schedule.
  for (const Item& item : items) *out_ << item.output;
  out_->flush();
  return !shutdown_;
}

void Server::execute_control(Item& item) {
  std::ostringstream buffer;
  obs::JsonlSink sink(buffer);
  const std::uint64_t seq = item.raw.seq;

  if (item.raw.rejected) {
    write_error_record(sink, seq, ErrorCode::kQueueFull,
                       "admission queue full; request shed unread");
    item.output = buffer.str();
    return;
  }
  if (shutdown_) {
    write_error_record(sink, seq, ErrorCode::kShutdown,
                       "server is shut down");
    item.output = buffer.str();
    return;
  }
  if (!item.request.has_value()) {
    write_error_record(sink, seq, item.error.code, item.error.message);
    item.output = buffer.str();
    return;
  }

  const Request& request = *item.request;
  switch (request.op) {
    case Op::kCreate:
      handle_create(item);
      return;
    case Op::kShutdown:
      shutdown_ = true;
      write_response(sink, seq, Op::kShutdown, [&](JsonWriter& json) {
        json.key("tenants").value(tenants_.size());
      });
      item.output = buffer.str();
      return;
    case Op::kStatus:
    case Op::kEvict: {
      const auto it = tenants_.find(request.tenant);
      if (it == tenants_.end()) {
        write_error_record(sink, seq, ErrorCode::kUnknownTenant,
                           "no tenant \"" + request.tenant + "\"");
        item.output = buffer.str();
        return;
      }
      Tenant& tenant = *it->second;
      if (request.op == Op::kStatus) {
        tenant.last_used = seq;
        write_response(sink, seq, Op::kStatus, [&](JsonWriter& json) {
          json.key("tenant").value(tenant.name);
          json.key("digest").value(tenant.digest);
          json.key("trial").value(
              static_cast<std::int64_t>(std::min(tenant.trial, tenant.trials)));
          json.key("trials").value(static_cast<std::int64_t>(tenant.trials));
          json.key("intervals").value(
              static_cast<std::int64_t>(tenant.total_intervals));
          json.key("finished")
              .value(tenant.trial >= tenant.trials && tenant.run == nullptr);
        });
      } else {
        tenants_.erase(it);
        write_response(sink, seq, Op::kEvict, [&](JsonWriter& json) {
          json.key("tenant").value(request.tenant);
        });
      }
      item.output = buffer.str();
      return;
    }
    case Op::kTick:
    case Op::kSweep:
      break;  // handled by execute_window; unreachable here
  }
  item.output = buffer.str();
}

void Server::handle_create(Item& item) {
  const Request& request = *item.request;
  const std::uint64_t seq = item.raw.seq;
  std::ostringstream buffer;
  obs::JsonlSink sink(buffer);

  // Per-trial threading is forced to 1, same rule as the Monte-Carlo pool
  // (serve parallelizes across tenants); the digest is taken over the forced
  // config, so creates differing only in `threads` are the same tenant.
  const SimConfig trial_config = montecarlo_trial_config(request.config, true);
  const FaultPlan* faults = request.has_faults ? &request.faults : nullptr;
  const std::string digest =
      tenant_digest(trial_config, request.seed, request.trials, faults);

  const auto it = tenants_.find(request.tenant);
  if (it != tenants_.end()) {
    if (it->second->digest != digest) {
      write_error_record(sink, seq, ErrorCode::kTenantExists,
                         "tenant \"" + request.tenant +
                             "\" exists with digest " + it->second->digest);
      item.output = buffer.str();
      return;
    }
    it->second->last_used = seq;
    write_response(sink, seq, Op::kCreate, [&](JsonWriter& json) {
      json.key("tenant").value(request.tenant);
      json.key("digest").value(digest);
      json.key("cached").value(true);
    });
    item.output = buffer.str();
    return;
  }

  std::string evicted;
  if (tenants_.size() >= options_.max_tenants) {
    auto victim = tenants_.begin();
    for (auto t = tenants_.begin(); t != tenants_.end(); ++t) {
      if (t->second->last_used < victim->second->last_used) victim = t;
    }
    evicted = victim->first;
    tenants_.erase(victim);
  }

  auto tenant = std::make_unique<Tenant>();
  tenant->name = request.tenant;
  tenant->digest = digest;
  tenant->trial_config = trial_config;
  tenant->seed = request.seed;
  tenant->trials = request.trials;
  tenant->faults = request.faults;
  tenant->has_faults = request.has_faults;
  tenant->last_used = seq;

  // The tenant-tagged manifest: byte-identical (modulo the tag) to the one
  // run_lifetime_trials writes for the same config, so a filtered tenant
  // stream validates and diffs against a standalone run.
  write_run_manifest(sink, trial_config, request.seed,
                     static_cast<std::size_t>(request.trials), faults);
  item.output = tag_tenant_lines(buffer.str(), request.tenant);

  std::ostringstream response;
  obs::JsonlSink response_sink(response);
  write_response(response_sink, seq, Op::kCreate, [&](JsonWriter& json) {
    json.key("tenant").value(request.tenant);
    json.key("digest").value(digest);
    json.key("cached").value(false);
    json.key("trials").value(static_cast<std::int64_t>(request.trials));
    if (!evicted.empty()) json.key("evicted").value(evicted);
  });
  item.output += response.str();

  tenants_.emplace(request.tenant, std::move(tenant));
}

void Server::execute_window(std::vector<Item>& items, std::size_t begin,
                            std::size_t end) {
  // Group resolution is serial and in seq order: creates are barriers, so
  // the tenant map cannot change inside a window and resolving up front is
  // equivalent to resolving at each request's turn.
  struct Group {
    Tenant* tenant = nullptr;  // null = one-shot sweep
    std::vector<Item*> items;
  };
  std::vector<Group> groups;
  std::map<std::string, std::size_t> by_tenant;
  for (std::size_t k = begin; k < end; ++k) {
    Item& item = items[k];
    const Request& request = *item.request;
    if (request.op == Op::kSweep) {
      groups.push_back(Group{nullptr, {&item}});
      continue;
    }
    const auto it = tenants_.find(request.tenant);
    if (it == tenants_.end()) {
      std::ostringstream buffer;
      obs::JsonlSink sink(buffer);
      write_error_record(sink, request.seq, ErrorCode::kUnknownTenant,
                         "no tenant \"" + request.tenant + "\"");
      item.output = buffer.str();
      continue;
    }
    it->second->last_used = request.seq;
    const auto [slot, inserted] =
        by_tenant.try_emplace(request.tenant, groups.size());
    if (inserted) groups.push_back(Group{it->second.get(), {}});
    groups[slot->second].items.push_back(&item);
  }

  const auto run_group = [&](std::size_t g) {
    for (Item* item : groups[g].items) {
      if (groups[g].tenant != nullptr) {
        run_tick(*groups[g].tenant, *item->request, item->output);
      } else {
        run_sweep(*item->request, item->output);
      }
    }
  };
  if (pool_ != nullptr && groups.size() > 1) {
    pool_->parallel_for(groups.size(), run_group);
  } else {
    for (std::size_t g = 0; g < groups.size(); ++g) run_group(g);
  }
}

void Server::run_tick(Tenant& tenant, const Request& request,
                      std::string& output) {
  std::ostringstream buffer;
  obs::JsonlSink sink(buffer);
  const long budget = request.intervals;  // 0 = run everything remaining
  long ran = 0;
  while (true) {
    if (tenant.run == nullptr) {
      if (tenant.trial >= tenant.trials) break;
      tenant.run = std::make_unique<LifetimeRun>(
          tenant.trial_config,
          derive_seed(tenant.seed, static_cast<std::uint64_t>(tenant.trial)),
          nullptr, tenant.has_faults ? &tenant.faults : nullptr);
    }
    {
      // The observer is rebound per request so records land in this
      // request's buffer; detach before it goes out of scope.
      JsonlIntervalObserver observer(sink, tenant.trial_config,
                                     static_cast<std::size_t>(tenant.trial));
      tenant.run->set_observer(&observer);
      while ((budget == 0 || ran < budget) && tenant.run->step()) ++ran;
      tenant.run->set_observer(nullptr);
    }
    if (tenant.run->finished()) {
      tenant.run.reset();
      ++tenant.trial;
    }
    if (budget != 0 && ran >= budget) break;
  }
  tenant.total_intervals += ran;

  output = tag_tenant_lines(buffer.str(), tenant.name);
  std::ostringstream response;
  obs::JsonlSink response_sink(response);
  write_response(response_sink, request.seq, Op::kTick, [&](JsonWriter& json) {
    json.key("tenant").value(tenant.name);
    json.key("intervals_run").value(static_cast<std::int64_t>(ran));
    json.key("trial").value(
        static_cast<std::int64_t>(std::min(tenant.trial, tenant.trials)));
    json.key("trials").value(static_cast<std::int64_t>(tenant.trials));
    json.key("finished")
        .value(tenant.trial >= tenant.trials && tenant.run == nullptr);
  });
  output += response.str();
}

void Server::run_sweep(const Request& request, std::string& output) {
  std::ostringstream buffer;
  obs::JsonlSink sink(buffer);
  // One-shot standalone run through the exact Monte-Carlo path (manifest +
  // every trial's records), threads forced to 1 like a cached tenant's.
  const SimConfig config = montecarlo_trial_config(request.config, true);
  const FaultPlan* faults = request.has_faults ? &request.faults : nullptr;
  const LifetimeSummary summary = run_lifetime_trials(
      config, static_cast<std::size_t>(request.trials), request.seed, nullptr,
      &sink, faults);

  output = tag_tenant_lines(buffer.str(), request.tenant);
  std::ostringstream response;
  obs::JsonlSink response_sink(response);
  write_response(response_sink, request.seq, Op::kSweep,
                 [&](JsonWriter& json) {
                   json.key("tenant").value(request.tenant);
                   json.key("trials").value(
                       static_cast<std::int64_t>(request.trials));
                   json.key("mean_intervals").value(summary.intervals.mean);
                   json.key("mean_gateways").value(summary.avg_gateways.mean);
                   json.key("capped_trials").value(summary.capped_trials);
                 });
  output += response.str();
}

int Server::run(std::istream& in) {
  struct QueueState {
    std::mutex mutex;
    std::condition_variable ready;
    std::vector<RawLine> queue;
    std::size_t admitted = 0;  // non-rejected entries in `queue`
    std::uint64_t next_seq = 1;
    std::size_t limit = 1;
    bool eof = false;
  };
  auto state = std::make_shared<QueueState>();
  state->limit = options_.queue_limit;

  // The reader owns admission control and never blocks on the worker: a
  // full queue sheds the line, keeping only its seq for the queue_full
  // error record. `state` is shared so a detached reader (shutdown while
  // stdin stays open) can never touch a dead Server.
  std::thread reader([state, &in] {
    std::string line;
    while (std::getline(in, line)) {
      if (blank_line(line)) continue;
      {
        const std::lock_guard<std::mutex> lock(state->mutex);
        RawLine raw;
        raw.seq = state->next_seq++;
        if (state->admitted >= state->limit) {
          raw.rejected = true;
        } else {
          raw.text = std::move(line);
          ++state->admitted;
        }
        state->queue.push_back(std::move(raw));
        line.clear();
      }
      state->ready.notify_one();
    }
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      state->eof = true;
    }
    state->ready.notify_one();
  });

  bool keep = true;
  while (true) {
    std::vector<RawLine> batch;
    bool eof = false;
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->ready.wait(
          lock, [&] { return state->eof || !state->queue.empty(); });
      batch.swap(state->queue);
      state->admitted = 0;
      eof = state->eof;
    }
    if (!batch.empty()) keep = process_batch(batch);
    if (!keep) break;
    if (eof) {
      const std::lock_guard<std::mutex> lock(state->mutex);
      if (state->queue.empty()) break;
    }
  }

  if (keep) {
    reader.join();
  } else {
    // Shutdown beat EOF: answer whatever is already queued, then leave the
    // reader blocked on `in` (it holds only `state`); the process is about
    // to exit anyway.
    std::vector<RawLine> rest;
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      rest.swap(state->queue);
      state->admitted = 0;
    }
    if (!rest.empty()) process_batch(rest);
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      if (state->eof) {
        lock.unlock();
        reader.join();
      } else {
        lock.unlock();
        reader.detach();
      }
    }
  }
  return 0;
}

#ifdef __unix__

int Server::run_unix_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "serve: socket path too long (max "
              << sizeof(addr.sun_path) - 1 << " bytes)\n";
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "serve: cannot create socket\n";
    return 2;
  }
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 4) != 0) {
    std::cerr << "serve: cannot bind/listen on " << path << "\n";
    ::close(listener);
    return 2;
  }

  // One synchronous client at a time: read whatever is available, process
  // the complete lines as one batch, write the records back. Admission
  // control is inherent here — the kernel socket buffer is the queue and
  // the client sees backpressure directly, so nothing is shed.
  while (!shutdown_) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    std::string pending;
    char chunk[4096];
    while (true) {
      const ssize_t got = ::read(client, chunk, sizeof(chunk));
      if (got <= 0) break;
      pending.append(chunk, static_cast<std::size_t>(got));
      std::vector<std::string> lines;
      std::size_t start = 0;
      std::size_t newline;
      while ((newline = pending.find('\n', start)) != std::string::npos) {
        lines.push_back(pending.substr(start, newline - start));
        start = newline + 1;
      }
      pending.erase(0, start);
      if (lines.empty()) continue;

      std::ostringstream captured;
      std::ostream* saved = out_;
      out_ = &captured;
      const bool keep = process_lines(lines);
      out_ = saved;
      const std::string text = captured.str();
      std::size_t written = 0;
      while (written < text.size()) {
        const ssize_t put =
            ::write(client, text.data() + written, text.size() - written);
        if (put <= 0) break;
        written += static_cast<std::size_t>(put);
      }
      if (!keep) break;
    }
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

#endif  // __unix__

}  // namespace pacds::serve
