#pragma once
// Wire protocol for `pacds serve`: one strict JSON object per input line
// (parsed with io/json_parse, so duplicate keys, trailing garbage and type
// mismatches are all hard errors), one or more schema-v1 JSONL records per
// request on the output stream. Request kinds:
//
//   {"op":"create","tenant":"a","config":{...},"seed":7,"trials":2,
//    "faults":{...}}          — register a tenant; emits its tenant-tagged
//                              run_manifest. Re-creating with an identical
//                              digest is an idempotent cache hit; with a
//                              different one, a tenant_exists error.
//   {"op":"tick","tenant":"a","intervals":K}
//                            — advance the tenant's cached trial state by K
//                              update intervals (0 = run every remaining
//                              trial to completion), streaming the same
//                              interval / fault_event records a standalone
//                              `pacds sim` run would emit.
//   {"op":"status","tenant":"a"} — progress probe, no compute.
//   {"op":"evict","tenant":"a"}  — drop the tenant's cached state.
//   {"op":"sweep","tenant":"a","config":{...},...}
//                            — one-shot: run config+trials to completion and
//                              stream the records without retaining state.
//   {"op":"shutdown"}        — stop serving; later requests get rejected.
//
// Every request is answered by exactly one terminal record: a
// `"type":"serve_response"` on success or a `"type":"serve_error"` carrying
// a code from the taxonomy below. Metrics records precede the response.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/jsonl.hpp"
#include "sim/faults.hpp"
#include "sim/lifetime.hpp"

namespace pacds::serve {

/// Version stamp on serve_response / serve_error records; the metrics
/// records themselves carry sim/metrics_io's kMetricsSchemaVersion.
inline constexpr int kServeSchemaVersion = 1;

enum class Op : std::uint8_t {
  kCreate,
  kTick,
  kStatus,
  kEvict,
  kSweep,
  kShutdown,
};

/// Error taxonomy (DESIGN.md §12). Every rejected request names exactly one.
enum class ErrorCode : std::uint8_t {
  kParse,         ///< line is not one well-formed JSON object
  kSchema,        ///< bad op / unknown key / wrong type / out-of-range value
  kUnknownTenant, ///< tick/status/evict for a name that is not resident
  kTenantExists,  ///< create with a different digest than the live tenant
  kQueueFull,     ///< shed by admission control; the line was never parsed
  kShutdown,      ///< received after a shutdown request was processed
};

[[nodiscard]] const char* to_string(Op op) noexcept;
[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

/// One parsed request. `seq` is server-assigned (the 1-based input line
/// number) and echoed on every output record so responses correlate with
/// requests even across shed lines.
struct Request {
  Op op = Op::kShutdown;
  std::uint64_t seq = 0;
  std::string tenant;
  SimConfig config{};       // create / sweep
  std::uint64_t seed = 1;   // create / sweep
  long trials = 1;          // create / sweep
  FaultPlan faults{};       // create / sweep (optional)
  bool has_faults = false;
  long intervals = 0;       // tick; 0 = run remaining trials to completion
};

struct RequestError {
  ErrorCode code = ErrorCode::kParse;
  std::string message;
};

/// Parses one request line. Returns nullopt and fills `error` on any
/// malformed input — this function never throws, so a hostile line can
/// never take the server down.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   std::uint64_t seq,
                                                   RequestError& error);

/// Tenant names are identifiers, not free text: 1-64 chars from
/// [A-Za-z0-9._-]. Keeps names JSON-injection-proof (tenant tagging splices
/// them into records verbatim) and filesystem/display safe.
[[nodiscard]] bool valid_tenant_name(std::string_view name) noexcept;

/// FNV-1a 64 digest (16 hex chars) over the canonical wire serialization of
/// (config, seed, trials, faults). Two creates collide exactly when they
/// describe the same deterministic record stream.
[[nodiscard]] std::string tenant_digest(const SimConfig& config,
                                        std::uint64_t seed, long trials,
                                        const FaultPlan* faults);

/// Emits one serve_error record.
void write_error_record(obs::JsonlSink& sink, std::uint64_t seq,
                        ErrorCode code, const std::string& message);

/// Inserts `"tenant":"name"` as the first member of every record in
/// `lines` (zero or more '\n'-terminated JSON objects — a JsonlSink
/// buffer). The name must satisfy valid_tenant_name, so no escaping is
/// needed and the result still parses strictly.
[[nodiscard]] std::string tag_tenant_lines(const std::string& lines,
                                           const std::string& tenant);

}  // namespace pacds::serve
