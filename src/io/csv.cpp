#include "io/csv.hpp"

#include <fstream>
#include <ostream>

namespace pacds {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *os_ << ',';
    *os_ << escape(cells[i]);
  }
  *os_ << '\n';
}

bool write_csv_file(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream file(path);
  if (!file) return false;
  CsvWriter writer(file);
  writer.write_row(header);
  for (const auto& row : rows) writer.write_row(row);
  return static_cast<bool>(file);
}

}  // namespace pacds
