#include "io/chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "io/table.hpp"

namespace pacds {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
}

AsciiChart::AsciiChart(int width, int height)
    : width_(std::max(16, width)), height_(std::max(6, height)) {}

void AsciiChart::add_series(const std::string& name, std::vector<double> xs,
                            std::vector<double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("AsciiChart::add_series: xs/ys mismatch");
  }
  if (series_.size() >= std::size(kGlyphs)) {
    throw std::invalid_argument("AsciiChart::add_series: too many series");
  }
  series_.push_back({name, std::move(xs), std::move(ys)});
}

void AsciiChart::set_labels(std::string x_label, std::string y_label) {
  x_label_ = std::move(x_label);
  y_label_ = std::move(y_label);
}

std::string AsciiChart::render() const {
  std::ostringstream os;
  double xmin = 0.0;
  double xmax = 0.0;
  double ymin = 0.0;
  double ymax = 0.0;
  bool any = false;
  for (const ChartSeries& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!any) {
        xmin = xmax = s.xs[i];
        ymin = ymax = s.ys[i];
        any = true;
      } else {
        xmin = std::min(xmin, s.xs[i]);
        xmax = std::max(xmax, s.xs[i]);
        ymin = std::min(ymin, s.ys[i]);
        ymax = std::max(ymax, s.ys[i]);
      }
    }
  }
  if (!any) return "(empty chart)\n";
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;
  // A little headroom so extreme points do not sit on the frame.
  const double ypad = (ymax - ymin) * 0.05;
  ymax += ypad;
  ymin = std::max(0.0, ymin - ypad);

  std::vector<std::string> canvas(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width_),
                                              ' '));
  const auto col_of = [&](double x) {
    return std::clamp(
        static_cast<int>(std::lround((x - xmin) / (xmax - xmin) *
                                     (width_ - 1))),
        0, width_ - 1);
  };
  const auto row_of = [&](double y) {
    return std::clamp(
        height_ - 1 -
            static_cast<int>(std::lround((y - ymin) / (ymax - ymin) *
                                         (height_ - 1))),
        0, height_ - 1);
  };
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const ChartSeries& s = series_[si];
    const char glyph = kGlyphs[si];
    // Connect consecutive points with interpolated samples, then overdraw
    // the data points themselves.
    for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
      const int steps = width_;
      for (int t = 0; t <= steps; ++t) {
        const double f = static_cast<double>(t) / steps;
        const double x = s.xs[i] + f * (s.xs[i + 1] - s.xs[i]);
        const double y = s.ys[i] + f * (s.ys[i + 1] - s.ys[i]);
        auto& cell = canvas[static_cast<std::size_t>(row_of(y))]
                           [static_cast<std::size_t>(col_of(x))];
        if (cell == ' ') cell = '.';
      }
    }
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      canvas[static_cast<std::size_t>(row_of(s.ys[i]))]
            [static_cast<std::size_t>(col_of(s.xs[i]))] = glyph;
    }
  }

  if (!y_label_.empty()) os << y_label_ << "\n";
  const std::string top = TextTable::fmt(ymax);
  const std::string bottom = TextTable::fmt(ymin);
  const std::size_t margin = std::max(top.size(), bottom.size());
  for (int row = 0; row < height_; ++row) {
    std::string prefix(margin, ' ');
    if (row == 0) prefix = std::string(margin - top.size(), ' ') + top;
    if (row == height_ - 1) {
      prefix = std::string(margin - bottom.size(), ' ') + bottom;
    }
    os << prefix << " |" << canvas[static_cast<std::size_t>(row)] << "\n";
  }
  os << std::string(margin + 1, ' ') << '+'
     << std::string(static_cast<std::size_t>(width_), '-') << "\n";
  const std::string xlo = TextTable::fmt(xmin);
  const std::string xhi = TextTable::fmt(xmax);
  os << std::string(margin + 2, ' ') << xlo
     << std::string(static_cast<std::size_t>(std::max(
                        1, width_ - static_cast<int>(xlo.size()) -
                               static_cast<int>(xhi.size()))),
                    ' ')
     << xhi;
  if (!x_label_.empty()) os << "  " << x_label_;
  os << "\nlegend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "  " << kGlyphs[si] << " " << series_[si].name;
  }
  os << "\n";
  return os.str();
}

}  // namespace pacds
