#pragma once
// Checked string-to-number parsing shared by the CLI option layer and the
// serve request parser. The std::sto* family is unusable for input
// validation: it accepts partial tokens ("4x" parses as 4), throws on
// malformed input, and std::stoi silently narrows. These helpers demand a
// full-token match, reject out-of-range magnitudes (ERANGE), and report
// failure through std::optional so callers print a diagnostic instead of
// crashing on an uncaught exception.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pacds {

/// Parses `text` as one base-10 signed integer. The whole token must be
/// consumed (no trailing characters, no leading whitespace) and the value
/// must fit std::int64_t; anything else is std::nullopt.
[[nodiscard]] std::optional<std::int64_t> parse_int64(std::string_view text);

/// Like parse_int64 with an inclusive range check.
[[nodiscard]] std::optional<std::int64_t> parse_int64_in(std::string_view text,
                                                         std::int64_t lo,
                                                         std::int64_t hi);

/// Parses `text` as one finite double (full-token match; inf/nan and
/// overflowing literals are rejected).
[[nodiscard]] std::optional<double> parse_finite_double(std::string_view text);

/// Splits `text` on `sep` and parses every item with parse_int64_in.
/// Empty list, empty items ("1,,2"), malformed or out-of-range entries all
/// fail; on failure `bad_item` (when non-null) receives the offending item
/// ("" for an empty list) so the caller can name it in the diagnostic.
[[nodiscard]] std::optional<std::vector<std::int64_t>> parse_int_list(
    std::string_view text, std::int64_t lo, std::int64_t hi,
    std::string* bad_item = nullptr, char sep = ',');

}  // namespace pacds
