#include "io/parse_num.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace pacds {

std::optional<std::int64_t> parse_int64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // strtoll skips leading whitespace and accepts "0x" prefixes in base 0;
  // pin base 10 and reject whitespace/plus-sign oddities up front so the
  // accepted grammar is exactly -?[0-9]+.
  std::size_t i = 0;
  if (text[i] == '-') ++i;
  if (i == text.size()) return std::nullopt;
  for (std::size_t k = i; k < text.size(); ++k) {
    if (text[k] < '0' || text[k] > '9') return std::nullopt;
  }
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(owned.c_str(), &end, 10);
  if (errno == ERANGE || end != owned.c_str() + owned.size()) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(value);
}

std::optional<std::int64_t> parse_int64_in(std::string_view text,
                                           std::int64_t lo, std::int64_t hi) {
  const auto value = parse_int64(text);
  if (!value || *value < lo || *value > hi) return std::nullopt;
  return value;
}

std::optional<double> parse_finite_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // Reject leading whitespace and the hex/inf/nan spellings strtod accepts;
  // the remaining grammar (decimal with optional exponent) is delegated.
  const char first = text.front();
  if (!(first == '-' || first == '+' || first == '.' ||
        (first >= '0' && first <= '9'))) {
    return std::nullopt;
  }
  for (const char c : text) {
    const bool ok = (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                    c == '+' || c == 'e' || c == 'E';
    if (!ok) return std::nullopt;
  }
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (errno == ERANGE || end != owned.c_str() + owned.size() ||
      !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::vector<std::int64_t>> parse_int_list(std::string_view text,
                                                        std::int64_t lo,
                                                        std::int64_t hi,
                                                        std::string* bad_item,
                                                        char sep) {
  std::vector<std::int64_t> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t stop = text.find(sep, start);
    const std::string_view item = text.substr(
        start, stop == std::string_view::npos ? stop : stop - start);
    const auto value = parse_int64_in(item, lo, hi);
    if (!value) {
      if (bad_item != nullptr) *bad_item = std::string(item);
      return std::nullopt;
    }
    out.push_back(*value);
    if (stop == std::string_view::npos) break;
    start = stop + 1;
  }
  return out;
}

}  // namespace pacds
