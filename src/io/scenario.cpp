#include "io/scenario.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pacds {

void write_scenario(std::ostream& os, const Scenario& scenario) {
  if (scenario.energies.size() != scenario.positions.size()) {
    throw std::invalid_argument(
        "write_scenario: positions/energies size mismatch");
  }
  os << "# pacds scenario\n";
  os << std::setprecision(17);
  os << "radius " << scenario.radius << '\n';
  os << "hosts " << scenario.positions.size() << '\n';
  for (std::size_t i = 0; i < scenario.positions.size(); ++i) {
    os << scenario.positions[i].x << ' ' << scenario.positions[i].y << ' '
       << scenario.energies[i] << '\n';
  }
}

std::string scenario_to_string(const Scenario& scenario) {
  std::ostringstream os;
  write_scenario(os, scenario);
  return os.str();
}

namespace {

[[noreturn]] void fail(int line_no, const std::string& why) {
  throw std::runtime_error("scenario parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

bool next_content_line(std::istream& is, std::string& line, int& line_no) {
  while (std::getline(is, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Scenario read_scenario(std::istream& is) {
  Scenario scenario;
  std::string line;
  int line_no = 0;
  std::string keyword;
  std::string trailing;

  if (!next_content_line(is, line, line_no)) fail(line_no, "missing radius");
  {
    std::istringstream ls(line);
    if (!(ls >> keyword >> scenario.radius) || keyword != "radius" ||
        scenario.radius < 0.0) {
      fail(line_no, "expected 'radius <non-negative number>'");
    }
    if (ls >> trailing) fail(line_no, "trailing tokens");
  }
  long long hosts = 0;
  if (!next_content_line(is, line, line_no)) fail(line_no, "missing hosts");
  {
    std::istringstream ls(line);
    if (!(ls >> keyword >> hosts) || keyword != "hosts" || hosts < 0) {
      fail(line_no, "expected 'hosts <non-negative integer>'");
    }
    if (ls >> trailing) fail(line_no, "trailing tokens");
  }
  for (long long i = 0; i < hosts; ++i) {
    if (!next_content_line(is, line, line_no)) {
      fail(line_no, "expected " + std::to_string(hosts) + " host lines, got " +
                        std::to_string(i));
    }
    std::istringstream ls(line);
    Vec2 pos;
    double energy = 0.0;
    if (!(ls >> pos.x >> pos.y >> energy)) {
      fail(line_no, "host line must be 'x y energy'");
    }
    if (ls >> trailing) fail(line_no, "trailing tokens");
    scenario.positions.push_back(pos);
    scenario.energies.push_back(energy);
  }
  return scenario;
}

Scenario scenario_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_scenario(is);
}

bool save_scenario_file(const std::string& path, const Scenario& scenario) {
  std::ofstream file(path);
  if (!file) return false;
  write_scenario(file, scenario);
  return static_cast<bool>(file);
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot open scenario file: " + path);
  }
  return read_scenario(file);
}

}  // namespace pacds
