#pragma once
// Graphviz export: render a network snapshot with gateways highlighted —
// handy for eyeballing CDS structure on small examples.

#include <optional>
#include <string>
#include <vector>

#include "core/bitset.hpp"
#include "core/graph.hpp"
#include "net/vec2.hpp"

namespace pacds {

/// Options for DOT rendering.
struct DotOptions {
  std::string graph_name = "pacds";
  std::string gateway_color = "lightcoral";
  std::string node_color = "lightgray";
  /// Scale factor applied to positions when emitting pos attributes.
  double pos_scale = 0.1;
};

/// Serializes `g` as an undirected Graphviz graph. `gateways` (if provided)
/// colors gateway nodes; `positions` (if provided) pins node coordinates
/// (neato-compatible `pos` attributes).
[[nodiscard]] std::string to_dot(
    const Graph& g, const DynBitset* gateways = nullptr,
    const std::vector<Vec2>* positions = nullptr,
    const DotOptions& options = {});

}  // namespace pacds
