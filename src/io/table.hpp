#pragma once
// Aligned plain-text tables, used by every experiment harness to print the
// rows the paper's figures plot.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pacds {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple fixed-header text table. Cells are strings; numeric helpers are
/// provided for common formats.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  [[nodiscard]] std::size_t num_columns() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Adds a full row; throws std::invalid_argument if the arity is wrong.
  void add_row(std::vector<std::string> cells);

  /// Sets alignment for one column (default right).
  void set_align(std::size_t column, Align align);

  /// Renders with single-space-padded columns and a dashed header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  // Formatting helpers.
  [[nodiscard]] static std::string fmt(double value, int precision = 2);
  [[nodiscard]] static std::string fmt(std::size_t value);
  [[nodiscard]] static std::string fmt(int value);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pacds
