#pragma once
// Minimal JSON parser to a small value DOM — the read-side complement of
// JsonWriter. Exists so tests can validate every line the JSONL emitter
// produces and so bench_report can consume google-benchmark output without
// an external dependency. Strict RFC 8259 subset: one document per parse,
// objects kept as ordered key/value vectors. Duplicate object keys are a
// parse error (compared after escape decoding, so the escaped spelling
// "\u0061" collides with a literal "a"): every schema built on this parser
// treats keys as field names, and accepting repeats silently would let one
// validator see the first value while a downstream consumer reads the last.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace pacds {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Object members in document order (insertion order round-trips).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// One parsed JSON value. Accessors throw std::runtime_error on a type
/// mismatch so test failures name the offense instead of crashing.
class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  explicit JsonValue(std::nullptr_t) : value_(nullptr) {}
  explicit JsonValue(bool flag) : value_(flag) {}
  explicit JsonValue(double number) : value_(number) {}
  explicit JsonValue(std::string text) : value_(std::move(text)) {}
  explicit JsonValue(JsonArray items) : value_(std::move(items)) {}
  explicit JsonValue(JsonObject members) : value_(std::move(members)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<JsonObject>(value_);
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// First member named `key`, or nullptr if absent / not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws std::runtime_error with a byte offset on
/// malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Reads `path` and parses it as one JSON document. Throws
/// std::runtime_error prefixed with the path on read or parse failure.
[[nodiscard]] JsonValue load_json_file(const std::string& path);

class JsonWriter;

/// Re-emits a parsed value through a JsonWriter positioned to accept a
/// value — lets tools transform documents while keeping one writer.
void write_json(JsonWriter& writer, const JsonValue& value);

}  // namespace pacds
