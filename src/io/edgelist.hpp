#pragma once
// Edge-list (de)serialization: "n m" header line followed by m "u v" lines.
// Lines starting with '#' are comments. Round-trips exactly with Graph.

#include <iosfwd>
#include <string>

#include "core/graph.hpp"

namespace pacds {

/// Writes `g` as an edge list.
void write_edgelist(std::ostream& os, const Graph& g);

[[nodiscard]] std::string edgelist_to_string(const Graph& g);

/// Parses an edge list. Throws std::runtime_error with a line-numbered
/// message on malformed input (bad header, wrong edge count, out-of-range
/// endpoints, self-loops).
[[nodiscard]] Graph read_edgelist(std::istream& is);

[[nodiscard]] Graph edgelist_from_string(const std::string& text);

}  // namespace pacds
