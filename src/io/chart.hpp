#pragma once
// Terminal line charts: the figure binaries don't just print tables, they
// draw the paper's figures. Multiple named series share one canvas; each
// series gets a distinct glyph, axes are scaled and labelled, and a legend
// is appended.

#include <string>
#include <vector>

namespace pacds {

/// One plotted series.
struct ChartSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;  ///< parallel to xs
};

/// Character-cell line chart.
class AsciiChart {
 public:
  AsciiChart(int width = 72, int height = 20);

  /// Adds a series; throws std::invalid_argument on xs/ys size mismatch or
  /// after more than 8 series (glyphs run out).
  void add_series(const std::string& name, std::vector<double> xs,
                  std::vector<double> ys);

  /// Optional axis titles.
  void set_labels(std::string x_label, std::string y_label);

  /// Renders the chart; empty charts render a placeholder note.
  [[nodiscard]] std::string render() const;

 private:
  int width_;
  int height_;
  std::string x_label_;
  std::string y_label_;
  std::vector<ChartSeries> series_;
};

}  // namespace pacds
