#include "io/json_parse.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json.hpp"

namespace pacds {
namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error("parse_json: " + what + " at offset " +
                           std::to_string(offset));
}

constexpr std::size_t kMaxDepth = 256;  // recursion guard

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) {
      fail(pos_, std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail(pos_, "invalid literal");
      default: return JsonValue(parse_number());
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonObject members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_whitespace();
      const std::size_t key_offset = pos_;
      std::string key = parse_string();
      // Duplicate keys are rejected outright: the wire formats built on this
      // parser (fault plans, fuzz reproducers, serve requests) treat object
      // keys as a schema, and a repeated key is how a validated value gets
      // smuggled past a reader that checks the first occurrence while a
      // last-wins consumer reads the second. Comparison is on the *decoded*
      // key, so the escaped spelling "\u0061" collides with a literal "a".
      for (const auto& [name, value] : members) {
        if (name == key) {
          fail(key_offset, "duplicate object key \"" + key + "\"");
        }
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char ch = peek();
      ++pos_;
      if (ch == '}') return JsonValue(std::move(members));
      if (ch != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonArray items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char ch = peek();
      ++pos_;
      if (ch == ']') return JsonValue(std::move(items));
      if (ch != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail(pos_ - 1, "invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail(pos_, "truncated \\u escape");
      const char ch = text_[pos_++];
      code <<= 4;
      if (ch >= '0' && ch <= '9') {
        code |= static_cast<unsigned>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        code |= static_cast<unsigned>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        code |= static_cast<unsigned>(ch - 'A' + 10);
      } else {
        fail(pos_ - 1, "invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate: need the pair
      if (!consume_literal("\\u")) fail(pos_, "unpaired surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail(pos_, "invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail(pos_, "unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t count = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++count;
      }
      return count;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) fail(pos_, "invalid number");
    // JSON forbids leading zeros ("01"), unlike strtod.
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail(int_start, "leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail(pos_, "digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail(pos_, "digits required in exponent");
    }
    // The token was validated above, so strtod on a NUL-terminated copy is
    // exact (string_view is not NUL-terminated).
    const std::string token(text_.substr(start, pos_ - start));
    return std::strtod(token.c_str(), nullptr);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) throw std::runtime_error("JsonValue: not a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) throw std::runtime_error("JsonValue: not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw std::runtime_error("JsonValue: not a string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) throw std::runtime_error("JsonValue: not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) throw std::runtime_error("JsonValue: not an object");
  return std::get<JsonObject>(value_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : as_object()) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(path + ": cannot open file");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_json(text.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_json(JsonWriter& writer, const JsonValue& value) {
  if (value.is_null()) {
    writer.null();
  } else if (value.is_bool()) {
    writer.value(value.as_bool());
  } else if (value.is_number()) {
    writer.value(value.as_number());
  } else if (value.is_string()) {
    writer.value(value.as_string());
  } else if (value.is_array()) {
    writer.begin_array();
    for (const JsonValue& item : value.as_array()) write_json(writer, item);
    writer.end_array();
  } else {
    writer.begin_object();
    for (const auto& [key, member] : value.as_object()) {
      writer.key(key);
      write_json(writer, member);
    }
    writer.end_object();
  }
}

}  // namespace pacds
