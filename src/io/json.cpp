#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

namespace pacds {

std::string JsonWriter::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::newline_pad(std::size_t depth) {
  *os_ << '\n';
  for (std::size_t i = 0; i < indent_ * depth; ++i) *os_ << ' ';
}

void JsonWriter::before_value() {
  if (top_level_done_) {
    throw std::logic_error("JsonWriter: document already complete");
  }
  if (stack_.empty()) return;  // the single top-level value
  if (stack_.back() == Scope::kObject && !key_pending_) {
    throw std::logic_error("JsonWriter: value without key inside object");
  }
  if (stack_.back() == Scope::kArray) {
    if (!first_in_scope_.back()) *os_ << ',';
    if (indent_ > 0) newline_pad(stack_.size());
    first_in_scope_.back() = false;
  }
  key_pending_ = false;
}

void JsonWriter::raw(const std::string& text) {
  before_value();
  *os_ << text;
  if (stack_.empty()) top_level_done_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  if (indent_ > 0 && !first_in_scope_.back()) newline_pad(stack_.size() - 1);
  *os_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  if (indent_ > 0 && !first_in_scope_.back()) newline_pad(stack_.size() - 1);
  *os_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (!first_in_scope_.back()) *os_ << ',';
  if (indent_ > 0) newline_pad(stack_.size());
  first_in_scope_.back() = false;
  *os_ << '"' << escape(name) << (indent_ > 0 ? "\": " : "\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  raw('"' + escape(text) + '"');
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

std::string JsonWriter::format_double(double number) {
  // JSON has no inf/nan tokens; "%g" would happily print them and produce
  // a document parse_json itself rejects, so non-finite maps to null here
  // (the same mapping value(double) applies).
  if (!std::isfinite(number)) return "null";
  // Shortest %g form that survives a strtod round trip. Default stream
  // precision (6 significant digits) silently truncated bench timings and
  // CI half-widths; max_digits10 (17) always round-trips but is noisy, so
  // probe upward and stop at the first exact representation.
  char buf[32];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, number);
    if (std::strtod(buf, nullptr) == number) break;
  }
  return buf;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) {
    null();  // JSON has no NaN/Inf
    return *this;
  }
  raw(format_double(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t number) {
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  raw(flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  raw("null");
  return *this;
}

bool JsonWriter::complete() const { return top_level_done_ && stack_.empty(); }

}  // namespace pacds
