#include "io/edgelist.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pacds {

void write_edgelist(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) {
    os << u << ' ' << v << '\n';
  }
}

std::string edgelist_to_string(const Graph& g) {
  std::ostringstream os;
  write_edgelist(os, g);
  return os.str();
}

namespace {

[[noreturn]] void fail(int line_no, const std::string& why) {
  throw std::runtime_error("edge list parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

/// Reads the next non-comment, non-blank line; returns false at EOF.
bool next_content_line(std::istream& is, std::string& line, int& line_no) {
  while (std::getline(is, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Graph read_edgelist(std::istream& is) {
  std::string line;
  int line_no = 0;
  if (!next_content_line(is, line, line_no)) {
    fail(line_no, "missing header");
  }
  std::istringstream header(line);
  long long n = 0;
  long long m = 0;
  if (!(header >> n >> m) || n < 0 || m < 0) {
    fail(line_no, "header must be 'n m' with non-negative integers");
  }
  std::string trailing;
  if (header >> trailing) fail(line_no, "trailing tokens after header");
  Graph g(static_cast<NodeId>(n));
  for (long long i = 0; i < m; ++i) {
    if (!next_content_line(is, line, line_no)) {
      fail(line_no, "expected " + std::to_string(m) + " edges, got " +
                        std::to_string(i));
    }
    std::istringstream edge(line);
    long long u = 0;
    long long v = 0;
    if (!(edge >> u >> v)) fail(line_no, "edge line must be 'u v'");
    if (edge >> trailing) fail(line_no, "trailing tokens after edge");
    if (u < 0 || u >= n || v < 0 || v >= n) fail(line_no, "endpoint out of range");
    if (u == v) fail(line_no, "self-loop");
    if (!g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v))) {
      fail(line_no, "duplicate edge");
    }
  }
  return g;
}

Graph edgelist_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_edgelist(is);
}

}  // namespace pacds
