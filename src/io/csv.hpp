#pragma once
// Minimal CSV emission (RFC-4180-style quoting) so experiment output can be
// replotted outside the harness.

#include <iosfwd>
#include <string>
#include <vector>

namespace pacds {

/// Streams rows as CSV. Fields containing commas, quotes or newlines are
/// quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream* os_;
};

/// Convenience: write a header + data rows to a file. Returns false (and
/// writes nothing) if the file cannot be opened.
bool write_csv_file(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace pacds
