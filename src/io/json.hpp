#pragma once
// Minimal streaming JSON writer (no DOM): nesting tracked on a stack,
// commas inserted automatically, strings escaped per RFC 8259. Lets the
// CLI emit machine-readable output (--json) without a dependency.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pacds {

/// Streaming JSON emitter. Usage:
///   JsonWriter json(os);
///   json.begin_object();
///   json.key("n").value(42);
///   json.key("tags").begin_array().value("a").value("b").end_array();
///   json.end_object();
/// Misuse (value without key inside an object, unbalanced end_*) throws
/// std::logic_error.
///
/// `indent` > 0 pretty-prints (one member per line, `indent` spaces per
/// nesting level, empty containers stay "{}"/"[]"); 0 emits compact
/// single-line JSON. Doubles are formatted with the shortest decimal form
/// that round-trips exactly, so no precision is lost on re-parse.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, unsigned indent = 0)
      : os_(&os), indent_(indent) {}

  /// Shortest decimal string that strtod parses back to exactly `number`.
  /// Non-finite values format as "null", matching value(double) — JSON has
  /// no inf/nan, and an "inf" token would poison every downstream parse.
  [[nodiscard]] static std::string format_double(double number);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be directly inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// True once the single top-level value is complete and balanced.
  [[nodiscard]] bool complete() const;

  [[nodiscard]] static std::string escape(const std::string& text);

 private:
  enum class Scope : char { kObject, kArray };

  void before_value();
  void raw(const std::string& text);
  void newline_pad(std::size_t depth);

  std::ostream* os_;
  unsigned indent_ = 0;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool key_pending_ = false;
  bool top_level_done_ = false;
};

}  // namespace pacds
