#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pacds {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: expected " +
                                std::to_string(headers_.size()) +
                                " cells, got " + std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) {
    throw std::out_of_range("TextTable::set_align: bad column");
  }
  aligns_[column] = align;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_cell = [&](const std::string& text, std::size_t c) {
    const auto pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "  ";
    emit_cell(headers_[c], c);
  }
  os << '\n';
  std::size_t total = 2 * (headers_.size() - 1);
  for (const auto w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      emit_cell(row[c], c);
    }
    os << '\n';
  }
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::fmt(std::size_t value) { return std::to_string(value); }

std::string TextTable::fmt(int value) { return std::to_string(value); }

}  // namespace pacds
