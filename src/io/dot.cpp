#include "io/dot.hpp"

#include <sstream>
#include <stdexcept>

namespace pacds {

std::string to_dot(const Graph& g, const DynBitset* gateways,
                   const std::vector<Vec2>* positions,
                   const DotOptions& options) {
  if (gateways != nullptr &&
      gateways->size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("to_dot: gateway mask size mismatch");
  }
  if (positions != nullptr &&
      positions->size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("to_dot: positions size mismatch");
  }
  std::ostringstream os;
  os << "graph " << options.graph_name << " {\n";
  os << "  node [style=filled];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool is_gateway =
        gateways != nullptr && gateways->test(static_cast<std::size_t>(v));
    os << "  " << v << " [fillcolor="
       << (is_gateway ? options.gateway_color : options.node_color);
    if (positions != nullptr) {
      const Vec2 p = (*positions)[static_cast<std::size_t>(v)];
      os << ", pos=\"" << p.x * options.pos_scale << ','
         << p.y * options.pos_scale << "!\"";
    }
    os << "];\n";
  }
  for (const auto& [u, v] : g.edges()) {
    os << "  " << u << " -- " << v << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pacds
