#pragma once
// Scenario (de)serialization: a complete, reproducible network snapshot —
// transmission radius, host positions and battery levels — in a small text
// format, so experiments can be saved, shared and replayed:
//
//   # comment lines allowed anywhere
//   radius 25
//   hosts 3
//   1.5 2.5 100
//   10  20  87.5
//   30  40  100

#include <iosfwd>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "net/udg.hpp"
#include "net/vec2.hpp"

namespace pacds {

/// One saved network snapshot.
struct Scenario {
  double radius = 0.0;
  std::vector<Vec2> positions;
  std::vector<double> energies;  ///< parallel to positions

  [[nodiscard]] std::size_t size() const noexcept { return positions.size(); }

  /// Builds the unit-disk graph of this snapshot.
  [[nodiscard]] Graph graph(UdgMethod method = UdgMethod::kGrid) const {
    return build_udg(positions, radius, method);
  }
};

void write_scenario(std::ostream& os, const Scenario& scenario);
[[nodiscard]] std::string scenario_to_string(const Scenario& scenario);

/// Parses a scenario; throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] Scenario read_scenario(std::istream& is);
[[nodiscard]] Scenario scenario_from_string(const std::string& text);

/// File helpers; save returns false if the file cannot be written.
bool save_scenario_file(const std::string& path, const Scenario& scenario);
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

}  // namespace pacds
