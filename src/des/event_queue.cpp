#include "des/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace pacds::des {

void EventQueue::schedule(SimTime when, std::function<void()> action) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule: time in the past");
  }
  heap_.push(Entry{when, next_seq_++, std::move(action)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move out via const_cast idiom avoided —
  // copy the small wrapper instead (std::function copy).
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.when;
  ++fired_;
  entry.action();
  return true;
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    run_one();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::run_all() {
  while (run_one()) {
  }
}

}  // namespace pacds::des
