#pragma once
// Deterministic discrete-event core: a time-ordered event queue with FIFO
// tie-breaking (events at equal timestamps fire in scheduling order), so
// simulations are exactly reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pacds::des {

/// Simulation clock type (abstract time units).
using SimTime = double;

/// Min-heap event queue dispatching std::function thunks.
class EventQueue {
 public:
  /// Schedules `action` at absolute time `when` (must be >= now()).
  void schedule(SimTime when, std::function<void()> action);

  /// Fires the earliest event; returns false when empty.
  bool run_one();

  /// Runs until empty or the clock passes `until`.
  void run_until(SimTime until);

  /// Runs everything.
  void run_all();

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO within a timestamp
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace pacds::des
