#pragma once
// Discrete-event packet-level simulation of dominating-set routing with
// queueing. Each host owns a FIFO transmit queue and serves one packet per
// `tx_time`; packets follow source routes computed on the current backbone.
// Every `update_interval` the hosts move, the unit-disk graph and gateway
// set are recomputed, and in-flight packets whose next hop walked out of
// range are dropped (route breakage). The experiment this enables: smaller
// backbones concentrate forwarding on fewer hosts, so schemes trade
// backbone size against queueing delay — a dimension the paper's interval
// model cannot see.

#include <cstdint>
#include <vector>

#include "core/cds.hpp"
#include "net/space.hpp"
#include "net/topology.hpp"
#include "sim/faults.hpp"
#include "sim/stats.hpp"

namespace pacds::des {

struct PacketSimConfig {
  int n_hosts = 40;
  double radius = kPaperRadius;

  pacds::RuleSet rule_set = RuleSet::kND;
  CdsOptions cds_options{};

  double sim_time = 400.0;         ///< total simulated time
  double update_interval = 20.0;   ///< mobility + backbone refresh period
  double stay_probability = 0.5;   ///< paper mobility inside each refresh
  int jump_min = 1;
  int jump_max = 6;

  double injection_gap = 0.5;      ///< one new packet every gap
  double tx_time = 1.0;            ///< service time per hop
  std::size_t queue_capacity = 16; ///< per-host FIFO depth
  int max_hops = 64;               ///< TTL safety net

  /// Per-transmission loss probability (lossy radio); lost frames are
  /// retransmitted up to max_retries, then the packet is dropped.
  double loss_probability = 0.0;
  int max_retries = 3;

  int connect_retries = 500;

  /// Optional fault plan (borrowed; must outlive the run). Crash/recover,
  /// theft and blackout events apply at backbone-refresh boundaries — the
  /// plan's interval t maps to the t-th backbone build. Down hosts leave
  /// the radio graph, their queued and in-flight packets are dropped as
  /// `crashed`, and they neither source nor sink new traffic. The plan
  /// consumes no randomness, so the mobility/injection/loss streams match
  /// the fault-free run of the same seed. Thefts only kill a host here when
  /// `amount` >= 100 (the DES models no battery drain).
  const FaultPlan* faults = nullptr;
};

/// Why a packet never reached its destination.
struct DropCounts {
  std::size_t no_route = 0;     ///< router had no path at injection
  std::size_t queue_full = 0;   ///< FIFO overflow at some hop
  std::size_t route_break = 0;  ///< next hop out of range after an update
  std::size_t ttl = 0;          ///< exceeded max_hops
  std::size_t loss = 0;         ///< radio loss exhausted the retry budget
  std::size_t crashed = 0;      ///< lost with a host that went down
  std::size_t in_flight = 0;    ///< still queued when the simulation ended

  [[nodiscard]] std::size_t total() const {
    return no_route + queue_full + route_break + ttl + loss + crashed +
           in_flight;
  }
};

struct PacketSimResult {
  std::size_t injected = 0;
  std::size_t delivered = 0;
  DropCounts drops;
  Summary latency;          ///< end-to-end delay of delivered packets
  Summary hops;             ///< path length of delivered packets
  double max_queue = 0.0;   ///< deepest FIFO observed (congestion)
  double avg_gateways = 0.0;
  std::size_t fault_events = 0;  ///< injected fault events (0 without a plan)

  [[nodiscard]] double delivery_ratio() const {
    return injected == 0
               ? 1.0
               : static_cast<double>(delivered) /
                     static_cast<double>(injected);
  }
};

/// Runs one packet-level simulation, fully determined by (config, seed).
[[nodiscard]] PacketSimResult run_packet_sim(const PacketSimConfig& config,
                                             std::uint64_t seed);

}  // namespace pacds::des
