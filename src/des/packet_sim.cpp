#include "des/packet_sim.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "des/event_queue.hpp"
#include "energy/battery.hpp"
#include "net/mobility.hpp"
#include "net/udg.hpp"
#include "routing/routing.hpp"

namespace pacds::des {

namespace {

struct Packet {
  std::vector<NodeId> route;  ///< full host sequence src..dst
  std::size_t at = 0;         ///< index of the host currently holding it
  SimTime injected_at = 0.0;
  int hops = 0;
  int retries = 0;            ///< retransmissions of the current hop
};

/// The whole simulation state; event thunks call back into this.
class Sim {
 public:
  Sim(const PacketSimConfig& config, std::uint64_t seed)
      : config_(config),
        rng_(seed),
        field_(Field::paper_field()),
        mobility_(config.stay_probability, config.jump_min, config.jump_max),
        queues_(static_cast<std::size_t>(config.n_hosts)),
        busy_(static_cast<std::size_t>(config.n_hosts), 0) {
    if (config.n_hosts < 2 || config.sim_time <= 0.0 ||
        config.injection_gap <= 0.0 || config.tx_time <= 0.0 ||
        config.update_interval <= 0.0) {
      throw std::invalid_argument("run_packet_sim: bad configuration");
    }
    if (auto placed = random_connected_placement(config.n_hosts, field_,
                                                 config.radius, rng_,
                                                 config.connect_retries)) {
      positions_ = std::move(placed->positions);
    } else {
      positions_ = random_placement(config.n_hosts, field_, rng_);
    }
    if (config.faults != nullptr && config.faults->has_lifetime_events()) {
      validate_fault_plan(*config.faults, config.n_hosts);
      batteries_.emplace(static_cast<std::size_t>(config.n_hosts), 100.0);
      injector_.emplace(*config.faults, positions_.size(), field_.width(),
                        config.radius);
      apply_faults();  // the plan's interval 1 = the first backbone build
    }
    rebuild_backbone();
  }

  PacketSimResult run() {
    for (SimTime t = 0.0; t < config_.sim_time; t += config_.injection_gap) {
      events_.schedule(t, [this] { inject(); });
    }
    for (SimTime t = config_.update_interval; t < config_.sim_time;
         t += config_.update_interval) {
      events_.schedule(t, [this] { refresh_topology(); });
    }
    events_.run_until(config_.sim_time);

    // Whatever is still queued or mid-flight never arrived.
    result_.drops.in_flight =
        result_.injected - result_.delivered - result_.drops.no_route -
        result_.drops.queue_full - result_.drops.route_break -
        result_.drops.ttl - result_.drops.loss - result_.drops.crashed;
    result_.latency = Summary::of(latency_);
    result_.hops = Summary::of(hops_);
    result_.avg_gateways =
        backbone_samples_ == 0
            ? 0.0
            : gateway_sum_ / static_cast<double>(backbone_samples_);
    return result_;
  }

 private:
  [[nodiscard]] bool is_down(NodeId host) const {
    return injector_ && injector_->down().test(static_cast<std::size_t>(host));
  }

  /// Applies the current interval's scheduled faults and drops whatever a
  /// newly-down host was holding (its queue and service slot die with it).
  void apply_faults() {
    fault_scratch_.clear();
    injector_->apply(interval_, positions_, *batteries_, fault_scratch_);
    result_.fault_events += fault_scratch_.size();
    if (!injector_->take_down_changed()) return;
    for (std::size_t h = 0; h < queues_.size(); ++h) {
      if (!injector_->down().test(h)) continue;
      result_.drops.crashed += queues_[h].size();
      queues_[h].clear();
      busy_[h] = 0;
    }
  }

  void rebuild_backbone() {
    const std::vector<Vec2>& radio_positions =
        injector_ ? injector_->effective_positions(positions_) : positions_;
    graph_ = build_udg(radio_positions, config_.radius);
    const std::vector<double> uniform(
        static_cast<std::size_t>(config_.n_hosts), 1.0);
    cds_ = compute_cds(graph_, config_.rule_set, uniform,
                       config_.cds_options);
    router_.emplace(graph_, cds_.gateways);
    gateway_sum_ += static_cast<double>(cds_.gateway_count);
    ++backbone_samples_;
  }

  void refresh_topology() {
    mobility_.step(positions_, field_, rng_);
    ++interval_;
    if (injector_) apply_faults();
    rebuild_backbone();
  }

  void inject() {
    ++result_.injected;
    const auto n = static_cast<std::int64_t>(config_.n_hosts);
    const auto src = static_cast<NodeId>(rng_.uniform_int(0, n - 1));
    auto dst = src;
    while (dst == src) dst = static_cast<NodeId>(rng_.uniform_int(0, n - 1));
    if (is_down(src) || is_down(dst)) {
      // A crashed host neither sources nor sinks traffic. The draws above
      // keep the injection stream aligned with the fault-free run.
      ++result_.drops.crashed;
      return;
    }
    const RouteResult route = router_->route(src, dst);
    if (!route.delivered) {
      ++result_.drops.no_route;
      return;
    }
    if (route.path.size() == 1) {  // src == dst cannot happen; guard anyway
      ++result_.delivered;
      return;
    }
    Packet packet;
    packet.route = route.path;
    packet.injected_at = events_.now();
    enqueue(src, std::move(packet));
  }

  void enqueue(NodeId host, Packet packet) {
    auto& queue = queues_[static_cast<std::size_t>(host)];
    if (queue.size() >= config_.queue_capacity) {
      ++result_.drops.queue_full;
      return;
    }
    queue.push_back(std::move(packet));
    result_.max_queue =
        std::max(result_.max_queue, static_cast<double>(queue.size()));
    try_transmit(host);
  }

  void try_transmit(NodeId host) {
    const auto hi = static_cast<std::size_t>(host);
    if (busy_[hi] || queues_[hi].empty()) return;
    Packet packet = std::move(queues_[hi].front());
    queues_[hi].pop_front();
    const NodeId next = packet.route[packet.at + 1];
    if (!graph_.has_edge(host, next)) {
      // The next hop moved out of range since the route was computed.
      ++result_.drops.route_break;
      try_transmit(host);  // serve the next packet immediately
      return;
    }
    busy_[hi] = 1;
    events_.schedule(events_.now() + config_.tx_time,
                     [this, host, p = std::move(packet), next]() mutable {
                       busy_[static_cast<std::size_t>(host)] = 0;
                       if (is_down(host)) {
                         // The sender crashed mid-service; the frame and the
                         // rest of its queue died with it (see apply_faults).
                         ++result_.drops.crashed;
                         return;
                       }
                       if (config_.loss_probability > 0.0 &&
                           rng_.bernoulli(config_.loss_probability)) {
                         // Frame lost in the air: retransmit or give up.
                         if (p.retries < config_.max_retries) {
                           ++p.retries;
                           retransmit(host, std::move(p));
                         } else {
                           ++result_.drops.loss;
                           try_transmit(host);
                         }
                         return;
                       }
                       if (is_down(next)) {
                         ++result_.drops.crashed;
                         try_transmit(host);
                         return;
                       }
                       p.retries = 0;
                       arrive(next, std::move(p));
                       try_transmit(host);
                     });
  }

  /// Re-sends a lost frame at the head of the line (the host stays busy for
  /// another service time).
  void retransmit(NodeId host, Packet packet) {
    auto& queue = queues_[static_cast<std::size_t>(host)];
    queue.push_front(std::move(packet));
    try_transmit(host);
  }

  void arrive(NodeId host, Packet packet) {
    ++packet.at;
    ++packet.hops;
    if (packet.route[packet.at] != host) {
      // Defensive: routes are positional, this cannot diverge.
      ++result_.drops.route_break;
      return;
    }
    if (packet.at + 1 == packet.route.size()) {
      ++result_.delivered;
      latency_.add(events_.now() - packet.injected_at);
      hops_.add(static_cast<double>(packet.hops));
      return;
    }
    if (packet.hops >= config_.max_hops) {
      ++result_.drops.ttl;
      return;
    }
    enqueue(host, std::move(packet));
  }

  PacketSimConfig config_;
  Xoshiro256 rng_;
  Field field_;
  PaperJumpMobility mobility_;
  std::vector<Vec2> positions_;
  Graph graph_;
  CdsResult cds_;
  std::optional<DominatingSetRouter> router_;

  /// Fault plumbing (engaged only when config.faults has lifetime events).
  long interval_ = 1;  ///< 1-based backbone-build counter (plan intervals)
  std::optional<FaultInjector> injector_;
  std::optional<BatteryBank> batteries_;  ///< theft target (no drain here)
  std::vector<FaultRecord> fault_scratch_;

  EventQueue events_;
  std::vector<std::deque<Packet>> queues_;
  std::vector<char> busy_;

  PacketSimResult result_;
  Welford latency_;
  Welford hops_;
  double gateway_sum_ = 0.0;
  std::size_t backbone_samples_ = 0;
};

}  // namespace

PacketSimResult run_packet_sim(const PacketSimConfig& config,
                               std::uint64_t seed) {
  Sim sim(config, seed);
  return sim.run();
}

}  // namespace pacds::des
