#pragma once
// Radio/propagation models generalizing the paper's pure unit disk. The
// model decides, per host pair, (a) whether a link exists at all and (b) an
// extra ARQ-visible delivery drop probability for the dist layer's faulty
// channel. All randomness is a deterministic hash of (fading_seed, u, v):
// the same pair fades the same way in every engine, every interval and every
// process, so trials stay pure functions of (config, seed) and the
// incremental engines can re-evaluate any single pair in isolation.
//
// Shadowing is *downward-truncated*: a pair's effective radius is
// r * min(1, 10^(fade_db / (10 * path_loss_exp))), i.e. fading can only
// shrink range below the nominal radius, never extend it. That keeps the
// nominal radius a hard upper bound on link length — the contract the
// SpatialGrid cell ring and the tile halo radii are built on. (Physically:
// the nominal radius is the best-case range and the log-normal shadow only
// attenuates; upward fades are clipped.)

#include <cstdint>
#include <string>

#include "core/graph.hpp"
#include "net/vec2.hpp"

namespace pacds {

/// Which propagation model gates candidate links.
enum class RadioKind : std::uint8_t {
  kUnitDisk,       ///< link iff distance <= radius (the paper's model)
  kShadowing,      ///< per-pair log-normal fade shrinks the effective radius
  kProbabilistic,  ///< link iff distance <= radius and a per-pair coin lands
};

[[nodiscard]] std::string to_string(RadioKind kind);

struct RadioParams {
  double sigma_db = 4.0;       ///< shadowing: fade stddev in dB
  double path_loss_exp = 3.0;  ///< shadowing: path-loss exponent (eta)
  double link_prob = 0.85;     ///< probabilistic: per-pair link probability
  std::uint64_t fading_seed = 1;  ///< per-pair hash seed (all kinds)

  bool operator==(const RadioParams&) const = default;
};

/// Deterministic per-pair link/drop decisions. Copyable value type; cheap
/// enough to evaluate per candidate pair inside the engines' hot loops.
class RadioModel {
 public:
  RadioModel(RadioKind kind, const RadioParams& params, double radius);

  [[nodiscard]] RadioKind kind() const noexcept { return kind_; }

  /// True iff the pair (u, v) is linked at squared distance `d2`. Symmetric
  /// in (u, v). Requires d2 <= radius^2 candidates only in the unit-disk
  /// sense — callers pre-filter by the nominal radius (grid query / UDG),
  /// and this predicate can only veto, never add.
  [[nodiscard]] bool link(NodeId u, NodeId v, double d2) const;

  /// Extra delivery-drop probability the pair's channel suffers, for the
  /// dist ARQ layer: 0 for unit disk; for shadowing/probabilistic a
  /// deterministic per-pair value in [0, drop cap] that worsens with the
  /// pair's fade. Independent of current distance (the dist layer has no
  /// geometry), symmetric in (u, v).
  [[nodiscard]] double arq_drop(NodeId u, NodeId v) const;

 private:
  /// Uniform in [0, 1), deterministic in (fading_seed, {u, v}).
  [[nodiscard]] double pair_uniform(NodeId u, NodeId v) const;
  /// Standard normal via Box-Muller on two decorrelated pair hashes.
  [[nodiscard]] double pair_normal(NodeId u, NodeId v) const;

  RadioKind kind_;
  RadioParams params_;
  double radius_;
};

/// Builds the proximity graph gated by `radio` on top of the nominal
/// unit-disk candidates: every UDG edge survives iff radio.link says so.
/// With RadioKind::kUnitDisk this is exactly build_udg.
[[nodiscard]] Graph build_radio_links(const std::vector<Vec2>& positions,
                                      double radius, const RadioModel& radio);

}  // namespace pacds
