#include "net/space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pacds {

std::string to_string(BoundaryPolicy policy) {
  switch (policy) {
    case BoundaryPolicy::kClamp:
      return "clamp";
    case BoundaryPolicy::kReflect:
      return "reflect";
    case BoundaryPolicy::kWrap:
      return "wrap";
  }
  return "?";
}

Field::Field(double width, double height, BoundaryPolicy policy)
    : Field(width, height, 0.0, policy) {}

Field::Field(double width, double height, double depth, BoundaryPolicy policy)
    : width_(width), height_(height), depth_(depth), policy_(policy) {
  if (!(width > 0.0) || !(height > 0.0)) {
    throw std::invalid_argument("Field: dimensions must be positive");
  }
  if (!(depth >= 0.0)) {
    throw std::invalid_argument("Field: depth must be non-negative");
  }
}

bool Field::contains(Vec3 p) const noexcept {
  return p.x >= 0.0 && p.x <= width_ && p.y >= 0.0 && p.y <= height_ &&
         p.z >= 0.0 && p.z <= depth_;
}

double Field::fold(double v, double limit, BoundaryPolicy policy) {
  switch (policy) {
    case BoundaryPolicy::kClamp:
      return std::clamp(v, 0.0, limit);
    case BoundaryPolicy::kReflect: {
      // Reflect off both walls as many times as needed: the position follows
      // a triangle wave of period 2*limit.
      const double period = 2.0 * limit;
      double m = std::fmod(v, period);
      if (m < 0.0) m += period;
      return m <= limit ? m : period - m;
    }
    case BoundaryPolicy::kWrap: {
      double m = std::fmod(v, limit);
      if (m < 0.0) m += limit;
      return m;
    }
  }
  return v;
}

Vec3 Field::confine(Vec3 p) const {
  // A planar field pins z to exactly 0 rather than folding: fmod(v, 0) is
  // NaN and reflect's period would be 0, so folding only makes sense for a
  // positive extent.
  const double z = is_3d() ? fold(p.z, depth_, policy_) : 0.0;
  return {fold(p.x, width_, policy_), fold(p.y, height_, policy_), z};
}

Vec3 Field::move(Vec3 pos, Vec3 delta) const { return confine(pos + delta); }

}  // namespace pacds
