#include "net/topology.hpp"

#include <stdexcept>

namespace pacds {

std::vector<Vec2> random_placement(int n, const Field& field,
                                   Xoshiro256& rng) {
  if (n < 0) throw std::invalid_argument("random_placement: negative n");
  std::vector<Vec2> positions;
  positions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // The z draw happens after x and y and only for a 3-D field, so planar
    // runs consume exactly the RNG stream they always did.
    const double x = rng.uniform(0.0, field.width());
    const double y = rng.uniform(0.0, field.height());
    const double z = field.is_3d() ? rng.uniform(0.0, field.depth()) : 0.0;
    positions.push_back({x, y, z});
  }
  return positions;
}

std::optional<ConnectedPlacement> random_connected_placement(
    int n, const Field& field, double radius, Xoshiro256& rng, int max_retries,
    UdgMethod method) {
  if (max_retries < 1) {
    throw std::invalid_argument("random_connected_placement: max_retries < 1");
  }
  for (int attempt = 1; attempt <= max_retries; ++attempt) {
    auto positions = random_placement(n, field, rng);
    Graph g = build_udg(positions, radius, method);
    if (g.is_connected()) {
      return ConnectedPlacement{std::move(positions), std::move(g), attempt};
    }
  }
  return std::nullopt;
}

}  // namespace pacds
