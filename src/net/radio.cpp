#include "net/radio.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "net/udg.hpp"

namespace pacds {

namespace {

// SplitMix64 finalizer — the same mixer rng.hpp uses for seed derivation.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Hash of (seed, unordered pair, stream index) -> uniform [0, 1).
double hash_uniform(std::uint64_t seed, NodeId u, NodeId v,
                    std::uint64_t stream) {
  const auto lo = static_cast<std::uint64_t>(std::min(u, v));
  const auto hi = static_cast<std::uint64_t>(std::max(u, v));
  std::uint64_t h = mix64(seed ^ (stream * 0xd6e8feb86659fd93ULL));
  h = mix64(h ^ lo);
  h = mix64(h ^ hi);
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// The largest extra per-delivery drop a degraded pair can add in the dist
// ARQ layer. Keeps faded channels lossy but usable, so complete protocol
// runs stay reachable (the dist oracles rely on eventual delivery).
constexpr double kArqDropCap = 0.5;

}  // namespace

std::string to_string(RadioKind kind) {
  switch (kind) {
    case RadioKind::kUnitDisk:
      return "unit-disk";
    case RadioKind::kShadowing:
      return "shadowing";
    case RadioKind::kProbabilistic:
      return "probabilistic";
  }
  return "?";
}

RadioModel::RadioModel(RadioKind kind, const RadioParams& params,
                       double radius)
    : kind_(kind), params_(params), radius_(radius) {
  if (!(radius >= 0.0)) {
    throw std::invalid_argument("RadioModel: radius must be non-negative");
  }
  if (!(params.sigma_db >= 0.0) || !std::isfinite(params.sigma_db)) {
    throw std::invalid_argument("RadioModel: sigma_db must be >= 0");
  }
  if (!(params.path_loss_exp > 0.0)) {
    throw std::invalid_argument("RadioModel: path_loss_exp must be > 0");
  }
  if (!(params.link_prob >= 0.0) || !(params.link_prob <= 1.0)) {
    throw std::invalid_argument("RadioModel: link_prob must be in [0, 1]");
  }
}

double RadioModel::pair_uniform(NodeId u, NodeId v) const {
  return hash_uniform(params_.fading_seed, u, v, 1);
}

double RadioModel::pair_normal(NodeId u, NodeId v) const {
  // Box-Muller over two decorrelated hash streams of the same pair.
  const double u1 = 1.0 - hash_uniform(params_.fading_seed, u, v, 2);
  const double u2 = hash_uniform(params_.fading_seed, u, v, 3);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool RadioModel::link(NodeId u, NodeId v, double d2) const {
  if (d2 > radius_ * radius_) return false;
  switch (kind_) {
    case RadioKind::kUnitDisk:
      return true;
    case RadioKind::kShadowing: {
      // Log-normal shadow on the link budget: a fade of X dB scales the
      // achievable range by 10^(X / (10 * eta)). Clipped at 1 so range
      // never exceeds the nominal radius (see header).
      const double fade_db = params_.sigma_db * pair_normal(u, v);
      const double scale = std::min(
          1.0, std::pow(10.0, fade_db / (10.0 * params_.path_loss_exp)));
      const double r_eff = radius_ * scale;
      return d2 <= r_eff * r_eff;
    }
    case RadioKind::kProbabilistic:
      return pair_uniform(u, v) < params_.link_prob;
  }
  return false;
}

double RadioModel::arq_drop(NodeId u, NodeId v) const {
  switch (kind_) {
    case RadioKind::kUnitDisk:
      return 0.0;
    case RadioKind::kShadowing: {
      // The deeper the pair's fade, the lossier its channel: reuse the link
      // fade so the geometry veto and the ARQ degradation tell one story.
      const double fade_db = params_.sigma_db * pair_normal(u, v);
      const double scale = std::clamp(
          std::pow(10.0, fade_db / (10.0 * params_.path_loss_exp)), 0.0, 1.0);
      return kArqDropCap * (1.0 - scale);
    }
    case RadioKind::kProbabilistic:
      // Per-pair residual loss proportional to how unreliable the radio is
      // overall, varied deterministically across pairs.
      return kArqDropCap * (1.0 - params_.link_prob) * pair_uniform(u, v);
  }
  return 0.0;
}

Graph build_radio_links(const std::vector<Vec2>& positions, double radius,
                        const RadioModel& radio) {
  const Graph udg = build_udg(positions, radius);
  if (radio.kind() == RadioKind::kUnitDisk) return udg;
  Graph g(udg.num_nodes());
  for (const auto& [u, v] : udg.edges()) {
    if (radio.link(u, v,
                   distance2(positions[static_cast<std::size_t>(u)],
                             positions[static_cast<std::size_t>(v)]))) {
      g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace pacds
