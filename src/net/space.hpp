#pragma once
// The bounded free-space the hosts roam (the paper's 100 x 100 field), plus
// the policy for what happens when a movement step would leave it. A field
// with depth 0 is the classic planar world; a positive depth turns it into
// an axis-aligned box and every z coordinate participates in folding.

#include <cstdint>
#include <string>

#include "net/vec2.hpp"

namespace pacds {

/// What to do when a displacement would exit the field. The paper does not
/// specify; kClamp keeps the host at the wall (our default), kReflect
/// bounces it, kWrap folds positions modulo the field size. Note kWrap only
/// folds *positions*: link distance stays Euclidean, so hosts near opposite
/// edges are far apart and do not link (the field is not a torus for the
/// radio).
enum class BoundaryPolicy : std::uint8_t { kClamp, kReflect, kWrap };

[[nodiscard]] std::string to_string(BoundaryPolicy policy);

/// Axis-aligned field [0, width] x [0, height] (x [0, depth] when 3-D).
class Field {
 public:
  Field(double width, double height,
        BoundaryPolicy policy = BoundaryPolicy::kClamp);
  Field(double width, double height, double depth,
        BoundaryPolicy policy = BoundaryPolicy::kClamp);

  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] double height() const noexcept { return height_; }
  /// 0 for a planar field; the z extent otherwise.
  [[nodiscard]] double depth() const noexcept { return depth_; }
  [[nodiscard]] bool is_3d() const noexcept { return depth_ > 0.0; }
  [[nodiscard]] BoundaryPolicy policy() const noexcept { return policy_; }

  [[nodiscard]] bool contains(Vec3 p) const noexcept;

  /// Applies displacement `delta` to `pos` and folds the result back into
  /// the field per the boundary policy.
  [[nodiscard]] Vec3 move(Vec3 pos, Vec3 delta) const;

  /// Folds an arbitrary point into the field per the boundary policy. In a
  /// planar field z is forced to exactly 0 so stray vertical displacement
  /// can never leak into distances.
  [[nodiscard]] Vec3 confine(Vec3 p) const;

  /// The paper's standard field: 100 x 100, clamping walls.
  static Field paper_field() { return {100.0, 100.0, BoundaryPolicy::kClamp}; }

 private:
  [[nodiscard]] static double fold(double v, double limit,
                                   BoundaryPolicy policy);

  double width_;
  double height_;
  double depth_;
  BoundaryPolicy policy_;
};

}  // namespace pacds
