#pragma once
// The bounded 2-D free-space the hosts roam (the paper's 100 x 100 field),
// plus the policy for what happens when a movement step would leave it.

#include <cstdint>
#include <string>

#include "net/vec2.hpp"

namespace pacds {

/// What to do when a displacement would exit the field. The paper does not
/// specify; kClamp keeps the host at the wall (our default), kReflect
/// bounces it, kWrap makes the field a torus.
enum class BoundaryPolicy : std::uint8_t { kClamp, kReflect, kWrap };

[[nodiscard]] std::string to_string(BoundaryPolicy policy);

/// Axis-aligned rectangular field [0, width] x [0, height].
class Field {
 public:
  Field(double width, double height,
        BoundaryPolicy policy = BoundaryPolicy::kClamp);

  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] double height() const noexcept { return height_; }
  [[nodiscard]] BoundaryPolicy policy() const noexcept { return policy_; }

  [[nodiscard]] bool contains(Vec2 p) const noexcept;

  /// Applies displacement `delta` to `pos` and folds the result back into
  /// the field per the boundary policy.
  [[nodiscard]] Vec2 move(Vec2 pos, Vec2 delta) const;

  /// Folds an arbitrary point into the field per the boundary policy.
  [[nodiscard]] Vec2 confine(Vec2 p) const;

  /// The paper's standard field: 100 x 100, clamping walls.
  static Field paper_field() { return {100.0, 100.0, BoundaryPolicy::kClamp}; }

 private:
  [[nodiscard]] static double fold(double v, double limit,
                                   BoundaryPolicy policy);

  double width_;
  double height_;
  BoundaryPolicy policy_;
};

}  // namespace pacds
