#include "net/udg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace pacds {

SpatialGrid::SpatialGrid(const std::vector<Vec2>& positions, double cell_size)
    : positions_(&positions), cell_size_(cell_size) {
  if (!(cell_size > 0.0)) {
    throw std::invalid_argument("SpatialGrid: cell_size must be positive");
  }
  // Load factor ~1 entry per bucket; power-of-two table for cheap masking.
  std::size_t n_buckets = 16;
  while (n_buckets < positions.size() * 2) n_buckets *= 2;
  buckets_.resize(n_buckets);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i].z != 0.0) any_z_ = true;
    const CellKey key = cell_of(positions[i]);
    buckets_[bucket_of(key)].push_back({key, static_cast<NodeId>(i)});
  }
}

SpatialGrid::CellKey SpatialGrid::cell_of(Vec2 p) const {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.z / cell_size_))};
}

std::size_t SpatialGrid::bucket_of(CellKey key) const {
  // 3-D -> 1-D mix (large odd constants, then avalanche).
  auto h = static_cast<std::uint64_t>(key.cx) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(key.cy) * 0xc2b2ae3d27d4eb4fULL;
  h ^= static_cast<std::uint64_t>(key.cz) * 0xd6e8feb86659fd93ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::size_t>(h) & (buckets_.size() - 1);
}

void SpatialGrid::query_into(Vec2 center, double radius, NodeId exclude,
                             std::vector<NodeId>& out) const {
  if (radius > cell_size_) {
    throw std::invalid_argument(
        "SpatialGrid::query: radius exceeds cell size (needs a wider ring)");
  }
  out.clear();
  const double r2 = radius * radius;
  const CellKey c = cell_of(center);
  // Planar grids hold every entry in the cz == 0 layer, so the z ring would
  // only probe provably empty cells.
  const std::int64_t dz_ring = any_z_ ? 1 : 0;
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dz = -dz_ring; dz <= dz_ring; ++dz) {
        const CellKey probe{c.cx + dx, c.cy + dy, c.cz + dz};
        for (const Entry& e : buckets_[bucket_of(probe)]) {
          if (!(e.cell == probe)) continue;  // hash collision with other cell
          if (e.node == exclude) continue;
          if (distance2((*positions_)[static_cast<std::size_t>(e.node)],
                        center) <= r2) {
            out.push_back(e.node);
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
}

std::vector<NodeId> SpatialGrid::query(Vec2 center, double radius,
                                       NodeId exclude) const {
  std::vector<NodeId> out;
  query_into(center, radius, exclude, out);
  return out;
}

void SpatialGrid::move(NodeId node, Vec2 old_pos, Vec2 new_pos) {
  if (new_pos.z != 0.0) any_z_ = true;
  const CellKey from = cell_of(old_pos);
  const CellKey to = cell_of(new_pos);
  if (from == to) return;
  auto& bucket = buckets_[bucket_of(from)];
  const auto it = std::find_if(bucket.begin(), bucket.end(), [&](const Entry& e) {
    return e.node == node && e.cell == from;
  });
  if (it == bucket.end()) {
    throw std::logic_error(
        "SpatialGrid::move: node " + std::to_string(node) +
        " not filed under its old cell (stale old position?)");
  }
  // Order within a bucket is irrelevant; swap-erase keeps the move O(bucket).
  *it = bucket.back();
  bucket.pop_back();
  buckets_[bucket_of(to)].push_back({to, node});
}

namespace {

Graph build_naive(const std::vector<Vec2>& positions, double radius) {
  const auto n = static_cast<NodeId>(positions.size());
  Graph g(n);
  const double r2 = radius * radius;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) {
      if (distance2(positions[static_cast<std::size_t>(u)],
                    positions[static_cast<std::size_t>(v)]) <= r2) {
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

Graph build_grid(const std::vector<Vec2>& positions, double radius) {
  const auto n = static_cast<NodeId>(positions.size());
  Graph g(n);
  // Cells must have positive extent even for radius 0 (coincident points
  // still form edges under the closed-ball convention).
  const SpatialGrid grid(positions, radius > 0.0 ? radius : 1.0);
  std::vector<NodeId> nbrs;
  for (NodeId u = 0; u < n; ++u) {
    grid.query_into(positions[static_cast<std::size_t>(u)], radius, u, nbrs);
    for (const NodeId v : nbrs) {
      if (v > u) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace

Graph build_udg(const std::vector<Vec2>& positions, double radius,
                UdgMethod method) {
  if (!(radius >= 0.0)) {
    throw std::invalid_argument("build_udg: radius must be non-negative");
  }
  return method == UdgMethod::kNaive ? build_naive(positions, radius)
                                     : build_grid(positions, radius);
}

}  // namespace pacds
