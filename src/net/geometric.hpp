#pragma once
// Geometric proximity graphs beyond the unit disk: the Gabriel graph and
// the relative neighborhood graph (RNG), both classic sparser link models
// in ad hoc networking (planar, connected subgraphs of the UDG on the same
// point set). Used for "different settings" sensitivity studies: the
// marking process and rules operate on any undirected graph.

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "net/vec2.hpp"

namespace pacds {

/// Proximity-graph selector for simulation configs.
enum class LinkModel : std::uint8_t { kUnitDisk, kGabriel, kRng };

[[nodiscard]] std::string to_string(LinkModel model);

/// Builds the selected proximity graph over `positions`.
[[nodiscard]] Graph build_links(const std::vector<Vec2>& positions,
                                double radius, LinkModel model);

/// Gabriel graph restricted to `radius`: u-v linked iff |uv| <= radius and
/// no third point lies strictly inside the disk with diameter uv.
[[nodiscard]] Graph build_gabriel(const std::vector<Vec2>& positions,
                                  double radius);

/// Relative neighborhood graph restricted to `radius`: u-v linked iff
/// |uv| <= radius and no third point w has max(|uw|, |vw|) < |uv|
/// (the "lune" is empty). RNG ⊆ Gabriel ⊆ UDG.
[[nodiscard]] Graph build_rng_graph(const std::vector<Vec2>& positions,
                                    double radius);

}  // namespace pacds
