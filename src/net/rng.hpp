#pragma once
// Deterministic, splittable random number generation. Experiments must be
// reproducible across runs and across the thread-pool Monte-Carlo driver, so
// every trial derives its own xoshiro256** stream from (base_seed, trial_id)
// via SplitMix64 — no global state, no std::random_device.

#include <cstdint>
#include <limits>

namespace pacds {

/// SplitMix64: tiny, high-quality mixer used to seed xoshiro streams and to
/// derive independent per-trial seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives a decorrelated seed for a (stream, index) pair.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t index);

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, 256-bit state, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive — matches the paper's
  /// rand(1, 8) / rand(1, 6) notation.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace pacds
