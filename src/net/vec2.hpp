#pragma once
// Plain 2-D point/vector type for host positions in the simulation field.

#include <cmath>

namespace pacds {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }

  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

/// Squared Euclidean distance — the unit-disk test compares this against
/// radius² to avoid the sqrt.
[[nodiscard]] constexpr double distance2(Vec2 a, Vec2 b) {
  return (a - b).norm2();
}

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) {
  return std::sqrt(distance2(a, b));
}

}  // namespace pacds
