#pragma once
// Point/vector type for host positions in the simulation field. The type is
// 3-D with z defaulting to 0, so the classic 2-D paper field and the 3-D
// scenario-pack fields share one representation: a 2-D run simply never
// writes a non-zero z, and every distance below degrades to the planar one.

#include <cmath>

namespace pacds {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_ = 0.0)
      : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(Vec3 o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(Vec3 o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] constexpr double dot(Vec3 o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr double norm2() const {
    return x * x + y * y + z * z;
  }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

/// Historical alias: most of the codebase predates the 3-D lift and speaks
/// Vec2. Both names are the same type, so positions flow freely.
using Vec2 = Vec3;

/// Squared Euclidean distance — the unit-disk test compares this against
/// radius² to avoid the sqrt.
[[nodiscard]] constexpr double distance2(Vec3 a, Vec3 b) {
  return (a - b).norm2();
}

[[nodiscard]] inline double distance(Vec3 a, Vec3 b) {
  return std::sqrt(distance2(a, b));
}

}  // namespace pacds
