#pragma once
// Network snapshot generation: uniform random host placement and the
// "retry until the unit-disk graph is connected" convention the paper's
// simulation implies (the marking process assumes a connected graph).

#include <optional>
#include <vector>

#include "core/graph.hpp"
#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/udg.hpp"
#include "net/vec2.hpp"

namespace pacds {

/// Uniform random positions inside the field.
[[nodiscard]] std::vector<Vec2> random_placement(int n, const Field& field,
                                                 Xoshiro256& rng);

/// Repeatedly samples placements until the resulting unit-disk graph is
/// connected, up to `max_retries` attempts; nullopt if none was connected
/// (callers decide whether to accept a disconnected fallback).
struct ConnectedPlacement {
  std::vector<Vec2> positions;
  Graph graph;
  int attempts = 0;  ///< how many placements were sampled (>= 1)
};

[[nodiscard]] std::optional<ConnectedPlacement> random_connected_placement(
    int n, const Field& field, double radius, Xoshiro256& rng,
    int max_retries = 1000, UdgMethod method = UdgMethod::kGrid);

/// The paper's transmission radius.
inline constexpr double kPaperRadius = 25.0;

}  // namespace pacds
