#pragma once
// Host mobility models. The paper's model (Section 4): in each update
// interval a host stays put with probability c, otherwise jumps l ∈ [1..6]
// units in one of the eight compass directions. Random-walk, random-waypoint
// and Gauss-Markov models are provided as extensions for sensitivity
// studies. Every model lifts to 3-D when the field has depth: the extra
// vertical draws happen strictly after the planar ones, so a planar field
// consumes exactly the RNG stream it always did.

#include <memory>
#include <string>
#include <vector>

#include "net/rng.hpp"
#include "net/space.hpp"
#include "net/vec2.hpp"

namespace pacds {

/// Advances all host positions by one update interval.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual void step(std::vector<Vec2>& positions, const Field& field,
                    Xoshiro256& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's movement model: with probability `1 - stay_probability` the
/// host moves `rand[jump_min..jump_max]` units in direction `rand[1..8]`
/// (E, S, W, N, SE, NE, SW, NW). Diagonal jumps are normalized so the
/// displacement magnitude equals the drawn length.
class PaperJumpMobility final : public MobilityModel {
 public:
  explicit PaperJumpMobility(double stay_probability = 0.5, int jump_min = 1,
                             int jump_max = 6);

  void step(std::vector<Vec2>& positions, const Field& field,
            Xoshiro256& rng) override;
  [[nodiscard]] std::string name() const override { return "paper-jump"; }

  /// Unit vector of paper direction code 1..8.
  [[nodiscard]] static Vec2 direction(int code);

 private:
  double stay_probability_;
  int jump_min_;
  int jump_max_;
};

/// Isotropic random walk: every host moves a uniform [step_min, step_max]
/// distance at a uniform angle each interval.
class RandomWalkMobility final : public MobilityModel {
 public:
  RandomWalkMobility(double step_min, double step_max);

  void step(std::vector<Vec2>& positions, const Field& field,
            Xoshiro256& rng) override;
  [[nodiscard]] std::string name() const override { return "random-walk"; }

 private:
  double step_min_;
  double step_max_;
};

/// Random waypoint: each host walks toward a uniformly chosen target at a
/// per-leg uniform speed, pausing `pause_intervals` when it arrives.
class RandomWaypointMobility final : public MobilityModel {
 public:
  RandomWaypointMobility(double speed_min, double speed_max,
                         int pause_intervals = 0);

  void step(std::vector<Vec2>& positions, const Field& field,
            Xoshiro256& rng) override;
  [[nodiscard]] std::string name() const override { return "random-waypoint"; }

 private:
  struct HostState {
    Vec2 target;
    double speed = 0.0;
    int pause_left = 0;
    bool has_target = false;
  };

  double speed_min_;
  double speed_max_;
  int pause_intervals_;
  std::vector<HostState> states_;
};

/// Gauss-Markov mobility: speed and heading evolve as first-order
/// autoregressive processes, giving temporally-correlated, smooth motion —
/// the standard contrast to memoryless jump models in ad hoc network
/// evaluation. `alpha` in [0, 1] tunes memory: 1 = straight-line cruise,
/// 0 = fully random each interval.
class GaussMarkovMobility final : public MobilityModel {
 public:
  GaussMarkovMobility(double mean_speed, double alpha,
                      double speed_stddev = 1.0, double heading_stddev = 0.5);

  void step(std::vector<Vec2>& positions, const Field& field,
            Xoshiro256& rng) override;
  [[nodiscard]] std::string name() const override { return "gauss-markov"; }

 private:
  struct HostState {
    double speed = 0.0;
    double heading = 0.0;
    double pitch = 0.0;  ///< vertical angle; stays 0 in a planar field
    bool initialized = false;
  };

  double mean_speed_;
  double alpha_;
  double speed_stddev_;
  double heading_stddev_;
  std::vector<HostState> states_;
};

/// Hosts never move (baseline / debugging).
class StaticMobility final : public MobilityModel {
 public:
  void step(std::vector<Vec2>&, const Field&, Xoshiro256&) override {}
  [[nodiscard]] std::string name() const override { return "static"; }
};

/// Mobility model selector for configuration structs.
enum class MobilityKind : std::uint8_t {
  kPaperJump,
  kRandomWalk,
  kRandomWaypoint,
  kGaussMarkov,
  kStatic,
};

[[nodiscard]] std::string to_string(MobilityKind kind);

/// Parameter superset for the factory; each model reads its own fields.
struct MobilityParams {
  // paper jump
  double stay_probability = 0.5;
  int jump_min = 1;
  int jump_max = 6;
  // random walk
  double step_min = 1.0;
  double step_max = 6.0;
  // random waypoint
  double speed_min = 1.0;
  double speed_max = 6.0;
  int pause_intervals = 0;
  // Gauss-Markov
  double mean_speed = 3.0;
  double alpha = 0.75;
  double speed_stddev = 1.0;
  double heading_stddev = 0.5;
};

/// Builds the selected mobility model.
[[nodiscard]] std::unique_ptr<MobilityModel> make_mobility(
    MobilityKind kind, const MobilityParams& params = {});

}  // namespace pacds
