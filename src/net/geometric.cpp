#include "net/geometric.hpp"

#include <stdexcept>

#include "net/udg.hpp"

namespace pacds {

namespace {

/// Shared scaffold: keep each UDG edge iff `keep(u, v)` holds.
template <typename Predicate>
Graph filter_udg(const std::vector<Vec2>& positions, double radius,
                 Predicate&& keep) {
  const Graph udg = build_udg(positions, radius);
  Graph g(udg.num_nodes());
  for (const auto& [u, v] : udg.edges()) {
    if (keep(u, v)) g.add_edge(u, v);
  }
  return g;
}

}  // namespace

Graph build_gabriel(const std::vector<Vec2>& positions, double radius) {
  if (radius < 0.0) {
    throw std::invalid_argument("build_gabriel: negative radius");
  }
  return filter_udg(positions, radius, [&positions](NodeId u, NodeId v) {
    const Vec2 pu = positions[static_cast<std::size_t>(u)];
    const Vec2 pv = positions[static_cast<std::size_t>(v)];
    const Vec2 mid = (pu + pv) * 0.5;
    const double r2 = distance2(pu, pv) / 4.0;  // (|uv|/2)^2
    for (std::size_t w = 0; w < positions.size(); ++w) {
      if (w == static_cast<std::size_t>(u) ||
          w == static_cast<std::size_t>(v)) {
        continue;
      }
      if (distance2(positions[w], mid) < r2) return false;
    }
    return true;
  });
}

Graph build_rng_graph(const std::vector<Vec2>& positions, double radius) {
  if (radius < 0.0) {
    throw std::invalid_argument("build_rng_graph: negative radius");
  }
  return filter_udg(positions, radius, [&positions](NodeId u, NodeId v) {
    const Vec2 pu = positions[static_cast<std::size_t>(u)];
    const Vec2 pv = positions[static_cast<std::size_t>(v)];
    const double d2 = distance2(pu, pv);
    for (std::size_t w = 0; w < positions.size(); ++w) {
      if (w == static_cast<std::size_t>(u) ||
          w == static_cast<std::size_t>(v)) {
        continue;
      }
      if (distance2(positions[w], pu) < d2 &&
          distance2(positions[w], pv) < d2) {
        return false;  // w sits in the lune
      }
    }
    return true;
  });
}

std::string to_string(LinkModel model) {
  switch (model) {
    case LinkModel::kUnitDisk:
      return "unit-disk";
    case LinkModel::kGabriel:
      return "gabriel";
    case LinkModel::kRng:
      return "rng";
  }
  return "?";
}

Graph build_links(const std::vector<Vec2>& positions, double radius,
                  LinkModel model) {
  switch (model) {
    case LinkModel::kUnitDisk:
      return build_udg(positions, radius);
    case LinkModel::kGabriel:
      return build_gabriel(positions, radius);
    case LinkModel::kRng:
      return build_rng_graph(positions, radius);
  }
  throw std::invalid_argument("build_links: unknown model");
}

}  // namespace pacds
