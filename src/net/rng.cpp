#include "net/rng.hpp"

#include <stdexcept>

namespace pacds {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  SplitMix64 mixer(base ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  mixer.next();
  return mixer.next();
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& s : s_) s = mixer.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  if (!(lo <= hi)) {
    throw std::invalid_argument("Xoshiro256::uniform: lo > hi");
  }
  return lo + (hi - lo) * uniform01();
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Xoshiro256::uniform_int: lo > hi");
  }
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Xoshiro256::bernoulli(double p) { return uniform01() < p; }

}  // namespace pacds
