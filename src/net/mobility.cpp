#include "net/mobility.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pacds {

PaperJumpMobility::PaperJumpMobility(double stay_probability, int jump_min,
                                     int jump_max)
    : stay_probability_(stay_probability),
      jump_min_(jump_min),
      jump_max_(jump_max) {
  if (stay_probability < 0.0 || stay_probability > 1.0) {
    throw std::invalid_argument("PaperJumpMobility: bad stay probability");
  }
  if (jump_min < 0 || jump_max < jump_min) {
    throw std::invalid_argument("PaperJumpMobility: bad jump range");
  }
}

Vec2 PaperJumpMobility::direction(int code) {
  constexpr double d = std::numbers::sqrt2 / 2.0;  // normalized diagonal
  switch (code) {
    case 1: return {1.0, 0.0};    // E
    case 2: return {0.0, -1.0};   // S
    case 3: return {-1.0, 0.0};   // W
    case 4: return {0.0, 1.0};    // N
    case 5: return {d, -d};       // SE
    case 6: return {d, d};        // NE
    case 7: return {-d, -d};      // SW
    case 8: return {-d, d};       // NW
    default:
      throw std::invalid_argument("PaperJumpMobility: direction code " +
                                  std::to_string(code) + " not in [1..8]");
  }
}

void PaperJumpMobility::step(std::vector<Vec2>& positions, const Field& field,
                             Xoshiro256& rng) {
  constexpr double kDiag = std::numbers::sqrt2 / 2.0;
  for (auto& pos : positions) {
    // rand(0,1) < c means the host remains stable this interval.
    if (rng.uniform01() < stay_probability_) continue;
    const auto code = static_cast<int>(rng.uniform_int(1, 8));
    const auto len = static_cast<double>(
        rng.uniform_int(jump_min_, jump_max_));
    Vec3 dir = direction(code);
    if (field.is_3d()) {
      // 3-D lift: an extra pitch draw (0 = level, 1 = up 45°, 2 = down 45°)
      // after the planar draws, so the planar RNG stream is untouched when
      // the field has no depth. Diagonal pitch is normalized like the
      // compass diagonals: |displacement| == len either way.
      const auto pitch = static_cast<int>(rng.uniform_int(0, 2));
      if (pitch != 0) {
        dir = {dir.x * kDiag, dir.y * kDiag, pitch == 1 ? kDiag : -kDiag};
      }
    }
    pos = field.move(pos, dir * len);
  }
}

RandomWalkMobility::RandomWalkMobility(double step_min, double step_max)
    : step_min_(step_min), step_max_(step_max) {
  if (step_min < 0.0 || step_max < step_min) {
    throw std::invalid_argument("RandomWalkMobility: bad step range");
  }
}

void RandomWalkMobility::step(std::vector<Vec2>& positions, const Field& field,
                              Xoshiro256& rng) {
  for (auto& pos : positions) {
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double len = rng.uniform(step_min_, step_max_);
    Vec3 dir{std::cos(angle), std::sin(angle)};
    if (field.is_3d()) {
      // Uniform direction on the sphere: cos(polar) ~ U(-1, 1), drawn after
      // the planar draws so 2-D streams are bit-identical to before.
      const double cz = rng.uniform(-1.0, 1.0);
      const double sz = std::sqrt(std::max(0.0, 1.0 - cz * cz));
      dir = {dir.x * sz, dir.y * sz, cz};
    }
    pos = field.move(pos, dir * len);
  }
}

GaussMarkovMobility::GaussMarkovMobility(double mean_speed, double alpha,
                                         double speed_stddev,
                                         double heading_stddev)
    : mean_speed_(mean_speed),
      alpha_(alpha),
      speed_stddev_(speed_stddev),
      heading_stddev_(heading_stddev) {
  if (mean_speed < 0.0 || alpha < 0.0 || alpha > 1.0 || speed_stddev < 0.0 ||
      heading_stddev < 0.0) {
    throw std::invalid_argument("GaussMarkovMobility: bad parameters");
  }
}

void GaussMarkovMobility::step(std::vector<Vec2>& positions,
                               const Field& field, Xoshiro256& rng) {
  states_.resize(positions.size());
  // Box-Muller normal draw from two uniforms.
  const auto normal = [&rng]() {
    const double u1 = 1.0 - rng.uniform01();  // (0, 1]
    const double u2 = rng.uniform01();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  };
  const double memory = std::sqrt(1.0 - alpha_ * alpha_);
  // Angles are folded into [0, 2π) every step. The AR recurrence only ever
  // adds increments, so an unfolded angle grows without bound over a long
  // lifetime and sin/cos progressively lose precision; folding keeps the
  // argument small while the 2π-periodicity keeps the trajectory the same.
  constexpr double kTau = 2.0 * std::numbers::pi;
  const auto fold_angle = [](double a) {
    double m = std::fmod(a, kTau);
    if (m < 0.0) m += kTau;
    return m;
  };
  for (std::size_t i = 0; i < positions.size(); ++i) {
    auto& st = states_[i];
    if (!st.initialized) {
      st.speed = mean_speed_;
      st.heading = rng.uniform(0.0, kTau);
      st.pitch = 0.0;  // level start; only evolves in a 3-D field
      st.initialized = true;
    }
    st.speed = alpha_ * st.speed + (1.0 - alpha_) * mean_speed_ +
               memory * speed_stddev_ * normal();
    st.speed = std::max(0.0, st.speed);
    // Mean heading drifts toward the current heading (no global bias).
    st.heading = fold_angle(st.heading + memory * heading_stddev_ * normal());
    Vec3 dir{std::cos(st.heading), std::sin(st.heading)};
    if (field.is_3d()) {
      // Pitch follows the same zero-mean AR recurrence as heading (the
      // extra normal draw comes after the planar ones, so planar streams
      // are unchanged by the 3-D lift).
      st.pitch = fold_angle(st.pitch + memory * heading_stddev_ * normal());
      const double cp = std::cos(st.pitch);
      dir = {cp * dir.x, cp * dir.y, std::sin(st.pitch)};
    }
    positions[i] = field.move(positions[i], dir * st.speed);
  }
}

std::string to_string(MobilityKind kind) {
  switch (kind) {
    case MobilityKind::kPaperJump:
      return "paper-jump";
    case MobilityKind::kRandomWalk:
      return "random-walk";
    case MobilityKind::kRandomWaypoint:
      return "random-waypoint";
    case MobilityKind::kGaussMarkov:
      return "gauss-markov";
    case MobilityKind::kStatic:
      return "static";
  }
  return "?";
}

std::unique_ptr<MobilityModel> make_mobility(MobilityKind kind,
                                             const MobilityParams& params) {
  switch (kind) {
    case MobilityKind::kPaperJump:
      return std::make_unique<PaperJumpMobility>(
          params.stay_probability, params.jump_min, params.jump_max);
    case MobilityKind::kRandomWalk:
      return std::make_unique<RandomWalkMobility>(params.step_min,
                                                  params.step_max);
    case MobilityKind::kRandomWaypoint:
      return std::make_unique<RandomWaypointMobility>(
          params.speed_min, params.speed_max, params.pause_intervals);
    case MobilityKind::kGaussMarkov:
      return std::make_unique<GaussMarkovMobility>(
          params.mean_speed, params.alpha, params.speed_stddev,
          params.heading_stddev);
    case MobilityKind::kStatic:
      return std::make_unique<StaticMobility>();
  }
  throw std::invalid_argument("make_mobility: unknown kind");
}

RandomWaypointMobility::RandomWaypointMobility(double speed_min,
                                               double speed_max,
                                               int pause_intervals)
    : speed_min_(speed_min),
      speed_max_(speed_max),
      pause_intervals_(pause_intervals) {
  if (speed_min < 0.0 || speed_max < speed_min || pause_intervals < 0) {
    throw std::invalid_argument("RandomWaypointMobility: bad parameters");
  }
}

void RandomWaypointMobility::step(std::vector<Vec2>& positions,
                                  const Field& field, Xoshiro256& rng) {
  states_.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    auto& st = states_[i];
    auto& pos = positions[i];
    if (st.pause_left > 0) {
      --st.pause_left;
      continue;
    }
    if (!st.has_target) {
      st.target = {rng.uniform(0.0, field.width()),
                   rng.uniform(0.0, field.height())};
      // Waypoints in a 3-D field are drawn in the full box; the z draw sits
      // between the planar target and the speed so planar streams keep
      // their historical order.
      if (field.is_3d()) st.target.z = rng.uniform(0.0, field.depth());
      st.speed = rng.uniform(speed_min_, speed_max_);
      st.has_target = true;
    }
    const Vec2 to_target = st.target - pos;
    const double dist = to_target.norm();
    if (dist <= st.speed || dist == 0.0) {
      pos = st.target;
      st.has_target = false;
      st.pause_left = pause_intervals_;
    } else {
      pos = field.move(pos, to_target * (st.speed / dist));
    }
  }
}

}  // namespace pacds
