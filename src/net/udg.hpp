#pragma once
// Unit-disk graph construction: hosts u, v are linked iff their Euclidean
// distance is at most the (homogeneous) transmission radius — the paper's
// connectivity model. Two builders: a naive O(n²) reference and a uniform
// grid spatial hash that only tests nearby cells; they must agree exactly
// (property-tested) and the grid version is what the simulator uses.

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "net/vec2.hpp"

namespace pacds {

/// Which edge-enumeration algorithm to use.
enum class UdgMethod : std::uint8_t { kNaive, kGrid };

/// Builds the unit-disk graph of `positions` with transmission radius
/// `radius` (edge iff distance <= radius, closed ball).
[[nodiscard]] Graph build_udg(const std::vector<Vec2>& positions,
                              double radius,
                              UdgMethod method = UdgMethod::kGrid);

/// Uniform-grid spatial index over a point set; cells are radius-sized so a
/// ball query only inspects the 3x3 (planar) or 3x3x3 (3-D) cell
/// neighborhood. Cells hash into a fixed bucket table; each entry keeps its
/// exact cell key so hash collisions never produce duplicate or missing
/// candidates. A grid that has only ever seen z == 0 points skips the z cell
/// ring entirely, so planar workloads pay nothing for the third dimension.
class SpatialGrid {
 public:
  SpatialGrid(const std::vector<Vec2>& positions, double cell_size);

  /// Indices of all points within `radius` of `center` (inclusive, closed
  /// ball), excluding `exclude` (pass -1 to keep all), in ascending order.
  /// Requires radius <= cell_size (one cell ring); throws otherwise.
  [[nodiscard]] std::vector<NodeId> query(Vec2 center, double radius,
                                          NodeId exclude = -1) const;

  /// Allocation-free variant: clears `out` and fills it with the query
  /// result (same contract as query). Hot loops reuse one buffer.
  void query_into(Vec2 center, double radius, NodeId exclude,
                  std::vector<NodeId>& out) const;

  /// Re-files `node` after its point moved from `old_pos` to `new_pos`
  /// (the backing positions vector must already hold `new_pos`). No-op when
  /// both map to the same cell. Throws std::logic_error if the node is not
  /// filed under `old_pos`'s cell — i.e. the caller's old position is stale.
  void move(NodeId node, Vec2 old_pos, Vec2 new_pos);

 private:
  struct CellKey {
    std::int64_t cx = 0;
    std::int64_t cy = 0;
    std::int64_t cz = 0;
    bool operator==(const CellKey&) const = default;
  };
  struct Entry {
    CellKey cell;
    NodeId node;
  };

  [[nodiscard]] CellKey cell_of(Vec2 p) const;
  [[nodiscard]] std::size_t bucket_of(CellKey key) const;

  const std::vector<Vec2>* positions_;
  double cell_size_;
  // True once any filed point has had a non-zero z; until then queries probe
  // only the cz == 0 plane (which provably holds every entry). Sticky by
  // design: a point returning to z == 0 keeps its cz == 0 cell, so probing
  // the extra ring stays correct, merely no longer minimal.
  bool any_z_ = false;
  std::vector<std::vector<Entry>> buckets_;
};

}  // namespace pacds
