#include "obs/jsonl.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace pacds::obs {

void JsonlSink::record(const std::function<void(JsonWriter&)>& fill) {
  JsonWriter json(*os_);
  json.begin_object();
  fill(json);
  json.end_object();
  if (!json.complete()) {
    throw std::logic_error("JsonlSink: record left the object unbalanced");
  }
  *os_ << '\n';
  ++records_;
}

void JsonlSink::splice(const std::string& lines) {
  if (lines.empty()) return;
  if (lines.back() != '\n') {
    throw std::logic_error("JsonlSink: spliced text must end with a newline");
  }
  *os_ << lines;
  records_ += static_cast<std::size_t>(
      std::count(lines.begin(), lines.end(), '\n'));
}

}  // namespace pacds::obs
