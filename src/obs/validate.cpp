#include "obs/validate.hpp"

#include <cmath>
#include <istream>

#include "io/json_parse.hpp"

namespace pacds::obs {

namespace {

/// Depth-first search for a non-finite number; returns a dotted path to the
/// first offender ("energy.mean", "counters[3]") or empty when clean.
std::string find_non_finite(const JsonValue& value, const std::string& path) {
  if (value.is_number()) {
    return std::isfinite(value.as_number()) ? std::string{} : path;
  }
  if (value.is_array()) {
    const JsonArray& items = value.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      std::string hit =
          find_non_finite(items[i], path + "[" + std::to_string(i) + "]");
      if (!hit.empty()) return hit;
    }
  }
  if (value.is_object()) {
    for (const auto& [key, member] : value.as_object()) {
      std::string hit =
          find_non_finite(member, path.empty() ? key : path + "." + key);
      if (!hit.empty()) return hit;
    }
  }
  return {};
}

}  // namespace

std::size_t StreamValidation::count_of(const std::string& type) const
    noexcept {
  for (const auto& [name, count] : type_counts) {
    if (name == type) return count;
  }
  return 0;
}

StreamValidation validate_metrics_stream(std::istream& in) {
  StreamValidation result;
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& what) {
    result.error = "line " + std::to_string(line_no) + ": " + what;
    return result;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue record;
    try {
      record = parse_json(line);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
    if (!record.is_object()) return fail("not a JSON object");
    const JsonValue* type = record.find("type");
    if (type == nullptr || !type->is_string()) {
      return fail("missing \"type\" string");
    }
    const JsonValue* schema = record.find("schema");
    if (schema == nullptr || !schema->is_number()) {
      return fail("missing \"schema\" number");
    }
    const std::string non_finite = find_non_finite(record, "");
    if (!non_finite.empty()) {
      return fail("non-finite number at \"" + non_finite + "\"");
    }
    ++result.lines;
    bool counted = false;
    for (auto& [name, count] : result.type_counts) {
      if (name == type->as_string()) {
        ++count;
        counted = true;
        break;
      }
    }
    if (!counted) result.type_counts.emplace_back(type->as_string(), 1);
  }
  // Two stream shapes pass: a simulation stream (manifest + per-interval
  // records) or an optimality-gap stream (gap_manifest + per-instance
  // gap_point records from `pacds gap` / bench/ablation_gap).
  const bool sim_stream = result.count_of("run_manifest") > 0 &&
                          result.count_of("interval") > 0;
  const bool gap_stream = result.count_of("gap_manifest") > 0 &&
                          result.count_of("gap_point") > 0;
  if (!sim_stream && !gap_stream) {
    result.error =
        "stream needs a run_manifest plus interval records, or a "
        "gap_manifest plus gap_point records";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace pacds::obs
