#pragma once
// Low-overhead metrics registry for the CDS pipeline: fixed enums of phase
// timers (steady-clock nanosecond buckets) and monotonic counters, stored in
// plain arrays so recording is an add — no maps, no strings, no locks, no
// heap. A null registry pointer disables everything: PhaseTimer does not even
// read the clock, so the zero-cost-when-off contract is structural (and
// enforced by zero_alloc_test for the allocation half).
//
// The registry has *slice* semantics: the owner (e.g. run_lifetime_trial)
// calls reset() at the start of each interval and snapshots the arrays into
// the IntervalRecord at the end, so every record reports that interval's
// work, not a running total.
//
// Header-only on purpose: core/ instruments through an ExecContext pointer
// without linking anything new; only name tables live in metrics.cpp.

#include <array>
#include <chrono>
#include <cstdint>

namespace pacds::obs {

/// Timed pipeline phases. One bucket per enumerator; kCount_ is the size.
enum class Phase : std::uint8_t {
  kLinkBuild,     ///< unit-disk link construction (grid build / rebuild)
  kMarking,       ///< Wu-Li marking process
  kRules,         ///< Rule 1/2 (+ clique policy) pruning passes
  kDeltaExtract,  ///< position diff -> EdgeDelta (incremental engine)
  kDeltaApply,    ///< localized 4-hop re-evaluation of a delta
  kFaultApply,    ///< fault-plan evaluation + injection (degraded mode)
  kCount_,
};

/// Monotonic event counters.
enum class Counter : std::uint8_t {
  kNodesTouched,        ///< nodes whose gateway status was re-evaluated
  kPoolTasksSubmitted,  ///< chunk tasks handed to the thread pool
  kEdgesAdded,          ///< links appearing in an EdgeDelta
  kEdgesRemoved,        ///< links vanishing in an EdgeDelta
  kFullRefreshes,       ///< whole-graph recomputations
  kLocalizedUpdates,    ///< delta-driven incremental advances
  kFaultEvents,         ///< fault events applied this interval
  kHostsDown,           ///< hosts down (crashed or dead) after injection
  kCount_,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount_);
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount_);

using PhaseArray = std::array<std::uint64_t, kPhaseCount>;
using CounterArray = std::array<std::uint64_t, kCounterCount>;

/// Stable snake_case names ("marking", "delta_extract", ...) used as JSONL
/// field stems; defined in metrics.cpp.
[[nodiscard]] const char* phase_name(Phase phase) noexcept;
/// Stable snake_case names ("nodes_touched", ...); defined in metrics.cpp.
[[nodiscard]] const char* counter_name(Counter counter) noexcept;

/// Fixed-size counter + phase-timer store. Not thread-safe by design: the
/// deterministic pipeline records only from the coordinating thread (workers
/// never touch the registry), so recording stays a plain add.
class MetricsRegistry {
 public:
  void add(Counter counter, std::uint64_t delta = 1) noexcept {
    counters_[static_cast<std::size_t>(counter)] += delta;
  }

  void record_phase(Phase phase, std::uint64_t nanoseconds) noexcept {
    phase_ns_[static_cast<std::size_t>(phase)] += nanoseconds;
    ++phase_calls_[static_cast<std::size_t>(phase)];
  }

  [[nodiscard]] std::uint64_t counter(Counter counter) const noexcept {
    return counters_[static_cast<std::size_t>(counter)];
  }
  [[nodiscard]] std::uint64_t phase_ns(Phase phase) const noexcept {
    return phase_ns_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t phase_calls(Phase phase) const noexcept {
    return phase_calls_[static_cast<std::size_t>(phase)];
  }

  [[nodiscard]] const CounterArray& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const PhaseArray& phases() const noexcept { return phase_ns_; }

  /// Zeroes every bucket — call at the start of each interval slice.
  void reset() noexcept {
    counters_.fill(0);
    phase_ns_.fill(0);
    phase_calls_.fill(0);
  }

 private:
  CounterArray counters_{};
  PhaseArray phase_ns_{};
  PhaseArray phase_calls_{};
};

/// RAII phase timer. With a null registry the constructor and destructor do
/// nothing at all (no clock read); with one, elapsed steady-clock time lands
/// in the phase's bucket on destruction.
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* registry, Phase phase) noexcept
      : registry_(registry), phase_(phase) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() {
    if (registry_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_->record_phase(
        phase_, static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
  }

 private:
  MetricsRegistry* registry_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace pacds::obs
