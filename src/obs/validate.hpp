#pragma once
// Schema-envelope validation of a metrics JSONL stream (pacds sim/sweep
// --metrics): shared by `bench_report --validate-jsonl`, the fuzz harness's
// JSONL oracle, and tests, so the three agree on what a well-formed stream
// is. Checks, line by line: the line parses as one JSON object, carries a
// "type" string and a numeric "schema", and contains no non-finite number
// anywhere (JsonWriter maps non-finite doubles to null, so an inf/nan can
// only enter via an overflowing literal like 1e999 — rejected here). The
// stream as a whole needs at least one run_manifest and one interval record.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace pacds::obs {

/// Outcome of one stream validation. `error` names the first violation
/// ("line N: ..."); `type_counts` holds per-type record counts in first-seen
/// order (populated up to the failing line).
struct StreamValidation {
  bool ok = false;
  std::string error;
  std::size_t lines = 0;
  std::vector<std::pair<std::string, std::size_t>> type_counts;

  [[nodiscard]] std::size_t count_of(const std::string& type) const noexcept;
};

[[nodiscard]] StreamValidation validate_metrics_stream(std::istream& in);

}  // namespace pacds::obs
