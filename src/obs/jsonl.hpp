#pragma once
// JSONL (JSON Lines) emitter: one self-contained JSON object per line,
// written through the repo's streaming JsonWriter so every machine-readable
// artifact shares one serialization path. Each record() call builds exactly
// one balanced object and appends the newline; an unbalanced fill callback
// is a logic error, caught before the newline is written.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

#include "io/json.hpp"

namespace pacds::obs {

/// Appends JSONL records to a stream. Not thread-safe; writers that run
/// under a pool buffer into a private string-backed sink and splice() the
/// finished lines in deterministic order afterwards.
class JsonlSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(&os) {}

  /// Emits one record: opens an object, hands the writer to `fill` (which
  /// emits key/value pairs), closes it, appends '\n'. Throws std::logic_error
  /// if `fill` leaves the object unbalanced.
  void record(const std::function<void(JsonWriter&)>& fill);

  /// Appends pre-serialized JSONL text verbatim (must be zero or more
  /// complete '\n'-terminated lines, e.g. another sink's buffered output).
  void splice(const std::string& lines);

  /// Number of records (lines) emitted so far.
  [[nodiscard]] std::size_t records() const noexcept { return records_; }

 private:
  std::ostream* os_;
  std::size_t records_ = 0;
};

}  // namespace pacds::obs
