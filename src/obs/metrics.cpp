#include "obs/metrics.hpp"

namespace pacds::obs {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kLinkBuild: return "link_build";
    case Phase::kMarking: return "marking";
    case Phase::kRules: return "rules";
    case Phase::kDeltaExtract: return "delta_extract";
    case Phase::kDeltaApply: return "delta_apply";
    case Phase::kFaultApply: return "fault_apply";
    case Phase::kCount_: break;
  }
  return "unknown";
}

const char* counter_name(Counter counter) noexcept {
  switch (counter) {
    case Counter::kNodesTouched: return "nodes_touched";
    case Counter::kPoolTasksSubmitted: return "pool_tasks_submitted";
    case Counter::kEdgesAdded: return "edges_added";
    case Counter::kEdgesRemoved: return "edges_removed";
    case Counter::kFullRefreshes: return "full_refreshes";
    case Counter::kLocalizedUpdates: return "localized_updates";
    case Counter::kFaultEvents: return "fault_events";
    case Counter::kHostsDown: return "hosts_down";
    case Counter::kCount_: break;
  }
  return "unknown";
}

}  // namespace pacds::obs
