#include "dist/protocol.hpp"

#include <stdexcept>

#include "core/verify.hpp"
#include "net/rng.hpp"

namespace pacds::dist {

namespace {

/// Delivers one broadcast to every radio neighbor of the sender.
void broadcast(const Graph& g, std::vector<HostAgent>& agents,
               const Message& msg) {
  for (const NodeId u : g.neighbors(msg.from)) {
    agents[static_cast<std::size_t>(u)].receive(msg);
  }
}

/// Lossy delivery: each neighbor independently misses the frame.
void broadcast_lossy(const Graph& g, std::vector<HostAgent>& agents,
                     const Message& msg, double loss, Xoshiro256& rng) {
  for (const NodeId u : g.neighbors(msg.from)) {
    if (!rng.bernoulli(loss)) {
      agents[static_cast<std::size_t>(u)].receive(msg);
    }
  }
}

}  // namespace

ProtocolResult run_protocol(const Graph& g, KeyKind kind, Rule2Form form,
                            const std::vector<double>& energy,
                            bool use_rules) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (!energy.empty() && energy.size() != n) {
    throw std::invalid_argument("run_protocol: energy size mismatch");
  }
  std::vector<HostAgent> agents;
  agents.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    agents.emplace_back(
        v, energy.empty() ? 0.0 : energy[static_cast<std::size_t>(v)]);
  }
  ProtocolResult result;
  result.gateways = DynBitset(n);

  // Round 1: HELLO.
  for (const HostAgent& agent : agents) {
    broadcast(g, agents, agent.make_hello());
    ++result.hello_msgs;
  }
  // Round 2: neighbor lists (2-hop knowledge).
  for (const HostAgent& agent : agents) {
    broadcast(g, agents, agent.make_neighbor_list());
    ++result.list_msgs;
  }
  // Round 3: marking + initial status announcements.
  for (HostAgent& agent : agents) agent.run_marking();
  for (const HostAgent& agent : agents) {
    broadcast(g, agents, agent.make_status());
    ++result.status_msgs;
  }
  if (use_rules) {
    // Round 4: Rule 1, decided simultaneously against round-3 statuses.
    // Decisions are collected first; flips are announced only afterwards so
    // every agent saw the same snapshot.
    std::vector<NodeId> flipped;
    for (HostAgent& agent : agents) {
      if (agent.run_rule1(kind)) flipped.push_back(agent.id());
    }
    for (const NodeId v : flipped) {
      broadcast(g, agents, agents[static_cast<std::size_t>(v)].make_status());
      ++result.status_msgs;
    }
    // Round 5: Rule 2 against round-4 statuses.
    flipped.clear();
    for (HostAgent& agent : agents) {
      if (agent.run_rule2(kind, form)) flipped.push_back(agent.id());
    }
    for (const NodeId v : flipped) {
      broadcast(g, agents, agents[static_cast<std::size_t>(v)].make_status());
      ++result.status_msgs;
    }
  }
  for (const HostAgent& agent : agents) {
    if (agent.is_gateway()) {
      result.gateways.set(static_cast<std::size_t>(agent.id()));
    }
  }
  return result;
}

ProtocolResult run_protocol_scheme(const Graph& g, RuleSet rs,
                                   const std::vector<double>& energy) {
  return run_protocol(g, key_kind_of(rs), rule2_form_of(rs), energy,
                      rs != RuleSet::kNR);
}

LossyProtocolResult run_lossy_protocol(const Graph& g, RuleSet rs,
                                       double loss, int repeats,
                                       std::uint64_t seed,
                                       const std::vector<double>& energy) {
  if (loss < 0.0 || loss >= 1.0 || repeats < 1) {
    throw std::invalid_argument("run_lossy_protocol: bad loss/repeats");
  }
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (!energy.empty() && energy.size() != n) {
    throw std::invalid_argument("run_lossy_protocol: energy size mismatch");
  }
  Xoshiro256 rng(seed);
  std::vector<HostAgent> agents;
  agents.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    agents.emplace_back(
        v, energy.empty() ? 0.0 : energy[static_cast<std::size_t>(v)]);
  }
  LossyProtocolResult result;
  result.protocol.gateways = DynBitset(n);

  const KeyKind kind = key_kind_of(rs);
  const Rule2Form form = rule2_form_of(rs);
  // Beaconing: HELLO and neighbor-list rounds repeat `repeats` times; a
  // neighbor missed every time stays unknown.
  for (int round = 0; round < repeats; ++round) {
    for (const HostAgent& agent : agents) {
      broadcast_lossy(g, agents, agent.make_hello(), loss, rng);
      ++result.protocol.hello_msgs;
    }
  }
  for (int round = 0; round < repeats; ++round) {
    for (const HostAgent& agent : agents) {
      broadcast_lossy(g, agents, agent.make_neighbor_list(), loss, rng);
      ++result.protocol.list_msgs;
    }
  }
  for (HostAgent& agent : agents) agent.run_marking();
  for (const HostAgent& agent : agents) {
    broadcast_lossy(g, agents, agent.make_status(), loss, rng);
    ++result.protocol.status_msgs;
  }
  if (rs != RuleSet::kNR) {
    std::vector<NodeId> flipped;
    for (HostAgent& agent : agents) {
      if (agent.run_rule1(kind)) flipped.push_back(agent.id());
    }
    for (const NodeId v : flipped) {
      broadcast_lossy(g, agents,
                      agents[static_cast<std::size_t>(v)].make_status(), loss,
                      rng);
      ++result.protocol.status_msgs;
    }
    flipped.clear();
    for (HostAgent& agent : agents) {
      if (agent.run_rule2(kind, form)) flipped.push_back(agent.id());
    }
    for (const NodeId v : flipped) {
      broadcast_lossy(g, agents,
                      agents[static_cast<std::size_t>(v)].make_status(), loss,
                      rng);
      ++result.protocol.status_msgs;
    }
  }
  for (const HostAgent& agent : agents) {
    if (agent.is_gateway()) {
      result.protocol.gateways.set(static_cast<std::size_t>(agent.id()));
    }
  }
  // Compare with the reliable execution and validate.
  const ProtocolResult reliable = run_protocol_scheme(g, rs, energy);
  DynBitset diff = result.protocol.gateways;
  diff ^= reliable.gateways;
  result.status_disagreements = diff.count();
  result.valid_cds = check_cds(g, result.protocol.gateways).ok();
  return result;
}

namespace {

/// One not-yet-acked (message, receiver) pair of an ARQ phase.
struct PendingLink {
  std::size_t msg;
  NodeId to;
};

/// Per-phase ARQ driver over the shared faulty channel. Pending links are
/// kept in (sender order, receiver ascending) order throughout, so the RNG
/// draw sequence — hence the whole execution — is deterministic.
class ArqChannel {
 public:
  ArqChannel(const Graph& g, std::vector<HostAgent>& agents,
             const ChannelFaultConfig& channel, const RetryPolicy& retry,
             Xoshiro256& rng, FaultyProtocolResult& result,
             const RadioModel* radio)
      : g_(&g),
        agents_(&agents),
        channel_(&channel),
        retry_(&retry),
        rng_(&rng),
        result_(&result),
        radio_(radio) {}

  /// Runs one phase to completion or the retry cap. `sent` receives one
  /// count per transmission (first attempts and retransmits alike), keeping
  /// the tally semantics of run_protocol's per-broadcast counters.
  void run_phase(const std::vector<Message>& msgs, std::size_t& sent) {
    pending_.clear();
    deferred_.clear();
    for (std::size_t m = 0; m < msgs.size(); ++m) {
      for (const NodeId u : g_->neighbors(msgs[m].from)) {
        pending_.push_back({m, u});
      }
    }
    // Attempt 1 is the plain broadcast round: every sender transmits once,
    // neighbors or not (matching run_protocol's accounting).
    sent += msgs.size();
    for (int attempt = 1; attempt <= retry_->max_attempts; ++attempt) {
      if (attempt > 1) {
        // Only senders with unacked receivers retransmit, after waiting out
        // this attempt's backoff window.
        const std::size_t senders = count_distinct_msgs();
        sent += senders;
        result_->retransmissions += senders;
        result_->backoff_rounds += backoff_rounds(attempt - 1);
      }
      transmit_pending(msgs);
      // Frames delayed in flight land at the attempt boundary — before the
      // sender's retry timer, so they count as acked in time.
      flush_deferred(msgs);
      if (pending_.empty()) break;
    }
    flush_deferred(msgs);
    if (!pending_.empty()) {
      result_->undelivered_links += pending_.size();
      result_->complete = false;
      pending_.clear();
    }
  }

 private:
  void deliver(const Message& msg, NodeId to) {
    (*agents_)[static_cast<std::size_t>(to)].receive(msg);
  }

  void transmit_pending(const std::vector<Message>& msgs) {
    next_.clear();
    for (const PendingLink& link : pending_) {
      // A faded pair's channel compounds with the global drop rate: the
      // frame survives only if both the channel and the pair's radio let it
      // through. radio_ == nullptr draws exactly the plain-channel stream.
      double drop = channel_->drop;
      if (radio_ != nullptr) {
        const double extra =
            radio_->arq_drop(msgs[link.msg].from, link.to);
        drop = 1.0 - (1.0 - drop) * (1.0 - extra);
      }
      if (drop > 0.0 && rng_->bernoulli(drop)) {
        ++result_->dropped_frames;
        next_.push_back(link);  // no ack; retried next attempt
        continue;
      }
      if (channel_->delay > 0.0 && rng_->bernoulli(channel_->delay)) {
        ++result_->delayed_frames;
        deferred_.push_back(link);
        continue;
      }
      deliver(msgs[link.msg], link.to);
      if (channel_->duplicate > 0.0 && rng_->bernoulli(channel_->duplicate)) {
        ++result_->duplicate_frames;
        deliver(msgs[link.msg], link.to);  // receive() is idempotent
      }
    }
    pending_.swap(next_);
  }

  void flush_deferred(const std::vector<Message>& msgs) {
    for (const PendingLink& link : deferred_) deliver(msgs[link.msg], link.to);
    deferred_.clear();
  }

  [[nodiscard]] std::size_t count_distinct_msgs() const {
    std::size_t count = 0;
    std::size_t last = static_cast<std::size_t>(-1);
    for (const PendingLink& link : pending_) {
      if (link.msg != last) {
        ++count;
        last = link.msg;
      }
    }
    return count;
  }

  /// Rounds idled before retransmit attempt a+1: min(base * 2^(a-1), cap).
  [[nodiscard]] std::size_t backoff_rounds(int failed_attempts) const {
    const auto base = static_cast<std::size_t>(retry_->backoff_base);
    const auto cap = static_cast<std::size_t>(retry_->backoff_cap);
    std::size_t window = base;
    for (int i = 1; i < failed_attempts && window < cap; ++i) window *= 2;
    return std::min(window, cap);
  }

  const Graph* g_;
  std::vector<HostAgent>* agents_;
  const ChannelFaultConfig* channel_;
  const RetryPolicy* retry_;
  Xoshiro256* rng_;
  FaultyProtocolResult* result_;
  const RadioModel* radio_;
  std::vector<PendingLink> pending_;
  std::vector<PendingLink> next_;
  std::vector<PendingLink> deferred_;
};

}  // namespace

FaultyProtocolResult run_faulty_protocol(const Graph& g, RuleSet rs,
                                         const ChannelFaultConfig& channel,
                                         const RetryPolicy& retry,
                                         std::uint64_t seed,
                                         const std::vector<double>& energy,
                                         const RadioModel* radio) {
  if (channel.drop < 0.0 || channel.drop >= 1.0 || channel.duplicate < 0.0 ||
      channel.duplicate >= 1.0 || channel.delay < 0.0 ||
      channel.delay >= 1.0) {
    throw std::invalid_argument(
        "run_faulty_protocol: channel rates must lie in [0, 1)");
  }
  if (retry.max_attempts < 1 || retry.backoff_base < 1 ||
      retry.backoff_cap < retry.backoff_base) {
    throw std::invalid_argument("run_faulty_protocol: bad retry policy");
  }
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (!energy.empty() && energy.size() != n) {
    throw std::invalid_argument("run_faulty_protocol: energy size mismatch");
  }
  Xoshiro256 rng(seed);
  std::vector<HostAgent> agents;
  agents.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    agents.emplace_back(
        v, energy.empty() ? 0.0 : energy[static_cast<std::size_t>(v)]);
  }
  FaultyProtocolResult result;
  result.protocol.gateways = DynBitset(n);
  ArqChannel arq(g, agents, channel, retry, rng, result, radio);

  const KeyKind kind = key_kind_of(rs);
  const Rule2Form form = rule2_form_of(rs);
  std::vector<Message> msgs;
  msgs.reserve(n);

  // Phase 1: HELLO.
  for (const HostAgent& agent : agents) msgs.push_back(agent.make_hello());
  arq.run_phase(msgs, result.protocol.hello_msgs);
  // Phase 2: neighbor lists (2-hop knowledge).
  msgs.clear();
  for (const HostAgent& agent : agents) {
    msgs.push_back(agent.make_neighbor_list());
  }
  arq.run_phase(msgs, result.protocol.list_msgs);
  // Phase 3: marking + initial status announcements.
  for (HostAgent& agent : agents) agent.run_marking();
  msgs.clear();
  for (const HostAgent& agent : agents) msgs.push_back(agent.make_status());
  arq.run_phase(msgs, result.protocol.status_msgs);
  if (rs != RuleSet::kNR) {
    // Phase 4: Rule 1 flips, decided against the phase-3 snapshot.
    msgs.clear();
    for (HostAgent& agent : agents) {
      if (agent.run_rule1(kind)) msgs.push_back(agent.make_status());
    }
    arq.run_phase(msgs, result.protocol.status_msgs);
    // Phase 5: Rule 2 flips against the phase-4 statuses.
    msgs.clear();
    for (HostAgent& agent : agents) {
      if (agent.run_rule2(kind, form)) msgs.push_back(agent.make_status());
    }
    arq.run_phase(msgs, result.protocol.status_msgs);
  }
  for (const HostAgent& agent : agents) {
    if (agent.is_gateway()) {
      result.protocol.gateways.set(static_cast<std::size_t>(agent.id()));
    }
  }
  // Compare with the reliable execution and validate.
  const ProtocolResult reliable = run_protocol_scheme(g, rs, energy);
  DynBitset diff = result.protocol.gateways;
  diff ^= reliable.gateways;
  result.status_disagreements = diff.count();
  result.valid_cds = check_cds(g, result.protocol.gateways).ok();
  return result;
}

}  // namespace pacds::dist
