#include "dist/protocol.hpp"

#include <stdexcept>

#include "core/verify.hpp"
#include "net/rng.hpp"

namespace pacds::dist {

namespace {

/// Delivers one broadcast to every radio neighbor of the sender.
void broadcast(const Graph& g, std::vector<HostAgent>& agents,
               const Message& msg) {
  for (const NodeId u : g.neighbors(msg.from)) {
    agents[static_cast<std::size_t>(u)].receive(msg);
  }
}

/// Lossy delivery: each neighbor independently misses the frame.
void broadcast_lossy(const Graph& g, std::vector<HostAgent>& agents,
                     const Message& msg, double loss, Xoshiro256& rng) {
  for (const NodeId u : g.neighbors(msg.from)) {
    if (!rng.bernoulli(loss)) {
      agents[static_cast<std::size_t>(u)].receive(msg);
    }
  }
}

}  // namespace

ProtocolResult run_protocol(const Graph& g, KeyKind kind, Rule2Form form,
                            const std::vector<double>& energy,
                            bool use_rules) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (!energy.empty() && energy.size() != n) {
    throw std::invalid_argument("run_protocol: energy size mismatch");
  }
  std::vector<HostAgent> agents;
  agents.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    agents.emplace_back(
        v, energy.empty() ? 0.0 : energy[static_cast<std::size_t>(v)]);
  }
  ProtocolResult result;
  result.gateways = DynBitset(n);

  // Round 1: HELLO.
  for (const HostAgent& agent : agents) {
    broadcast(g, agents, agent.make_hello());
    ++result.hello_msgs;
  }
  // Round 2: neighbor lists (2-hop knowledge).
  for (const HostAgent& agent : agents) {
    broadcast(g, agents, agent.make_neighbor_list());
    ++result.list_msgs;
  }
  // Round 3: marking + initial status announcements.
  for (HostAgent& agent : agents) agent.run_marking();
  for (const HostAgent& agent : agents) {
    broadcast(g, agents, agent.make_status());
    ++result.status_msgs;
  }
  if (use_rules) {
    // Round 4: Rule 1, decided simultaneously against round-3 statuses.
    // Decisions are collected first; flips are announced only afterwards so
    // every agent saw the same snapshot.
    std::vector<NodeId> flipped;
    for (HostAgent& agent : agents) {
      if (agent.run_rule1(kind)) flipped.push_back(agent.id());
    }
    for (const NodeId v : flipped) {
      broadcast(g, agents, agents[static_cast<std::size_t>(v)].make_status());
      ++result.status_msgs;
    }
    // Round 5: Rule 2 against round-4 statuses.
    flipped.clear();
    for (HostAgent& agent : agents) {
      if (agent.run_rule2(kind, form)) flipped.push_back(agent.id());
    }
    for (const NodeId v : flipped) {
      broadcast(g, agents, agents[static_cast<std::size_t>(v)].make_status());
      ++result.status_msgs;
    }
  }
  for (const HostAgent& agent : agents) {
    if (agent.is_gateway()) {
      result.gateways.set(static_cast<std::size_t>(agent.id()));
    }
  }
  return result;
}

ProtocolResult run_protocol_scheme(const Graph& g, RuleSet rs,
                                   const std::vector<double>& energy) {
  return run_protocol(g, key_kind_of(rs), rule2_form_of(rs), energy,
                      rs != RuleSet::kNR);
}

LossyProtocolResult run_lossy_protocol(const Graph& g, RuleSet rs,
                                       double loss, int repeats,
                                       std::uint64_t seed,
                                       const std::vector<double>& energy) {
  if (loss < 0.0 || loss >= 1.0 || repeats < 1) {
    throw std::invalid_argument("run_lossy_protocol: bad loss/repeats");
  }
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (!energy.empty() && energy.size() != n) {
    throw std::invalid_argument("run_lossy_protocol: energy size mismatch");
  }
  Xoshiro256 rng(seed);
  std::vector<HostAgent> agents;
  agents.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    agents.emplace_back(
        v, energy.empty() ? 0.0 : energy[static_cast<std::size_t>(v)]);
  }
  LossyProtocolResult result;
  result.protocol.gateways = DynBitset(n);

  const KeyKind kind = key_kind_of(rs);
  const Rule2Form form = rule2_form_of(rs);
  // Beaconing: HELLO and neighbor-list rounds repeat `repeats` times; a
  // neighbor missed every time stays unknown.
  for (int round = 0; round < repeats; ++round) {
    for (const HostAgent& agent : agents) {
      broadcast_lossy(g, agents, agent.make_hello(), loss, rng);
      ++result.protocol.hello_msgs;
    }
  }
  for (int round = 0; round < repeats; ++round) {
    for (const HostAgent& agent : agents) {
      broadcast_lossy(g, agents, agent.make_neighbor_list(), loss, rng);
      ++result.protocol.list_msgs;
    }
  }
  for (HostAgent& agent : agents) agent.run_marking();
  for (const HostAgent& agent : agents) {
    broadcast_lossy(g, agents, agent.make_status(), loss, rng);
    ++result.protocol.status_msgs;
  }
  if (rs != RuleSet::kNR) {
    std::vector<NodeId> flipped;
    for (HostAgent& agent : agents) {
      if (agent.run_rule1(kind)) flipped.push_back(agent.id());
    }
    for (const NodeId v : flipped) {
      broadcast_lossy(g, agents,
                      agents[static_cast<std::size_t>(v)].make_status(), loss,
                      rng);
      ++result.protocol.status_msgs;
    }
    flipped.clear();
    for (HostAgent& agent : agents) {
      if (agent.run_rule2(kind, form)) flipped.push_back(agent.id());
    }
    for (const NodeId v : flipped) {
      broadcast_lossy(g, agents,
                      agents[static_cast<std::size_t>(v)].make_status(), loss,
                      rng);
      ++result.protocol.status_msgs;
    }
  }
  for (const HostAgent& agent : agents) {
    if (agent.is_gateway()) {
      result.protocol.gateways.set(static_cast<std::size_t>(agent.id()));
    }
  }
  // Compare with the reliable execution and validate.
  const ProtocolResult reliable = run_protocol_scheme(g, rs, energy);
  DynBitset diff = result.protocol.gateways;
  diff ^= reliable.gateways;
  result.status_disagreements = diff.count();
  result.valid_cds = check_cds(g, result.protocol.gateways).ok();
  return result;
}

}  // namespace pacds::dist
