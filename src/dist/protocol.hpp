#pragma once
// Synchronous round driver for the distributed protocol: the only component
// that sees the global Graph, and it uses it exclusively as the radio
// medium — each broadcast is delivered verbatim to the sender's unit-disk
// neighbors. Running the protocol and comparing against the centralized
// compute_cds (simultaneous strategy) is the library's proof that the
// algorithms are genuinely 2-hop-local.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bitset.hpp"
#include "core/cds.hpp"
#include "core/graph.hpp"
#include "dist/agent.hpp"
#include "dist/channel.hpp"
#include "net/radio.hpp"

namespace pacds::dist {

/// Message tallies per round plus the final gateway set.
struct ProtocolResult {
  DynBitset gateways;
  std::size_t hello_msgs = 0;
  std::size_t list_msgs = 0;
  std::size_t status_msgs = 0;  ///< initial statuses + per-pass flips

  [[nodiscard]] std::size_t total_msgs() const {
    return hello_msgs + list_msgs + status_msgs;
  }
};

/// Executes the full protocol on one network snapshot. `energy` may be
/// empty for the non-energy key kinds (agents then exchange energy 0).
/// With `use_rules` false, stops after the marking round (the NR scheme).
[[nodiscard]] ProtocolResult run_protocol(const Graph& g, KeyKind kind,
                                          Rule2Form form,
                                          const std::vector<double>& energy = {},
                                          bool use_rules = true);

/// Convenience: runs the protocol with the configuration of scheme `rs` and
/// returns the result (must equal compute_cds(g, rs, energy,
/// {.strategy = kSimultaneous}) — property-tested).
[[nodiscard]] ProtocolResult run_protocol_scheme(const Graph& g, RuleSet rs,
                                                 const std::vector<double>&
                                                     energy = {});

/// Lossy-radio study: every broadcast reaches each neighbor independently
/// with probability (1 - loss). `repeats` re-broadcasts of the HELLO and
/// neighbor-list rounds model periodic beaconing. The result's gateway set
/// may be WRONG (that is the point); compare against the reliable run.
struct LossyProtocolResult {
  ProtocolResult protocol;
  std::size_t status_disagreements = 0;  ///< hosts deciding differently from
                                         ///< the reliable execution
  bool valid_cds = false;                ///< does the lossy result still pass
                                         ///< check_cds?
};

[[nodiscard]] LossyProtocolResult run_lossy_protocol(
    const Graph& g, RuleSet rs, double loss, int repeats, std::uint64_t seed,
    const std::vector<double>& energy = {});

/// Outcome of an ARQ execution under a faulty channel. The embedded
/// ProtocolResult's message tallies count every transmission including
/// retransmits, so `protocol.total_msgs()` is the real airtime cost of
/// converging under loss.
struct FaultyProtocolResult {
  ProtocolResult protocol;
  std::size_t retransmissions = 0;   ///< extra broadcasts beyond attempt 1
  std::size_t dropped_frames = 0;    ///< per-link frames lost to drop
  std::size_t duplicate_frames = 0;  ///< per-link frames delivered twice
  std::size_t delayed_frames = 0;    ///< per-link frames deferred one attempt
  std::size_t backoff_rounds = 0;    ///< idle rounds spent backing off
  std::size_t undelivered_links = 0; ///< links still missing a frame at the
                                     ///< retry cap (any phase)
  bool complete = true;              ///< every phase fully delivered
  std::size_t status_disagreements = 0;  ///< hosts deciding differently from
                                         ///< the reliable execution
  bool valid_cds = false;            ///< result still passes check_cds
};

/// Retry-with-timeout execution: every protocol phase runs as an ARQ round
/// — each broadcast must reach every radio neighbor of its sender, per-link
/// acks are free and reliable, and senders retransmit (only to receivers
/// that have not acked) with bounded exponential backoff until the phase is
/// fully delivered or `retry.max_attempts` is exhausted. Delayed frames
/// arrive at the next attempt boundary (before the retry timer, so they are
/// acked in time); duplicated frames are received twice — harmless because
/// HostAgent::receive is idempotent.
///
/// Invariant the tests pin: when `complete` is true, every agent's 2-hop
/// knowledge and status view equals the reliable execution's, so the
/// gateway set is IDENTICAL to run_protocol_scheme(g, rs, energy) — loss
/// costs airtime and latency, never correctness. A zero-fault channel is
/// exactly run_protocol_scheme (no RNG draws). Fully deterministic in
/// (g, rs, channel, retry, seed, energy).
///
/// `radio` (optional, borrowed) degrades each link's channel by the pair's
/// deterministic fade: a frame on (u, v) is lost with probability
/// 1 - (1 - channel.drop) * (1 - radio->arq_drop(u, v)), so deeply faded
/// pairs retransmit more. The arq_drop cap keeps every compound rate < 1,
/// and a null radio (or RadioKind::kUnitDisk) is exactly the plain channel.
[[nodiscard]] FaultyProtocolResult run_faulty_protocol(
    const Graph& g, RuleSet rs, const ChannelFaultConfig& channel,
    const RetryPolicy& retry, std::uint64_t seed,
    const std::vector<double>& energy = {}, const RadioModel* radio = nullptr);

}  // namespace pacds::dist
